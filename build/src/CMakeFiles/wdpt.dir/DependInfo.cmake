
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/fpt_eval.cpp" "src/CMakeFiles/wdpt.dir/analysis/fpt_eval.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/analysis/fpt_eval.cpp.o.d"
  "/root/repo/src/analysis/semantic.cpp" "src/CMakeFiles/wdpt.dir/analysis/semantic.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/analysis/semantic.cpp.o.d"
  "/root/repo/src/analysis/subsumption.cpp" "src/CMakeFiles/wdpt.dir/analysis/subsumption.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/analysis/subsumption.cpp.o.d"
  "/root/repo/src/analysis/wb.cpp" "src/CMakeFiles/wdpt.dir/analysis/wb.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/analysis/wb.cpp.o.d"
  "/root/repo/src/approx/blowup.cpp" "src/CMakeFiles/wdpt.dir/approx/blowup.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/approx/blowup.cpp.o.d"
  "/root/repo/src/approx/wdpt_approx.cpp" "src/CMakeFiles/wdpt.dir/approx/wdpt_approx.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/approx/wdpt_approx.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/wdpt.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/common/status.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/wdpt.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/common/strings.cpp.o.d"
  "/root/repo/src/cq/approximation.cpp" "src/CMakeFiles/wdpt.dir/cq/approximation.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/cq/approximation.cpp.o.d"
  "/root/repo/src/cq/containment.cpp" "src/CMakeFiles/wdpt.dir/cq/containment.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/cq/containment.cpp.o.d"
  "/root/repo/src/cq/core.cpp" "src/CMakeFiles/wdpt.dir/cq/core.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/cq/core.cpp.o.d"
  "/root/repo/src/cq/cq.cpp" "src/CMakeFiles/wdpt.dir/cq/cq.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/cq/cq.cpp.o.d"
  "/root/repo/src/cq/evaluation.cpp" "src/CMakeFiles/wdpt.dir/cq/evaluation.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/cq/evaluation.cpp.o.d"
  "/root/repo/src/cq/homomorphism.cpp" "src/CMakeFiles/wdpt.dir/cq/homomorphism.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/cq/homomorphism.cpp.o.d"
  "/root/repo/src/cq/quotient.cpp" "src/CMakeFiles/wdpt.dir/cq/quotient.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/cq/quotient.cpp.o.d"
  "/root/repo/src/gen/cq_gen.cpp" "src/CMakeFiles/wdpt.dir/gen/cq_gen.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/gen/cq_gen.cpp.o.d"
  "/root/repo/src/gen/db_gen.cpp" "src/CMakeFiles/wdpt.dir/gen/db_gen.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/gen/db_gen.cpp.o.d"
  "/root/repo/src/gen/reductions.cpp" "src/CMakeFiles/wdpt.dir/gen/reductions.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/gen/reductions.cpp.o.d"
  "/root/repo/src/gen/wdpt_gen.cpp" "src/CMakeFiles/wdpt.dir/gen/wdpt_gen.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/gen/wdpt_gen.cpp.o.d"
  "/root/repo/src/hypergraph/gyo.cpp" "src/CMakeFiles/wdpt.dir/hypergraph/gyo.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/hypergraph/gyo.cpp.o.d"
  "/root/repo/src/hypergraph/hypergraph.cpp" "src/CMakeFiles/wdpt.dir/hypergraph/hypergraph.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/hypergraph/hypergraph.cpp.o.d"
  "/root/repo/src/hypergraph/hypertree.cpp" "src/CMakeFiles/wdpt.dir/hypergraph/hypertree.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/hypergraph/hypertree.cpp.o.d"
  "/root/repo/src/hypergraph/tree_decomposition.cpp" "src/CMakeFiles/wdpt.dir/hypergraph/tree_decomposition.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/hypergraph/tree_decomposition.cpp.o.d"
  "/root/repo/src/hypergraph/treewidth.cpp" "src/CMakeFiles/wdpt.dir/hypergraph/treewidth.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/hypergraph/treewidth.cpp.o.d"
  "/root/repo/src/relational/atom.cpp" "src/CMakeFiles/wdpt.dir/relational/atom.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/relational/atom.cpp.o.d"
  "/root/repo/src/relational/database.cpp" "src/CMakeFiles/wdpt.dir/relational/database.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/relational/database.cpp.o.d"
  "/root/repo/src/relational/mapping.cpp" "src/CMakeFiles/wdpt.dir/relational/mapping.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/relational/mapping.cpp.o.d"
  "/root/repo/src/relational/rdf.cpp" "src/CMakeFiles/wdpt.dir/relational/rdf.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/relational/rdf.cpp.o.d"
  "/root/repo/src/relational/schema.cpp" "src/CMakeFiles/wdpt.dir/relational/schema.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/relational/schema.cpp.o.d"
  "/root/repo/src/relational/term.cpp" "src/CMakeFiles/wdpt.dir/relational/term.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/relational/term.cpp.o.d"
  "/root/repo/src/sparql/data_loader.cpp" "src/CMakeFiles/wdpt.dir/sparql/data_loader.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/sparql/data_loader.cpp.o.d"
  "/root/repo/src/sparql/lexer.cpp" "src/CMakeFiles/wdpt.dir/sparql/lexer.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/sparql/lexer.cpp.o.d"
  "/root/repo/src/sparql/parser.cpp" "src/CMakeFiles/wdpt.dir/sparql/parser.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/sparql/parser.cpp.o.d"
  "/root/repo/src/sparql/printer.cpp" "src/CMakeFiles/wdpt.dir/sparql/printer.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/sparql/printer.cpp.o.d"
  "/root/repo/src/sparql/reify.cpp" "src/CMakeFiles/wdpt.dir/sparql/reify.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/sparql/reify.cpp.o.d"
  "/root/repo/src/uwdpt/approx.cpp" "src/CMakeFiles/wdpt.dir/uwdpt/approx.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/uwdpt/approx.cpp.o.d"
  "/root/repo/src/uwdpt/semantic.cpp" "src/CMakeFiles/wdpt.dir/uwdpt/semantic.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/uwdpt/semantic.cpp.o.d"
  "/root/repo/src/uwdpt/subsumption.cpp" "src/CMakeFiles/wdpt.dir/uwdpt/subsumption.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/uwdpt/subsumption.cpp.o.d"
  "/root/repo/src/uwdpt/to_ucq.cpp" "src/CMakeFiles/wdpt.dir/uwdpt/to_ucq.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/uwdpt/to_ucq.cpp.o.d"
  "/root/repo/src/uwdpt/uwdpt.cpp" "src/CMakeFiles/wdpt.dir/uwdpt/uwdpt.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/uwdpt/uwdpt.cpp.o.d"
  "/root/repo/src/wdpt/classify.cpp" "src/CMakeFiles/wdpt.dir/wdpt/classify.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/classify.cpp.o.d"
  "/root/repo/src/wdpt/decomposition.cpp" "src/CMakeFiles/wdpt.dir/wdpt/decomposition.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/decomposition.cpp.o.d"
  "/root/repo/src/wdpt/enumerate.cpp" "src/CMakeFiles/wdpt.dir/wdpt/enumerate.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/enumerate.cpp.o.d"
  "/root/repo/src/wdpt/eval_max.cpp" "src/CMakeFiles/wdpt.dir/wdpt/eval_max.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/eval_max.cpp.o.d"
  "/root/repo/src/wdpt/eval_naive.cpp" "src/CMakeFiles/wdpt.dir/wdpt/eval_naive.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/eval_naive.cpp.o.d"
  "/root/repo/src/wdpt/eval_partial.cpp" "src/CMakeFiles/wdpt.dir/wdpt/eval_partial.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/eval_partial.cpp.o.d"
  "/root/repo/src/wdpt/eval_projection_free.cpp" "src/CMakeFiles/wdpt.dir/wdpt/eval_projection_free.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/eval_projection_free.cpp.o.d"
  "/root/repo/src/wdpt/eval_tractable.cpp" "src/CMakeFiles/wdpt.dir/wdpt/eval_tractable.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/eval_tractable.cpp.o.d"
  "/root/repo/src/wdpt/pattern_tree.cpp" "src/CMakeFiles/wdpt.dir/wdpt/pattern_tree.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/pattern_tree.cpp.o.d"
  "/root/repo/src/wdpt/subtrees.cpp" "src/CMakeFiles/wdpt.dir/wdpt/subtrees.cpp.o" "gcc" "src/CMakeFiles/wdpt.dir/wdpt/subtrees.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
