file(REMOVE_RECURSE
  "libwdpt.a"
)
