# Empty dependencies file for wdpt.
# This may be replaced when dependencies are built.
