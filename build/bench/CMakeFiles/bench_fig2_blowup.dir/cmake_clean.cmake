file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_blowup.dir/bench_fig2_blowup.cpp.o"
  "CMakeFiles/bench_fig2_blowup.dir/bench_fig2_blowup.cpp.o.d"
  "bench_fig2_blowup"
  "bench_fig2_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
