# Empty dependencies file for bench_fig2_blowup.
# This may be replaced when dependencies are built.
