file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_semantic.dir/bench_table2_semantic.cpp.o"
  "CMakeFiles/bench_table2_semantic.dir/bench_table2_semantic.cpp.o.d"
  "bench_table2_semantic"
  "bench_table2_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
