file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cq.dir/bench_ablation_cq.cpp.o"
  "CMakeFiles/bench_ablation_cq.dir/bench_ablation_cq.cpp.o.d"
  "bench_ablation_cq"
  "bench_ablation_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
