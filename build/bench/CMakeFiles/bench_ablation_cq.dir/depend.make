# Empty dependencies file for bench_ablation_cq.
# This may be replaced when dependencies are built.
