# Empty dependencies file for bench_ablation_interface.
# This may be replaced when dependencies are built.
