file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interface.dir/bench_ablation_interface.cpp.o"
  "CMakeFiles/bench_ablation_interface.dir/bench_ablation_interface.cpp.o.d"
  "bench_ablation_interface"
  "bench_ablation_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
