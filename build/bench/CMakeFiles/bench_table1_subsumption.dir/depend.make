# Empty dependencies file for bench_table1_subsumption.
# This may be replaced when dependencies are built.
