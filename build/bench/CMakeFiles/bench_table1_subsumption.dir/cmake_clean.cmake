file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_subsumption.dir/bench_table1_subsumption.cpp.o"
  "CMakeFiles/bench_table1_subsumption.dir/bench_table1_subsumption.cpp.o.d"
  "bench_table1_subsumption"
  "bench_table1_subsumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_subsumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
