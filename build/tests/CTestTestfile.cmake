# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/hypergraph_test[1]_include.cmake")
include("/root/repo/build/tests/cq_test[1]_include.cmake")
include("/root/repo/build/tests/wdpt_test[1]_include.cmake")
include("/root/repo/build/tests/wdpt_eval_test[1]_include.cmake")
include("/root/repo/build/tests/subsumption_test[1]_include.cmake")
include("/root/repo/build/tests/semantic_test[1]_include.cmake")
include("/root/repo/build/tests/uwdpt_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/reify_test[1]_include.cmake")
include("/root/repo/build/tests/cq_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/wdpt_property_test[1]_include.cmake")
include("/root/repo/build/tests/decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_extra_test[1]_include.cmake")
