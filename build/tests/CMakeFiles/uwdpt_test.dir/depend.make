# Empty dependencies file for uwdpt_test.
# This may be replaced when dependencies are built.
