file(REMOVE_RECURSE
  "CMakeFiles/uwdpt_test.dir/uwdpt_test.cpp.o"
  "CMakeFiles/uwdpt_test.dir/uwdpt_test.cpp.o.d"
  "uwdpt_test"
  "uwdpt_test.pdb"
  "uwdpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwdpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
