file(REMOVE_RECURSE
  "CMakeFiles/reify_test.dir/reify_test.cpp.o"
  "CMakeFiles/reify_test.dir/reify_test.cpp.o.d"
  "reify_test"
  "reify_test.pdb"
  "reify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
