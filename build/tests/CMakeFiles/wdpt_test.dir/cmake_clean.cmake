file(REMOVE_RECURSE
  "CMakeFiles/wdpt_test.dir/wdpt_test.cpp.o"
  "CMakeFiles/wdpt_test.dir/wdpt_test.cpp.o.d"
  "wdpt_test"
  "wdpt_test.pdb"
  "wdpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
