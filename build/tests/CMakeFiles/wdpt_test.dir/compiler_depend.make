# Empty compiler generated dependencies file for wdpt_test.
# This may be replaced when dependencies are built.
