# Empty compiler generated dependencies file for wdpt_property_test.
# This may be replaced when dependencies are built.
