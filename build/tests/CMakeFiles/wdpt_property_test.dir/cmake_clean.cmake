file(REMOVE_RECURSE
  "CMakeFiles/wdpt_property_test.dir/wdpt_property_test.cpp.o"
  "CMakeFiles/wdpt_property_test.dir/wdpt_property_test.cpp.o.d"
  "wdpt_property_test"
  "wdpt_property_test.pdb"
  "wdpt_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdpt_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
