file(REMOVE_RECURSE
  "CMakeFiles/wdpt_eval_test.dir/wdpt_eval_test.cpp.o"
  "CMakeFiles/wdpt_eval_test.dir/wdpt_eval_test.cpp.o.d"
  "wdpt_eval_test"
  "wdpt_eval_test.pdb"
  "wdpt_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdpt_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
