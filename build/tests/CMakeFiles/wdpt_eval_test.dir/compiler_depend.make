# Empty compiler generated dependencies file for wdpt_eval_test.
# This may be replaced when dependencies are built.
