file(REMOVE_RECURSE
  "CMakeFiles/wdpt_query.dir/wdpt_query.cpp.o"
  "CMakeFiles/wdpt_query.dir/wdpt_query.cpp.o.d"
  "wdpt_query"
  "wdpt_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdpt_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
