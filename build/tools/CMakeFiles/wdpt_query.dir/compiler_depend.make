# Empty compiler generated dependencies file for wdpt_query.
# This may be replaced when dependencies are built.
