file(REMOVE_RECURSE
  "CMakeFiles/social_incomplete.dir/social_incomplete.cpp.o"
  "CMakeFiles/social_incomplete.dir/social_incomplete.cpp.o.d"
  "social_incomplete"
  "social_incomplete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_incomplete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
