# Empty dependencies file for social_incomplete.
# This may be replaced when dependencies are built.
