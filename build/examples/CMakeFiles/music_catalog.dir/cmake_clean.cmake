file(REMOVE_RECURSE
  "CMakeFiles/music_catalog.dir/music_catalog.cpp.o"
  "CMakeFiles/music_catalog.dir/music_catalog.cpp.o.d"
  "music_catalog"
  "music_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
