// 64-bit content checksums for the storage layer.
//
// Snapshot files and WAL entries are integrity-checked with XXH64
// (Yann Collet's xxHash, public-domain algorithm): fast enough to run
// on every WAL append without showing up in ingest latency, and a far
// stronger corruption detector than an additive checksum. The constant
// is the algorithm, not a shared secret — this detects bit rot and torn
// writes, it does not authenticate anything.

#ifndef WDPT_SRC_STORAGE_CHECKSUM_H_
#define WDPT_SRC_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace wdpt::storage {

namespace checksum_internal {

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t LoadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t LoadU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace checksum_internal

/// XXH64 of `len` bytes at `data`.
inline uint64_t Checksum64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace checksum_internal;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + len;
  uint64_t h;
  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* limit = end - 32;
    do {
      v1 = Round(v1, LoadU64(p));
      v2 = Round(v2, LoadU64(p + 8));
      v3 = Round(v3, LoadU64(p + 16));
      v4 = Round(v4, LoadU64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, LoadU64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(LoadU32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

inline uint64_t Checksum64(std::string_view data, uint64_t seed = 0) {
  return Checksum64(data.data(), data.size(), seed);
}

}  // namespace wdpt::storage

#endif  // WDPT_SRC_STORAGE_CHECKSUM_H_
