#include "src/storage/apply.h"

namespace wdpt::storage {

void ApplyTripleOps(RdfContext* ctx, Database* db,
                    const std::vector<TripleOp>& ops, uint64_t* added,
                    uint64_t* removed) {
  RelationId triple = ctx->triple_relation();
  for (const TripleOp& op : ops) {
    if (op.kind == TripleOpKind::kAdd) {
      ConstantId ids[3] = {ctx->vocab().ConstantIdOf(op.s),
                           ctx->vocab().ConstantIdOf(op.p),
                           ctx->vocab().ConstantIdOf(op.o)};
      if (!db->ContainsFact(triple, ids)) {
        // Cannot fail: the ids were interned above and the arity is the
        // schema's.
        (void)db->AddFact(triple, ids);
        if (added != nullptr) ++*added;
      }
    } else {
      const Vocabulary& vocab = ctx->vocab();
      ConstantId ids[3] = {vocab.FindConstant(op.s), vocab.FindConstant(op.p),
                           vocab.FindConstant(op.o)};
      if (ids[0] == Interner::kNotInterned ||
          ids[1] == Interner::kNotInterned ||
          ids[2] == Interner::kNotInterned) {
        continue;  // Never-interned constant: the triple cannot exist.
      }
      if (db->RemoveFact(triple, ids) && removed != nullptr) ++*removed;
    }
  }
}

std::string FormatIngestBody(const std::vector<TripleOp>& ops) {
  std::string body;
  for (const TripleOp& op : ops) {
    body += op.kind == TripleOpKind::kAdd ? "add " : "remove ";
    body += op.s;
    body += ' ';
    body += op.p;
    body += ' ';
    body += op.o;
    body += '\n';
  }
  return body;
}

}  // namespace wdpt::storage
