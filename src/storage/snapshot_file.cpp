#include "src/storage/snapshot_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/storage/checksum.h"

namespace wdpt::storage {

namespace {

constexpr char kMagic[8] = {'W', 'D', 'P', 'T', 'S', 'N', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 40;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " +
                          std::string(std::strerror(errno)));
}

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::ParseError("snapshot file " + path + " rejected: " + why);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Bounds-checked little-endian cursor over an untrusted byte range.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), end_(data + size) {}

  bool ReadU32(uint32_t* v) {
    if (end_ - p_ < 4) return false;
    std::memcpy(v, p_, 4);
    p_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (end_ - p_ < 8) return false;
    std::memcpy(v, p_, 8);
    p_ += 8;
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (static_cast<size_t>(end_ - p_) < n) return false;
    *out = std::string_view(p_, n);
    p_ += n;
    return true;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const char* p_;
  const char* end_;
};

Status ParseBody(const char* body, size_t body_size, uint32_t relation_count,
                 uint64_t constant_count, const std::string& path,
                 RdfContext* ctx, Database* db, SnapshotFileInfo* info) {
  Cursor cur(body, body_size);
  // Symbol table: intern in file order. On a fresh context the dense ids
  // come back identical to the written ones, but the id map below keeps
  // the reader correct even if the context pre-interned something.
  std::vector<ConstantId> id_map;
  id_map.reserve(constant_count);
  for (uint64_t i = 0; i < constant_count; ++i) {
    uint32_t len = 0;
    std::string_view name;
    if (!cur.ReadU32(&len) || !cur.ReadBytes(len, &name)) {
      return Corrupt(path, "truncated symbol table");
    }
    id_map.push_back(ctx->vocab().ConstantIdOf(name));
  }

  uint64_t facts = 0;
  for (uint32_t r = 0; r < relation_count; ++r) {
    uint32_t name_len = 0;
    std::string_view name;
    uint32_t arity = 0;
    uint64_t rows = 0;
    if (!cur.ReadU32(&name_len) || !cur.ReadBytes(name_len, &name) ||
        !cur.ReadU32(&arity) || !cur.ReadU64(&rows)) {
      return Corrupt(path, "truncated relation block header");
    }
    if (arity == 0) return Corrupt(path, "relation with arity 0");
    Result<RelationId> rel = ctx->schema().AddRelation(name, arity);
    if (!rel.ok()) {
      return Corrupt(path, "relation '" + std::string(name) + "': " +
                               rel.status().ToString());
    }
    if (rows > cur.remaining() / (4 * arity)) {
      return Corrupt(path, "relation '" + std::string(name) +
                               "' declares more rows than the file holds");
    }
    // Column blocks: columns[c] starts at offset c * rows * 4.
    std::string_view block;
    WDPT_CHECK(cur.ReadBytes(static_cast<size_t>(rows) * arity * 4, &block));
    db->Reserve(*rel, rows);
    std::vector<ConstantId> tuple(arity);
    for (uint64_t row = 0; row < rows; ++row) {
      for (uint32_t col = 0; col < arity; ++col) {
        uint32_t raw;
        std::memcpy(&raw, block.data() + (col * rows + row) * 4, 4);
        if (raw >= id_map.size()) {
          return Corrupt(path, "constant id " + std::to_string(raw) +
                                   " out of range");
        }
        tuple[col] = id_map[raw];
      }
      Status added = db->AddFact(*rel, tuple);
      if (!added.ok()) return added;
      ++facts;
    }
  }
  if (cur.remaining() != 0) {
    return Corrupt(path, std::to_string(cur.remaining()) +
                             " trailing bytes after the last relation");
  }
  if (info != nullptr) {
    info->constants = constant_count;
    info->facts = facts;
  }
  return Status::Ok();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const RdfContext& ctx,
                         const Database& db, SnapshotFileInfo* info) {
  const Vocabulary& vocab = ctx.vocab();
  const Schema& schema = ctx.schema();

  std::string body;
  uint64_t facts = 0;
  for (ConstantId id = 0; id < vocab.num_constants(); ++id) {
    const std::string& name = vocab.ConstantName(id);
    AppendU32(&body, static_cast<uint32_t>(name.size()));
    body.append(name);
  }
  for (RelationId id = 0; id < schema.num_relations(); ++id) {
    const std::string& name = schema.Name(id);
    uint32_t arity = schema.Arity(id);
    const Relation& rel = db.relation(id);
    AppendU32(&body, static_cast<uint32_t>(name.size()));
    body.append(name);
    AppendU32(&body, arity);
    AppendU64(&body, rel.size());
    for (uint32_t col = 0; col < arity; ++col) {
      for (size_t row = 0; row < rel.size(); ++row) {
        AppendU32(&body, rel.Tuple(row)[col]);
      }
    }
    facts += rel.size();
  }

  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kMagic, sizeof(kMagic));
  AppendU32(&header, kFormatVersion);
  AppendU32(&header, static_cast<uint32_t>(schema.num_relations()));
  AppendU64(&header, vocab.num_constants());
  AppendU64(&header, body.size());
  AppendU64(&header, Checksum64(body));
  WDPT_CHECK(header.size() == kHeaderBytes);

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", path);
  Status written = WriteAll(fd, header.data(), header.size(), path);
  if (written.ok()) written = WriteAll(fd, body.data(), body.size(), path);
  if (written.ok() && ::fsync(fd) != 0) written = Errno("fsync", path);
  ::close(fd);
  if (!written.ok()) return written;

  if (info != nullptr) {
    info->constants = vocab.num_constants();
    info->facts = facts;
    info->file_bytes = header.size() + body.size();
  }
  return Status::Ok();
}

Status ReadSnapshotFile(const std::string& path, RdfContext* ctx,
                        Database* db, SnapshotFileInfo* info) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("snapshot file not found: " + path);
    }
    return Errno("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return Corrupt(path, "file smaller than the 40-byte header");
  }

  // mmap keeps the load zero-copy (column blocks are parsed in place);
  // a plain read is the fallback for filesystems without mmap support.
  const char* base = nullptr;
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  std::string fallback;
  if (map != MAP_FAILED) {
    base = static_cast<const char*>(map);
  } else {
    fallback.resize(size);
    size_t off = 0;
    while (off < size) {
      ssize_t n = ::read(fd, fallback.data() + off, size - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return Errno("read", path);
      }
      off += static_cast<size_t>(n);
    }
    base = fallback.data();
  }

  Status parsed = ParseSnapshotBytes(base, size, path, ctx, db, info);

  if (map != MAP_FAILED) ::munmap(map, size);
  ::close(fd);
  return parsed;
}

Status ParseSnapshotBytes(const char* data, size_t size,
                          const std::string& label, RdfContext* ctx,
                          Database* db, SnapshotFileInfo* info) {
  if (size < kHeaderBytes) {
    return Corrupt(label, "image smaller than the 40-byte header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(label, "bad magic (not a WDPT snapshot file)");
  }
  Cursor header(data + sizeof(kMagic), kHeaderBytes - sizeof(kMagic));
  uint32_t format = 0, relation_count = 0;
  uint64_t constant_count = 0, body_bytes = 0, body_checksum = 0;
  WDPT_CHECK(header.ReadU32(&format) && header.ReadU32(&relation_count) &&
             header.ReadU64(&constant_count) && header.ReadU64(&body_bytes) &&
             header.ReadU64(&body_checksum));
  if (format != kFormatVersion) {
    return Corrupt(label,
                   "unsupported format version " + std::to_string(format));
  }
  if (body_bytes != size - kHeaderBytes) {
    return Corrupt(label, "declared body of " + std::to_string(body_bytes) +
                              " bytes but the image holds " +
                              std::to_string(size - kHeaderBytes));
  }
  uint64_t actual = Checksum64(data + kHeaderBytes, body_bytes);
  if (actual != body_checksum) {
    return Corrupt(label, "body checksum mismatch (stored " +
                              std::to_string(body_checksum) + ", computed " +
                              std::to_string(actual) + ")");
  }
  Status parsed = ParseBody(data + kHeaderBytes, body_bytes, relation_count,
                            constant_count, label, ctx, db, info);
  if (parsed.ok() && info != nullptr) info->file_bytes = size;
  return parsed;
}

}  // namespace wdpt::storage
