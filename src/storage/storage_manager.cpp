#include "src/storage/storage_manager.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/sparql/data_loader.h"
#include "src/storage/apply.h"
#include "src/storage/snapshot_file.h"

namespace wdpt::storage {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " +
                          std::string(std::strerror(errno)));
}

/// Directory-entry durability: after a rename the new name must survive
/// a crash, which needs an fsync of the directory itself.
Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::Ok();
}

/// Parses "snapshot.NNN.wdpt"; returns false for any other name.
bool ParseSnapshotName(const char* name, uint64_t* seq) {
  unsigned long long n = 0;
  int consumed = 0;
  if (std::sscanf(name, "snapshot.%llu.wdpt%n", &n, &consumed) != 1) {
    return false;
  }
  if (name[consumed] != '\0') return false;
  *seq = n;
  return true;
}

}  // namespace

std::string StorageManager::SnapshotPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snapshot.%03llu.wdpt",
                static_cast<unsigned long long>(seq));
  return options_.dir + "/" + buf;
}

std::string StorageManager::WalPath() const {
  return options_.dir + "/wal.log";
}

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const StorageOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("storage directory must not be empty");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", options.dir);
  }
  std::unique_ptr<StorageManager> mgr(new StorageManager(options));

  // Newest snapshot file wins; stale ones (a crash between rename and
  // unlink) are ignored and cleaned up by the next checkpoint.
  uint64_t newest = 0;
  DIR* dir = ::opendir(options.dir.c_str());
  if (dir == nullptr) return Errno("opendir", options.dir);
  while (struct dirent* entry = ::readdir(dir)) {
    uint64_t seq = 0;
    if (ParseSnapshotName(entry->d_name, &seq) && seq > newest) newest = seq;
  }
  ::closedir(dir);

  Clock::time_point load_start = Clock::now();
  if (newest != 0) {
    Status loaded = ReadSnapshotFile(mgr->SnapshotPath(newest), &mgr->ctx_,
                                     &mgr->db_);
    if (!loaded.ok()) return loaded;
    mgr->snapshot_seq_ = newest;
    mgr->snapshot_seq_published_.store(newest, std::memory_order_relaxed);
  }

  // Replay the WAL tail through the same routine a live ingest (and a
  // replica) uses, seeding the replication hub with each entry so a
  // subscriber can resume from any boundary of the current epoch.
  mgr->hub_.Reset(mgr->snapshot_seq_);
  Result<WalRecovery> recovery = ReplayWalWithOffsets(
      mgr->WalPath(), [&](const std::vector<TripleOp>& ops, uint64_t offset,
                          uint64_t next_offset) {
        ApplyTripleOps(&mgr->ctx_, &mgr->db_, ops, nullptr, nullptr);
        replication::BatchRecord record;
        record.seq = ++mgr->entries_in_epoch_;
        record.offset = offset;
        record.next_offset = next_offset;
        record.ops_text = FormatIngestBody(ops);
        mgr->hub_.Publish(std::move(record));
      });
  if (!recovery.ok()) return recovery.status();
  mgr->snapshot_load_ns_.store(ElapsedNs(load_start),
                               std::memory_order_relaxed);
  mgr->replays_.store(recovery->entries, std::memory_order_relaxed);
  mgr->replayed_ops_.store(recovery->ops, std::memory_order_relaxed);
  mgr->truncated_bytes_.store(recovery->truncated_bytes,
                              std::memory_order_relaxed);

  Result<std::unique_ptr<WalWriter>> wal =
      WalWriter::Open(mgr->WalPath(), options.fsync_wal);
  if (!wal.ok()) return wal.status();
  mgr->wal_ = std::move(*wal);
  mgr->wal_backlog_bytes_.store(mgr->wal_->bytes(),
                                std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mgr->mu_);
    Status published = mgr->PublishLocked(nullptr);
    if (!published.ok()) return published;
  }
  return mgr;
}

Status StorageManager::ImportTriples(std::string_view triples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (db_.TotalFacts() != 0 || snapshot_seq_ != 0 || wal_->bytes() != 0) {
    return Status::InvalidArgument(
        "refusing to import into a non-empty store (dir " + options_.dir +
        " already holds data)");
  }
  Status loaded = sparql::LoadTriples(triples, &ctx_, &db_);
  if (!loaded.ok()) return loaded;
  CheckpointResult checkpoint;
  Status compacted = CheckpointLocked(&checkpoint, nullptr);
  if (!compacted.ok()) return compacted;
  return PublishLocked(nullptr);
}

void StorageManager::ApplyLocked(const std::vector<TripleOp>& ops,
                                 uint64_t* added, uint64_t* removed) {
  // One shared routine for primary apply, recovery, and replica replay
  // (storage/apply.h) — the semantics cannot drift between them.
  ApplyTripleOps(&ctx_, &db_, ops, added, removed);
}

Status StorageManager::PublishLocked(Trace* trace) {
  Trace::Span span(trace, TraceStage::kPublish);
  // Deterministic from durable state: the same (snapshot, WAL prefix)
  // always publishes the same version, across restarts and on every
  // replica — which keeps answer-cache generations honest cluster-wide.
  uint64_t version = (snapshot_seq_ << 32) | entries_in_epoch_;
  Result<std::shared_ptr<const server::Snapshot>> snapshot =
      server::MakeSnapshot(ctx_, db_, version, options_.shards);
  if (!snapshot.ok()) return snapshot.status();
  snapshot_.Store(std::move(*snapshot));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<IngestResult> StorageManager::Ingest(const std::vector<TripleOp>& ops,
                                            Trace* trace) {
  if (ops.empty()) return Status::InvalidArgument("empty ingest batch");
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t offset = wal_->bytes();
  {
    // Durability point: once the entry is on disk (and fsynced per
    // policy), recovery replays it — so the ack below can never claim
    // more than a crash would preserve.
    Trace::Span span(trace, TraceStage::kWalAppend);
    uint64_t entry_bytes = 0;
    Status appended = wal_->Append(ops, &entry_bytes);
    if (!appended.ok()) return appended;
    wal_appends_.fetch_add(1, std::memory_order_relaxed);
    wal_append_bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    wal_backlog_bytes_.store(wal_->bytes(), std::memory_order_relaxed);
  }
  ++entries_in_epoch_;
  IngestResult result;
  {
    Trace::Span span(trace, TraceStage::kApply);
    ApplyLocked(ops, &result.added, &result.removed);
  }
  Status published = PublishLocked(trace);
  if (!published.ok()) return published;
  result.version = (snapshot_seq_ << 32) | entries_in_epoch_;
  result.facts = db_.TotalFacts();

  // Ship to replicas only after the batch is durable, applied, and
  // published locally: a replica can never observe state the primary
  // would not recover to.
  {
    replication::BatchRecord record;
    record.seq = entries_in_epoch_;
    record.offset = offset;
    record.next_offset = wal_->bytes();
    record.ops_text = FormatIngestBody(ops);
    hub_.Publish(std::move(record));
  }

  if (options_.checkpoint_wal_bytes != 0 &&
      wal_->bytes() >= options_.checkpoint_wal_bytes) {
    CheckpointResult checkpoint;
    Status compacted = CheckpointLocked(&checkpoint, trace);
    if (!compacted.ok()) return compacted;
  }
  return result;
}

Status StorageManager::CheckpointLocked(CheckpointResult* result,
                                        Trace* trace) {
  // Crash ordering: the temp write fsyncs its bytes, the rename makes
  // the new sequence visible, the dir fsync makes the rename durable,
  // and only then is the WAL reset. Dying between rename and reset
  // leaves the new snapshot plus the old WAL — replay over it is
  // idempotent (wal.h), so recovery still lands on the acked state.
  Trace::Span span(trace, TraceStage::kPublish);
  uint64_t seq = snapshot_seq_ + 1;
  std::string tmp = options_.dir + "/snapshot.tmp";
  std::string final_path = SnapshotPath(seq);
  SnapshotFileInfo info;
  Status written = WriteSnapshotFile(tmp, ctx_, db_, &info);
  if (!written.ok()) return written;
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Errno("rename", final_path);
  }
  Status synced = FsyncDir(options_.dir);
  if (!synced.ok()) return synced;
  uint64_t compacted = wal_->bytes();
  Status reset = wal_->Reset();
  if (!reset.ok()) return reset;
  if (snapshot_seq_ != 0) {
    ::unlink(SnapshotPath(snapshot_seq_).c_str());  // Best effort.
  }
  snapshot_seq_ = seq;
  entries_in_epoch_ = 0;
  // New epoch: retained batches are superseded by the snapshot file.
  // Mid-stream subscribers observe kStale and re-bootstrap.
  hub_.Advance(seq);
  snapshot_seq_published_.store(seq, std::memory_order_relaxed);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  wal_backlog_bytes_.store(0, std::memory_order_relaxed);
  if (result != nullptr) {
    result->snapshot_seq = seq;
    result->facts = info.facts;
    result->wal_bytes_compacted = compacted;
  }
  return Status::Ok();
}

Result<CheckpointResult> StorageManager::Checkpoint(Trace* trace) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckpointResult result;
  Status compacted = CheckpointLocked(&result, trace);
  if (!compacted.ok()) return compacted;
  return result;
}

Result<ReplicaSnapshot> StorageManager::FetchSnapshotForReplica() {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_seq_ == 0) {
    // Fresh directory still serving straight off the WAL: cut a first
    // snapshot so there is an image to hand out. This also advances
    // the epoch, so the requester's follow-up SUBSCRIBE lands on it.
    CheckpointResult checkpoint;
    Status compacted = CheckpointLocked(&checkpoint, nullptr);
    if (!compacted.ok()) return compacted;
  }
  ReplicaSnapshot out;
  out.epoch = snapshot_seq_;
  std::string path = SnapshotPath(snapshot_seq_);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  out.bytes.resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out.bytes.size()) {
    ssize_t n = ::read(fd, out.bytes.data() + off, out.bytes.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return out;
}

std::string StorageStats::ToJson() const {
  std::string json = "{";
  bool first = true;
  auto field = [&](const char* name, uint64_t value) {
    if (!first) json += ",";
    first = false;
    json += "\"";
    json += name;
    json += "\":";
    json += std::to_string(value);
  };
  field("wal_appends", wal_appends);
  field("wal_bytes", wal_bytes);
  field("replays", replays);
  field("replayed_ops", replayed_ops);
  field("truncated_bytes", truncated_bytes);
  field("checkpoints", checkpoints);
  field("publishes", publishes);
  field("wal_backlog_bytes", wal_backlog_bytes);
  field("snapshot_seq", snapshot_seq);
  field("snapshot_load_ns", snapshot_load_ns);
  json += "}";
  return json;
}

StorageStats StorageManager::stats() const {
  StorageStats s;
  s.wal_appends = wal_appends_.load(std::memory_order_relaxed);
  s.wal_bytes = wal_append_bytes_.load(std::memory_order_relaxed);
  s.replays = replays_.load(std::memory_order_relaxed);
  s.replayed_ops = replayed_ops_.load(std::memory_order_relaxed);
  s.truncated_bytes = truncated_bytes_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.wal_backlog_bytes = wal_backlog_bytes_.load(std::memory_order_relaxed);
  s.snapshot_seq = snapshot_seq_published_.load(std::memory_order_relaxed);
  s.snapshot_load_ns = snapshot_load_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wdpt::storage
