// Append-only write-ahead log of add/remove-triple records.
//
// Every INGEST batch becomes exactly one WAL entry, appended (and, with
// the always-fsync policy, fdatasync'ed) *before* the batch is applied
// or acked — the entry is the durability point. Entry framing:
//
//   entry   := length u32 | checksum u64 | payload
//   payload := op_count u32 | op*
//   op      := kind u8 (1 = add, 2 = remove) | str s | str p | str o
//   str     := length u32 | bytes
//
// The checksum is XXH64 over the payload, so an entry is atomic: it
// either replays in full or not at all. Recovery (ReplayWal) scans
// entries in order and stops at the first frame that is short, declares
// an impossible length, fails its checksum, or does not parse — that
// prefix property is what makes a torn tail (a crash mid-append)
// indistinguishable from a clean end of log, and the tail is truncated
// in place so the writer never appends after garbage. Replaying a WAL
// over a checkpoint that already contains its effects is idempotent:
// adds of present triples and removes of absent ones are no-ops, and
// in-order replay makes the last op per triple win either way.
//
// See docs/STORAGE.md for the crash-recovery guarantees.

#ifndef WDPT_SRC_STORAGE_WAL_H_
#define WDPT_SRC_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace wdpt::storage {

enum class TripleOpKind : uint8_t {
  kAdd = 1,
  kRemove = 2,
};

/// One logged mutation: add or remove the triple (s, p, o).
struct TripleOp {
  TripleOpKind kind = TripleOpKind::kAdd;
  std::string s, p, o;
};

/// Parses an INGEST body: one op per line, `add <s> <p> <o>` or
/// `remove <s> <p> <o>` (whitespace-separated, blank lines and `#`
/// comments ignored). Errors name the offending line.
Result<std::vector<TripleOp>> ParseIngestBody(std::string_view body);

/// Appender for one WAL file. Not thread-safe: the StorageManager
/// serializes writers.
class WalWriter {
 public:
  /// Opens (creating if absent) `path` for appending. Run ReplayWal
  /// first so a torn tail is truncated before anything is appended
  /// after it. With `fsync_on_append`, every Append fdatasyncs before
  /// returning — acked writes then survive power loss, not just a
  /// process kill.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 bool fsync_on_append);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one entry holding the whole batch; sets `*entry_bytes` to
  /// its on-disk size. The batch is durable (per the fsync policy) when
  /// this returns Ok. After any failed Append the writer is poisoned:
  /// the file may end in a torn entry, and an entry appended after it
  /// would be acked yet unreachable to recovery (replay stops at the
  /// first bad frame), so every later Append fails until the log is
  /// reopened through recovery.
  Status Append(const std::vector<TripleOp>& ops,
                uint64_t* entry_bytes = nullptr);

  /// Truncates the log to empty (after a checkpoint has captured its
  /// effects in a snapshot file).
  Status Reset();

  /// Current log size in bytes.
  uint64_t bytes() const { return bytes_; }

 private:
  WalWriter(int fd, bool fsync_on_append, uint64_t bytes)
      : fd_(fd), fsync_on_append_(fsync_on_append), bytes_(bytes) {}

  int fd_;
  bool fsync_on_append_;
  uint64_t bytes_;
  /// Set when an Append failed partway; see Append.
  bool poisoned_ = false;
};

/// What recovery found (and did) in a WAL file.
struct WalRecovery {
  uint64_t entries = 0;          ///< Entries replayed.
  uint64_t ops = 0;              ///< Ops across those entries.
  uint64_t valid_bytes = 0;      ///< Log size after truncation.
  uint64_t truncated_bytes = 0;  ///< Torn-tail bytes dropped.
};

/// Replays every intact entry of `path` in order through `apply`, then
/// truncates any torn tail in place. A missing file is an empty log.
Result<WalRecovery> ReplayWal(
    const std::string& path,
    const std::function<void(const std::vector<TripleOp>&)>& apply);

/// ReplayWal variant that also reports each entry's position: `offset`
/// is the byte offset the entry starts at and `next_offset` the offset
/// just past it — the (offset, next_offset) pair replication uses to
/// address WAL batches (src/replication/hub.h seeds its backlog from
/// this at open).
Result<WalRecovery> ReplayWalWithOffsets(
    const std::string& path,
    const std::function<void(const std::vector<TripleOp>&, uint64_t offset,
                             uint64_t next_offset)>& apply);

}  // namespace wdpt::storage

#endif  // WDPT_SRC_STORAGE_WAL_H_
