// Counters exported by the StorageManager (dependency-free so the
// server's metrics renderer can consume them without pulling in the
// storage implementation headers).

#ifndef WDPT_SRC_STORAGE_STATS_H_
#define WDPT_SRC_STORAGE_STATS_H_

#include <cstdint>
#include <string>

namespace wdpt::storage {

/// A consistent snapshot of the manager's monotonic counters and
/// gauges; rendered as the wdpt_storage_* METRICS families and in the
/// STATS command's JSON.
struct StorageStats {
  uint64_t wal_appends = 0;       ///< Entries appended since open.
  uint64_t wal_bytes = 0;         ///< Bytes appended since open.
  uint64_t replays = 0;           ///< WAL entries replayed at open.
  uint64_t replayed_ops = 0;      ///< Ops across replayed entries.
  uint64_t truncated_bytes = 0;   ///< Torn-tail bytes dropped at open.
  uint64_t checkpoints = 0;       ///< WAL compactions into a snapshot.
  uint64_t publishes = 0;         ///< Immutable snapshots published.
  uint64_t wal_backlog_bytes = 0; ///< Current wal.log size (gauge).
  uint64_t snapshot_seq = 0;      ///< Sequence of the snapshot file.
  uint64_t snapshot_load_ns = 0;  ///< Wall time of the open-time load.

  std::string ToJson() const;
};

}  // namespace wdpt::storage

#endif  // WDPT_SRC_STORAGE_STATS_H_
