// Shared TripleOp batch application and (de)serialization to ingest
// text.
//
// One batch of TripleOps has exactly one meaning, applied in three
// places that must agree bit-for-bit: the primary's authoritative
// database (StorageManager::Ingest), open-time WAL recovery, and a
// replica replaying shipped WALSEG batches (src/replication). All
// three call ApplyTripleOps so the interpretation — adds of present
// triples and removes of absent ones are acked no-ops, in-order
// last-op-wins — cannot drift between the write path and the
// replication path. FormatIngestBody is the inverse of ParseIngestBody
// (wal.h) and is how a batch travels inside a WALSEG frame.

#ifndef WDPT_SRC_STORAGE_APPLY_H_
#define WDPT_SRC_STORAGE_APPLY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/storage/wal.h"

namespace wdpt::storage {

/// Applies `ops` in order to `*db` (whose schema is `ctx`'s), interning
/// new constants into `ctx`'s vocabulary in first-appearance order —
/// the property that keeps a replica's constant ids identical to the
/// primary's. `*added` / `*removed` (may be null) accumulate the ops
/// that changed the database.
void ApplyTripleOps(RdfContext* ctx, Database* db,
                    const std::vector<TripleOp>& ops, uint64_t* added,
                    uint64_t* removed);

/// Renders `ops` as ingest text (`add s p o` / `remove s p o`, one op
/// per line): the WALSEG body encoding. Exact inverse of
/// ParseIngestBody for the op lists that module produces — triple
/// tokens are whitespace-free by construction.
std::string FormatIngestBody(const std::vector<TripleOp>& ops);

}  // namespace wdpt::storage

#endif  // WDPT_SRC_STORAGE_APPLY_H_
