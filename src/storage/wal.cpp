#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/server/fault.h"
#include "src/storage/checksum.h"

namespace wdpt::storage {

namespace {

constexpr size_t kEntryHeaderBytes = 12;  // u32 length + u64 checksum.
// Upper bound on one entry's payload: rejects lengths that garbage
// bytes would otherwise announce, without constraining real batches.
constexpr uint32_t kMaxEntryBytes = 256u << 20;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendStr(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " +
                          std::string(std::strerror(errno)));
}

std::string EncodePayload(const std::vector<TripleOp>& ops) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(ops.size()));
  for (const TripleOp& op : ops) {
    payload.push_back(static_cast<char>(op.kind));
    AppendStr(&payload, op.s);
    AppendStr(&payload, op.p);
    AppendStr(&payload, op.o);
  }
  return payload;
}

// Decodes one checksum-verified payload. Returns false on any bounds or
// tag violation — the caller treats that the same as a bad checksum.
bool DecodePayload(std::string_view payload, std::vector<TripleOp>* ops) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  auto read_u32 = [&](uint32_t* v) {
    if (end - p < 4) return false;
    std::memcpy(v, p, 4);
    p += 4;
    return true;
  };
  auto read_str = [&](std::string* s) {
    uint32_t len = 0;
    if (!read_u32(&len) || static_cast<size_t>(end - p) < len) return false;
    s->assign(p, len);
    p += len;
    return true;
  };
  uint32_t count = 0;
  if (!read_u32(&count)) return false;
  ops->clear();
  ops->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (p >= end) return false;
    uint8_t kind = static_cast<uint8_t>(*p++);
    if (kind != static_cast<uint8_t>(TripleOpKind::kAdd) &&
        kind != static_cast<uint8_t>(TripleOpKind::kRemove)) {
      return false;
    }
    TripleOp op;
    op.kind = static_cast<TripleOpKind>(kind);
    if (!read_str(&op.s) || !read_str(&op.p) || !read_str(&op.o)) return false;
    ops->push_back(std::move(op));
  }
  return p == end;
}

}  // namespace

Result<std::vector<TripleOp>> ParseIngestBody(std::string_view body) {
  std::vector<TripleOp> ops;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    std::vector<std::string_view> tokens;
    size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                 line[i] == '\r')) {
        ++i;
      }
      if (i >= line.size() || line[i] == '#') break;
      size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r') {
        ++i;
      }
      tokens.push_back(line.substr(start, i - start));
    }
    if (tokens.empty()) {
      if (pos > body.size()) break;
      continue;
    }
    TripleOp op;
    if (tokens[0] == "add") {
      op.kind = TripleOpKind::kAdd;
    } else if (tokens[0] == "remove") {
      op.kind = TripleOpKind::kRemove;
    } else {
      return Status::InvalidArgument(
          "ingest line " + std::to_string(line_no) +
          ": expected 'add' or 'remove', got '" + std::string(tokens[0]) +
          "'");
    }
    if (tokens.size() != 4) {
      return Status::InvalidArgument(
          "ingest line " + std::to_string(line_no) + ": expected '" +
          std::string(tokens[0]) + " <s> <p> <o>', got " +
          std::to_string(tokens.size() - 1) + " argument(s)");
    }
    op.s = std::string(tokens[1]);
    op.p = std::string(tokens[2]);
    op.o = std::string(tokens[3]);
    ops.push_back(std::move(op));
    if (pos > body.size()) break;
  }
  if (ops.empty()) {
    return Status::InvalidArgument("ingest body holds no add/remove lines");
  }
  return ops;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   bool fsync_on_append) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    Status s = Errno("lseek", path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, fsync_on_append, static_cast<uint64_t>(size)));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(const std::vector<TripleOp>& ops,
                         uint64_t* entry_bytes) {
  if (ops.empty()) return Status::InvalidArgument("empty WAL batch");
  if (poisoned_) {
    // A previous append failed partway, so the file may end in a torn
    // entry. Appending after it would produce an acked entry that
    // replay never reaches (recovery stops at the first bad frame);
    // refuse until the log is reopened through recovery.
    return Status::Internal(
        "WAL poisoned by an earlier failed append; reopen through "
        "recovery before writing");
  }
  std::string payload = EncodePayload(ops);
  std::string entry;
  entry.reserve(kEntryHeaderBytes + payload.size());
  AppendU32(&entry, static_cast<uint32_t>(payload.size()));
  AppendU64(&entry, Checksum64(payload));
  entry.append(payload);
  if (server::fault::Injector* injector = server::fault::Get()) {
    server::fault::Decision d = injector->Next(server::fault::Op::kWalWrite);
    if (d.fail) {
      // Model a crash mid-append: leave a torn half-entry on disk so
      // recovery has a tail to find and truncate, then fail the op.
      size_t torn = entry.size() / 2;
      size_t woff = 0;
      while (woff < torn) {
        ssize_t n = ::write(fd_, entry.data() + woff, torn - woff);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        woff += static_cast<size_t>(n);
      }
      poisoned_ = true;
      return Status::Internal("injected WAL write failure (torn entry)");
    }
  }
  size_t off = 0;
  while (off < entry.size()) {
    ssize_t n = ::write(fd_, entry.data() + off, entry.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      poisoned_ = true;
      return Errno("append to WAL", "");
    }
    off += static_cast<size_t>(n);
  }
  if (server::fault::Injector* injector = server::fault::Get()) {
    server::fault::Decision d = injector->Next(server::fault::Op::kWalSync);
    if (d.fail) {
      // The entry is fully written but not durable; treat it like a
      // failed fdatasync (the ack must not go out).
      poisoned_ = true;
      return Status::Internal("injected WAL fsync failure");
    }
  }
  if (fsync_on_append_ && ::fdatasync(fd_) != 0) {
    poisoned_ = true;
    return Errno("fdatasync WAL", "");
  }
  bytes_ += entry.size();
  if (entry_bytes != nullptr) *entry_bytes = entry.size();
  return Status::Ok();
}

Status WalWriter::Reset() {
  if (::ftruncate(fd_, 0) != 0) return Errno("truncate WAL", "");
  if (::fsync(fd_) != 0) return Errno("fsync WAL", "");
  bytes_ = 0;
  // Truncation removed any torn tail, so appending is safe again.
  poisoned_ = false;
  return Status::Ok();
}

Result<WalRecovery> ReplayWal(
    const std::string& path,
    const std::function<void(const std::vector<TripleOp>&)>& apply) {
  return ReplayWalWithOffsets(
      path, [&apply](const std::vector<TripleOp>& ops, uint64_t, uint64_t) {
        apply(ops);
      });
}

Result<WalRecovery> ReplayWalWithOffsets(
    const std::string& path,
    const std::function<void(const std::vector<TripleOp>&, uint64_t offset,
                             uint64_t next_offset)>& apply) {
  WalRecovery recovery;
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return recovery;  // No log yet: empty.
    return Errno("open", path);
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    Status s = Errno("lseek", path);
    ::close(fd);
    return s;
  }
  std::string log;
  log.resize(static_cast<size_t>(end));
  size_t off = 0;
  if (::lseek(fd, 0, SEEK_SET) < 0) {
    Status s = Errno("lseek", path);
    ::close(fd);
    return s;
  }
  while (off < log.size()) {
    ssize_t n = ::read(fd, log.data() + off, log.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return Errno("read", path);
    }
    off += static_cast<size_t>(n);
  }

  size_t pos = 0;
  std::vector<TripleOp> ops;
  while (pos + kEntryHeaderBytes <= log.size()) {
    uint32_t len = 0;
    uint64_t stored = 0;
    std::memcpy(&len, log.data() + pos, 4);
    std::memcpy(&stored, log.data() + pos + 4, 8);
    if (len > kMaxEntryBytes ||
        pos + kEntryHeaderBytes + len > log.size()) {
      break;  // Torn tail: a frame the crash cut short.
    }
    std::string_view payload(log.data() + pos + kEntryHeaderBytes, len);
    if (Checksum64(payload) != stored || !DecodePayload(payload, &ops)) {
      break;  // Corrupt tail entry: same treatment.
    }
    apply(ops, pos, pos + kEntryHeaderBytes + len);
    ++recovery.entries;
    recovery.ops += ops.size();
    pos += kEntryHeaderBytes + len;
  }
  recovery.valid_bytes = pos;
  recovery.truncated_bytes = log.size() - pos;
  if (recovery.truncated_bytes != 0) {
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0 || ::fsync(fd) != 0) {
      Status s = Errno("truncate torn WAL tail of", path);
      ::close(fd);
      return s;
    }
  }
  ::close(fd);
  return recovery;
}

}  // namespace wdpt::storage
