// Versioned binary snapshot files: the durable form of a dataset.
//
// A snapshot file is a (vocabulary, relations) image of a Database:
//
//   header (40 bytes, little-endian):
//     magic            8 bytes  "WDPTSNP1"
//     format_version   u32      currently 1
//     relation_count   u32
//     constant_count   u64
//     body_bytes       u64      bytes after the header
//     body_checksum    u64      XXH64 over the body
//   body:
//     constants        constant_count x (u32 length, bytes),
//                      written in interned-id order so a reload interns
//                      them back to the same dense ids
//     relations        relation_count x relation block
//   relation block:
//     name             u32 length, bytes
//     arity            u32
//     row_count        u64
//     columns          arity x (row_count x u32 constant id) — column
//                      blocks, so a column scan is one contiguous read
//
// The reader maps the file (falling back to a plain read when mmap is
// unavailable), verifies the magic, size, and checksum before trusting
// any length field, and rebuilds an (RdfContext, Database) pair. Binary
// load skips the tokenizer and per-line interning of the text triple
// path entirely — see bench/bench_storage.cpp for the measured ratio.
//
// Corruption (bad magic, impossible lengths, checksum mismatch) is
// rejected with a kParseError naming the file and the failing check;
// a missing file is kNotFound. See docs/STORAGE.md.

#ifndef WDPT_SRC_STORAGE_SNAPSHOT_FILE_H_
#define WDPT_SRC_STORAGE_SNAPSHOT_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/relational/database.h"
#include "src/relational/rdf.h"

namespace wdpt::storage {

/// Counters reported by the writer/reader (for logs and benchmarks).
struct SnapshotFileInfo {
  uint64_t constants = 0;
  uint64_t facts = 0;
  uint64_t file_bytes = 0;
};

/// Serializes `db` (and the constants of `ctx`'s vocabulary) to `path`,
/// fsyncing before returning. Overwrites an existing file; callers that
/// need crash-atomic replacement write to a temp name and rename (see
/// StorageManager::Checkpoint).
Status WriteSnapshotFile(const std::string& path, const RdfContext& ctx,
                         const Database& db,
                         SnapshotFileInfo* info = nullptr);

/// Loads `path` into `*ctx` / `*db`, which must be a freshly constructed
/// RdfContext and a database over its schema (constants are interned in
/// file order, so ids match the written ones only on a fresh context).
Status ReadSnapshotFile(const std::string& path, RdfContext* ctx,
                        Database* db, SnapshotFileInfo* info = nullptr);

/// Parses an in-memory snapshot image (header + body, the exact file
/// bytes) into `*ctx` / `*db` with the same validation as
/// ReadSnapshotFile. This is the replica bootstrap path: SNAPSHOT-FETCH
/// ships the file verbatim and the replica parses the frame's bytes
/// without touching disk. `label` names the source in error messages
/// (a path, or e.g. "primary 127.0.0.1:9471").
Status ParseSnapshotBytes(const char* data, size_t size,
                          const std::string& label, RdfContext* ctx,
                          Database* db, SnapshotFileInfo* info = nullptr);

}  // namespace wdpt::storage

#endif  // WDPT_SRC_STORAGE_SNAPSHOT_FILE_H_
