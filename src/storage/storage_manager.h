// StorageManager: the durable, mutable authority behind a serving
// directory.
//
// The manager owns `<dir>/snapshot.NNN.wdpt` (the newest binary
// snapshot file, see snapshot_file.h) plus `<dir>/wal.log` (see wal.h),
// and keeps the authoritative in-memory database they describe. Open()
// loads the snapshot file, replays the WAL over it (truncating any torn
// tail), and publishes the result; every successful Ingest appends one
// WAL entry (the ack point), applies the batch, and publishes a fresh
// immutable server::Snapshot — re-warmed indexes, re-partitioned
// shards, bumped version/answer-cache generation — through the same
// SnapshotHolder hot-swap path a RELOAD uses, so readers switch
// atomically and never see half a batch. Checkpoint() compacts the WAL
// into snapshot.NNN+1 with write-temp → fsync → rename → fsync-dir
// ordering: a crash at any point recovers to exactly the acked state
// (the old snapshot + full WAL, or the new snapshot + whatever the WAL
// gained since — WAL replay over a checkpoint is idempotent, wal.h).
//
// Writers (Ingest/Checkpoint) serialize on one mutex; readers only
// touch published snapshots and are never blocked by it. See
// docs/STORAGE.md for the format and the crash-recovery guarantees.
//
// Replication: the manager owns the primary-side replication Hub.
// Every committed ingest batch is published to it (in commit order,
// tagged with its WAL offset), a checkpoint advances the hub's epoch,
// and open-time recovery seeds the hub with the replayed WAL so a
// replica can subscribe from any entry boundary of the current epoch.
// Published snapshot versions are derived from durable state —
// (snapshot_seq << 32) | wal entries applied since that snapshot — so
// the same logical state carries the same version across restarts, on
// the primary and on every replica. See docs/REPLICATION.md.

#ifndef WDPT_SRC_STORAGE_STORAGE_MANAGER_H_
#define WDPT_SRC_STORAGE_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/replication/hub.h"
#include "src/server/snapshot.h"
#include "src/storage/stats.h"
#include "src/storage/wal.h"

namespace wdpt::storage {

struct StorageOptions {
  /// Data directory (created if absent).
  std::string dir;
  /// Shard count for every published snapshot (server::Snapshot).
  size_t shards = 1;
  /// fdatasync the WAL on every append: acked ingests then survive
  /// power loss, not just a killed process (wdpt_server --fsync).
  bool fsync_wal = false;
  /// Auto-checkpoint once wal.log crosses this size; 0 = only explicit
  /// CHECKPOINT requests compact (wdpt_server --checkpoint-wal-bytes).
  uint64_t checkpoint_wal_bytes = 0;
};

/// Outcome of one Ingest batch. `added`/`removed` count ops that
/// changed the database (an add of a present triple and a remove of an
/// absent one are acked no-ops).
struct IngestResult {
  uint64_t added = 0;
  uint64_t removed = 0;
  uint64_t version = 0;  ///< Version of the snapshot now serving.
  uint64_t facts = 0;    ///< Total facts after the batch.
};

/// Outcome of one Checkpoint.
struct CheckpointResult {
  uint64_t snapshot_seq = 0;       ///< NNN of the fresh snapshot file.
  uint64_t facts = 0;              ///< Facts captured in it.
  uint64_t wal_bytes_compacted = 0;///< Log size folded in and reset.
};

/// A snapshot image handed to a bootstrapping replica: the exact bytes
/// of snapshot.NNN.wdpt plus the epoch (NNN) a subscriber resumes from.
struct ReplicaSnapshot {
  uint64_t epoch = 0;
  std::string bytes;
};

class StorageManager {
 public:
  /// Opens (or initializes) a data directory: loads the newest
  /// snapshot.NNN.wdpt if one exists, replays wal.log over it
  /// (truncating a torn tail), publishes the recovered snapshot, and
  /// readies the WAL for appending. Fails — rather than serving
  /// corrupt data — when the snapshot file exists but is rejected.
  static Result<std::unique_ptr<StorageManager>> Open(
      const StorageOptions& options);

  ~StorageManager() = default;
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Seeds an *empty* store from triples text (one per line; the
  /// wdpt_server --data + --data-dir combination): writes snapshot.001
  /// and publishes. Fails if the store already holds data.
  Status ImportTriples(std::string_view triples);

  /// The immutable snapshot readers should evaluate against. Never
  /// null after a successful Open. Publication order matches version
  /// order (the writer mutex covers the swap).
  std::shared_ptr<const server::Snapshot> CurrentSnapshot() const {
    return snapshot_.Load();
  }

  /// Durably applies one batch: WAL append (+fsync per policy) → apply
  /// → publish. On Ok the batch is recoverable and visible. Records
  /// kWalAppend/kApply/kPublish spans into `trace`. May run an
  /// automatic checkpoint afterwards (checkpoint_wal_bytes).
  Result<IngestResult> Ingest(const std::vector<TripleOp>& ops,
                              Trace* trace = nullptr);

  /// Compacts the WAL into a fresh snapshot.NNN+1.wdpt and empties the
  /// log. Readers are untouched (the published snapshot already holds
  /// this state); the kPublish span records the file write.
  Result<CheckpointResult> Checkpoint(Trace* trace = nullptr);

  /// The current snapshot file's bytes for a replica bootstrap
  /// (SNAPSHOT-FETCH). When no snapshot file exists yet (a fresh
  /// directory serving straight from the WAL), one is cut first so
  /// there is always an image to hand out. Serialized with writers:
  /// the returned epoch and bytes are mutually consistent.
  Result<ReplicaSnapshot> FetchSnapshotForReplica();

  /// The primary-side replication hub (see replication/hub.h). Batches
  /// appear here in commit order; Server streaming sessions subscribe
  /// through it.
  replication::Hub& hub() { return hub_; }

  StorageStats stats() const;

  const std::string& dir() const { return options_.dir; }

 private:
  explicit StorageManager(const StorageOptions& options)
      : options_(options), db_(ctx_.MakeDatabase()) {}

  std::string SnapshotPath(uint64_t seq) const;
  std::string WalPath() const;
  /// Applies ops to the authoritative database (caller holds mu_).
  void ApplyLocked(const std::vector<TripleOp>& ops, uint64_t* added,
                   uint64_t* removed);
  /// Builds and publishes a fresh immutable snapshot (caller holds mu_).
  Status PublishLocked(Trace* trace);
  Status CheckpointLocked(CheckpointResult* result, Trace* trace);

  StorageOptions options_;

  mutable std::mutex mu_;  ///< Serializes writers; readers never take it.
  RdfContext ctx_;         ///< Authoritative vocabulary/schema.
  Database db_;            ///< Authoritative facts (never served directly).
  std::unique_ptr<WalWriter> wal_;
  uint64_t snapshot_seq_ = 0;
  /// WAL entries applied on top of snapshot_seq_ — the low half of the
  /// published version (snapshot_seq_ << 32 | entries_in_epoch_), and
  /// the batch seq replicas track. Reset by every checkpoint; rebuilt
  /// from the WAL replay count at open, so it is deterministic from
  /// durable state alone.
  uint64_t entries_in_epoch_ = 0;

  replication::Hub hub_;
  server::SnapshotHolder snapshot_;

  std::atomic<uint64_t> wal_appends_{0};
  std::atomic<uint64_t> wal_append_bytes_{0};
  std::atomic<uint64_t> replays_{0};
  std::atomic<uint64_t> replayed_ops_{0};
  std::atomic<uint64_t> truncated_bytes_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> wal_backlog_bytes_{0};
  std::atomic<uint64_t> snapshot_seq_published_{0};
  std::atomic<uint64_t> snapshot_load_ns_{0};
};

}  // namespace wdpt::storage

#endif  // WDPT_SRC_STORAGE_STORAGE_MANAGER_H_
