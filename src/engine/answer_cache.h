// AnswerCache: a byte-budgeted, sharded-LRU cache of canonical answers
// with single-flight collapsing of concurrent identical misses.
//
// Exact WDPT evaluation is NP-hard in general (Theorem 5 of the paper)
// and even the tractable classes pay polynomial work per request, so
// re-serving an identical query against an unchanged snapshot should
// cost a hash lookup, not a re-evaluation. Two repo invariants make a
// sound answer cache cheap:
//
//   * every evaluation path (projected, full-enumeration, maximal,
//     sharded scatter-gather) returns the same canonically ordered
//     answer vector bit-identically, so one cache entry serves them
//     all and the key need not mention the algorithm or width bound;
//   * snapshots are immutable and RELOAD stamps each one with a
//     monotonically increasing generation, so invalidation is by
//     construction — a new generation simply never matches old keys,
//     and stale entries age out of the LRU without a flush/eviction
//     race.
//
// Single flight: when several threads miss on the same key at once,
// exactly one (the *owner*) evaluates; the rest block on the per-key
// in-flight entry and are served the owner's published value as hits.
// A waiter whose own cancel token fires mid-wait gets its deadline
// error immediately — the owner keeps going and its published entry is
// not poisoned. An owner that fails abandons the flight; parked
// waiters then evaluate for themselves (without re-entering the cache,
// so a failing query cannot loop a stampede).
//
// Thread-safe. Values are shared_ptr<const ...>: readers never copy
// under a lock and eviction never invalidates a handed-out answer.

#ifndef WDPT_SRC_ENGINE_ANSWER_CACHE_H_
#define WDPT_SRC_ENGINE_ANSWER_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/relational/mapping.h"
#include "src/wdpt/enumerate.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Per-call cache policy, carried in CallOptions (src/engine/engine.h).
enum class CacheMode : uint8_t {
  kDefault = 0,  ///< Use the cache when the engine has one configured.
  kBypass,       ///< Skip lookup and insert (`cache-control: bypass`).
};

struct CachePolicy {
  CacheMode mode = CacheMode::kDefault;
  /// Snapshot generation the request evaluates against. 0 (the default)
  /// means "no generation known" and disables cache participation:
  /// callers evaluating a bare Database outside any snapshot would
  /// otherwise alias each other across data changes.
  uint64_t generation = 0;
};

class AnswerCache {
 public:
  /// One cached evaluation result. Enumeration entries carry the
  /// canonical answer vector; EVAL/MAX-EVAL membership checks carry the
  /// boolean verdict.
  struct Value {
    std::vector<Mapping> answers;
    bool verdict = false;
    bool is_verdict = false;
  };

  struct Stats {
    uint64_t hits = 0;      ///< Served from the LRU or an owner's publish.
    uint64_t misses = 0;    ///< Caller evaluated (as owner or fall-through).
    uint64_t bypasses = 0;  ///< Policy skipped the cache entirely.
    uint64_t inflight_waits = 0;  ///< Acquires that parked behind an owner.
    uint64_t evictions = 0;       ///< Entries dropped for the byte budget.
    uint64_t inserts = 0;         ///< Values published into the LRU.
    uint64_t bytes = 0;           ///< Current resident value bytes.
    uint64_t entries = 0;         ///< Current resident entry count.
  };

  /// `max_bytes` is the total value-byte budget, split evenly across
  /// `num_shards` independently locked LRU shards (each keeps at least
  /// one entry's headroom). Must be > 0: a disabled cache is expressed
  /// by not constructing one (EngineOptions::answer_cache_bytes == 0).
  explicit AnswerCache(size_t max_bytes, size_t num_shards = 8);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// The result of Acquire. Move-only; an owner lease that is destroyed
  /// without Publish abandons the flight (waiters fall through to their
  /// own evaluation).
  class Lease {
   public:
    enum class State : uint8_t {
      kHit,    ///< `value()` is ready.
      kOwner,  ///< Caller must evaluate, then Publish or drop the lease.
      kMiss,   ///< Caller evaluates for itself; nothing to publish.
    };

    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    State state() const { return state_; }
    /// Non-null exactly when state() == kHit.
    const std::shared_ptr<const Value>& value() const { return value_; }
    /// Non-OK when a single-flight wait was aborted because the
    /// *caller's* token fired (state() == kMiss). The caller should
    /// return this status instead of evaluating.
    const Status& wait_status() const { return wait_status_; }

    /// Publishes the owner's result: inserts it into the LRU (subject
    /// to the byte budget) and wakes all parked waiters with it. Only
    /// valid when state() == kOwner; the lease is consumed.
    void Publish(Value value);

   private:
    friend class AnswerCache;
    Lease() = default;

    AnswerCache* cache_ = nullptr;
    size_t shard_ = 0;
    std::string key_;
    State state_ = State::kMiss;
    std::shared_ptr<const Value> value_;
    std::shared_ptr<struct InFlightEntry> flight_;
    Status wait_status_ = Status::Ok();
  };

  /// Looks up `key`. On a resident entry: an immediate kHit. On a miss
  /// with no in-flight owner: a kOwner lease (the caller evaluates and
  /// Publishes). On a miss with an in-flight owner: blocks until the
  /// owner publishes (kHit), the owner abandons (kMiss), or `token`
  /// fires (kMiss with the token's status in wait_status()).
  Lease Acquire(const std::string& key, const CancelToken& token);

  /// Bumps the bypass counter (the caller skipped Acquire by policy).
  void NoteBypass();

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Value> value;
    size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // Most recent first.
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::unordered_map<std::string, std::shared_ptr<InFlightEntry>> inflight;
    size_t bytes = 0;
  };

  size_t ShardIndex(const std::string& key) const;
  void PublishLocked(Lease& lease, std::shared_ptr<const Value> value);
  void Abandon(Lease& lease);

  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> bypasses_{0};
  mutable std::atomic<uint64_t> inflight_waits_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> inserts_{0};
};

/// Approximate resident size of a cached value (entry bookkeeping plus
/// the mappings' bindings); the unit the byte budget is charged in.
size_t AnswerCacheValueBytes(const std::string& key,
                             const AnswerCache::Value& value);

/// Cache key for an enumeration request: a tag byte, the semantics tag,
/// the enumeration limits, the snapshot generation, and the canonical
/// tree serialization. The algorithm and width bound are deliberately
/// absent — answers are bit-identical across them.
std::string EnumerateCacheKey(const PatternTree& tree, uint8_t semantics_tag,
                              const EnumerationLimits& limits,
                              uint64_t generation);

/// Cache key for a membership check (EVAL / PARTIAL-EVAL / MAX-EVAL of
/// one candidate): a tag byte, the semantics tag, the snapshot
/// generation, the candidate's bindings, and the canonical tree.
std::string EvalCacheKey(const PatternTree& tree, uint8_t semantics_tag,
                         const Mapping& candidate, uint64_t generation);

}  // namespace wdpt

#endif  // WDPT_SRC_ENGINE_ANSWER_CACHE_H_
