// The evaluation engine: single public entry point for WDPT evaluation.
//
// Engine unifies the five evaluation routines (EvalNaive, EvalTractable,
// EvalProjectionFree, PartialEval, MaxEval) behind one call,
//
//   engine.Eval(tree, db, h, {.semantics = EvalSemantics::kStandard});
//
// chooses the algorithm from the tree's cached classification (kAuto),
// fans batches of candidate mappings across a fixed thread pool
// (EvalBatch), runs answer enumeration (Enumerate), and enforces
// deadlines / cooperative cancellation end to end: when a deadline
// expires the engine returns kDeadlineExceeded — never a partial answer.
//
// Plans (classification + decomposition) are cached per canonical tree;
// see plan.h and docs/ENGINE.md for the lifecycle.

#ifndef WDPT_SRC_ENGINE_ENGINE_H_
#define WDPT_SRC_ENGINE_ENGINE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/cq/evaluation.h"
#include "src/engine/answer_cache.h"
#include "src/engine/plan.h"
#include "src/engine/stats.h"
#include "src/engine/thread_pool.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/relational/sharded.h"
#include "src/wdpt/enumerate.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Which answer relation a query runs against.
enum class EvalSemantics {
  kStandard,  ///< h in p(D)         (EVAL, Section 3.1/3.2).
  kPartial,   ///< h partial answer  (PARTIAL-EVAL, Section 3.3).
  kMaximal,   ///< h in p_m(D)       (MAX-EVAL, Section 3.4).
};

/// The one per-call option surface, accepted by every Engine entry
/// point (Eval, EvalBatch, Enumerate, and their sharded overloads).
/// Replaces the former EvalOptions / EnumerateOptions pair and the raw
/// EnumerationLimits plumbing; fields irrelevant to a given call are
/// simply ignored (e.g. `limits` by Eval, `algorithm` by Enumerate).
struct CallOptions {
  /// Which answer relation the call runs against. For Enumerate,
  /// kStandard enumerates p(D) and kMaximal enumerates p_m(D);
  /// kPartial is a membership-only semantics and is rejected there.
  EvalSemantics semantics = EvalSemantics::kStandard;
  /// kAuto resolves from the plan's classification. Partial/maximal
  /// semantics have a single algorithm each; this field only steers
  /// kStandard. Eval-only.
  EvalAlgorithm algorithm = EvalAlgorithm::kAuto;
  /// Treewidth bound for classification / decomposition (cache-key part).
  int width_bound = 1;
  /// Options forwarded to the CQ evaluation substrate (strategy etc.).
  /// Its `cancel` field is overwritten by the engine's effective token.
  /// Eval-only.
  CqEvalOptions cq;
  /// Enumeration caps; its `cancel` field is overwritten by the
  /// engine's effective token. Enumerate-only.
  EnumerationLimits limits;
  /// Per-call (per-task in EvalBatch) deadline, relative to call start.
  std::optional<std::chrono::nanoseconds> deadline;
  /// Caller-owned cancellation; combined with the deadline via a child
  /// token, so the caller's token is never mutated.
  CancelToken cancel;
  /// Optional per-request trace: the engine records plan-lookup /
  /// plan-build / cache-lookup / eval spans, the plan's tractability
  /// class, and the answer-cache outcome into it. Must outlive the
  /// call; never alters results. For EvalBatch the eval span is the
  /// batch wall time, not a per-task breakdown.
  Trace* trace = nullptr;
  /// Answer-cache participation (src/engine/answer_cache.h). The call
  /// consults the cache only when the engine has one configured, the
  /// mode is kDefault, and `cache.generation` is non-zero (the server
  /// stamps it with the snapshot version).
  CachePolicy cache;
};

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads for EvalBatch; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// LRU capacity of the plan cache (plans retired least-recently-used).
  size_t plan_cache_capacity = 128;
  /// Byte budget for the answer cache; 0 (the default) disables it.
  size_t answer_cache_bytes = 0;
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options = EngineOptions());

  /// EVAL / PARTIAL-EVAL / MAX-EVAL of a single candidate mapping,
  /// through the cached plan. Returns kDeadlineExceeded / kCancelled when
  /// the effective token fires before a definite answer.
  Result<bool> Eval(const PatternTree& tree, const Database& db,
                    const Mapping& h,
                    const CallOptions& options = CallOptions());

  /// Evaluates every mapping of `hs` against the same (tree, db) on the
  /// thread pool. Results are positionally aligned with `hs` and
  /// bit-identical to sequential Eval calls. If any task fails (including
  /// by deadline), the first failure in index order is returned and the
  /// batch yields no partial answers.
  Result<std::vector<bool>> EvalBatch(
      const PatternTree& tree, const Database& db,
      const std::vector<Mapping>& hs,
      const CallOptions& options = CallOptions());

  /// p(D) (or p_m(D) with options.semantics == kMaximal) via the
  /// projection-aware enumerator, with engine-level deadline /
  /// cancellation handling. Answers come back in the canonical sorted
  /// order (Mapping's operator<), identical across the sharded and
  /// unsharded paths.
  Result<std::vector<Mapping>> Enumerate(
      const PatternTree& tree, const Database& db,
      const CallOptions& options = CallOptions());

  /// Scatter-gather enumeration over a sharded database: one root-label
  /// seed atom is matched per shard in parallel on the engine pool, each
  /// seed match is completed against the retained full view (cross-shard
  /// joins and the maximality condition need the whole database), and
  /// the shard-local answer sets are merged with deduplication into the
  /// same canonical order the unsharded path returns — the two paths are
  /// bit-identical (asserted in tests/sharded_test.cpp). Falls back to
  /// the full view when the partitioning cannot help soundly: a single
  /// shard, an unvalidated tree, or a root label with no partitionable
  /// atom (empty, or only nullary relations). Each shard task gets its
  /// own copy of options.limits. Must not be called from within an
  /// engine pool task (the gather barrier would deadlock the pool).
  Result<std::vector<Mapping>> Enumerate(
      const PatternTree& tree, const ShardedDatabase& db,
      const CallOptions& options = CallOptions());

  /// EVAL over a sharded database. A candidate check is one global
  /// homomorphism problem — its joins cross shard boundaries — so this
  /// routes to the full view unchanged (counted as a sharded fallback).
  /// Provided so holders of a ShardedDatabase need no second handle.
  Result<bool> Eval(const PatternTree& tree, const ShardedDatabase& db,
                    const Mapping& h,
                    const CallOptions& options = CallOptions());

  /// EvalBatch over a sharded database: routes to the full view (the
  /// batch already parallelizes across candidates; see Eval above).
  Result<std::vector<bool>> EvalBatch(
      const PatternTree& tree, const ShardedDatabase& db,
      const std::vector<Mapping>& hs,
      const CallOptions& options = CallOptions());

  /// The cached (or freshly built) plan for a tree. Exposed for the CLI's
  /// --classify path and for tests; Eval/EvalBatch call this internally.
  /// With a trace, records the kPlanLookup / kPlanBuild spans and stamps
  /// the plan's tractability class.
  Result<std::shared_ptr<const Plan>> GetPlan(const PatternTree& tree,
                                              const PlanOptions& options,
                                              Trace* trace = nullptr);

  /// Snapshot of the engine's counters and timers, including the
  /// answer-cache group (all zero when no cache is configured).
  EngineStats stats() const;
  void ResetStats() { stats_.Reset(); }

  unsigned num_threads() const { return pool_.num_threads(); }

  /// The configured answer cache, or nullptr when disabled.
  const AnswerCache* answer_cache() const { return answer_cache_.get(); }

 private:
  /// Combines the caller token and the per-call deadline. Null when
  /// neither is set (polling stays free).
  static CancelToken EffectiveToken(const CancelToken& caller,
                                    std::optional<std::chrono::nanoseconds>
                                        deadline);

  /// True when this call participates in the answer cache: a cache is
  /// configured, the policy mode is kDefault, and a snapshot generation
  /// is set. Bumps the bypass counter when a configured cache is
  /// skipped by policy.
  bool CacheParticipates(const CallOptions& options) const;

  /// Dispatch on (semantics, plan->algorithm()) with `token` installed in
  /// the CQ options; converts a fired token into its status.
  Result<bool> EvalWithPlan(const Plan& plan, const Database& db,
                            const Mapping& h, const CallOptions& options,
                            const CancelToken& token);

  /// EvalWithPlan through the answer cache (single-flight); falls back
  /// to a direct call when the cache does not participate. `trace` is
  /// passed explicitly (nullptr from EvalBatch tasks, which must not
  /// touch the caller's single-owner trace).
  Result<bool> EvalThroughCache(const Plan& plan, const Database& db,
                                const Mapping& h, const CallOptions& options,
                                const CancelToken& token, Trace* trace);

  /// The uncached enumeration core: p(D) / p_m(D) on the full view.
  Result<std::vector<Mapping>> EnumerateCore(const PatternTree& tree,
                                             const Database& db,
                                             const CallOptions& options,
                                             const CancelToken& token);

  /// The uncached sharded scatter-gather core. `seed_atom` was already
  /// chosen by the caller (fallback decided there).
  Result<std::vector<Mapping>> EnumerateShardedCore(
      const PatternTree& tree, const ShardedDatabase& db, size_t seed_atom,
      const CallOptions& options, const CancelToken& token);

  /// Runs `evaluate` through the answer cache with single-flight
  /// collapsing, or directly when the cache does not participate.
  Result<std::vector<Mapping>> EnumerateThroughCache(
      const PatternTree& tree, const CallOptions& options,
      const CancelToken& token,
      const std::function<Result<std::vector<Mapping>>()>& evaluate);

  /// Records a terminal status in the early-termination counters.
  void NoteStatus(const Status& status);

  ThreadPool pool_;
  PlanCache plan_cache_;
  std::unique_ptr<AnswerCache> answer_cache_;
  StatsCollector stats_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_ENGINE_ENGINE_H_
