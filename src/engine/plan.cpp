#include "src/engine/plan.h"

#include <utility>

namespace wdpt {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

}  // namespace

const char* EvalAlgorithmName(EvalAlgorithm a) {
  switch (a) {
    case EvalAlgorithm::kAuto:
      return "auto";
    case EvalAlgorithm::kNaive:
      return "naive";
    case EvalAlgorithm::kTractableDP:
      return "tractable-dp";
    case EvalAlgorithm::kProjectionFree:
      return "projection-free";
  }
  return "unknown";
}

Result<std::shared_ptr<const Plan>> Plan::Build(const PatternTree& tree,
                                                const PlanOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  Result<WdptClassification> classification =
      ClassifyWdpt(tree, options.width_bound);
  if (!classification.ok()) return classification.status();

  auto plan = std::shared_ptr<Plan>(new Plan());
  plan->tree_ = tree;
  plan->options_ = options;
  plan->classification_ = *classification;

  EvalAlgorithm algorithm = options.algorithm;
  if (algorithm == EvalAlgorithm::kAuto) {
    if (classification->projection_free) {
      algorithm = EvalAlgorithm::kProjectionFree;
    } else if (classification->locally_tw_k) {
      algorithm = EvalAlgorithm::kTractableDP;
    } else {
      algorithm = EvalAlgorithm::kNaive;
    }
  }
  if (algorithm == EvalAlgorithm::kProjectionFree &&
      !classification->projection_free) {
    return Status::InvalidArgument(
        "projection-free algorithm requested for a tree with projection");
  }
  plan->algorithm_ = algorithm;

  if (classification->locally_tw_k) {
    Result<GlobalDecomposition> decomposition =
        BuildGlobalTreeDecomposition(tree, options.width_bound);
    // A failure here is not fatal to the plan: the decomposition is an
    // optimization artifact (e.g. >64-variable labels fall back).
    if (decomposition.ok()) {
      plan->decomposition_ = std::move(*decomposition);
    }
  }
  return std::shared_ptr<const Plan>(std::move(plan));
}

void AppendCanonicalTree(std::string* out, const PatternTree& tree) {
  out->reserve(out->size() + 64 + tree.Size() * 8);
  AppendU32(out, static_cast<uint32_t>(tree.num_nodes()));
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    AppendU32(out, tree.parent(n));
    const std::vector<Atom>& atoms = tree.label(n);
    AppendU32(out, static_cast<uint32_t>(atoms.size()));
    for (const Atom& atom : atoms) {
      AppendU32(out, atom.relation);
      AppendU32(out, static_cast<uint32_t>(atom.terms.size()));
      for (Term t : atom.terms) AppendU32(out, t.raw());
    }
  }
  AppendU32(out, static_cast<uint32_t>(tree.free_vars().size()));
  for (VariableId v : tree.free_vars()) AppendU32(out, v);
}

std::string CanonicalPlanKey(const PatternTree& tree,
                             const PlanOptions& options) {
  std::string key;
  AppendU32(&key, static_cast<uint32_t>(options.width_bound));
  AppendU32(&key, static_cast<uint32_t>(options.algorithm));
  AppendCanonicalTree(&key, tree);
  return key;
}

std::shared_ptr<const Plan> PlanCache::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  entries_.splice(entries_.begin(), entries_, it->second);
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const Plan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(key, std::move(plan));
  index_[key] = entries_.begin();
  while (capacity_ > 0 && entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace wdpt
