#include "src/engine/engine.h"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/cq/homomorphism.h"
#include "src/wdpt/eval_max.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/eval_partial.h"
#include "src/wdpt/eval_projection_free.h"
#include "src/wdpt/eval_tractable.h"

namespace wdpt {

namespace {

using Clock = std::chrono::steady_clock;

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

// Picks the root-label atom to scatter by: the one whose relation holds
// the most facts in the full view (its matches spread widest across the
// shards), ties broken by label position. Nullary relations cannot be
// partitioned (a shard stores no arity-0 rows), so they are skipped;
// ground atoms of arity >= 1 are fine — their single matching fact
// lives in exactly one shard. Returns false when no atom qualifies.
bool PickSeedAtom(const PatternTree& tree, const Database& full,
                  size_t* seed_index) {
  const std::vector<Atom>& label = tree.label(PatternTree::kRoot);
  bool found = false;
  size_t best_size = 0;
  for (size_t i = 0; i < label.size(); ++i) {
    if (full.schema().Arity(label[i].relation) == 0) continue;
    size_t size = full.relation(label[i].relation).size();
    if (!found || size > best_size) {
      found = true;
      *seed_index = i;
      best_size = size;
    }
  }
  return found;
}

}  // namespace

Engine::Engine(const EngineOptions& options)
    : pool_(ResolveThreads(options.num_threads)),
      plan_cache_(options.plan_cache_capacity) {
  if (options.answer_cache_bytes > 0) {
    answer_cache_ = std::make_unique<AnswerCache>(options.answer_cache_bytes);
  }
}

CancelToken Engine::EffectiveToken(
    const CancelToken& caller,
    std::optional<std::chrono::nanoseconds> deadline) {
  if (!deadline.has_value()) return caller;
  CancelToken token = CancelToken::Child(caller);
  token.SetDeadline(Clock::now() + *deadline);
  return token;
}

bool Engine::CacheParticipates(const CallOptions& options) const {
  if (answer_cache_ == nullptr) return false;
  if (options.cache.mode == CacheMode::kBypass ||
      options.cache.generation == 0) {
    answer_cache_->NoteBypass();
    return false;
  }
  return true;
}

Result<std::shared_ptr<const Plan>> Engine::GetPlan(
    const PatternTree& tree, const PlanOptions& options, Trace* trace) {
  Clock::time_point lookup_start = Clock::now();
  std::string key = CanonicalPlanKey(tree, options);
  std::shared_ptr<const Plan> cached = plan_cache_.Find(key);
  if (trace != nullptr) {
    trace->Record(TraceStage::kPlanLookup, ElapsedNs(lookup_start));
  }
  if (cached != nullptr) {
    stats_.RecordPlanCacheHit();
    if (trace != nullptr) trace->set_classification(cached->tractability());
    return cached;
  }
  stats_.RecordPlanCacheMiss();
  Clock::time_point start = Clock::now();
  Result<std::shared_ptr<const Plan>> plan = Plan::Build(tree, options);
  uint64_t build_ns = ElapsedNs(start);
  stats_.RecordPlanBuild(build_ns, plan.ok());
  if (trace != nullptr) trace->Record(TraceStage::kPlanBuild, build_ns);
  if (!plan.ok()) return plan.status();
  if (trace != nullptr) trace->set_classification((*plan)->tractability());
  plan_cache_.Insert(key, *plan);
  return plan;
}

Result<bool> Engine::EvalWithPlan(const Plan& plan, const Database& db,
                                  const Mapping& h,
                                  const CallOptions& options,
                                  const CancelToken& token) {
  // An already-fired token (e.g. a zero deadline) never starts work.
  Status token_status = StatusFromToken(token);
  if (!token_status.ok()) {
    NoteStatus(token_status);
    return token_status;
  }

  CqEvalOptions cq = options.cq;
  cq.cancel = token;

  Result<bool> result = false;
  switch (options.semantics) {
    case EvalSemantics::kStandard:
      switch (plan.algorithm()) {
        case EvalAlgorithm::kNaive:
          result = EvalNaive(plan.tree(), db, h, cq);
          break;
        case EvalAlgorithm::kTractableDP:
          result = EvalTractable(plan.tree(), db, h, cq);
          break;
        case EvalAlgorithm::kProjectionFree:
          result = EvalProjectionFree(plan.tree(), db, h, cq);
          break;
        case EvalAlgorithm::kAuto:
          return Status::Internal("plan retains kAuto algorithm");
      }
      break;
    case EvalSemantics::kPartial:
      result = PartialEval(plan.tree(), db, h, cq);
      break;
    case EvalSemantics::kMaximal:
      result = MaxEval(plan.tree(), db, h, cq);
      break;
  }

  // A fired token invalidates whatever the wound-down computation
  // returned: surface the terminal status instead of a partial answer.
  token_status = StatusFromToken(token);
  if (!token_status.ok()) {
    NoteStatus(token_status);
    return token_status;
  }
  return result;
}

Result<bool> Engine::EvalThroughCache(const Plan& plan, const Database& db,
                                      const Mapping& h,
                                      const CallOptions& options,
                                      const CancelToken& token,
                                      Trace* trace) {
  if (!CacheParticipates(options)) {
    return EvalWithPlan(plan, db, h, options, token);
  }
  std::string key =
      EvalCacheKey(plan.tree(), static_cast<uint8_t>(options.semantics), h,
                   options.cache.generation);
  AnswerCache::Lease lease = [&] {
    Trace::Span span(trace, TraceStage::kCacheLookup);
    return answer_cache_->Acquire(key, token);
  }();
  switch (lease.state()) {
    case AnswerCache::Lease::State::kHit:
      if (trace != nullptr) trace->set_cache_outcome(CacheOutcome::kHit);
      return lease.value()->verdict;
    case AnswerCache::Lease::State::kOwner: {
      if (trace != nullptr) trace->set_cache_outcome(CacheOutcome::kMiss);
      Result<bool> result = EvalWithPlan(plan, db, h, options, token);
      if (result.ok()) {
        AnswerCache::Value value;
        value.is_verdict = true;
        value.verdict = *result;
        lease.Publish(std::move(value));
      }
      // On failure the lease destructor abandons the flight: errors are
      // never cached and parked waiters evaluate for themselves.
      return result;
    }
    case AnswerCache::Lease::State::kMiss: {
      if (!lease.wait_status().ok()) {
        // Our own token fired while parked behind the in-flight owner.
        NoteStatus(lease.wait_status());
        return lease.wait_status();
      }
      if (trace != nullptr) trace->set_cache_outcome(CacheOutcome::kMiss);
      return EvalWithPlan(plan, db, h, options, token);
    }
  }
  return Status::Internal("unreachable cache lease state");
}

void Engine::NoteStatus(const Status& status) {
  if (status.code() == StatusCode::kDeadlineExceeded) {
    StatsCollector::Bump(stats_.deadline_exceeded);
  } else if (status.code() == StatusCode::kCancelled) {
    StatsCollector::Bump(stats_.cancelled);
  }
}

Result<bool> Engine::Eval(const PatternTree& tree, const Database& db,
                          const Mapping& h, const CallOptions& options) {
  StatsCollector::Bump(stats_.eval_calls);
  PlanOptions plan_options{options.width_bound, options.algorithm};
  Result<std::shared_ptr<const Plan>> plan =
      GetPlan(tree, plan_options, options.trace);
  if (!plan.ok()) return plan.status();
  CancelToken token = EffectiveToken(options.cancel, options.deadline);
  Clock::time_point start = Clock::now();
  Result<bool> result =
      EvalThroughCache(**plan, db, h, options, token, options.trace);
  uint64_t eval_ns = ElapsedNs(start);
  StatsCollector::Bump(stats_.eval_ns, eval_ns);
  if (options.trace != nullptr) {
    options.trace->Record(TraceStage::kEval, eval_ns);
  }
  return result;
}

Result<std::vector<bool>> Engine::EvalBatch(const PatternTree& tree,
                                            const Database& db,
                                            const std::vector<Mapping>& hs,
                                            const CallOptions& options) {
  StatsCollector::Bump(stats_.batch_calls);
  StatsCollector::Bump(stats_.batch_tasks, hs.size());
  PlanOptions plan_options{options.width_bound, options.algorithm};
  Result<std::shared_ptr<const Plan>> plan =
      GetPlan(tree, plan_options, options.trace);
  if (!plan.ok()) return plan.status();
  if (hs.empty()) return std::vector<bool>();

  // Per-column indexes are built lazily on first probe; warm them now so
  // the concurrent tasks only ever read the database.
  db.WarmColumnIndexes();

  std::shared_ptr<const Plan> shared_plan = *plan;
  // vector<bool> is bit-packed (concurrent element writes race), so the
  // workers fill a byte buffer.
  std::vector<uint8_t> values(hs.size(), 0);
  std::vector<Status> statuses(hs.size(), Status::Ok());
  BatchLatch latch(hs.size());

  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < hs.size(); ++i) {
    pool_.Submit([this, &db, &hs, &options, shared_plan, &values, &statuses,
                  &latch, i] {
      // Each task gets its own deadline window, measured from task start.
      // Tasks pass a null trace: the caller's trace is single-owner. A
      // parked single-flight waiter is safe here — the flight's owner is
      // always an already-running thread, never a queued task.
      CancelToken token = EffectiveToken(options.cancel, options.deadline);
      Result<bool> r = EvalThroughCache(*shared_plan, db, hs[i], options,
                                        token, nullptr);
      if (r.ok()) {
        values[i] = *r ? 1 : 0;
      } else {
        statuses[i] = r.status();
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  uint64_t batch_ns = ElapsedNs(start);
  StatsCollector::Bump(stats_.eval_ns, batch_ns);
  if (options.trace != nullptr) {
    options.trace->Record(TraceStage::kEval, batch_ns);
  }

  // Deterministic error reporting: first failure in index order wins.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  std::vector<bool> results(hs.size());
  for (size_t i = 0; i < hs.size(); ++i) results[i] = values[i] != 0;
  return results;
}

Result<std::vector<Mapping>> Engine::EnumerateThroughCache(
    const PatternTree& tree, const CallOptions& options,
    const CancelToken& token,
    const std::function<Result<std::vector<Mapping>>()>& evaluate) {
  if (!CacheParticipates(options)) return evaluate();
  std::string key = EnumerateCacheKey(
      tree, static_cast<uint8_t>(options.semantics), options.limits,
      options.cache.generation);
  Trace* trace = options.trace;
  AnswerCache::Lease lease = [&] {
    Trace::Span span(trace, TraceStage::kCacheLookup);
    return answer_cache_->Acquire(key, token);
  }();
  switch (lease.state()) {
    case AnswerCache::Lease::State::kHit:
      if (trace != nullptr) trace->set_cache_outcome(CacheOutcome::kHit);
      return lease.value()->answers;
    case AnswerCache::Lease::State::kOwner: {
      if (trace != nullptr) trace->set_cache_outcome(CacheOutcome::kMiss);
      Result<std::vector<Mapping>> result = evaluate();
      if (result.ok()) {
        AnswerCache::Value value;
        value.answers = *result;
        lease.Publish(std::move(value));
      }
      return result;
    }
    case AnswerCache::Lease::State::kMiss: {
      if (!lease.wait_status().ok()) return lease.wait_status();
      if (trace != nullptr) trace->set_cache_outcome(CacheOutcome::kMiss);
      return evaluate();
    }
  }
  return Status::Internal("unreachable cache lease state");
}

Result<std::vector<Mapping>> Engine::EnumerateCore(
    const PatternTree& tree, const Database& db, const CallOptions& options,
    const CancelToken& token) {
  EnumerationLimits limits = options.limits;
  limits.cancel = token;
  return options.semantics == EvalSemantics::kMaximal
             ? EvaluateWdptMaximal(tree, db, limits)
             : EvaluateWdpt(tree, db, limits);
}

Result<std::vector<Mapping>> Engine::Enumerate(
    const PatternTree& tree, const Database& db,
    const CallOptions& options) {
  StatsCollector::Bump(stats_.enumerate_calls);
  if (options.semantics == EvalSemantics::kPartial) {
    return Status::InvalidArgument(
        "Enumerate: kPartial is a membership-only semantics; use Eval with "
        "a candidate");
  }
  if (options.trace != nullptr) {
    // Enumeration itself needs no plan; resolve the (cached) plan only to
    // stamp the tractability class on the trace. Failure leaves the class
    // unknown and never fails the enumeration.
    (void)GetPlan(tree, PlanOptions{}, options.trace);
  }
  CancelToken token = EffectiveToken(options.cancel, options.deadline);
  Status token_status = StatusFromToken(token);
  if (!token_status.ok()) {
    NoteStatus(token_status);
    return token_status;
  }
  Clock::time_point start = Clock::now();
  Result<std::vector<Mapping>> result = EnumerateThroughCache(
      tree, options, token,
      [&] { return EnumerateCore(tree, db, options, token); });
  uint64_t enumerate_ns = ElapsedNs(start);
  StatsCollector::Bump(stats_.enumerate_ns, enumerate_ns);
  if (options.trace != nullptr) {
    options.trace->Record(TraceStage::kEval, enumerate_ns);
  }
  if (!result.ok()) NoteStatus(result.status());
  return result;
}

Result<std::vector<Mapping>> Engine::EnumerateShardedCore(
    const PatternTree& tree, const ShardedDatabase& db, size_t seed_index,
    const CallOptions& options, const CancelToken& token) {
  if (options.trace != nullptr) {
    options.trace->set_shard_fanout(static_cast<uint32_t>(db.num_shards()));
  }
  EnumerationLimits limits = options.limits;
  limits.cancel = token;
  // Shard tasks only ever read the databases once the lazy per-column
  // indexes exist; WarmColumnIndexes covers the full view and every
  // shard.
  db.WarmColumnIndexes();

  const std::vector<Atom> seed_atoms{
      tree.label(PatternTree::kRoot)[seed_index]};
  const size_t n = db.num_shards();
  std::vector<std::vector<Mapping>> shard_answers(n);
  std::vector<Status> statuses(n, Status::Ok());
  std::vector<uint64_t> shard_ns(n, 0);
  BatchLatch latch(n);

  for (size_t s = 0; s < n; ++s) {
    pool_.Submit([&tree, &db, &seed_atoms, limits, &shard_answers,
                  &statuses, &shard_ns, &latch, s] {
      Clock::time_point task_start = Clock::now();
      // Scatter: seeds are the matches of the seed atom within this
      // shard alone. Each fact lives in exactly one shard, so the
      // per-shard seed sets partition the root homomorphisms.
      std::vector<Mapping> seeds;
      HomSearchLimits hom_limits;
      hom_limits.cancel = limits.cancel;
      bool complete = ForEachHomomorphism(
          seed_atoms, db.shard(s), Mapping(),
          [&seeds](const Mapping& m) {
            seeds.push_back(m);
            return true;
          },
          hom_limits);
      if (!complete) {
        statuses[s] = StatusFromToken(limits.cancel);
        if (statuses[s].ok()) {
          statuses[s] = Status::Internal("sharded seed scan aborted");
        }
      } else {
        // Complete each seed against the FULL view: cross-shard joins
        // and the maximality condition need the whole database.
        Result<std::vector<Mapping>> part =
            EvaluateWdptProjectedSeeded(tree, db.full(), seeds, limits);
        if (part.ok()) {
          shard_answers[s] = std::move(*part);
        } else {
          statuses[s] = part.status();
        }
      }
      shard_ns[s] = ElapsedNs(task_start);
      latch.CountDown();
    });
  }
  latch.Wait();
  StatsCollector::Bump(stats_.shard_tasks, n);
  if (options.trace != nullptr) {
    for (uint64_t ns : shard_ns) options.trace->RecordShard(ns);
  }
  // Deterministic error reporting: first failure in shard order wins,
  // and a failed gather yields no partial answers.
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  // Gather: union with dedup (distinct root seeds can project to the
  // same answer), then the canonical sort shared with the unsharded
  // path.
  std::unordered_set<Mapping, MappingHash> seen;
  std::vector<Mapping> answers;
  for (std::vector<Mapping>& part : shard_answers) {
    for (Mapping& m : part) {
      if (seen.insert(m).second) answers.push_back(std::move(m));
    }
  }
  std::sort(answers.begin(), answers.end());
  // p_m(D) is a global property of p(D), so maximality is filtered after
  // the union — matching EvaluateWdptMaximal on the full view.
  if (options.semantics == EvalSemantics::kMaximal) {
    answers = MaximalMappings(answers);
  }
  return answers;
}

Result<std::vector<Mapping>> Engine::Enumerate(
    const PatternTree& tree, const ShardedDatabase& db,
    const CallOptions& options) {
  StatsCollector::Bump(stats_.sharded_enumerate_calls);
  size_t seed_index = 0;
  if (db.num_shards() <= 1 || !tree.validated() ||
      !PickSeedAtom(tree, db.full(), &seed_index)) {
    StatsCollector::Bump(stats_.sharded_fallbacks);
    return Enumerate(tree, db.full(), options);
  }
  if (options.semantics == EvalSemantics::kPartial) {
    return Status::InvalidArgument(
        "Enumerate: kPartial is a membership-only semantics; use Eval with "
        "a candidate");
  }

  StatsCollector::Bump(stats_.enumerate_calls);
  if (options.trace != nullptr) {
    (void)GetPlan(tree, PlanOptions{}, options.trace);
  }
  CancelToken token = EffectiveToken(options.cancel, options.deadline);
  Status token_status = StatusFromToken(token);
  if (!token_status.ok()) {
    NoteStatus(token_status);
    return token_status;
  }
  Clock::time_point start = Clock::now();
  // The sharded path shares the unsharded path's cache key: its answers
  // are bit-identical, so whichever path fills the entry first serves
  // both.
  Result<std::vector<Mapping>> result = EnumerateThroughCache(
      tree, options, token, [&] {
        return EnumerateShardedCore(tree, db, seed_index, options, token);
      });
  uint64_t enumerate_ns = ElapsedNs(start);
  StatsCollector::Bump(stats_.enumerate_ns, enumerate_ns);
  if (options.trace != nullptr) {
    options.trace->Record(TraceStage::kEval, enumerate_ns);
  }
  if (!result.ok()) NoteStatus(result.status());
  return result;
}

Result<bool> Engine::Eval(const PatternTree& tree,
                          const ShardedDatabase& db, const Mapping& h,
                          const CallOptions& options) {
  StatsCollector::Bump(stats_.sharded_fallbacks);
  return Eval(tree, db.full(), h, options);
}

Result<std::vector<bool>> Engine::EvalBatch(
    const PatternTree& tree, const ShardedDatabase& db,
    const std::vector<Mapping>& hs, const CallOptions& options) {
  StatsCollector::Bump(stats_.sharded_fallbacks);
  return EvalBatch(tree, db.full(), hs, options);
}

EngineStats Engine::stats() const {
  EngineStats s = stats_.Snapshot();
  if (answer_cache_ != nullptr) {
    AnswerCache::Stats cs = answer_cache_->stats();
    s.answer_cache_hits = cs.hits;
    s.answer_cache_misses = cs.misses;
    s.answer_cache_bypasses = cs.bypasses;
    s.answer_cache_inflight_waits = cs.inflight_waits;
    s.answer_cache_evictions = cs.evictions;
    s.answer_cache_inserts = cs.inserts;
    s.answer_cache_bytes = cs.bytes;
    s.answer_cache_entries = cs.entries;
  }
  return s;
}

}  // namespace wdpt
