#include "src/engine/engine.h"

#include <thread>
#include <utility>

#include "src/wdpt/eval_max.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/eval_partial.h"
#include "src/wdpt/eval_projection_free.h"
#include "src/wdpt/eval_tractable.h"

namespace wdpt {

namespace {

using Clock = std::chrono::steady_clock;

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

Engine::Engine(const EngineOptions& options)
    : pool_(ResolveThreads(options.num_threads)),
      plan_cache_(options.plan_cache_capacity) {}

CancelToken Engine::EffectiveToken(
    const CancelToken& caller,
    std::optional<std::chrono::nanoseconds> deadline) {
  if (!deadline.has_value()) return caller;
  CancelToken token = CancelToken::Child(caller);
  token.SetDeadline(Clock::now() + *deadline);
  return token;
}

Result<std::shared_ptr<const Plan>> Engine::GetPlan(
    const PatternTree& tree, const PlanOptions& options, Trace* trace) {
  Clock::time_point lookup_start = Clock::now();
  std::string key = CanonicalPlanKey(tree, options);
  std::shared_ptr<const Plan> cached = plan_cache_.Find(key);
  if (trace != nullptr) {
    trace->Record(TraceStage::kPlanLookup, ElapsedNs(lookup_start));
  }
  if (cached != nullptr) {
    stats_.RecordPlanCacheHit();
    if (trace != nullptr) trace->set_classification(cached->tractability());
    return cached;
  }
  stats_.RecordPlanCacheMiss();
  Clock::time_point start = Clock::now();
  Result<std::shared_ptr<const Plan>> plan = Plan::Build(tree, options);
  uint64_t build_ns = ElapsedNs(start);
  stats_.RecordPlanBuild(build_ns, plan.ok());
  if (trace != nullptr) trace->Record(TraceStage::kPlanBuild, build_ns);
  if (!plan.ok()) return plan.status();
  if (trace != nullptr) trace->set_classification((*plan)->tractability());
  plan_cache_.Insert(key, *plan);
  return plan;
}

Result<bool> Engine::EvalWithPlan(const Plan& plan, const Database& db,
                                  const Mapping& h,
                                  const EvalOptions& options,
                                  const CancelToken& token) {
  // An already-fired token (e.g. a zero deadline) never starts work.
  Status token_status = StatusFromToken(token);
  if (!token_status.ok()) {
    NoteStatus(token_status);
    return token_status;
  }

  CqEvalOptions cq = options.cq;
  cq.cancel = token;

  Result<bool> result = false;
  switch (options.semantics) {
    case EvalSemantics::kStandard:
      switch (plan.algorithm()) {
        case EvalAlgorithm::kNaive:
          result = EvalNaive(plan.tree(), db, h, cq);
          break;
        case EvalAlgorithm::kTractableDP:
          result = EvalTractable(plan.tree(), db, h, cq);
          break;
        case EvalAlgorithm::kProjectionFree:
          result = EvalProjectionFree(plan.tree(), db, h, cq);
          break;
        case EvalAlgorithm::kAuto:
          return Status::Internal("plan retains kAuto algorithm");
      }
      break;
    case EvalSemantics::kPartial:
      result = PartialEval(plan.tree(), db, h, cq);
      break;
    case EvalSemantics::kMaximal:
      result = MaxEval(plan.tree(), db, h, cq);
      break;
  }

  // A fired token invalidates whatever the wound-down computation
  // returned: surface the terminal status instead of a partial answer.
  token_status = StatusFromToken(token);
  if (!token_status.ok()) {
    NoteStatus(token_status);
    return token_status;
  }
  return result;
}

void Engine::NoteStatus(const Status& status) {
  if (status.code() == StatusCode::kDeadlineExceeded) {
    StatsCollector::Bump(stats_.deadline_exceeded);
  } else if (status.code() == StatusCode::kCancelled) {
    StatsCollector::Bump(stats_.cancelled);
  }
}

Result<bool> Engine::Eval(const PatternTree& tree, const Database& db,
                          const Mapping& h, const EvalOptions& options) {
  StatsCollector::Bump(stats_.eval_calls);
  PlanOptions plan_options{options.width_bound, options.algorithm};
  Result<std::shared_ptr<const Plan>> plan =
      GetPlan(tree, plan_options, options.trace);
  if (!plan.ok()) return plan.status();
  CancelToken token = EffectiveToken(options.cancel, options.deadline);
  Clock::time_point start = Clock::now();
  Result<bool> result = EvalWithPlan(**plan, db, h, options, token);
  uint64_t eval_ns = ElapsedNs(start);
  StatsCollector::Bump(stats_.eval_ns, eval_ns);
  if (options.trace != nullptr) {
    options.trace->Record(TraceStage::kEval, eval_ns);
  }
  return result;
}

Result<std::vector<bool>> Engine::EvalBatch(const PatternTree& tree,
                                            const Database& db,
                                            const std::vector<Mapping>& hs,
                                            const EvalOptions& options) {
  StatsCollector::Bump(stats_.batch_calls);
  StatsCollector::Bump(stats_.batch_tasks, hs.size());
  PlanOptions plan_options{options.width_bound, options.algorithm};
  Result<std::shared_ptr<const Plan>> plan =
      GetPlan(tree, plan_options, options.trace);
  if (!plan.ok()) return plan.status();
  if (hs.empty()) return std::vector<bool>();

  // Per-column indexes are built lazily on first probe; warm them now so
  // the concurrent tasks only ever read the database.
  db.WarmColumnIndexes();

  std::shared_ptr<const Plan> shared_plan = *plan;
  // vector<bool> is bit-packed (concurrent element writes race), so the
  // workers fill a byte buffer.
  std::vector<uint8_t> values(hs.size(), 0);
  std::vector<Status> statuses(hs.size(), Status::Ok());
  BatchLatch latch(hs.size());

  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < hs.size(); ++i) {
    pool_.Submit([this, &db, &hs, &options, shared_plan, &values, &statuses,
                  &latch, i] {
      // Each task gets its own deadline window, measured from task start.
      CancelToken token = EffectiveToken(options.cancel, options.deadline);
      Result<bool> r =
          EvalWithPlan(*shared_plan, db, hs[i], options, token);
      if (r.ok()) {
        values[i] = *r ? 1 : 0;
      } else {
        statuses[i] = r.status();
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  uint64_t batch_ns = ElapsedNs(start);
  StatsCollector::Bump(stats_.eval_ns, batch_ns);
  if (options.trace != nullptr) {
    options.trace->Record(TraceStage::kEval, batch_ns);
  }

  // Deterministic error reporting: first failure in index order wins.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  std::vector<bool> results(hs.size());
  for (size_t i = 0; i < hs.size(); ++i) results[i] = values[i] != 0;
  return results;
}

Result<std::vector<Mapping>> Engine::Enumerate(
    const PatternTree& tree, const Database& db,
    const EnumerateOptions& options) {
  StatsCollector::Bump(stats_.enumerate_calls);
  if (options.trace != nullptr) {
    // Enumeration itself needs no plan; resolve the (cached) plan only to
    // stamp the tractability class on the trace. Failure leaves the class
    // unknown and never fails the enumeration.
    (void)GetPlan(tree, PlanOptions{}, options.trace);
  }
  CancelToken token = EffectiveToken(options.cancel, options.deadline);
  Status token_status = StatusFromToken(token);
  if (!token_status.ok()) {
    NoteStatus(token_status);
    return token_status;
  }
  EnumerationLimits limits = options.limits;
  limits.cancel = token;
  Clock::time_point start = Clock::now();
  Result<std::vector<Mapping>> result =
      options.maximal ? EvaluateWdptMaximal(tree, db, limits)
                      : EvaluateWdpt(tree, db, limits);
  uint64_t enumerate_ns = ElapsedNs(start);
  StatsCollector::Bump(stats_.enumerate_ns, enumerate_ns);
  if (options.trace != nullptr) {
    options.trace->Record(TraceStage::kEval, enumerate_ns);
  }
  if (!result.ok()) NoteStatus(result.status());
  return result;
}

}  // namespace wdpt
