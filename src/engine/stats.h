// Engine observability: counters and phase timers.
//
// A StatsCollector lives inside the Engine and is bumped from any
// thread; stats() snapshots it into the plain EngineStats struct that
// the CLI prints and the benches assert on. Kernel-level counters
// (homomorphism calls, semijoin passes) come from src/common/metrics.h:
// the collector records the process-wide values at construction/reset
// and reports deltas since then.
//
// The plan-cache group (lookups, hits, misses, built, build time) obeys
// cross-counter invariants — lookups == hits + misses and
// plans_built <= misses — so its updates and its snapshot are guarded
// by a mutex: a snapshot taken under concurrent traffic can never be
// torn (e.g. report hits + misses != lookups). The remaining counters
// carry no cross-field invariant and stay relaxed atomics on the hot
// paths.

#ifndef WDPT_SRC_ENGINE_STATS_H_
#define WDPT_SRC_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/common/metrics.h"

namespace wdpt {

/// A point-in-time snapshot of an Engine's activity. Within one
/// snapshot, plan_cache_lookups == plan_cache_hits + plan_cache_misses
/// and plans_built <= plan_cache_misses always hold.
struct EngineStats {
  // Plan cache (consistent group).
  uint64_t plan_cache_lookups = 0;  ///< Hits + misses, by construction.
  uint64_t plans_built = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;

  // Work items.
  uint64_t eval_calls = 0;        ///< Single-mapping Eval calls.
  uint64_t batch_calls = 0;       ///< EvalBatch invocations.
  uint64_t batch_tasks = 0;       ///< Mappings fanned out across batches.
  uint64_t enumerate_calls = 0;   ///< Enumerate invocations.

  // Scatter-gather over sharded snapshots.
  uint64_t sharded_enumerate_calls = 0;  ///< Enumerate over a ShardedDatabase.
  uint64_t sharded_fallbacks = 0;  ///< Sharded calls served by the full view.
  uint64_t shard_tasks = 0;        ///< Per-shard scatter tasks executed.

  // Answer cache (src/engine/answer_cache.h); all zero when the engine
  // has no cache configured. Filled by Engine::stats() from the cache's
  // own counters, not accumulated in StatsCollector.
  uint64_t answer_cache_hits = 0;
  uint64_t answer_cache_misses = 0;
  uint64_t answer_cache_bypasses = 0;
  uint64_t answer_cache_inflight_waits = 0;
  uint64_t answer_cache_evictions = 0;
  uint64_t answer_cache_inserts = 0;
  uint64_t answer_cache_bytes = 0;    ///< Currently resident value bytes.
  uint64_t answer_cache_entries = 0;  ///< Currently resident entries.

  // Early terminations.
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;

  // Kernel work since construction / the last ResetStats.
  uint64_t homomorphism_calls = 0;
  uint64_t semijoin_passes = 0;
  uint64_t csr_probes = 0;            ///< CSR column-index probes.
  uint64_t gallop_intersections = 0;  ///< Galloped posting-list intersects.

  // High-water mark of the kernel scratch arenas (process-wide gauge,
  // not delta-based: the peak since process start).
  uint64_t arena_bytes_peak = 0;

  // Wall time per phase, nanoseconds.
  uint64_t plan_build_ns = 0;
  uint64_t eval_ns = 0;       ///< Includes batch task execution.
  uint64_t enumerate_ns = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

  /// Single-line JSON object with every counter/timer as a numeric
  /// field (snake_case, times in nanoseconds). Shared by
  /// `wdpt_query --stats` and the server's STATS response so external
  /// tooling sees one schema.
  std::string ToJson() const;
};

/// Thread-safe accumulator behind EngineStats.
class StatsCollector {
 public:
  StatsCollector() { Reset(); }

  void Reset() {
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      plan_cache_lookups_ = 0;
      plans_built_ = 0;
      plan_cache_hits_ = 0;
      plan_cache_misses_ = 0;
      plan_build_ns_ = 0;
    }
    eval_calls.store(0, std::memory_order_relaxed);
    batch_calls.store(0, std::memory_order_relaxed);
    batch_tasks.store(0, std::memory_order_relaxed);
    enumerate_calls.store(0, std::memory_order_relaxed);
    sharded_enumerate_calls.store(0, std::memory_order_relaxed);
    sharded_fallbacks.store(0, std::memory_order_relaxed);
    shard_tasks.store(0, std::memory_order_relaxed);
    deadline_exceeded.store(0, std::memory_order_relaxed);
    cancelled.store(0, std::memory_order_relaxed);
    eval_ns.store(0, std::memory_order_relaxed);
    enumerate_ns.store(0, std::memory_order_relaxed);
    hom_calls_base = metrics::Load(metrics::HomomorphismCalls());
    semijoin_base = metrics::Load(metrics::SemijoinPasses());
    csr_probes_base = metrics::Load(metrics::CsrProbes());
    gallop_base = metrics::Load(metrics::GallopIntersections());
  }

  /// One plan-cache lookup that found a cached plan.
  void RecordPlanCacheHit() {
    std::lock_guard<std::mutex> lock(plan_mu_);
    ++plan_cache_lookups_;
    ++plan_cache_hits_;
  }

  /// One plan-cache lookup that missed (a build attempt follows).
  void RecordPlanCacheMiss() {
    std::lock_guard<std::mutex> lock(plan_mu_);
    ++plan_cache_lookups_;
    ++plan_cache_misses_;
  }

  /// The build following a miss: wall time always, built count only on
  /// success.
  void RecordPlanBuild(uint64_t ns, bool ok) {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan_build_ns_ += ns;
    if (ok) ++plans_built_;
  }

  EngineStats Snapshot() const {
    EngineStats s;
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      s.plan_cache_lookups = plan_cache_lookups_;
      s.plans_built = plans_built_;
      s.plan_cache_hits = plan_cache_hits_;
      s.plan_cache_misses = plan_cache_misses_;
      s.plan_build_ns = plan_build_ns_;
    }
    s.eval_calls = eval_calls.load(std::memory_order_relaxed);
    s.batch_calls = batch_calls.load(std::memory_order_relaxed);
    s.batch_tasks = batch_tasks.load(std::memory_order_relaxed);
    s.enumerate_calls = enumerate_calls.load(std::memory_order_relaxed);
    s.sharded_enumerate_calls =
        sharded_enumerate_calls.load(std::memory_order_relaxed);
    s.sharded_fallbacks = sharded_fallbacks.load(std::memory_order_relaxed);
    s.shard_tasks = shard_tasks.load(std::memory_order_relaxed);
    s.deadline_exceeded = deadline_exceeded.load(std::memory_order_relaxed);
    s.cancelled = cancelled.load(std::memory_order_relaxed);
    s.homomorphism_calls =
        metrics::Load(metrics::HomomorphismCalls()) - hom_calls_base;
    s.semijoin_passes = metrics::Load(metrics::SemijoinPasses()) - semijoin_base;
    s.csr_probes = metrics::Load(metrics::CsrProbes()) - csr_probes_base;
    s.gallop_intersections =
        metrics::Load(metrics::GallopIntersections()) - gallop_base;
    s.arena_bytes_peak = metrics::Load(metrics::ArenaBytesPeak());
    s.eval_ns = eval_ns.load(std::memory_order_relaxed);
    s.enumerate_ns = enumerate_ns.load(std::memory_order_relaxed);
    return s;
  }

  static void Bump(std::atomic<uint64_t>& counter, uint64_t delta = 1) {
    counter.fetch_add(delta, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> eval_calls{0};
  std::atomic<uint64_t> batch_calls{0};
  std::atomic<uint64_t> batch_tasks{0};
  std::atomic<uint64_t> enumerate_calls{0};
  std::atomic<uint64_t> sharded_enumerate_calls{0};
  std::atomic<uint64_t> sharded_fallbacks{0};
  std::atomic<uint64_t> shard_tasks{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> eval_ns{0};
  std::atomic<uint64_t> enumerate_ns{0};

 private:
  mutable std::mutex plan_mu_;
  uint64_t plan_cache_lookups_ = 0;
  uint64_t plans_built_ = 0;
  uint64_t plan_cache_hits_ = 0;
  uint64_t plan_cache_misses_ = 0;
  uint64_t plan_build_ns_ = 0;

  uint64_t hom_calls_base = 0;
  uint64_t semijoin_base = 0;
  uint64_t csr_probes_base = 0;
  uint64_t gallop_base = 0;
};

}  // namespace wdpt

#endif  // WDPT_SRC_ENGINE_STATS_H_
