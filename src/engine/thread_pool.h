// A fixed-size worker pool for the evaluation engine.
//
// Deliberately minimal: Submit enqueues a task, the destructor drains the
// queue and joins. Batch completion is the caller's concern (the Engine
// counts down a latch per batch) — the pool itself never blocks producers
// beyond the queue mutex.

#ifndef WDPT_SRC_ENGINE_THREAD_POOL_H_
#define WDPT_SRC_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wdpt {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1; 0 is clamped to 1 — the
  /// Engine resolves hardware_concurrency before constructing the pool).
  explicit ThreadPool(unsigned num_threads);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not block on each other (no nested
  /// Submit-and-wait from within a task), or the pool can deadlock.
  void Submit(std::function<void()> task);

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Blocks a producer until `count` task completions are signalled.
/// (std::latch without the single-use restriction diagnostics; kept local
/// so the pool header stays dependency-free.)
class BatchLatch {
 public:
  explicit BatchLatch(size_t count) : remaining_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_ENGINE_THREAD_POOL_H_
