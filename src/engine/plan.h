// Evaluation plans: the cached, immutable result of analysing one WDPT.
//
// Classifying a pattern tree (per-node treewidth, global width, interface
// width, projection-freeness) and building its global tree decomposition
// are the expensive structural steps of the paper's algorithms — and they
// depend only on the tree, not on the database or candidate mapping. A
// Plan runs them once; the Engine caches plans in an LRU keyed by the
// canonical serialization of the tree plus the plan options, so repeated
// queries (the common case under load) skip straight to evaluation.
//
// Plans are immutable after Build and shared via shared_ptr<const Plan>;
// concurrent readers need no synchronization.

#ifndef WDPT_SRC_ENGINE_PLAN_H_
#define WDPT_SRC_ENGINE_PLAN_H_

#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/wdpt/classify.h"
#include "src/wdpt/decomposition.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Which evaluation algorithm a plan commits to for EVAL.
enum class EvalAlgorithm {
  kAuto,            ///< Resolve from the classification (plan-time).
  kNaive,           ///< Forced-entry recursion (EvalNaive); always correct.
  kTractableDP,     ///< Bounded-interface DP (EvalTractable); always
                    ///< correct, polynomial for l-TW(k) with bounded
                    ///< interface.
  kProjectionFree,  ///< Subtree reconstruction (EvalProjectionFree);
                    ///< requires a projection-free tree.
};

const char* EvalAlgorithmName(EvalAlgorithm a);

/// Inputs of plan construction (part of the cache key).
struct PlanOptions {
  /// Treewidth bound used by classification and decomposition building.
  int width_bound = 1;
  /// Algorithm request; kAuto lets the classification decide.
  EvalAlgorithm algorithm = EvalAlgorithm::kAuto;
};

class Plan {
 public:
  /// Analyses `tree` (which must be validated) and returns the immutable
  /// plan. The plan owns a copy of the tree: cached plans outlive the
  /// caller's instance.
  static Result<std::shared_ptr<const Plan>> Build(const PatternTree& tree,
                                                   const PlanOptions& options);

  const PatternTree& tree() const { return tree_; }
  const PlanOptions& options() const { return options_; }
  const WdptClassification& classification() const { return classification_; }

  /// The classification collapsed to the serving-relevant class label
  /// (g-TW(k) wins over l-TW(k)); used to key per-class latency metrics.
  TractabilityClass tractability() const {
    if (classification_.globally_tw_k) return TractabilityClass::kGTractable;
    if (classification_.locally_tw_k) return TractabilityClass::kLTractable;
    return TractabilityClass::kIntractable;
  }

  /// The committed EVAL algorithm; never kAuto. Resolution: projection-
  /// free trees use kProjectionFree, locally tractable trees (within the
  /// width bound) use the DP, everything else falls back to kNaive.
  EvalAlgorithm algorithm() const { return algorithm_; }

  /// The Proposition 2 global tree decomposition, when the tree is
  /// locally within the width bound (nullopt otherwise). Cached here so
  /// decomposition-strategy CQ evaluation need not rebuild it per query.
  const std::optional<GlobalDecomposition>& decomposition() const {
    return decomposition_;
  }

 private:
  Plan() = default;

  PatternTree tree_;
  PlanOptions options_;
  WdptClassification classification_;
  EvalAlgorithm algorithm_ = EvalAlgorithm::kNaive;
  std::optional<GlobalDecomposition> decomposition_;
};

/// Appends the canonical byte-exact serialization of the tree's
/// structure (parents, labels as raw term ids, free variables) to
/// `out`. Two trees built by the same sequence of AddChild / AddAtom /
/// SetFreeVariables calls over the same vocabulary serialize
/// identically. Shared by the plan-cache key and the answer-cache key
/// (src/engine/answer_cache.h).
void AppendCanonicalTree(std::string* out, const PatternTree& tree);

/// Canonical plan-cache key: the plan options followed by the canonical
/// tree serialization.
std::string CanonicalPlanKey(const PatternTree& tree,
                             const PlanOptions& options);

/// Thread-safe LRU cache of built plans.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached plan for `key` (refreshing its recency), or
  /// nullptr on a miss.
  std::shared_ptr<const Plan> Find(const std::string& key);

  /// Inserts (or replaces) the plan for `key`, evicting the least
  /// recently used entry when over capacity.
  void Insert(const std::string& key, std::shared_ptr<const Plan> plan);

  size_t size() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  // Recency list, most recent first; map points into it.
  std::list<std::pair<std::string, std::shared_ptr<const Plan>>> entries_;
  std::unordered_map<std::string, decltype(entries_)::iterator> index_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_ENGINE_PLAN_H_
