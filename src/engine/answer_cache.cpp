#include "src/engine/answer_cache.h"

#include <chrono>
#include <condition_variable>
#include <functional>
#include <utility>

#include "src/engine/plan.h"

namespace wdpt {

// The per-key single-flight rendezvous. The owner holds the map slot;
// waiters park on `cv` until `done` and read the result from here (not
// from the LRU — a published entry can already have been evicted by the
// time a waiter wakes).
struct InFlightEntry {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool published = false;  // false after `done`: the owner abandoned.
  std::shared_ptr<const AnswerCache::Value> value;
};

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

// Waiters poll their own token at this granularity; a deadline firing
// mid-wait is observed within one tick.
constexpr std::chrono::milliseconds kWaitTick{1};

}  // namespace

AnswerCache::AnswerCache(size_t max_bytes, size_t num_shards) {
  WDPT_CHECK(max_bytes > 0);
  if (num_shards == 0) num_shards = 1;
  shard_budget_ = max_bytes / num_shards;
  if (shard_budget_ == 0) shard_budget_ = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t AnswerCache::ShardIndex(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

AnswerCache::Lease AnswerCache::Acquire(const std::string& key,
                                        const CancelToken& token) {
  Lease lease;
  lease.cache_ = this;
  lease.shard_ = ShardIndex(key);
  lease.key_ = key;
  Shard& shard = *shards_[lease.shard_];

  std::shared_ptr<InFlightEntry> flight;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      lease.state_ = Lease::State::kHit;
      lease.value_ = it->second->value;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return lease;
    }
    auto fit = shard.inflight.find(key);
    if (fit == shard.inflight.end()) {
      flight = std::make_shared<InFlightEntry>();
      shard.inflight.emplace(key, flight);
      lease.state_ = Lease::State::kOwner;
      lease.flight_ = std::move(flight);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return lease;
    }
    flight = fit->second;
  }

  // Park behind the in-flight owner.
  inflight_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(flight->mu);
  while (!flight->done) {
    Status st = StatusFromToken(token);
    if (!st.ok()) {
      // The waiter's own token fired: surface its deadline/cancel error
      // now. The owner keeps evaluating and its entry stays intact.
      lease.state_ = Lease::State::kMiss;
      lease.wait_status_ = std::move(st);
      return lease;
    }
    flight->cv.wait_for(lock, kWaitTick);
  }
  if (flight->published) {
    lease.state_ = Lease::State::kHit;
    lease.value_ = flight->value;
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // The owner failed and abandoned the flight; evaluate for ourselves
    // without re-entering the cache (no stampede loop on a bad query).
    lease.state_ = Lease::State::kMiss;
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return lease;
}

void AnswerCache::NoteBypass() {
  bypasses_.fetch_add(1, std::memory_order_relaxed);
}

void AnswerCache::PublishLocked(Lease& lease,
                                std::shared_ptr<const Value> value) {
  Shard& shard = *shards_[lease.shard_];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(lease.key_);
    size_t bytes = AnswerCacheValueBytes(lease.key_, *value);
    // Oversized values are served to waiters but never resident.
    if (bytes <= shard_budget_ && shard.index.count(lease.key_) == 0) {
      shard.lru.push_front(Entry{lease.key_, value, bytes});
      shard.index[lease.key_] = shard.lru.begin();
      shard.bytes += bytes;
      inserts_.fetch_add(1, std::memory_order_relaxed);
      while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
        Entry& victim = shard.lru.back();
        shard.bytes -= victim.bytes;
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  std::shared_ptr<InFlightEntry> flight = std::move(lease.flight_);
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->published = true;
    flight->value = std::move(value);
  }
  flight->cv.notify_all();
}

void AnswerCache::Abandon(Lease& lease) {
  Shard& shard = *shards_[lease.shard_];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(lease.key_);
  }
  std::shared_ptr<InFlightEntry> flight = std::move(lease.flight_);
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->published = false;
  }
  flight->cv.notify_all();
}

AnswerCache::Stats AnswerCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bypasses = bypasses_.load(std::memory_order_relaxed);
  s.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.bytes += shard->bytes;
    s.entries += shard->lru.size();
  }
  return s;
}

AnswerCache::Lease::Lease(Lease&& other) noexcept
    : cache_(other.cache_),
      shard_(other.shard_),
      key_(std::move(other.key_)),
      state_(other.state_),
      value_(std::move(other.value_)),
      flight_(std::move(other.flight_)),
      wait_status_(std::move(other.wait_status_)) {
  other.cache_ = nullptr;
  other.flight_ = nullptr;
}

AnswerCache::Lease& AnswerCache::Lease::operator=(Lease&& other) noexcept {
  if (this == &other) return *this;
  if (state_ == State::kOwner && flight_ != nullptr && cache_ != nullptr) {
    cache_->Abandon(*this);
  }
  cache_ = other.cache_;
  shard_ = other.shard_;
  key_ = std::move(other.key_);
  state_ = other.state_;
  value_ = std::move(other.value_);
  flight_ = std::move(other.flight_);
  wait_status_ = std::move(other.wait_status_);
  other.cache_ = nullptr;
  other.flight_ = nullptr;
  return *this;
}

AnswerCache::Lease::~Lease() {
  if (state_ == State::kOwner && flight_ != nullptr && cache_ != nullptr) {
    cache_->Abandon(*this);
  }
}

void AnswerCache::Lease::Publish(Value value) {
  WDPT_CHECK(state_ == State::kOwner && flight_ != nullptr &&
             cache_ != nullptr);
  cache_->PublishLocked(
      *this, std::make_shared<const Value>(std::move(value)));
  state_ = State::kMiss;  // Consumed; the destructor must not abandon.
}

size_t AnswerCacheValueBytes(const std::string& key,
                             const AnswerCache::Value& value) {
  // Entry bookkeeping: list node, index slot, key bytes, Value header.
  size_t bytes = 96 + key.size() + sizeof(AnswerCache::Value);
  for (const Mapping& m : value.answers) {
    bytes += sizeof(Mapping) + m.entries().size() * sizeof(Mapping::Entry);
  }
  return bytes;
}

std::string EnumerateCacheKey(const PatternTree& tree, uint8_t semantics_tag,
                              const EnumerationLimits& limits,
                              uint64_t generation) {
  std::string key;
  key.push_back('E');
  key.push_back(static_cast<char>(semantics_tag));
  AppendU64(&key, limits.max_homomorphisms);
  AppendU64(&key, limits.max_steps);
  AppendU64(&key, generation);
  AppendCanonicalTree(&key, tree);
  return key;
}

std::string EvalCacheKey(const PatternTree& tree, uint8_t semantics_tag,
                         const Mapping& candidate, uint64_t generation) {
  std::string key;
  key.push_back('V');
  key.push_back(static_cast<char>(semantics_tag));
  AppendU64(&key, generation);
  AppendU32(&key, static_cast<uint32_t>(candidate.entries().size()));
  for (const Mapping::Entry& e : candidate.entries()) {
    AppendU32(&key, e.first);
    AppendU32(&key, e.second);
  }
  AppendCanonicalTree(&key, tree);
  return key;
}

}  // namespace wdpt
