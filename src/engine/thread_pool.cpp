#include "src/engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace wdpt {

ThreadPool::ThreadPool(unsigned num_threads) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace wdpt
