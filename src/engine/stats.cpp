#include "src/engine/stats.h"

namespace wdpt {

namespace {

std::string Millis(uint64_t ns) {
  // Render with two decimals without pulling in <iomanip>.
  uint64_t hundredths = ns / 10000;
  return std::to_string(hundredths / 100) + "." +
         (hundredths % 100 < 10 ? "0" : "") +
         std::to_string(hundredths % 100) + " ms";
}

}  // namespace

std::string EngineStats::ToString() const {
  std::string out;
  out += "plans built:         " + std::to_string(plans_built) + "\n";
  out += "plan cache hits:     " + std::to_string(plan_cache_hits) + "\n";
  out += "plan cache misses:   " + std::to_string(plan_cache_misses) + "\n";
  out += "eval calls:          " + std::to_string(eval_calls) + "\n";
  out += "batch calls:         " + std::to_string(batch_calls) + " (" +
         std::to_string(batch_tasks) + " tasks)\n";
  out += "enumerate calls:     " + std::to_string(enumerate_calls) + "\n";
  out += "deadline exceeded:   " + std::to_string(deadline_exceeded) + "\n";
  out += "cancelled:           " + std::to_string(cancelled) + "\n";
  out += "homomorphism calls:  " + std::to_string(homomorphism_calls) + "\n";
  out += "semijoin passes:     " + std::to_string(semijoin_passes) + "\n";
  out += "plan build time:     " + Millis(plan_build_ns) + "\n";
  out += "eval time:           " + Millis(eval_ns) + "\n";
  out += "enumerate time:      " + Millis(enumerate_ns) + "\n";
  return out;
}

}  // namespace wdpt
