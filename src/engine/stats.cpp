#include "src/engine/stats.h"

namespace wdpt {

namespace {

std::string Millis(uint64_t ns) {
  // Render with two decimals without pulling in <iomanip>.
  uint64_t hundredths = ns / 10000;
  return std::to_string(hundredths / 100) + "." +
         (hundredths % 100 < 10 ? "0" : "") +
         std::to_string(hundredths % 100) + " ms";
}

}  // namespace

std::string EngineStats::ToString() const {
  std::string out;
  out += "plan cache lookups:  " + std::to_string(plan_cache_lookups) + "\n";
  out += "plans built:         " + std::to_string(plans_built) + "\n";
  out += "plan cache hits:     " + std::to_string(plan_cache_hits) + "\n";
  out += "plan cache misses:   " + std::to_string(plan_cache_misses) + "\n";
  out += "eval calls:          " + std::to_string(eval_calls) + "\n";
  out += "batch calls:         " + std::to_string(batch_calls) + " (" +
         std::to_string(batch_tasks) + " tasks)\n";
  out += "enumerate calls:     " + std::to_string(enumerate_calls) + "\n";
  out += "sharded enumerates:  " + std::to_string(sharded_enumerate_calls) +
         " (" + std::to_string(shard_tasks) + " shard tasks, " +
         std::to_string(sharded_fallbacks) + " fallbacks)\n";
  out += "answer cache:        " + std::to_string(answer_cache_hits) +
         " hits, " + std::to_string(answer_cache_misses) + " misses, " +
         std::to_string(answer_cache_bypasses) + " bypasses\n";
  out += "answer cache size:   " + std::to_string(answer_cache_entries) +
         " entries, " + std::to_string(answer_cache_bytes) + " bytes (" +
         std::to_string(answer_cache_evictions) + " evictions, " +
         std::to_string(answer_cache_inflight_waits) +
         " in-flight waits)\n";
  out += "deadline exceeded:   " + std::to_string(deadline_exceeded) + "\n";
  out += "cancelled:           " + std::to_string(cancelled) + "\n";
  out += "homomorphism calls:  " + std::to_string(homomorphism_calls) + "\n";
  out += "semijoin passes:     " + std::to_string(semijoin_passes) + "\n";
  out += "csr probes:          " + std::to_string(csr_probes) + "\n";
  out += "gallop intersects:   " + std::to_string(gallop_intersections) + "\n";
  out += "arena bytes peak:    " + std::to_string(arena_bytes_peak) + "\n";
  out += "plan build time:     " + Millis(plan_build_ns) + "\n";
  out += "eval time:           " + Millis(eval_ns) + "\n";
  out += "enumerate time:      " + Millis(enumerate_ns) + "\n";
  return out;
}

std::string EngineStats::ToJson() const {
  std::string out = "{";
  bool first = true;
  auto field = [&](const char* name, uint64_t value) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
  };
  field("plan_cache_lookups", plan_cache_lookups);
  field("plans_built", plans_built);
  field("plan_cache_hits", plan_cache_hits);
  field("plan_cache_misses", plan_cache_misses);
  field("eval_calls", eval_calls);
  field("batch_calls", batch_calls);
  field("batch_tasks", batch_tasks);
  field("enumerate_calls", enumerate_calls);
  field("sharded_enumerate_calls", sharded_enumerate_calls);
  field("sharded_fallbacks", sharded_fallbacks);
  field("shard_tasks", shard_tasks);
  field("answer_cache_hits", answer_cache_hits);
  field("answer_cache_misses", answer_cache_misses);
  field("answer_cache_bypasses", answer_cache_bypasses);
  field("answer_cache_inflight_waits", answer_cache_inflight_waits);
  field("answer_cache_evictions", answer_cache_evictions);
  field("answer_cache_inserts", answer_cache_inserts);
  field("answer_cache_bytes", answer_cache_bytes);
  field("answer_cache_entries", answer_cache_entries);
  field("deadline_exceeded", deadline_exceeded);
  field("cancelled", cancelled);
  field("homomorphism_calls", homomorphism_calls);
  field("semijoin_passes", semijoin_passes);
  field("csr_probes", csr_probes);
  field("gallop_intersections", gallop_intersections);
  field("arena_bytes_peak", arena_bytes_peak);
  field("plan_build_ns", plan_build_ns);
  field("eval_ns", eval_ns);
  field("enumerate_ns", enumerate_ns);
  out += "}";
  return out;
}

}  // namespace wdpt
