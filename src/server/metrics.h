// Server observability: request counters, per-stage latency histograms,
// and the Prometheus text exposition behind the METRICS command.
//
// RequestMetrics is the serving-side sink for per-request Traces
// (src/common/trace.h): every finished QUERY folds its stage spans
// into two histogram families — keyed by request mode (eval / partial /
// max) and by the plan's tractability class (l-tractable / g-tractable
// / intractable) — so tail latency can be attributed to a pipeline
// stage and to query structure without per-request logging. Recording
// is wait-free (relaxed atomics, see LatencyHistogram); rendering walks
// snapshots and never blocks a request.

#ifndef WDPT_SRC_SERVER_METRICS_H_
#define WDPT_SRC_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/engine/stats.h"
#include "src/replication/stats.h"
#include "src/sparql/request.h"
#include "src/storage/stats.h"

namespace wdpt::server {

/// Monotonic counters exposed via the STATS command.
struct ServerCounters {
  uint64_t connections = 0;
  uint64_t requests = 0;         ///< Frames successfully parsed.
  uint64_t protocol_errors = 0;  ///< Frames rejected before dispatch.
  uint64_t queries = 0;
  uint64_t admitted = 0;
  uint64_t rejected_overload = 0;
  uint64_t reloads = 0;
  uint64_t ingests = 0;      ///< INGEST batches durably applied.
  uint64_t checkpoints = 0;  ///< CHECKPOINT compactions completed.
  uint64_t idle_timeouts = 0;  ///< Sessions closed by the idle timeout.
  /// Work requests that finished (response fully written) during a
  /// drain window — the graceful-shutdown acceptance signal.
  uint64_t drained_requests = 0;
  /// New work arrivals answered kOverloaded + retry hint while draining.
  uint64_t drain_rejections = 0;

  std::string ToJson() const;
};

/// Cardinality of sparql::RequestMode (eval / partial / max).
inline constexpr size_t kRequestModeCount = 3;
/// Cardinality of StatusCode (kOk .. kRedirect).
inline constexpr size_t kStatusCodeCount = 11;

/// Aggregates per-request traces into label-keyed latency histograms.
/// Thread-safe; recording is wait-free.
class RequestMetrics {
 public:
  /// Folds one finished QUERY's trace into the histograms. Records all
  /// stages — zero-length spans land in the first bucket — so every
  /// stage histogram's count equals the number of queries served, which
  /// is the invariant the METRICS acceptance check rides on. A request
  /// that ran sharded scatter-gather (trace.shard_fanout() > 0)
  /// additionally records its fan-out into the `wdpt_shard_fanout`
  /// histogram and each shard task's wall time into
  /// `wdpt_shard_eval_duration_seconds`; unsharded requests touch
  /// neither, so those families count sharded executions only. The
  /// request's total traced wall time is also recorded into the
  /// `wdpt_answer_cache_request_duration_seconds` family keyed by the
  /// trace's cache outcome, so hit latency can be compared against miss
  /// and bypass latency directly.
  void RecordQuery(const Trace& trace, sparql::RequestMode mode,
                   StatusCode code);

  /// Folds one finished INGEST's trace into the storage histograms:
  /// total wall time into `wdpt_storage_ingest_duration_seconds` and the
  /// publish span into `wdpt_storage_publish_duration_seconds`. Ingests
  /// never enter the query stage histograms — those keep the invariant
  /// that every stage count equals the number of queries served.
  void RecordIngest(const Trace& trace, StatusCode code);

  /// Counts a query shed at admission. Shed requests never enter the
  /// staged pipeline, so they are deliberately absent from the stage
  /// histograms.
  void RecordRejected();

  /// Queries folded in via RecordQuery so far.
  uint64_t queries_recorded() const {
    return queries_recorded_.load(std::memory_order_relaxed);
  }

  /// The full Prometheus text exposition: server + engine counters,
  /// in-flight / snapshot-version gauges, response-status counters, and
  /// both histogram families (cumulative `le` buckets in seconds).
  /// Series with zero observations are omitted to bound the payload.
  /// When `storage` is non-null (storage-backed servers) the
  /// wdpt_storage_* counter/gauge families and the ingest/publish
  /// latency histograms are appended. When `primary` / `replica` is
  /// non-null the corresponding side's wdpt_replication_* families are
  /// appended (a primary renders ship counters; a replica renders
  /// apply/lag/resync counters) — docs/METRICS.md lists every family.
  std::string RenderPrometheus(
      const ServerCounters& counters, const EngineStats& engine,
      uint64_t in_flight, uint64_t snapshot_version,
      const storage::StorageStats* storage = nullptr,
      const replication::PrimaryReplicationStats* primary = nullptr,
      const replication::ReplicaReplicationStats* replica = nullptr) const;

 private:
  /// Query pipeline stages only (kQueueWait..kSerialize); the storage
  /// stages appended to TraceStage never occur in a QUERY trace.
  metrics::LatencyHistogram stage_mode_[kQueryStageCount][kRequestModeCount];
  metrics::LatencyHistogram
      stage_class_[kQueryStageCount][kTractabilityClassCount];
  /// Shard-task count per sharded request (unitless values, not ns).
  metrics::LatencyHistogram shard_fanout_;
  /// Wall time of each individual shard task of sharded requests.
  metrics::LatencyHistogram shard_eval_;
  /// Total request wall time keyed by answer-cache outcome
  /// (bypass / hit / miss).
  metrics::LatencyHistogram cache_wall_[kCacheOutcomeCount];
  /// Total INGEST wall time (wal_append + apply + publish).
  metrics::LatencyHistogram ingest_wall_;
  /// Snapshot-publication span (MakeSnapshot + hot swap) of ingests.
  metrics::LatencyHistogram publish_wall_;
  std::atomic<uint64_t> responses_by_status_[kStatusCodeCount] = {};
  std::atomic<uint64_t> queries_recorded_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_METRICS_H_
