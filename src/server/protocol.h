// Wire protocol: frame payload encoding for requests and responses.
//
// Payloads are text, structured like a minimal HTTP message so they are
// debuggable with a hex dump:
//
//   request  := "WDPT/1 " command "\n" headers "\n" body
//   response := "WDPT/1 " status-code-name "\n" headers "\n" body
//   headers  := (key ": " value "\n")*
//
// Commands: QUERY (body = {AND, OPT} algebra text; headers mode,
// deadline-ms, max-results, candidate, cache-control), STATS, PING,
// RELOAD (body = triples text replacing the live snapshot), METRICS
// (Prometheus text exposition, one line per response row), INGEST
// (body = `add s p o` / `remove s p o` lines, one atomic durable
// batch; requires a storage-backed server), CHECKPOINT (compacts the
// WAL into a fresh snapshot file, no body). Response
// bodies carry `rows` answer lines; headers carry the row count,
// truncation flag, retry-after-ms (with status "overloaded"), a human
// message, a `cached` flag (the answer came from the server's answer
// cache), and a single-line per-request `stats` JSON object. Unknown
// headers are ignored on both sides, so fields can be added without a
// version bump.
//
// Replication (docs/REPLICATION.md) adds three commands. SUBSCRIBE
// (headers epoch, offset) asks a primary to stream committed WAL
// batches from a position; the ack carries the position granted plus
// head-seq, and the primary then *pushes* WALSEG frames — encoded as
// request frames since they travel server→client — whose headers
// (epoch, offset, next-offset, seq, head-seq) locate the batch and
// whose body is ingest text (`add s p o` lines). SNAPSHOT-FETCH
// returns the primary's latest binary snapshot file verbatim in the
// response `body` (raw bytes after the rows, length declared by the
// `body-bytes` header — binary-safe because the parser slices by
// count, never by newline). Responses may also carry `epoch` (the
// snapshot's WAL epoch) and `primary` (host:port, with status
// "redirect" from a replica shedding a write).
//
// See docs/SERVER.md for the full schema and examples.

#ifndef WDPT_SRC_SERVER_PROTOCOL_H_
#define WDPT_SRC_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sparql/request.h"

namespace wdpt::server {

enum class Command {
  kQuery,       ///< Evaluate a query against the live snapshot.
  kStats,       ///< Engine + server counters as JSON.
  kPing,        ///< Liveness / round-trip probe.
  kReload,      ///< Swap in a new snapshot parsed from the body.
  kMetrics,     ///< Prometheus text exposition (histograms included).
  kIngest,      ///< Durably apply a batch of add/remove triples.
  kCheckpoint,  ///< Compact the WAL into a fresh snapshot file.
  kSubscribe,     ///< Start streaming WAL batches from (epoch, offset).
  kWalSeg,        ///< One pushed WAL batch (primary→replica only).
  kSnapshotFetch, ///< Fetch the latest binary snapshot for bootstrap.
};

const char* CommandName(Command command);

/// One client request frame, decoded.
struct Request {
  Command command = Command::kPing;
  /// Query text and options; used by kQuery only.
  sparql::QueryRequest query;
  /// Raw body for kReload (triples text) / kIngest / kWalSeg (ingest
  /// text: the batch's ops).
  std::string body;
  /// Replication position fields (kSubscribe, kWalSeg). The epoch is
  /// the primary's snapshot sequence; offset/next_offset are byte
  /// offsets into that epoch's WAL. seq numbers the batch within the
  /// epoch and head_seq is the primary's newest batch at send time —
  /// the pair is what a replica derives its lag from. A WALSEG with an
  /// empty body is a heartbeat: same position, fresh head_seq.
  uint64_t epoch = 0;
  uint64_t offset = 0;
  uint64_t next_offset = 0;
  uint64_t seq = 0;
  uint64_t head_seq = 0;
};

/// One server response frame, decoded.
struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Rendered answer mappings (one per line on the wire); a membership
  /// check returns the single row "true" or "false".
  std::vector<std::string> rows;
  /// True when `rows` was capped by max-results.
  bool truncated = false;
  /// True when the answer was served from the server's answer cache
  /// (wire header `cached: 1`; cached answers are bit-identical to a
  /// fresh evaluation against the same snapshot).
  bool cached = false;
  /// Suggested client backoff; set with kOverloaded.
  uint64_t retry_after_ms = 0;
  /// Single-line JSON: per-request stats for QUERY, aggregate engine +
  /// server counters for STATS.
  std::string stats_json;
  /// Raw binary payload (SNAPSHOT-FETCH: the snapshot file bytes).
  /// Serialized after the rows with its length in the `body-bytes`
  /// header, so arbitrary bytes — newlines and NULs included — survive
  /// the text framing.
  std::string body;
  /// WAL epoch of the shipped state (SUBSCRIBE ack, SNAPSHOT-FETCH).
  uint64_t epoch = 0;
  /// Newest batch seq at the primary (SUBSCRIBE ack).
  uint64_t head_seq = 0;
  /// The primary's host:port; sent with status "redirect" when a
  /// replica sheds a write.
  std::string primary;

  bool ok() const { return code == StatusCode::kOk; }
};

std::string SerializeRequest(const Request& request);
Result<Request> ParseRequest(std::string_view payload);

std::string SerializeResponse(const Response& response);
Result<Response> ParseResponse(std::string_view payload);

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_PROTOCOL_H_
