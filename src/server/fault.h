// Deterministic fault injection for the transport and storage layers.
//
// An installed Injector sits between the frame/WAL code and the kernel:
// every socket connect/send/recv and every WAL write/fsync asks it for
// a Decision first, and the injector — driven by one seeded PRNG plus
// deterministic every-Nth counters — answers with "delay this op",
// "cap it to a few bytes" (a short read/write the caller must survive),
// "tear the connection here" (a mid-frame reset: a byte or two goes out
// and then the fd is shut down), or "fail it outright" (the WAL hook
// writes a torn half-entry first, so recovery has a tail to truncate).
//
// Installation is process-global (Install/Uninstall) because both ends
// of a loopback connection — the server's accepted fds and the client's
// — live in one process in tests and in `wdpt_loadgen --chaos`; when
// nothing is installed the hook is a single relaxed atomic load. The
// same seed replays the same fault schedule, which is what lets the
// chaos gate demand *zero* mismatches rather than "few".
//
// See docs/RESILIENCE.md for the knobs and how the chaos run uses them.

#ifndef WDPT_SRC_SERVER_FAULT_H_
#define WDPT_SRC_SERVER_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <random>

namespace wdpt::server::fault {

/// The operations the injector can interpose on.
enum class Op : uint8_t {
  kConnect = 0,  ///< ConnectTcp, before the connect(2).
  kSend,         ///< One sendmsg(2) iteration inside WriteFrame.
  kRecv,         ///< One recv(2) iteration inside RecvAll.
  kWalWrite,     ///< One WAL entry append (write + checksum framing).
  kWalSync,      ///< The fdatasync after a WAL append.
};
inline constexpr size_t kOpCount = 5;

/// Stable label for the `kind` metric label ("connect", "send", ...).
const char* OpName(Op op);

/// What to do to one operation. Default: nothing.
struct Decision {
  uint64_t delay_ms = 0;  ///< Sleep this long before the op.
  size_t cap_bytes = 0;   ///< >0: hand the kernel at most this many bytes.
  bool reset = false;     ///< Tear the connection (shutdown) mid-op.
  bool fail = false;      ///< Fail the op with an injected error.
};

/// Fault schedule knobs. Probabilities are per-operation and drawn from
/// the seeded PRNG; the `*_every` counters are deterministic (every Nth
/// matching op, 0 = off) and fire regardless of the probabilities, so a
/// test can demand "the 3rd response send is torn" exactly.
struct Options {
  uint64_t seed = 1;
  double delay_prob = 0;   ///< Chance a send/recv/connect is delayed.
  uint64_t delay_ms = 2;   ///< The injected delay.
  double short_prob = 0;   ///< Chance a send/recv is capped to 1 byte.
  double reset_prob = 0;   ///< Chance a send tears the connection.
  double connect_fail_prob = 0;  ///< Chance a connect fails outright.
  double wal_fail_prob = 0;      ///< Chance a WAL write is torn + failed.
  uint64_t reset_send_every = 0;  ///< Tear every Nth send (0 = off).
  uint64_t wal_fail_nth = 0;      ///< Fail exactly the Nth WAL write.
};

/// Injection counts, by kind. Rendered into METRICS as
/// `wdpt_fault_injections_total{kind=...}` while an injector is
/// installed, so a chaos run can prove faults actually fired.
struct Counters {
  uint64_t delays = 0;
  uint64_t short_ops = 0;
  uint64_t resets = 0;
  uint64_t connect_failures = 0;
  uint64_t wal_failures = 0;
};

class Injector {
 public:
  explicit Injector(const Options& options);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// The fault (if any) to apply to the next operation of kind `op`.
  /// Thread-safe; the PRNG draw order is serialized under a mutex so a
  /// fixed seed yields a fixed schedule of decisions.
  Decision Next(Op op);

  Counters counters() const;

 private:
  const Options options_;
  std::mutex mu_;
  std::mt19937_64 rng_;
  uint64_t sends_seen_ = 0;
  uint64_t wal_writes_seen_ = 0;
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> short_ops_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> connect_failures_{0};
  std::atomic<uint64_t> wal_failures_{0};
};

/// Installs a process-global injector (replacing any previous one).
/// Frame and WAL code consult it on every operation until Uninstall.
void Install(const Options& options);

/// Removes the global injector; subsequent operations run clean. Safe
/// to call when none is installed, and safe while faulted threads are
/// still running: replaced injectors are parked, not freed, so a hook
/// that loaded the pointer just before the exchange stays valid.
void Uninstall();

/// The installed injector, or nullptr. The returned pointer stays
/// valid for the rest of the process (see Uninstall), but decisions
/// drawn from it after replacement apply a stale schedule — re-fetch
/// per operation.
Injector* Get();

}  // namespace wdpt::server::fault

#endif  // WDPT_SRC_SERVER_FAULT_H_
