#include "src/server/snapshot.h"

#include "src/sparql/data_loader.h"

namespace wdpt::server {

Result<std::shared_ptr<const Snapshot>> LoadSnapshot(
    std::string_view triples, uint64_t version) {
  auto snapshot = std::make_shared<Snapshot>();
  Status loaded = sparql::LoadTriples(triples, &snapshot->ctx, &snapshot->db);
  if (!loaded.ok()) return loaded;
  snapshot->version = version;
  // Column indexes build lazily on first probe, which is a write;
  // warming here makes every later lookup a pure read, so concurrent
  // workers never synchronise on the database.
  snapshot->db.WarmColumnIndexes();
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

}  // namespace wdpt::server
