#include "src/server/snapshot.h"

#include "src/sparql/data_loader.h"

namespace wdpt::server {

Result<std::shared_ptr<const Snapshot>> LoadSnapshot(
    std::string_view triples, uint64_t version, size_t shards) {
  auto snapshot = std::make_shared<Snapshot>();
  Status loaded = sparql::LoadTriples(triples, &snapshot->ctx, &snapshot->db);
  if (!loaded.ok()) return loaded;
  snapshot->version = version;
  // Column indexes build lazily on first probe, which is a write;
  // freezing (warm + publish) makes every later lookup a pure read —
  // and turns any missed warm path into a hard failure instead of a
  // data race under concurrent workers.
  snapshot->db.Freeze();
  if (shards > 1) {
    // The ShardedDatabase constructor warms the full view and every
    // shard, so sharded requests never build an index under traffic.
    snapshot->sharded =
        std::make_unique<ShardedDatabase>(snapshot->db, shards);
  }
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const Snapshot>> MakeSnapshot(const RdfContext& ctx,
                                                     const Database& db,
                                                     uint64_t version,
                                                     size_t shards) {
  auto snapshot = std::make_shared<Snapshot>();
  // Copy-assigning the context keeps snapshot->ctx at a stable address,
  // so the cloned database can point at its schema.
  snapshot->ctx = ctx;
  snapshot->db = db.CloneWithSchema(&snapshot->ctx.schema());
  snapshot->version = version;
  snapshot->db.Freeze();
  if (shards > 1) {
    snapshot->sharded =
        std::make_unique<ShardedDatabase>(snapshot->db, shards);
  }
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

}  // namespace wdpt::server
