#include "src/server/fault.h"

#include <memory>
#include <vector>

namespace wdpt::server::fault {

namespace {

/// The installed injector; the steady-state hook is one relaxed load.
std::atomic<Injector*> g_injector{nullptr};

/// Replaced injectors are parked here, never freed mid-process: a
/// faulted thread (a session handler, a replicator stream) may have
/// loaded the pointer just before the exchange and still be inside
/// Next(). Freeing would need a read-side lock on the production hot
/// path; parking costs one small object per Install/Uninstall pair.
std::mutex g_retired_mu;
std::vector<std::unique_ptr<Injector>>& Retired() {
  static auto* retired = new std::vector<std::unique_ptr<Injector>>();
  return *retired;
}

void Retire(Injector* old) {
  if (old == nullptr) return;
  std::lock_guard<std::mutex> lock(g_retired_mu);
  Retired().emplace_back(old);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kConnect:
      return "connect";
    case Op::kSend:
      return "send";
    case Op::kRecv:
      return "recv";
    case Op::kWalWrite:
      return "wal_write";
    case Op::kWalSync:
      return "wal_sync";
  }
  return "unknown";
}

Injector::Injector(const Options& options)
    : options_(options), rng_(options.seed) {}

Decision Injector::Next(Op op) {
  Decision d;
  std::lock_guard<std::mutex> lock(mu_);
  auto chance = [this](double prob) {
    if (prob <= 0) return false;
    return std::uniform_real_distribution<double>(0, 1)(rng_) < prob;
  };
  switch (op) {
    case Op::kConnect:
      if (chance(options_.connect_fail_prob)) {
        d.fail = true;
        connect_failures_.fetch_add(1, std::memory_order_relaxed);
      } else if (chance(options_.delay_prob)) {
        d.delay_ms = options_.delay_ms;
        delays_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case Op::kSend: {
      ++sends_seen_;
      bool reset = options_.reset_send_every != 0 &&
                   sends_seen_ % options_.reset_send_every == 0;
      reset = reset || chance(options_.reset_prob);
      if (reset) {
        // A torn write: a byte or three leaves the socket, then the
        // connection dies. The peer must treat the fragment as garbage
        // (short frame), never as a parseable message.
        d.reset = true;
        d.cap_bytes = 1 + static_cast<size_t>(rng_() % 3);
        resets_.fetch_add(1, std::memory_order_relaxed);
      } else if (chance(options_.short_prob)) {
        d.cap_bytes = 1;
        short_ops_.fetch_add(1, std::memory_order_relaxed);
      } else if (chance(options_.delay_prob)) {
        d.delay_ms = options_.delay_ms;
        delays_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case Op::kRecv:
      if (chance(options_.short_prob)) {
        d.cap_bytes = 1;
        short_ops_.fetch_add(1, std::memory_order_relaxed);
      } else if (chance(options_.delay_prob)) {
        d.delay_ms = options_.delay_ms;
        delays_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case Op::kWalWrite:
      ++wal_writes_seen_;
      if ((options_.wal_fail_nth != 0 &&
           wal_writes_seen_ == options_.wal_fail_nth) ||
          chance(options_.wal_fail_prob)) {
        d.fail = true;
        wal_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case Op::kWalSync:
      if (chance(options_.wal_fail_prob)) {
        d.fail = true;
        wal_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
  }
  return d;
}

Counters Injector::counters() const {
  Counters c;
  c.delays = delays_.load(std::memory_order_relaxed);
  c.short_ops = short_ops_.load(std::memory_order_relaxed);
  c.resets = resets_.load(std::memory_order_relaxed);
  c.connect_failures = connect_failures_.load(std::memory_order_relaxed);
  c.wal_failures = wal_failures_.load(std::memory_order_relaxed);
  return c;
}

void Install(const Options& options) {
  Injector* fresh = new Injector(options);
  Retire(g_injector.exchange(fresh, std::memory_order_acq_rel));
}

void Uninstall() {
  Retire(g_injector.exchange(nullptr, std::memory_order_acq_rel));
}

Injector* Get() { return g_injector.load(std::memory_order_acquire); }

}  // namespace wdpt::server::fault
