// A concurrent WDPT query server.
//
// Layout: one accept thread, one lightweight session thread per
// connection (blocking frame reads), and a fixed worker pool
// (src/engine/thread_pool) that runs the actual evaluations. A session
// decodes a request, passes admission control, hands the evaluation to
// the pool, and writes the response frame back; requests on one
// connection are served in order, requests across connections run
// concurrently up to the worker count. Overload is shed at admission:
// when `admission_capacity` evaluations are already in flight the
// request is answered immediately with kOverloaded and a retry-after
// hint instead of queuing unboundedly.
//
// Every admitted request gets a CancelToken that chains the server's
// shutdown token with the request deadline (clamped by
// `max_deadline_ms`), created *before* the pool handoff so queue wait
// counts against the deadline. Datasets are immutable Snapshots
// published through a SnapshotHolder: RELOAD builds a new snapshot and
// swaps the pointer; running requests finish on the version they
// admitted with (see snapshot.h).

#ifndef WDPT_SRC_SERVER_SERVER_H_
#define WDPT_SRC_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/engine/engine.h"
#include "src/engine/thread_pool.h"
#include "src/server/admission.h"
#include "src/server/frame.h"
#include "src/server/protocol.h"
#include "src/server/snapshot.h"

namespace wdpt::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Worker threads evaluating queries; 0 = hardware concurrency.
  unsigned num_workers = 0;
  /// Maximum admitted (queued + executing) query requests.
  size_t admission_capacity = 64;
  /// Applied when a request carries no deadline; 0 = none.
  uint64_t default_deadline_ms = 0;
  /// Upper clamp on any request deadline; 0 = no clamp.
  uint64_t max_deadline_ms = 0;
  /// Backoff hint returned with kOverloaded responses.
  uint64_t retry_after_ms = 50;
  /// Per-frame payload cap, both directions.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Accept RELOAD requests (disable for read-only deployments).
  bool allow_reload = true;
  /// Engine construction knobs. The engine's internal batch pool is not
  /// used on the serving path, so it defaults to a single thread.
  EngineOptions engine{1, 128};
};

/// Monotonic counters exposed via the STATS command.
struct ServerCounters {
  uint64_t connections = 0;
  uint64_t requests = 0;         ///< Frames successfully parsed.
  uint64_t protocol_errors = 0;  ///< Frames rejected before dispatch.
  uint64_t queries = 0;
  uint64_t admitted = 0;
  uint64_t rejected_overload = 0;
  uint64_t reloads = 0;

  std::string ToJson() const;
};

class Server {
 public:
  explicit Server(const ServerOptions& options = ServerOptions());
  /// Stops the server if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, starts the accept loop, and begins serving `initial`.
  /// Fails if the port is taken or the server already started.
  Status Start(std::shared_ptr<const Snapshot> initial);

  /// Cancels in-flight work, closes every connection, joins all
  /// threads. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Publishes a new snapshot for future requests (versions are
  /// assigned at LoadSnapshot time). Safe under live traffic.
  void SwapSnapshot(std::shared_ptr<const Snapshot> snapshot);

  /// The snapshot new requests are currently admitted against.
  std::shared_ptr<const Snapshot> CurrentSnapshot() const {
    return snapshot_.Load();
  }

  ServerCounters counters() const;
  EngineStats engine_stats() const { return engine_.stats(); }

 private:
  void AcceptLoop();
  void SessionLoop(int fd);
  Response Dispatch(const Request& request);
  Response HandleQuery(const sparql::QueryRequest& query);
  Response HandleReload(const std::string& triples);
  Response HandleStats();

  ServerOptions options_;
  Engine engine_;
  ThreadPool pool_;
  AdmissionController admission_;
  SnapshotHolder snapshot_;
  /// Fires on Stop; every request token is a child of it.
  CancelToken stop_token_;

  std::atomic<uint64_t> next_version_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex sessions_mu_;
  std::vector<std::thread> session_threads_;
  std::vector<int> session_fds_;  ///< Open fds, for shutdown at Stop.

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> reloads_{0};
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_SERVER_H_
