// A concurrent WDPT query server.
//
// Layout: one accept thread, one lightweight session thread per
// connection (blocking frame reads), and a fixed worker pool
// (src/engine/thread_pool) that runs the actual evaluations. A session
// decodes a request, passes admission control, hands the evaluation to
// the pool, and writes the response frame back; requests on one
// connection are served in order, requests across connections run
// concurrently up to the worker count. Overload is shed at admission:
// when `admission_capacity` evaluations are already in flight the
// request is answered immediately with kOverloaded and a retry-after
// hint instead of queuing unboundedly.
//
// Every admitted request gets a CancelToken that chains the server's
// shutdown token with the request deadline (clamped by
// `max_deadline_ms`), created *before* the pool handoff so queue wait
// counts against the deadline. Datasets are immutable Snapshots
// published through a SnapshotHolder: RELOAD builds a new snapshot and
// swaps the pointer; running requests finish on the version they
// admitted with (see snapshot.h).
//
// Replication (docs/REPLICATION.md): a storage-backed server is a
// *primary* — a SUBSCRIBE request flips its session thread into a push
// stream of WALSEG frames fed by the storage manager's hub, and
// SNAPSHOT-FETCH hands out the current snapshot file for bootstrap. A
// server started with StartReplica is a *replica*: a Replicator tails
// the primary and hot-swaps snapshots through the same SwapSnapshot
// path a RELOAD uses, reads are served normally (shed with kOverloaded
// once replication lag exceeds the configured bound), and writes are
// answered kRedirect naming the primary.

#ifndef WDPT_SRC_SERVER_SERVER_H_
#define WDPT_SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/engine/engine.h"
#include "src/engine/thread_pool.h"
#include "src/replication/hub.h"
#include "src/replication/replicator.h"
#include "src/server/admission.h"
#include "src/server/frame.h"
#include "src/server/metrics.h"
#include "src/server/protocol.h"
#include "src/server/snapshot.h"
#include "src/storage/storage_manager.h"

namespace wdpt::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Worker threads evaluating queries; 0 = hardware concurrency.
  unsigned num_workers = 0;
  /// Maximum admitted (queued + executing) query requests.
  size_t admission_capacity = 64;
  /// Applied when a request carries no deadline; 0 = none.
  uint64_t default_deadline_ms = 0;
  /// Upper clamp on any request deadline; 0 = no clamp.
  uint64_t max_deadline_ms = 0;
  /// Backoff hint returned with kOverloaded responses.
  uint64_t retry_after_ms = 50;
  /// Per-frame payload cap, both directions.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Accept RELOAD requests (disable for read-only deployments).
  bool allow_reload = true;
  /// Close a session whose connection sits idle (no frame bytes) this
  /// long, after answering once with kDeadlineExceeded; 0 = never.
  uint64_t idle_timeout_ms = 0;
  /// Queries whose total traced time exceeds this are reported to
  /// `slow_query_log` with their stage breakdown; 0 disables the log.
  uint64_t slow_query_ms = 0;
  /// Stop() drains gracefully for up to this long before the hard cut
  /// (wdpt_server --drain-ms): accepted work finishes, new work is
  /// answered with kOverloaded + a retry hint. 0 = immediate hard stop,
  /// tearing in-flight requests (the pre-drain behavior). Drain() takes
  /// an explicit deadline regardless of this default.
  uint64_t drain_ms = 0;
  /// Sink for slow-query lines; stderr when unset and slow_query_ms > 0.
  std::function<void(const std::string&)> slow_query_log;
  /// Shard count for every snapshot this server loads via RELOAD
  /// (start-up snapshots are the caller's: build them with the same
  /// count). With shards > 1, enumeration requests scatter across the
  /// engine pool (docs/ENGINE.md, "Sharded evaluation"); 0 and 1 both
  /// mean unsharded.
  size_t shards = 1;
  /// Byte budget for the engine's answer cache (wdpt_server
  /// --cache-bytes); 0 disables caching. Entries are keyed by snapshot
  /// version, so RELOAD invalidates by construction.
  size_t answer_cache_bytes = 0;
  /// Engine construction knobs. The engine's internal batch pool is not
  /// used on the single-shard serving path, so it defaults to one
  /// thread; when `shards` > 1 and this is left at the one-thread
  /// default, the server widens it to hardware concurrency so shard
  /// tasks actually run in parallel. `answer_cache_bytes` above
  /// overrides the engine field of the same name.
  EngineOptions engine{1, 128};
};

class Server {
 public:
  explicit Server(const ServerOptions& options = ServerOptions());
  /// Stops the server if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, starts the accept loop, and begins serving `initial`.
  /// Fails if the port is taken or the server already started.
  Status Start(std::shared_ptr<const Snapshot> initial);

  /// Starts a storage-backed server: serves `storage`'s recovered
  /// snapshot, accepts INGEST/CHECKPOINT (writes go through the WAL and
  /// the manager's hot-swap publication), and rejects RELOAD — a
  /// client-supplied snapshot would bypass durability. The server owns
  /// the manager.
  Status StartWithStorage(std::unique_ptr<storage::StorageManager> storage);

  /// The attached manager (null unless StartWithStorage was used).
  storage::StorageManager* storage() const { return storage_.get(); }

  /// Starts a read-only replica of the primary named in `replica`:
  /// bootstraps (snapshot fetch if needed), serves the bootstrapped
  /// state, and streams WAL batches from then on, hot-swapping a fresh
  /// snapshot per applied batch. QUERY/PING/STATS/METRICS are served
  /// (queries shed with kOverloaded past replica.max_lag_batches);
  /// INGEST/CHECKPOINT/RELOAD answer kRedirect with a `primary` header.
  /// Fails when the bootstrap cannot complete within the replica retry
  /// policy's attempt budget.
  Status StartReplica(const replication::ReplicatorOptions& replica);

  /// The attached replicator (null unless StartReplica was used).
  replication::Replicator* replicator() const { return replicator_.get(); }

  /// Stops the server. With options.drain_ms == 0 this is the immediate
  /// hard cut: in-flight work is cancelled and every connection closed.
  /// With options.drain_ms != 0 it is Drain(options.drain_ms).
  /// Idempotent.
  void Stop();

  /// Graceful drain, then stop: stops accepting connections, answers
  /// new work on existing sessions with kOverloaded + the retry-after
  /// hint ("shutting down"), lets every request already past parsing
  /// finish — response write included, so nothing is torn — for up to
  /// `deadline_ms`, then hard-cuts whatever remains. Requests completed
  /// during the drain window are counted in counters().drained_requests
  /// and the drain summary goes to the slow-query sink. Idempotent with
  /// Stop.
  void Drain(uint64_t deadline_ms);

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Publishes a new snapshot for future requests (versions are
  /// assigned at LoadSnapshot time). Safe under live traffic.
  void SwapSnapshot(std::shared_ptr<const Snapshot> snapshot);

  /// The snapshot new requests are currently admitted against. With
  /// storage attached this delegates to the manager, whose writer mutex
  /// orders publications so versions never run backwards.
  std::shared_ptr<const Snapshot> CurrentSnapshot() const {
    return storage_ != nullptr ? storage_->CurrentSnapshot()
                               : snapshot_.Load();
  }

  ServerCounters counters() const;
  EngineStats engine_stats() const { return engine_.stats(); }

  /// Reads shed because this replica exceeded its configured
  /// max-replica-lag bound (always 0 off-replica).
  uint64_t lag_sheds() const {
    return lag_sheds_.load(std::memory_order_relaxed);
  }

  /// The Prometheus text exposition the METRICS command returns; also
  /// reachable without a connection (--metrics-dump, tests).
  std::string MetricsText() const;

 private:
  void AcceptLoop();
  void SessionLoop(int fd);
  /// The immediate teardown Drain ends with and Stop uses directly when
  /// no drain window is configured.
  void StopHard();
  /// Stops accepting: shuts the listener down and joins the accept
  /// thread. Safe to call more than once.
  void StopAccepting();
  /// Marks one request active (parse succeeded, response not yet fully
  /// written). Drain waits for the active count to reach zero.
  void BeginRequest();
  /// Ends the active window opened by BeginRequest. `was_work` is true
  /// for dispatched requests (as opposed to drain rejections) so the
  /// drained-request counter only counts real work that completed
  /// while draining.
  void EndRequest(bool was_work);
  /// True for commands that start new work (QUERY/RELOAD/INGEST/
  /// CHECKPOINT) and are therefore shed while draining; PING/STATS/
  /// METRICS stay served so operators can watch the drain.
  static bool IsWorkCommand(Command command);
  Response Dispatch(const Request& request);
  Response HandleQuery(const sparql::QueryRequest& query);
  Response HandleReload(const std::string& triples);
  Response HandleIngest(const std::string& body);
  Response HandleCheckpoint();
  Response HandleStats();
  Response HandleMetrics();
  Response HandleSnapshotFetch();

  /// Validates a SUBSCRIBE and seeks its hub cursor. Returns true when
  /// the ack is kOk and the session should flip into streaming; false
  /// means `*ack` is a terminal answer (kNotFound for a compacted
  /// position, kInvalidArgument off a primary) and the session
  /// continues as a normal request loop — the replica's follow-up
  /// SNAPSHOT-FETCH arrives on the same connection.
  bool PrepareSubscription(const Request& request, Response* ack,
                           replication::Hub::Cursor* cursor);
  /// The WALSEG push loop of an accepted subscription: ships batches as
  /// the hub publishes them and heartbeats while idle, until the
  /// connection drops, the epoch advances (replica re-bootstraps), or
  /// the server stops.
  void StreamWalSegments(int fd, replication::Hub::Cursor cursor);
  /// The replicator's counters plus this server's redirect/shed counts.
  replication::ReplicaReplicationStats ReplicaStats() const;

  /// Emits the trace breakdown to the slow-query sink when the request's
  /// total traced time crossed options_.slow_query_ms. Covers ingests
  /// too (mode=ingest, wal_append/apply/publish stages in the line).
  void MaybeLogSlowQuery(const Trace& trace, StatusCode code);

  ServerOptions options_;
  Engine engine_;
  ThreadPool pool_;
  AdmissionController admission_;
  SnapshotHolder snapshot_;
  /// Durable storage behind INGEST/CHECKPOINT; null for text-loaded
  /// servers (which keep RELOAD instead).
  std::unique_ptr<storage::StorageManager> storage_;
  /// WAL-stream tail for replica mode (StartReplica); null otherwise.
  /// Mutually exclusive with storage_.
  std::unique_ptr<replication::Replicator> replicator_;
  /// Fires on Stop; every request token is a child of it.
  CancelToken stop_token_;

  std::atomic<uint64_t> next_version_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  /// Set by Drain before it waits: sessions shed new work from here on.
  std::atomic<bool> draining_{false};
  std::mutex active_mu_;
  std::condition_variable active_cv_;
  /// Requests between BeginRequest and EndRequest (guarded by
  /// active_mu_); Drain waits for zero.
  uint64_t active_requests_ = 0;
  /// Guards the one-shot listener shutdown + accept-thread join shared
  /// by Drain and StopHard.
  std::atomic<bool> accept_stopped_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex sessions_mu_;
  std::vector<std::thread> session_threads_;
  std::vector<int> session_fds_;  ///< Open fds, for shutdown at Stop.

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> ingests_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> drained_requests_{0};
  std::atomic<uint64_t> drain_rejections_{0};
  /// Replica-mode serving counters (kRedirect writes, lag-shed reads).
  std::atomic<uint64_t> redirects_{0};
  std::atomic<uint64_t> lag_sheds_{0};
  std::atomic<uint64_t> next_request_id_{1};
  RequestMetrics metrics_;
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_SERVER_H_
