// Client library for the WDPT query server.
//
// A Client owns one connection and issues framed request/response
// round-trips. A Result error means the *transport* failed (cannot
// connect, connection dropped, unparseable frame); an application-level
// failure (parse error, deadline, overload, ...) arrives as a normal
// Response whose `code` is not kOk — callers inspect `response.code`
// the same way they would inspect a local Status. The client is not
// thread-safe; use one Client per thread (connections are cheap).

#ifndef WDPT_SRC_SERVER_CLIENT_H_
#define WDPT_SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/server/frame.h"
#include "src/server/protocol.h"
#include "src/sparql/request.h"

namespace wdpt::server {

/// Builder for one QUERY round-trip. Fields mirror the protocol's QUERY
/// headers one-to-one (mode, deadline-ms, max-results, candidate,
/// cache-control; see docs/SERVER.md), so a call site reads like the
/// frame it produces:
///
///   client.Query(QueryCall("(?x p ?y)")
///                    .Mode(sparql::RequestMode::kMax)
///                    .DeadlineMs(500)
///                    .MaxResults(10)
///                    .CacheBypass());
struct QueryCall {
  std::string text;
  sparql::RequestMode mode = sparql::RequestMode::kEval;
  uint64_t deadline_ms = 0;
  uint64_t max_results = 0;
  std::string candidate;
  bool cache_bypass = false;

  explicit QueryCall(std::string query_text = "")
      : text(std::move(query_text)) {}

  QueryCall& Mode(sparql::RequestMode m) {
    mode = m;
    return *this;
  }
  QueryCall& DeadlineMs(uint64_t ms) {
    deadline_ms = ms;
    return *this;
  }
  QueryCall& MaxResults(uint64_t n) {
    max_results = n;
    return *this;
  }
  /// Membership candidate "?x=a ?y=b"; turns the call into a check.
  QueryCall& Candidate(std::string bindings) {
    candidate = std::move(bindings);
    return *this;
  }
  /// Sends `cache-control: bypass`: the server computes fresh and does
  /// not insert into its answer cache.
  QueryCall& CacheBypass(bool bypass = true) {
    cache_bypass = bypass;
    return *this;
  }

  /// The transport-layer request this call serializes to.
  sparql::QueryRequest ToRequest() const;
};

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a server at host:port (numeric IPv4).
  Status Connect(const std::string& host, uint16_t port,
                 uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One framed round-trip. Requests on a connection are answered in
  /// order.
  Result<Response> Call(const Request& request);

  /// Convenience wrappers over Call.
  Result<Response> Query(const QueryCall& call);
  Result<Response> Ping();
  Result<Response> Stats();
  /// Prometheus text exposition; one exposition line per response row.
  Result<Response> Metrics();
  /// Replaces the server's live snapshot with one parsed from `triples`.
  Result<Response> Reload(std::string triples);
  /// Durably applies one batch of mutations (storage-backed servers
  /// only). `ops` is the INGEST body: `add <s> <p> <o>` / `remove <s>
  /// <p> <o>` lines. The batch is on the server's WAL — and visible to
  /// queries — when the response code is kOk.
  Result<Response> Ingest(std::string ops);
  /// Compacts the server's WAL into a fresh binary snapshot file.
  Result<Response> Checkpoint();

 private:
  int fd_ = -1;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_CLIENT_H_
