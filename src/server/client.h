// Client library for the WDPT query server.
//
// A Client owns one connection and issues framed request/response
// round-trips. A Result error means the *transport* failed (cannot
// connect, connection dropped, unparseable frame); an application-level
// failure (parse error, deadline, overload, ...) arrives as a normal
// Response whose `code` is not kOk — callers inspect `response.code`
// the same way they would inspect a local Status. The client is not
// thread-safe; use one Client per thread (connections are cheap).
//
// Resilience: a RetryPolicy (set_retry_policy) bounds every wire
// operation (connect/send timeouts) and, for max_attempts > 1, retries
// *idempotent* commands — QUERY, PING, STATS, METRICS — across
// transport failures, kOverloaded shedding (honoring the server's
// retry-after-ms hint), and kCancelled shutdown responses, with
// bounded exponential backoff, seeded jitter, and automatic reconnect.
// INGEST, CHECKPOINT, and RELOAD are *never* retried implicitly: after
// an ambiguous transport failure the server may or may not have applied
// the mutation, and only the caller can decide whether re-sending is
// safe. See docs/RESILIENCE.md for the full policy.

#ifndef WDPT_SRC_SERVER_CLIENT_H_
#define WDPT_SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <random>
#include <string>

#include "src/common/status.h"
#include "src/server/frame.h"
#include "src/server/protocol.h"
#include "src/sparql/request.h"

namespace wdpt::server {

/// Builder for one QUERY round-trip. Fields mirror the protocol's QUERY
/// headers one-to-one (mode, deadline-ms, max-results, candidate,
/// cache-control; see docs/SERVER.md), so a call site reads like the
/// frame it produces:
///
///   client.Query(QueryCall("(?x p ?y)")
///                    .Mode(sparql::RequestMode::kMax)
///                    .DeadlineMs(500)
///                    .MaxResults(10)
///                    .CacheBypass());
struct QueryCall {
  std::string text;
  sparql::RequestMode mode = sparql::RequestMode::kEval;
  uint64_t deadline_ms = 0;
  uint64_t max_results = 0;
  std::string candidate;
  bool cache_bypass = false;

  explicit QueryCall(std::string query_text = "")
      : text(std::move(query_text)) {}

  QueryCall& Mode(sparql::RequestMode m) {
    mode = m;
    return *this;
  }
  QueryCall& DeadlineMs(uint64_t ms) {
    deadline_ms = ms;
    return *this;
  }
  QueryCall& MaxResults(uint64_t n) {
    max_results = n;
    return *this;
  }
  /// Membership candidate "?x=a ?y=b"; turns the call into a check.
  QueryCall& Candidate(std::string bindings) {
    candidate = std::move(bindings);
    return *this;
  }
  /// Sends `cache-control: bypass`: the server computes fresh and does
  /// not insert into its answer cache.
  QueryCall& CacheBypass(bool bypass = true) {
    cache_bypass = bypass;
    return *this;
  }

  /// The transport-layer request this call serializes to.
  sparql::QueryRequest ToRequest() const;
};

/// Wire-operation bounds and the idempotent-retry schedule. The default
/// policy bounds connect/send (a blackholed peer fails in seconds, not
/// kernel-retry minutes) but performs no retries (max_attempts = 1), so
/// existing single-shot callers behave as before, just with a bounded
/// wire.
struct RetryPolicy {
  /// Connect timeout (nonblocking connect + poll); 0 = blocking.
  uint64_t connect_timeout_ms = 5000;
  /// SO_SNDTIMEO on the connection; 0 = unbounded sends.
  uint64_t send_timeout_ms = 5000;
  /// SO_RCVTIMEO while waiting for a response; 0 = wait forever. A
  /// response slower than this counts as a transport failure (the
  /// connection is torn down), so keep it above the slowest expected
  /// query or leave it 0 and rely on server-side deadlines.
  uint64_t recv_timeout_ms = 0;
  /// Total attempts for an idempotent call (first try included);
  /// 1 = never retry.
  uint32_t max_attempts = 1;
  /// Backoff before attempt N+1: min(initial << (N-1), max), jittered
  /// to a uniform draw in [half, full] so a thundering herd spreads
  /// out. A server retry-after-ms hint raises the sleep to at least
  /// the hint.
  uint64_t backoff_initial_ms = 5;
  uint64_t backoff_max_ms = 500;
  /// Seed for the jitter PRNG: a fixed seed gives a reproducible
  /// backoff schedule (chaos runs derive it from --chaos-seed).
  uint64_t seed = 0;
};

/// The backoff schedule RetryPolicy describes, as a pure computation:
/// the sleep before attempt `attempt` + 1 (doubling from
/// backoff_initial_ms, capped at backoff_max_ms, jittered to a uniform
/// draw from `*rng` in [half, full], raised to at least `hint_ms`).
/// Shared by the client's idempotent-retry loop and the replication
/// catch-up loop (src/replication/replicator.cpp), so both back off on
/// the same curve.
uint64_t BackoffDelayMs(const RetryPolicy& policy, uint32_t attempt,
                        uint64_t hint_ms, std::mt19937_64* rng);

/// Cumulative resilience counters for one Client (monotonic; read via
/// Client::retry_stats). `retries` is the chaos gate's
/// `wdpt_client_retries_total`.
struct ClientRetryStats {
  uint64_t attempts = 0;    ///< Wire attempts, first tries included.
  uint64_t retries = 0;     ///< Attempts after the first, per call.
  uint64_t reconnects = 0;  ///< Successful automatic reconnections.
  uint64_t overloaded_backoffs = 0;  ///< Sleeps honoring a server hint.
  uint64_t backoff_ms = 0;  ///< Total time spent backing off.
};

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a server at host:port (numeric IPv4), applying the
  /// retry policy's connect/send/recv timeouts (not its retry loop:
  /// Connect itself is one attempt; the per-call retry loop reconnects
  /// as needed once the target is known). The target is remembered even
  /// when this first attempt fails, so a retrying call can connect
  /// later — e.g. to a server still restarting.
  Status Connect(const std::string& host, uint16_t port,
                 uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Installs the resilience policy; takes effect on the next connect
  /// or retried call. See RetryPolicy.
  void set_retry_policy(const RetryPolicy& policy) {
    policy_ = policy;
    jitter_rng_.seed(policy.seed);
  }
  const RetryPolicy& retry_policy() const { return policy_; }

  /// Cumulative retry/reconnect counters for this client.
  ClientRetryStats retry_stats() const { return retry_stats_; }

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One framed round-trip, exactly one attempt, no retry — the
  /// building block for the non-idempotent commands. Requests on a
  /// connection are answered in order.
  Result<Response> Call(const Request& request);

  /// Convenience wrappers over Call. Query/Ping/Stats/Metrics are
  /// idempotent and retried per the policy; Reload/Ingest/Checkpoint
  /// are sent at most once.
  Result<Response> Query(const QueryCall& call);
  Result<Response> Ping();
  Result<Response> Stats();
  /// Prometheus text exposition; one exposition line per response row.
  Result<Response> Metrics();
  /// Replaces the server's live snapshot with one parsed from `triples`.
  /// Never retried implicitly.
  Result<Response> Reload(std::string triples);
  /// Durably applies one batch of mutations (storage-backed servers
  /// only). `ops` is the INGEST body: `add <s> <p> <o>` / `remove <s>
  /// <p> <o>` lines. The batch is on the server's WAL — and visible to
  /// queries — when the response code is kOk. Never retried implicitly:
  /// after an ambiguous failure the caller must decide whether the
  /// batch may already be applied.
  Result<Response> Ingest(std::string ops);
  /// Compacts the server's WAL into a fresh binary snapshot file.
  /// Never retried implicitly.
  Result<Response> Checkpoint();

 private:
  /// Retry loop for idempotent commands; single attempt when
  /// max_attempts <= 1.
  Result<Response> CallIdempotent(const Request& request);
  /// (Re)establishes the connection to the remembered target.
  Status Reconnect();
  /// Sleeps the jittered backoff for attempt (1-based), raised to at
  /// least `hint_ms`; accumulates retry_stats_.backoff_ms.
  void Backoff(uint32_t attempt, uint64_t hint_ms);

  int fd_ = -1;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  RetryPolicy policy_;
  std::string host_;
  uint16_t port_ = 0;
  bool target_known_ = false;
  std::mt19937_64 jitter_rng_{0};
  ClientRetryStats retry_stats_;
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_CLIENT_H_
