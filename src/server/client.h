// Client library for the WDPT query server.
//
// A Client owns one connection and issues framed request/response
// round-trips. A Result error means the *transport* failed (cannot
// connect, connection dropped, unparseable frame); an application-level
// failure (parse error, deadline, overload, ...) arrives as a normal
// Response whose `code` is not kOk — callers inspect `response.code`
// the same way they would inspect a local Status. The client is not
// thread-safe; use one Client per thread (connections are cheap).

#ifndef WDPT_SRC_SERVER_CLIENT_H_
#define WDPT_SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/server/frame.h"
#include "src/server/protocol.h"
#include "src/sparql/request.h"

namespace wdpt::server {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a server at host:port (numeric IPv4).
  Status Connect(const std::string& host, uint16_t port,
                 uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One framed round-trip. Requests on a connection are answered in
  /// order.
  Result<Response> Call(const Request& request);

  /// Convenience wrappers over Call.
  Result<Response> Query(const sparql::QueryRequest& query);
  Result<Response> Ping();
  Result<Response> Stats();
  /// Prometheus text exposition; one exposition line per response row.
  Result<Response> Metrics();
  /// Replaces the server's live snapshot with one parsed from `triples`.
  Result<Response> Reload(std::string triples);

 private:
  int fd_ = -1;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_CLIENT_H_
