// Bounded admission with immediate rejection under overload.
//
// The server admits at most `capacity` query requests in flight
// (queued for a worker or executing). TryAdmit never blocks: when the
// budget is spent the request is rejected on the session thread with
// kOverloaded and a retry-after hint, so a traffic spike degrades into
// fast, explicit rejections instead of an unbounded queue whose tail
// latency grows without limit.

#ifndef WDPT_SRC_SERVER_ADMISSION_H_
#define WDPT_SRC_SERVER_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace wdpt::server {

class AdmissionController {
 public:
  explicit AdmissionController(size_t capacity) : capacity_(capacity) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Claims an in-flight slot; false (without blocking) when all
  /// `capacity` slots are taken.
  bool TryAdmit() {
    size_t current = in_flight_.load(std::memory_order_relaxed);
    while (current < capacity_) {
      if (in_flight_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_acq_rel)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Returns the slot claimed by a successful TryAdmit.
  void Release() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

  size_t capacity() const { return capacity_; }
  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_ADMISSION_H_
