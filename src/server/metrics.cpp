#include "src/server/metrics.h"

#include <cstdio>

#include "src/server/fault.h"

namespace wdpt::server {

namespace {

// Prometheus numbers: seconds with enough digits that distinct
// nanosecond bucket bounds stay distinct.
std::string Seconds(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", ns / 1e9);
  return std::string(buf);
}

void AppendType(std::string* out, const char* family, const char* kind) {
  *out += "# TYPE ";
  *out += family;
  *out += ' ';
  *out += kind;
  *out += '\n';
}

void AppendCounter(std::string* out, const char* family, uint64_t value) {
  AppendType(out, family, "counter");
  *out += family;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

void AppendGauge(std::string* out, const char* family, uint64_t value) {
  AppendType(out, family, "gauge");
  *out += family;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

// Histogram recorded values are nanoseconds by default; kUnitless keeps
// bucket bounds and sums as raw integers (e.g. the shard fan-out).
enum class HistogramUnit { kSeconds, kUnitless };

// One histogram series in exposition order: cumulative non-empty
// buckets, the +Inf bucket, then _sum and _count. `labels` may be
// empty (an unlabelled family).
void AppendHistogramSeries(std::string* out, const char* family,
                           const std::string& labels,
                           const metrics::HistogramSnapshot& snap,
                           HistogramUnit unit = HistogramUnit::kSeconds) {
  auto value = [unit](double v) {
    if (unit == HistogramUnit::kSeconds) return Seconds(v);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  auto open_labels = [&labels](std::string* o, const char* trailing) {
    *o += '{';
    if (!labels.empty()) {
      *o += labels;
      if (*trailing != '\0') *o += ',';
    }
    *o += trailing;
  };
  uint64_t cumulative = 0;
  for (size_t i = 0; i + 1 < metrics::kHistogramBuckets; ++i) {
    if (snap.counts[i] == 0) continue;
    cumulative += snap.counts[i];
    *out += family;
    *out += "_bucket";
    open_labels(out, "le=\"");
    *out += value(static_cast<double>(
        metrics::LatencyHistogram::BucketUpperBound(i)));
    *out += "\"} ";
    *out += std::to_string(cumulative);
    *out += '\n';
  }
  *out += family;
  *out += "_bucket";
  open_labels(out, "le=\"+Inf\"} ");
  *out += std::to_string(snap.count);
  *out += '\n';
  *out += family;
  *out += "_sum";
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += value(static_cast<double>(snap.sum));
  *out += '\n';
  *out += family;
  *out += "_count";
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += std::to_string(snap.count);
  *out += '\n';
}

}  // namespace

std::string ServerCounters::ToJson() const {
  std::string json = "{";
  bool first = true;
  auto field = [&](const char* name, uint64_t value) {
    if (!first) json += ",";
    first = false;
    json += "\"";
    json += name;
    json += "\":";
    json += std::to_string(value);
  };
  field("connections", connections);
  field("requests", requests);
  field("protocol_errors", protocol_errors);
  field("queries", queries);
  field("admitted", admitted);
  field("rejected_overload", rejected_overload);
  field("reloads", reloads);
  field("ingests", ingests);
  field("checkpoints", checkpoints);
  field("idle_timeouts", idle_timeouts);
  field("drained_requests", drained_requests);
  field("drain_rejections", drain_rejections);
  json += "}";
  return json;
}

void RequestMetrics::RecordQuery(const Trace& trace, sparql::RequestMode mode,
                                 StatusCode code) {
  size_t m = static_cast<size_t>(mode);
  size_t c = static_cast<size_t>(trace.classification());
  for (size_t s = 0; s < kQueryStageCount; ++s) {
    uint64_t ns = trace.span_ns(static_cast<TraceStage>(s));
    if (m < kRequestModeCount) stage_mode_[s][m].Record(ns);
    if (c < kTractabilityClassCount) stage_class_[s][c].Record(ns);
  }
  if (trace.shard_fanout() > 0) {
    shard_fanout_.Record(trace.shard_fanout());
    for (uint64_t ns : trace.shard_spans_ns()) shard_eval_.Record(ns);
  }
  size_t outcome = static_cast<size_t>(trace.cache_outcome());
  if (outcome < kCacheOutcomeCount) cache_wall_[outcome].Record(trace.TotalNs());
  size_t status = static_cast<size_t>(code);
  if (status < kStatusCodeCount) {
    responses_by_status_[status].fetch_add(1, std::memory_order_relaxed);
  }
  queries_recorded_.fetch_add(1, std::memory_order_relaxed);
}

void RequestMetrics::RecordIngest(const Trace& trace, StatusCode code) {
  ingest_wall_.Record(trace.TotalNs());
  publish_wall_.Record(trace.span_ns(TraceStage::kPublish));
  size_t status = static_cast<size_t>(code);
  if (status < kStatusCodeCount) {
    responses_by_status_[status].fetch_add(1, std::memory_order_relaxed);
  }
}

void RequestMetrics::RecordRejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

std::string RequestMetrics::RenderPrometheus(
    const ServerCounters& counters, const EngineStats& engine,
    uint64_t in_flight, uint64_t snapshot_version,
    const storage::StorageStats* storage,
    const replication::PrimaryReplicationStats* primary,
    const replication::ReplicaReplicationStats* replica) const {
  std::string out;
  out.reserve(16 * 1024);

  AppendCounter(&out, "wdpt_server_connections_total", counters.connections);
  AppendCounter(&out, "wdpt_server_requests_total", counters.requests);
  AppendCounter(&out, "wdpt_server_protocol_errors_total",
                counters.protocol_errors);
  AppendCounter(&out, "wdpt_server_queries_total", counters.queries);
  AppendCounter(&out, "wdpt_server_admitted_total", counters.admitted);
  AppendCounter(&out, "wdpt_server_rejected_overload_total",
                counters.rejected_overload);
  AppendCounter(&out, "wdpt_server_reloads_total", counters.reloads);
  AppendCounter(&out, "wdpt_server_ingests_total", counters.ingests);
  AppendCounter(&out, "wdpt_server_checkpoints_total", counters.checkpoints);
  AppendCounter(&out, "wdpt_server_idle_timeouts_total",
                counters.idle_timeouts);
  // Exposed without a _total suffix: the acceptance gate greps for this
  // exact family name in the chaos run's final scrape.
  AppendGauge(&out, "wdpt_server_drained_requests",
              counters.drained_requests);
  AppendCounter(&out, "wdpt_server_drain_rejections_total",
                counters.drain_rejections);

  if (const fault::Injector* injector = fault::Get()) {
    fault::Counters faults = injector->counters();
    AppendType(&out, "wdpt_fault_injections_total", "counter");
    auto fault_series = [&out](const char* kind, uint64_t n) {
      out += "wdpt_fault_injections_total{kind=\"";
      out += kind;
      out += "\"} ";
      out += std::to_string(n);
      out += '\n';
    };
    fault_series("delay", faults.delays);
    fault_series("short_write", faults.short_ops);
    fault_series("reset", faults.resets);
    fault_series("connect_fail", faults.connect_failures);
    fault_series("wal", faults.wal_failures);
  }

  AppendCounter(&out, "wdpt_engine_plan_cache_lookups_total",
                engine.plan_cache_lookups);
  AppendCounter(&out, "wdpt_engine_plan_cache_hits_total",
                engine.plan_cache_hits);
  AppendCounter(&out, "wdpt_engine_plan_cache_misses_total",
                engine.plan_cache_misses);
  AppendCounter(&out, "wdpt_engine_plans_built_total", engine.plans_built);
  AppendCounter(&out, "wdpt_engine_eval_calls_total", engine.eval_calls);
  AppendCounter(&out, "wdpt_engine_enumerate_calls_total",
                engine.enumerate_calls);
  AppendCounter(&out, "wdpt_engine_sharded_enumerate_calls_total",
                engine.sharded_enumerate_calls);
  AppendCounter(&out, "wdpt_engine_sharded_fallbacks_total",
                engine.sharded_fallbacks);
  AppendCounter(&out, "wdpt_engine_shard_tasks_total", engine.shard_tasks);
  AppendCounter(&out, "wdpt_engine_deadline_exceeded_total",
                engine.deadline_exceeded);
  AppendCounter(&out, "wdpt_engine_cancelled_total", engine.cancelled);
  AppendCounter(&out, "wdpt_engine_homomorphism_calls_total",
                engine.homomorphism_calls);
  AppendCounter(&out, "wdpt_engine_semijoin_passes_total",
                engine.semijoin_passes);
  AppendCounter(&out, "wdpt_engine_csr_probes_total", engine.csr_probes);
  AppendCounter(&out, "wdpt_engine_gallop_intersections_total",
                engine.gallop_intersections);
  AppendGauge(&out, "wdpt_engine_arena_bytes_peak", engine.arena_bytes_peak);

  AppendCounter(&out, "wdpt_answer_cache_hits_total",
                engine.answer_cache_hits);
  AppendCounter(&out, "wdpt_answer_cache_misses_total",
                engine.answer_cache_misses);
  AppendCounter(&out, "wdpt_answer_cache_bypasses_total",
                engine.answer_cache_bypasses);
  AppendCounter(&out, "wdpt_answer_cache_inflight_waits_total",
                engine.answer_cache_inflight_waits);
  AppendCounter(&out, "wdpt_answer_cache_evictions_total",
                engine.answer_cache_evictions);
  AppendCounter(&out, "wdpt_answer_cache_inserts_total",
                engine.answer_cache_inserts);

  AppendGauge(&out, "wdpt_server_in_flight_requests", in_flight);
  AppendGauge(&out, "wdpt_server_snapshot_version", snapshot_version);
  AppendGauge(&out, "wdpt_answer_cache_bytes", engine.answer_cache_bytes);
  AppendGauge(&out, "wdpt_answer_cache_entries", engine.answer_cache_entries);

  AppendType(&out, "wdpt_server_responses_total", "counter");
  for (size_t i = 0; i < kStatusCodeCount; ++i) {
    uint64_t n = responses_by_status_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out += "wdpt_server_responses_total{status=\"";
    out += StatusCodeName(static_cast<StatusCode>(i));
    out += "\"} ";
    out += std::to_string(n);
    out += '\n';
  }

  AppendType(&out, "wdpt_stage_duration_seconds", "histogram");
  for (size_t s = 0; s < kQueryStageCount; ++s) {
    for (size_t m = 0; m < kRequestModeCount; ++m) {
      if (stage_mode_[s][m].count() == 0) continue;
      std::string labels = "stage=\"";
      labels += TraceStageName(static_cast<TraceStage>(s));
      labels += "\",mode=\"";
      labels += sparql::RequestModeName(static_cast<sparql::RequestMode>(m));
      labels += "\"";
      AppendHistogramSeries(&out, "wdpt_stage_duration_seconds", labels,
                            stage_mode_[s][m].Snapshot());
    }
  }

  AppendType(&out, "wdpt_shard_fanout", "histogram");
  if (shard_fanout_.count() != 0) {
    AppendHistogramSeries(&out, "wdpt_shard_fanout", "",
                          shard_fanout_.Snapshot(),
                          HistogramUnit::kUnitless);
  }
  AppendType(&out, "wdpt_shard_eval_duration_seconds", "histogram");
  if (shard_eval_.count() != 0) {
    AppendHistogramSeries(&out, "wdpt_shard_eval_duration_seconds", "",
                          shard_eval_.Snapshot());
  }

  AppendType(&out, "wdpt_answer_cache_request_duration_seconds", "histogram");
  for (size_t o = 0; o < kCacheOutcomeCount; ++o) {
    if (cache_wall_[o].count() == 0) continue;
    std::string labels = "cache=\"";
    labels += CacheOutcomeName(static_cast<CacheOutcome>(o));
    labels += "\"";
    AppendHistogramSeries(&out, "wdpt_answer_cache_request_duration_seconds",
                          labels, cache_wall_[o].Snapshot());
  }

  AppendType(&out, "wdpt_class_stage_duration_seconds", "histogram");
  for (size_t s = 0; s < kQueryStageCount; ++s) {
    for (size_t c = 0; c < kTractabilityClassCount; ++c) {
      if (stage_class_[s][c].count() == 0) continue;
      std::string labels = "stage=\"";
      labels += TraceStageName(static_cast<TraceStage>(s));
      labels += "\",class=\"";
      labels += TractabilityClassName(static_cast<TractabilityClass>(c));
      labels += "\"";
      AppendHistogramSeries(&out, "wdpt_class_stage_duration_seconds", labels,
                            stage_class_[s][c].Snapshot());
    }
  }

  if (storage != nullptr) {
    AppendCounter(&out, "wdpt_storage_wal_appends_total",
                  storage->wal_appends);
    AppendCounter(&out, "wdpt_storage_wal_bytes_total", storage->wal_bytes);
    AppendCounter(&out, "wdpt_storage_replays_total", storage->replays);
    AppendCounter(&out, "wdpt_storage_replayed_ops_total",
                  storage->replayed_ops);
    AppendCounter(&out, "wdpt_storage_truncated_bytes_total",
                  storage->truncated_bytes);
    AppendCounter(&out, "wdpt_storage_checkpoints_total",
                  storage->checkpoints);
    AppendCounter(&out, "wdpt_storage_publishes_total", storage->publishes);
    AppendGauge(&out, "wdpt_storage_wal_backlog_bytes",
                storage->wal_backlog_bytes);
    AppendGauge(&out, "wdpt_storage_snapshot_seq", storage->snapshot_seq);
    AppendType(&out, "wdpt_storage_ingest_duration_seconds", "histogram");
    if (ingest_wall_.count() != 0) {
      AppendHistogramSeries(&out, "wdpt_storage_ingest_duration_seconds", "",
                            ingest_wall_.Snapshot());
    }
    AppendType(&out, "wdpt_storage_publish_duration_seconds", "histogram");
    if (publish_wall_.count() != 0) {
      AppendHistogramSeries(&out, "wdpt_storage_publish_duration_seconds", "",
                            publish_wall_.Snapshot());
    }
  }

  if (primary != nullptr) {
    AppendGauge(&out, "wdpt_replication_subscribers", primary->subscribers);
    AppendCounter(&out, "wdpt_replication_batches_shipped_total",
                  primary->batches_shipped);
    AppendCounter(&out, "wdpt_replication_bytes_shipped_total",
                  primary->bytes_shipped);
    AppendCounter(&out, "wdpt_replication_snapshot_fetches_total",
                  primary->snapshot_fetches);
    AppendCounter(&out, "wdpt_replication_stale_subscribes_total",
                  primary->stale_subscribes);
    AppendGauge(&out, "wdpt_replication_head_seq", primary->head_seq);
  }

  if (replica != nullptr) {
    AppendGauge(&out, "wdpt_replication_lag_batches", replica->lag_batches);
    AppendCounter(&out, "wdpt_replication_batches_applied_total",
                  replica->batches_applied);
    AppendCounter(&out, "wdpt_replication_bytes_received_total",
                  replica->bytes_received);
    AppendCounter(&out, "wdpt_replication_resyncs_total", replica->resyncs);
    AppendCounter(&out, "wdpt_replication_snapshot_fetches_total",
                  replica->snapshot_fetches);
    AppendCounter(&out, "wdpt_replication_redirects_total",
                  replica->redirects);
    AppendCounter(&out, "wdpt_replication_lag_sheds_total",
                  replica->lag_sheds);
    AppendGauge(&out, "wdpt_replication_epoch", replica->epoch);
  }

  return out;
}

}  // namespace wdpt::server
