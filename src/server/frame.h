// Length-prefixed framing and minimal loopback socket plumbing.
//
// Every message on a server connection is one frame: a 4-byte
// big-endian payload length followed by that many payload bytes. The
// payload encoding lives one layer up (protocol.h); this file only
// moves bytes and never parses them. Frames larger than the configured
// cap are rejected without allocating, so a corrupt or hostile length
// word cannot balloon memory.

#ifndef WDPT_SRC_SERVER_FRAME_H_
#define WDPT_SRC_SERVER_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace wdpt::server {

/// Default cap on a single frame's payload (requests and responses).
inline constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Writes one frame (length prefix + payload) to `fd`, retrying short
/// writes. Prefix and payload go out in a single sendmsg(2) so a small
/// frame occupies one segment — two separate sends used to let Nagle /
/// delayed-ACK park the payload behind the 4-byte prefix for an RTT.
/// kInvalidArgument if the payload exceeds `max_bytes`, kInternal on
/// socket errors (peer gone mid-write included).
Status WriteFrame(int fd, std::string_view payload,
                  uint32_t max_bytes = kDefaultMaxFrameBytes);

/// Reads one frame's payload from `fd`. Returns kNotFound with message
/// "connection closed" on clean EOF at a frame boundary,
/// kResourceExhausted if the announced length exceeds `max_bytes`,
/// kDeadlineExceeded when a receive timeout set via SetRecvTimeout
/// expires while waiting for a frame to *start* (a clean idle peer),
/// and kInternal on socket errors, truncated frames, and timeouts that
/// fire mid-frame — after a timeout inside a frame the stream is
/// desynchronized and only a teardown is safe, so it is reported like
/// wire corruption, never like a polite idle deadline.
Result<std::string> ReadFrame(int fd,
                              uint32_t max_bytes = kDefaultMaxFrameBytes);

/// Arms SO_RCVTIMEO on `fd`: a recv that sits idle for `timeout_ms`
/// fails with EAGAIN, which ReadFrame surfaces as kDeadlineExceeded (at
/// a frame boundary) or kInternal (mid-frame).
/// 0 disables the timeout (blocking reads, the default).
Status SetRecvTimeout(int fd, uint64_t timeout_ms);

/// Arms SO_SNDTIMEO on `fd`: a send blocked for `timeout_ms` (peer
/// stalled, window full) fails, which WriteFrame surfaces as
/// kDeadlineExceeded. 0 disables the timeout.
Status SetSendTimeout(int fd, uint64_t timeout_ms);

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = ephemeral) and
/// returns its fd. `*bound_port` receives the actual port.
Result<int> ListenLoopback(uint16_t port, uint16_t* bound_port);

/// Accepts one connection on a listener fd. kCancelled when the
/// listener was shut down, kInternal on other errors.
Result<int> AcceptConnection(int listen_fd);

/// Connects to `host`:`port` (numeric IPv4, typically "127.0.0.1").
/// With `connect_timeout_ms` != 0 the connect is nonblocking + poll and
/// fails with kDeadlineExceeded once the timeout passes — a blackholed
/// peer can no longer park the caller in connect(2) for the kernel's
/// SYN-retry budget. `send_timeout_ms` != 0 arms SO_SNDTIMEO on the new
/// fd (see SetSendTimeout) so writes are bounded too. 0 keeps the old
/// fully-blocking behavior for either knob.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       uint64_t connect_timeout_ms = 0,
                       uint64_t send_timeout_ms = 0);

/// Half-closes then closes a socket fd; no-op for fd < 0.
void CloseSocket(int fd);

/// shutdown(2) both directions without closing, to unblock a reader in
/// another thread; no-op for fd < 0.
void ShutdownSocket(int fd);

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_FRAME_H_
