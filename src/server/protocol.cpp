#include "src/server/protocol.h"

#include <cstdlib>
#include <utility>

namespace wdpt::server {

namespace {

constexpr std::string_view kMagic = "WDPT/1";

// Headers and messages are single-line fields; a stray newline would
// desynchronise the header block.
std::string OneLine(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

void AppendHeader(std::string* out, std::string_view key,
                  std::string_view value) {
  out->append(key);
  out->append(": ");
  out->append(OneLine(value));
  out->push_back('\n');
}

// Splits "key: value" (value may be empty). Returns false on malformed
// lines.
bool SplitHeader(std::string_view line, std::string_view* key,
                 std::string_view* value) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) return false;
  *key = line.substr(0, colon);
  std::string_view rest = line.substr(colon + 1);
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  *value = rest;
  return true;
}

uint64_t ParseU64(std::string_view value) {
  return std::strtoull(std::string(value).c_str(), nullptr, 10);
}

// Consumes the header block (up to and including the blank line) of
// `payload` starting at *pos, invoking `on_header` per header. Returns
// an error if the blank separator line is missing.
template <typename Fn>
Status ConsumeHeaders(std::string_view payload, size_t* pos, Fn&& on_header) {
  while (*pos < payload.size()) {
    size_t eol = payload.find('\n', *pos);
    if (eol == std::string_view::npos) {
      return Status::ParseError("unterminated header line");
    }
    std::string_view line = payload.substr(*pos, eol - *pos);
    *pos = eol + 1;
    if (line.empty()) return Status::Ok();  // Blank line: headers done.
    std::string_view key, value;
    if (!SplitHeader(line, &key, &value)) {
      return Status::ParseError("malformed header line '" +
                                std::string(line) + "'");
    }
    on_header(key, value);
  }
  return Status::ParseError("missing blank line after headers");
}

// Splits the status/command line "WDPT/1 <token>"; `*token` gets the
// part after the magic.
Status ConsumeFirstLine(std::string_view payload, size_t* pos,
                        std::string_view* token) {
  size_t eol = payload.find('\n');
  if (eol == std::string_view::npos) {
    return Status::ParseError("missing protocol line");
  }
  std::string_view line = payload.substr(0, eol);
  *pos = eol + 1;
  size_t space = line.find(' ');
  if (space == std::string_view::npos || line.substr(0, space) != kMagic) {
    return Status::ParseError("expected '" + std::string(kMagic) +
                              " <token>' protocol line, got '" +
                              std::string(line) + "'");
  }
  *token = line.substr(space + 1);
  return Status::Ok();
}

}  // namespace

const char* CommandName(Command command) {
  switch (command) {
    case Command::kQuery:
      return "QUERY";
    case Command::kStats:
      return "STATS";
    case Command::kPing:
      return "PING";
    case Command::kReload:
      return "RELOAD";
    case Command::kMetrics:
      return "METRICS";
    case Command::kIngest:
      return "INGEST";
    case Command::kCheckpoint:
      return "CHECKPOINT";
    case Command::kSubscribe:
      return "SUBSCRIBE";
    case Command::kWalSeg:
      return "WALSEG";
    case Command::kSnapshotFetch:
      return "SNAPSHOT-FETCH";
  }
  return "PING";
}

std::string SerializeRequest(const Request& request) {
  std::string out(kMagic);
  out.push_back(' ');
  out.append(CommandName(request.command));
  out.push_back('\n');
  if (request.command == Command::kQuery) {
    AppendHeader(&out, "mode", sparql::RequestModeName(request.query.mode));
    if (request.query.deadline_ms != 0) {
      AppendHeader(&out, "deadline-ms",
                   std::to_string(request.query.deadline_ms));
    }
    if (request.query.max_results != 0) {
      AppendHeader(&out, "max-results",
                   std::to_string(request.query.max_results));
    }
    if (!request.query.candidate.empty()) {
      AppendHeader(&out, "candidate", request.query.candidate);
    }
    if (request.query.cache_bypass) {
      AppendHeader(&out, "cache-control", "bypass");
    }
  }
  if (request.command == Command::kSubscribe) {
    AppendHeader(&out, "epoch", std::to_string(request.epoch));
    AppendHeader(&out, "offset", std::to_string(request.offset));
  }
  if (request.command == Command::kWalSeg) {
    AppendHeader(&out, "epoch", std::to_string(request.epoch));
    AppendHeader(&out, "offset", std::to_string(request.offset));
    AppendHeader(&out, "next-offset", std::to_string(request.next_offset));
    AppendHeader(&out, "seq", std::to_string(request.seq));
    AppendHeader(&out, "head-seq", std::to_string(request.head_seq));
  }
  out.push_back('\n');
  if (request.command == Command::kQuery) {
    out.append(request.query.query);
  } else {
    out.append(request.body);
  }
  return out;
}

Result<Request> ParseRequest(std::string_view payload) {
  size_t pos = 0;
  std::string_view token;
  Status s = ConsumeFirstLine(payload, &pos, &token);
  if (!s.ok()) return s;

  Request request;
  if (token == "QUERY") {
    request.command = Command::kQuery;
  } else if (token == "STATS") {
    request.command = Command::kStats;
  } else if (token == "PING") {
    request.command = Command::kPing;
  } else if (token == "RELOAD") {
    request.command = Command::kReload;
  } else if (token == "METRICS") {
    request.command = Command::kMetrics;
  } else if (token == "INGEST") {
    request.command = Command::kIngest;
  } else if (token == "CHECKPOINT") {
    request.command = Command::kCheckpoint;
  } else if (token == "SUBSCRIBE") {
    request.command = Command::kSubscribe;
  } else if (token == "WALSEG") {
    request.command = Command::kWalSeg;
  } else if (token == "SNAPSHOT-FETCH") {
    request.command = Command::kSnapshotFetch;
  } else {
    return Status::InvalidArgument("unknown command '" + std::string(token) +
                                   "'");
  }

  Status mode_error;
  s = ConsumeHeaders(payload, &pos,
                     [&](std::string_view key, std::string_view value) {
                       if (key == "mode") {
                         Result<sparql::RequestMode> mode =
                             sparql::ParseRequestMode(value);
                         if (mode.ok()) {
                           request.query.mode = *mode;
                         } else {
                           mode_error = mode.status();
                         }
                       } else if (key == "deadline-ms") {
                         request.query.deadline_ms = ParseU64(value);
                       } else if (key == "max-results") {
                         request.query.max_results = ParseU64(value);
                       } else if (key == "candidate") {
                         request.query.candidate = std::string(value);
                       } else if (key == "cache-control") {
                         // The only recognised directive; others are
                         // ignored like unknown headers.
                         if (value == "bypass") {
                           request.query.cache_bypass = true;
                         }
                       } else if (key == "epoch") {
                         request.epoch = ParseU64(value);
                       } else if (key == "offset") {
                         request.offset = ParseU64(value);
                       } else if (key == "next-offset") {
                         request.next_offset = ParseU64(value);
                       } else if (key == "seq") {
                         request.seq = ParseU64(value);
                       } else if (key == "head-seq") {
                         request.head_seq = ParseU64(value);
                       }
                       // Unknown headers: ignored (forward compatibility).
                     });
  if (!s.ok()) return s;
  if (!mode_error.ok()) return mode_error;

  std::string body(payload.substr(pos));
  if (request.command == Command::kQuery) {
    request.query.query = std::move(body);
  } else {
    request.body = std::move(body);
  }
  return request;
}

std::string SerializeResponse(const Response& response) {
  std::string out(kMagic);
  out.push_back(' ');
  out.append(StatusCodeName(response.code));
  out.push_back('\n');
  AppendHeader(&out, "rows", std::to_string(response.rows.size()));
  if (response.truncated) AppendHeader(&out, "truncated", "1");
  if (response.cached) AppendHeader(&out, "cached", "1");
  if (response.retry_after_ms != 0) {
    AppendHeader(&out, "retry-after-ms",
                 std::to_string(response.retry_after_ms));
  }
  if (!response.message.empty()) {
    AppendHeader(&out, "message", response.message);
  }
  if (!response.stats_json.empty()) {
    AppendHeader(&out, "stats", response.stats_json);
  }
  if (response.epoch != 0) {
    AppendHeader(&out, "epoch", std::to_string(response.epoch));
  }
  if (response.head_seq != 0) {
    AppendHeader(&out, "head-seq", std::to_string(response.head_seq));
  }
  if (!response.primary.empty()) {
    AppendHeader(&out, "primary", response.primary);
  }
  if (!response.body.empty()) {
    AppendHeader(&out, "body-bytes", std::to_string(response.body.size()));
  }
  out.push_back('\n');
  for (const std::string& row : response.rows) {
    out.append(OneLine(row));
    out.push_back('\n');
  }
  // Binary tail: exactly body-bytes raw bytes after the last row. Length
  // is carried by the header, never by a terminator, so the bytes need
  // no escaping.
  out.append(response.body);
  return out;
}

Result<Response> ParseResponse(std::string_view payload) {
  size_t pos = 0;
  std::string_view token;
  Status s = ConsumeFirstLine(payload, &pos, &token);
  if (!s.ok()) return s;

  Response response;
  response.code = StatusCodeFromName(token);
  uint64_t row_count = 0;
  uint64_t body_bytes = 0;
  s = ConsumeHeaders(payload, &pos,
                     [&](std::string_view key, std::string_view value) {
                       if (key == "rows") {
                         row_count = ParseU64(value);
                       } else if (key == "truncated") {
                         response.truncated = value == "1";
                       } else if (key == "cached") {
                         response.cached = value == "1";
                       } else if (key == "retry-after-ms") {
                         response.retry_after_ms = ParseU64(value);
                       } else if (key == "message") {
                         response.message = std::string(value);
                       } else if (key == "stats") {
                         response.stats_json = std::string(value);
                       } else if (key == "epoch") {
                         response.epoch = ParseU64(value);
                       } else if (key == "head-seq") {
                         response.head_seq = ParseU64(value);
                       } else if (key == "primary") {
                         response.primary = std::string(value);
                       } else if (key == "body-bytes") {
                         body_bytes = ParseU64(value);
                       }
                     });
  if (!s.ok()) return s;

  response.rows.reserve(row_count);
  for (uint64_t i = 0; i < row_count; ++i) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) {
      return Status::ParseError("response body truncated: expected " +
                                std::to_string(row_count) + " rows, got " +
                                std::to_string(i));
    }
    response.rows.emplace_back(payload.substr(pos, eol - pos));
    pos = eol + 1;
  }
  if (body_bytes != 0) {
    if (payload.size() - pos < body_bytes) {
      return Status::ParseError(
          "response binary body truncated: declared " +
          std::to_string(body_bytes) + " bytes, frame holds " +
          std::to_string(payload.size() - pos));
    }
    response.body.assign(payload.data() + pos, body_bytes);
  }
  return response;
}

}  // namespace wdpt::server
