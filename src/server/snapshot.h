// Hot-swappable database snapshots.
//
// The server never mutates a dataset in place. A Snapshot is an
// immutable (context, database) pair whose column indexes are fully
// warmed at load time, so any number of worker threads can evaluate
// against it with pure reads. A reload builds a *new* snapshot and
// atomically publishes it through a SnapshotHolder; in-flight requests
// keep the shared_ptr they grabbed at admission and finish against the
// version they started on — a swap can never produce a torn read.
//
// Query parsing interns new symbols into a vocabulary, so requests
// never parse against the shared snapshot context directly: they take a
// cheap private copy (Snapshot::ctx is copyable) and parse against
// that. Ids of symbols present in the snapshot are preserved by the
// copy; symbols the snapshot has never seen get fresh ids that match no
// stored fact, which is exactly the right semantics for an unknown
// constant.

#ifndef WDPT_SRC_SERVER_SNAPSHOT_H_
#define WDPT_SRC_SERVER_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>

#include "src/common/status.h"
#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/relational/sharded.h"

namespace wdpt::server {

/// One immutable, fully-indexed dataset version.
struct Snapshot {
  RdfContext ctx;
  Database db;
  /// Monotonic version assigned by the publisher (the Server stamps
  /// successive reloads); reported in per-request stats. Doubles as the
  /// answer-cache generation (src/engine/answer_cache.h): the executor
  /// stamps it into every call's CachePolicy, so entries cached against
  /// a replaced snapshot can never be served again — invalidation by
  /// construction, no flush needed on RELOAD.
  uint64_t version = 0;
  /// Hash-partitioned view over `db` for the engine's scatter-gather
  /// enumeration path; null when the snapshot was built with one shard.
  /// Built (and its per-shard indexes warmed) at load time, so it is
  /// preserved — and stays warm — across RELOAD swaps: every reload
  /// rebuilds it with the same shard count before publication.
  std::unique_ptr<ShardedDatabase> sharded;

  Snapshot() : db(ctx.MakeDatabase()) {}
  // db holds a pointer into ctx's schema (and sharded points back at
  // db): pin the whole bundle in place.
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
};

/// Parses whitespace-separated triples (one per line, '#' comments)
/// into a fresh snapshot and warms every column index. With shards > 1
/// the snapshot also carries a ShardedDatabase partitioned that many
/// ways (shards <= 1 leaves Snapshot::sharded null).
Result<std::shared_ptr<const Snapshot>> LoadSnapshot(
    std::string_view triples, uint64_t version, size_t shards = 1);

/// Builds a snapshot from an already-materialized (context, database)
/// pair — the storage layer's publish path: the pair is deep-copied
/// into the snapshot (the copy's schema pointer rebound to the copied
/// context), indexes warmed, and shards rebuilt, exactly like a text
/// load. The source pair stays untouched and mutable.
Result<std::shared_ptr<const Snapshot>> MakeSnapshot(const RdfContext& ctx,
                                                     const Database& db,
                                                     uint64_t version,
                                                     size_t shards = 1);

/// Mutex-guarded shared_ptr publication point. Load() hands a reader a
/// stable reference; Store() replaces it for future readers only.
class SnapshotHolder {
 public:
  std::shared_ptr<const Snapshot> Load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  void Store(std::shared_ptr<const Snapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = std::move(snapshot);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> snapshot_;
};

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_SNAPSHOT_H_
