#include "src/server/client.h"

#include <chrono>
#include <thread>
#include <utility>

namespace wdpt::server {

Status Client::Connect(const std::string& host, uint16_t port,
                       uint32_t max_frame_bytes) {
  if (connected()) return Status::InvalidArgument("client already connected");
  // Remember the target before trying: a retrying call can then bring
  // the connection up later even if this first attempt fails (the
  // server may still be restarting).
  host_ = host;
  port_ = port;
  target_known_ = true;
  max_frame_bytes_ = max_frame_bytes;
  return Reconnect();
}

Status Client::Reconnect() {
  if (!target_known_) return Status::InvalidArgument("client not connected");
  Close();
  Result<int> fd = ConnectTcp(host_, port_, policy_.connect_timeout_ms,
                              policy_.send_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  if (policy_.recv_timeout_ms != 0) {
    Status armed = SetRecvTimeout(fd_, policy_.recv_timeout_ms);
    if (!armed.ok()) {
      Close();
      return armed;
    }
  }
  return Status::Ok();
}

void Client::Close() {
  CloseSocket(fd_);
  fd_ = -1;
}

uint64_t BackoffDelayMs(const RetryPolicy& policy, uint32_t attempt,
                        uint64_t hint_ms, std::mt19937_64* rng) {
  uint64_t base = policy.backoff_initial_ms;
  for (uint32_t i = 1; i < attempt && base < policy.backoff_max_ms; ++i) {
    base *= 2;
  }
  if (base > policy.backoff_max_ms) base = policy.backoff_max_ms;
  // Jitter: uniform in [base/2, base], so synchronized clients fan out
  // instead of re-stampeding the server on the same tick.
  uint64_t sleep_ms = base;
  if (base > 1) {
    sleep_ms = base / 2 + (*rng)() % (base - base / 2 + 1);
  }
  if (hint_ms > sleep_ms) sleep_ms = hint_ms;
  return sleep_ms;
}

void Client::Backoff(uint32_t attempt, uint64_t hint_ms) {
  uint64_t sleep_ms = BackoffDelayMs(policy_, attempt, hint_ms, &jitter_rng_);
  retry_stats_.backoff_ms += sleep_ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

Result<Response> Client::Call(const Request& request) {
  if (!connected()) return Status::InvalidArgument("client not connected");
  ++retry_stats_.attempts;
  Status sent = WriteFrame(fd_, SerializeRequest(request), max_frame_bytes_);
  if (!sent.ok()) return sent;
  Result<std::string> frame = ReadFrame(fd_, max_frame_bytes_);
  if (!frame.ok()) return frame.status();
  return ParseResponse(*frame);
}

Result<Response> Client::CallIdempotent(const Request& request) {
  uint32_t max_attempts = policy_.max_attempts == 0 ? 1 : policy_.max_attempts;
  Result<Response> last = Status::InvalidArgument("client not connected");
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) ++retry_stats_.retries;
    if (!connected()) {
      Status up = Reconnect();
      if (!up.ok()) {
        last = up;
        if (attempt == max_attempts) break;
        Backoff(attempt, 0);
        continue;
      }
      if (attempt > 1) ++retry_stats_.reconnects;
    }
    last = Call(request);
    if (!last.ok()) {
      // Transport failure: the stream may be desynchronized (torn
      // frame, timeout mid-frame), so the connection is unusable either
      // way — drop it and retry on a fresh one.
      Close();
      if (attempt == max_attempts) break;
      Backoff(attempt, 0);
      continue;
    }
    if (last->code == StatusCode::kOverloaded) {
      // Load shedding / drain: the request was *not* started (status
      // taxonomy), so retrying is safe even mid-drain. Honor the
      // server's backoff hint.
      if (attempt == max_attempts) break;
      ++retry_stats_.overloaded_backoffs;
      Backoff(attempt, last->retry_after_ms);
      continue;
    }
    if (last->code == StatusCode::kCancelled) {
      // The server shut down mid-request; no partial answer was
      // produced (cancellation contract), so the retry — typically
      // against the restarted server — is safe.
      if (attempt == max_attempts) break;
      Backoff(attempt, last->retry_after_ms);
      continue;
    }
    return last;
  }
  return last;
}

sparql::QueryRequest QueryCall::ToRequest() const {
  sparql::QueryRequest request;
  request.query = text;
  request.mode = mode;
  request.deadline_ms = deadline_ms;
  request.max_results = max_results;
  request.candidate = candidate;
  request.cache_bypass = cache_bypass;
  return request;
}

Result<Response> Client::Query(const QueryCall& call) {
  Request request;
  request.command = Command::kQuery;
  request.query = call.ToRequest();
  return CallIdempotent(request);
}

Result<Response> Client::Ping() {
  Request request;
  request.command = Command::kPing;
  return CallIdempotent(request);
}

Result<Response> Client::Stats() {
  Request request;
  request.command = Command::kStats;
  return CallIdempotent(request);
}

Result<Response> Client::Metrics() {
  Request request;
  request.command = Command::kMetrics;
  return CallIdempotent(request);
}

Result<Response> Client::Reload(std::string triples) {
  Request request;
  request.command = Command::kReload;
  request.body = std::move(triples);
  return Call(request);
}

Result<Response> Client::Ingest(std::string ops) {
  Request request;
  request.command = Command::kIngest;
  request.body = std::move(ops);
  // One attempt, ever: a transport failure here is ambiguous (the WAL
  // append may have happened before the connection died) and only the
  // caller can decide whether re-applying the batch is safe.
  return Call(request);
}

Result<Response> Client::Checkpoint() {
  Request request;
  request.command = Command::kCheckpoint;
  return Call(request);
}

}  // namespace wdpt::server
