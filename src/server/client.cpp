#include "src/server/client.h"

#include <utility>

namespace wdpt::server {

Status Client::Connect(const std::string& host, uint16_t port,
                       uint32_t max_frame_bytes) {
  if (connected()) return Status::InvalidArgument("client already connected");
  Result<int> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  max_frame_bytes_ = max_frame_bytes;
  return Status::Ok();
}

void Client::Close() {
  CloseSocket(fd_);
  fd_ = -1;
}

Result<Response> Client::Call(const Request& request) {
  if (!connected()) return Status::InvalidArgument("client not connected");
  Status sent = WriteFrame(fd_, SerializeRequest(request), max_frame_bytes_);
  if (!sent.ok()) return sent;
  Result<std::string> frame = ReadFrame(fd_, max_frame_bytes_);
  if (!frame.ok()) return frame.status();
  return ParseResponse(*frame);
}

sparql::QueryRequest QueryCall::ToRequest() const {
  sparql::QueryRequest request;
  request.query = text;
  request.mode = mode;
  request.deadline_ms = deadline_ms;
  request.max_results = max_results;
  request.candidate = candidate;
  request.cache_bypass = cache_bypass;
  return request;
}

Result<Response> Client::Query(const QueryCall& call) {
  Request request;
  request.command = Command::kQuery;
  request.query = call.ToRequest();
  return Call(request);
}

Result<Response> Client::Ping() {
  Request request;
  request.command = Command::kPing;
  return Call(request);
}

Result<Response> Client::Stats() {
  Request request;
  request.command = Command::kStats;
  return Call(request);
}

Result<Response> Client::Metrics() {
  Request request;
  request.command = Command::kMetrics;
  return Call(request);
}

Result<Response> Client::Reload(std::string triples) {
  Request request;
  request.command = Command::kReload;
  request.body = std::move(triples);
  return Call(request);
}

Result<Response> Client::Ingest(std::string ops) {
  Request request;
  request.command = Command::kIngest;
  request.body = std::move(ops);
  return Call(request);
}

Result<Response> Client::Checkpoint() {
  Request request;
  request.command = Command::kCheckpoint;
  return Call(request);
}

}  // namespace wdpt::server
