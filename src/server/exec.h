// The single query-execution path behind the server.
//
// ExecuteQuery is everything a QUERY request does once it has been
// admitted: clone the snapshot's context, compile the request through
// sparql::CompileRequest, run it on the engine with the effective
// cancellation token, and render the answer rows. The Server calls it
// from its worker pool; tests and wdpt_loadgen call it directly to
// compute the expected bytes a server must produce — by construction
// the two cannot diverge.

#ifndef WDPT_SRC_SERVER_EXEC_H_
#define WDPT_SRC_SERVER_EXEC_H_

#include "src/common/cancellation.h"
#include "src/common/trace.h"
#include "src/engine/engine.h"
#include "src/server/protocol.h"
#include "src/server/snapshot.h"
#include "src/sparql/request.h"

namespace wdpt::server {

/// Runs one QUERY request against `snapshot` on `engine`. The effective
/// cancellation is a child of `cancel` (pass the server's shutdown
/// token, or a null token) with the request's deadline_ms applied on
/// top, so queue wait already counts against the deadline when the
/// caller created the deadline child before submitting. Never throws;
/// every failure mode is encoded in the returned Response's status
/// code.
///
/// `trace` (optional) receives the staged breakdown — parse,
/// plan-lookup, plan-build, cache-lookup, eval, serialize — plus the
/// plan's tractability class and the answer-cache outcome; a local
/// trace is used when none is supplied, so the stats JSON always
/// carries the spans. The snapshot's version is stamped into the call's
/// cache policy as the generation, and `Response::cached` reports a
/// cache hit. The response's stats header is a single-line JSON object
/// {"status", "mode", "rows", "truncated", "wall_ns",
/// "snapshot_version", "request_id", "class", "cache", "queue_ns",
/// "parse_ns", "plan_lookup_ns", "plan_build_ns", "cache_lookup_ns",
/// "eval_ns", "serialize_ns"}.
Response ExecuteQuery(Engine* engine, const Snapshot& snapshot,
                      const sparql::QueryRequest& request,
                      const CancelToken& cancel = CancelToken(),
                      Trace* trace = nullptr);

}  // namespace wdpt::server

#endif  // WDPT_SRC_SERVER_EXEC_H_
