#include "src/server/exec.h"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace wdpt::server {

namespace {

using Clock = std::chrono::steady_clock;

std::string PerRequestStatsJson(const Response& response,
                                const sparql::QueryRequest& request,
                                uint64_t wall_ns, uint64_t version,
                                const Trace& trace) {
  std::string json = "{\"status\":\"";
  json += StatusCodeName(response.code);
  json += "\",\"mode\":\"";
  json += sparql::RequestModeName(request.mode);
  json += "\",\"rows\":";
  json += std::to_string(response.rows.size());
  json += ",\"truncated\":";
  json += response.truncated ? "true" : "false";
  json += ",\"wall_ns\":";
  json += std::to_string(wall_ns);
  json += ",\"snapshot_version\":";
  json += std::to_string(version);
  json += ",\"request_id\":";
  json += std::to_string(trace.request_id());
  json += ",\"class\":\"";
  json += TractabilityClassName(trace.classification());
  json += "\",\"cache\":\"";
  json += CacheOutcomeName(trace.cache_outcome());
  json += "\",\"queue_ns\":";
  json += std::to_string(trace.span_ns(TraceStage::kQueueWait));
  json += ",\"parse_ns\":";
  json += std::to_string(trace.span_ns(TraceStage::kParse));
  json += ",\"plan_lookup_ns\":";
  json += std::to_string(trace.span_ns(TraceStage::kPlanLookup));
  json += ",\"plan_build_ns\":";
  json += std::to_string(trace.span_ns(TraceStage::kPlanBuild));
  json += ",\"cache_lookup_ns\":";
  json += std::to_string(trace.span_ns(TraceStage::kCacheLookup));
  json += ",\"eval_ns\":";
  json += std::to_string(trace.span_ns(TraceStage::kEval));
  json += ",\"serialize_ns\":";
  json += std::to_string(trace.span_ns(TraceStage::kSerialize));
  json += ",\"shard_fanout\":";
  json += std::to_string(trace.shard_fanout());
  json += ",\"shard_max_ns\":";
  json += std::to_string(trace.MaxShardNs());
  json += "}";
  return json;
}

}  // namespace

Response ExecuteQuery(Engine* engine, const Snapshot& snapshot,
                      const sparql::QueryRequest& request,
                      const CancelToken& cancel, Trace* trace) {
  Clock::time_point start = Clock::now();
  Response response;
  // Stats JSON always reports the staged breakdown, even for direct
  // callers (tests, loadgen's expected-bytes path) that pass no trace.
  Trace local_trace;
  if (trace == nullptr) trace = &local_trace;
  trace->set_mode(sparql::RequestModeName(request.mode));

  // Effective token: the caller's, with the request deadline stacked on
  // a child so the caller's token is never mutated.
  CancelToken token = cancel;
  if (request.deadline_ms != 0) {
    token = CancelToken::Child(cancel);
    token.SetDeadline(Clock::now() +
                      std::chrono::milliseconds(request.deadline_ms));
  }

  // Parsing interns symbols, so it runs against a private copy of the
  // snapshot's context; ids of known symbols are preserved by the copy.
  RdfContext ctx = snapshot.ctx;
  sparql::QueryRequest local = request;
  local.deadline_ms = 0;  // The token above already carries it.
  Result<sparql::CompiledRequest> compiled = [&] {
    Trace::Span span(trace, TraceStage::kParse);
    return sparql::CompileRequest(local, &ctx);
  }();
  if (!compiled.ok()) {
    response.code = compiled.status().code();
    response.message = compiled.status().ToString();
  } else if (compiled->check) {
    CallOptions options = compiled->options;
    options.cancel = token;
    options.trace = trace;
    // The snapshot version is the answer-cache generation: a RELOAD
    // bumps it, so entries from older snapshots can never be served.
    options.cache.generation = snapshot.version;
    Result<bool> verdict =
        engine->Eval(compiled->tree, snapshot.db, compiled->candidate,
                     options);
    if (verdict.ok()) {
      Trace::Span span(trace, TraceStage::kSerialize);
      response.rows.push_back(*verdict ? "true" : "false");
    } else {
      response.code = verdict.status().code();
      response.message = verdict.status().ToString();
    }
  } else {
    CallOptions options = compiled->options;
    options.cancel = token;
    options.trace = trace;
    options.cache.generation = snapshot.version;
    // A sharded snapshot routes enumeration through scatter-gather;
    // answers are bit-identical to the unsharded path (engine.h).
    Result<std::vector<Mapping>> answers =
        snapshot.sharded != nullptr
            ? engine->Enumerate(compiled->tree, *snapshot.sharded, options)
            : engine->Enumerate(compiled->tree, snapshot.db, options);
    if (answers.ok()) {
      Trace::Span span(trace, TraceStage::kSerialize);
      size_t keep = answers->size();
      if (compiled->max_results != 0 && keep > compiled->max_results) {
        keep = compiled->max_results;
        response.truncated = true;
      }
      response.rows.reserve(keep);
      for (size_t i = 0; i < keep; ++i) {
        response.rows.push_back((*answers)[i].ToString(ctx.vocab()));
      }
    } else {
      response.code = answers.status().code();
      response.message = answers.status().ToString();
    }
  }

  response.cached = trace->cache_outcome() == CacheOutcome::kHit;
  uint64_t wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  response.stats_json = PerRequestStatsJson(response, request, wall_ns,
                                            snapshot.version, *trace);
  return response;
}

}  // namespace wdpt::server
