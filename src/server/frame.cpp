#include "src/server/frame.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wdpt::server {

namespace {

// Returns 1 on success, 0 on clean EOF before any byte, an error
// status otherwise (including EOF mid-buffer). EAGAIN/EWOULDBLOCK —
// only possible once SetRecvTimeout armed SO_RCVTIMEO — maps to
// kDeadlineExceeded so the session loop can distinguish an idle peer
// from a broken one.
Result<int> RecvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out");
      }
      return Status::Internal(std::string("recv failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return 0;
      return Status::Internal("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload, uint32_t max_bytes) {
  if (payload.size() > max_bytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the frame cap");
  }
  uint32_t len = htonl(static_cast<uint32_t>(payload.size()));
  // Prefix and payload in one sendmsg: with two sends, the first fills a
  // segment with just the 4-byte prefix and Nagle holds the payload back
  // until the peer ACKs — a full RTT of latency on every small frame.
  iovec iov[2];
  iov[0].iov_base = &len;
  iov[0].iov_len = sizeof(len);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  size_t total = sizeof(len) + payload.size();
  size_t sent = 0;
  while (sent < total) {
    msghdr msg{};
    size_t skip = sent;
    iovec pending[2];
    int iovcnt = 0;
    for (const iovec& part : iov) {
      if (skip >= part.iov_len) {
        skip -= part.iov_len;
        continue;
      }
      pending[iovcnt].iov_base = static_cast<char*>(part.iov_base) + skip;
      pending[iovcnt].iov_len = part.iov_len - skip;
      skip = 0;
      ++iovcnt;
    }
    msg.msg_iov = pending;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ReadFrame(int fd, uint32_t max_bytes) {
  uint32_t len_be = 0;
  Result<int> header = RecvAll(fd, &len_be, sizeof(len_be));
  if (!header.ok()) return header.status();
  if (*header == 0) return Status::NotFound("connection closed");
  uint32_t len = ntohl(len_be);
  if (len > max_bytes) {
    return Status::ResourceExhausted("announced frame of " +
                                     std::to_string(len) +
                                     " bytes exceeds the frame cap");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    Result<int> body = RecvAll(fd, payload.data(), len);
    if (!body.ok()) return body.status();
    if (*body == 0) return Status::Internal("connection closed mid-frame");
  }
  return payload;
}

Result<int> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::Internal(std::string("bind failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) < 0) {
    Status s = Status::Internal(std::string("listen failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      Status s = Status::Internal(std::string("getsockname failed: ") +
                                  std::strerror(errno));
      ::close(fd);
      return s;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<int> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EINVAL || errno == EBADF) {
      // The listener was shut down / closed: orderly stop.
      return Status::Cancelled("listener shut down");
    }
    return Status::Internal(std::string("accept failed: ") +
                            std::strerror(errno));
  }
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::Internal("connect to " + host + ":" +
                                std::to_string(port) + " failed: " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetRecvTimeout(int fd, uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::Internal(std::string("setsockopt SO_RCVTIMEO failed: ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void CloseSocket(int fd) {
  if (fd >= 0) ::close(fd);
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace wdpt::server
