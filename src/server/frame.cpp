#include "src/server/frame.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/server/fault.h"

namespace wdpt::server {

namespace {

// Applies an injected fault decision's delay/reset parts to `fd`.
// Returns true when the operation should proceed, false when the
// connection was torn down (the caller must surface an error).
bool ApplyFaultPrelude(int fd, const fault::Decision& d) {
  if (d.delay_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
  }
  if (d.reset) {
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  return true;
}

// TCP_NODELAY failing leaves the connection slower, not wrong; report
// it instead of silently serving with Nagle-delayed small frames.
void SetNoDelayOrWarn(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    std::fprintf(stderr,
                 "warning: setsockopt TCP_NODELAY on fd %d failed: %s\n", fd,
                 std::strerror(errno));
  }
}

// Returns 1 on success, 0 on clean EOF before any byte, an error status
// otherwise (including EOF mid-buffer). EAGAIN/EWOULDBLOCK — only
// possible once SetRecvTimeout armed SO_RCVTIMEO — means the receive
// timeout fired: at a frame boundary with nothing read that is a clean
// idle peer (kDeadlineExceeded, the session can say goodbye); anywhere
// else the stream is desynchronized mid-frame and only a teardown is
// safe, so it surfaces as kInternal like other wire corruption.
Result<int> RecvAll(int fd, void* data, size_t len, bool at_frame_boundary) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    size_t want = len - got;
    if (fault::Injector* inj = fault::Get()) {
      fault::Decision d = inj->Next(fault::Op::kRecv);
      if (!ApplyFaultPrelude(fd, d)) {
        return Status::Internal("injected connection reset during recv");
      }
      if (d.cap_bytes != 0 && d.cap_bytes < want) want = d.cap_bytes;
    }
    ssize_t n = ::recv(fd, p + got, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (at_frame_boundary && got == 0) {
          return Status::DeadlineExceeded("recv timed out");
        }
        return Status::Internal(
            "recv timed out mid-frame; stream desynchronized");
      }
      return Status::Internal(std::string("recv failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && at_frame_boundary) return 0;
      return Status::Internal("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload, uint32_t max_bytes) {
  if (payload.size() > max_bytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the frame cap");
  }
  uint32_t len = htonl(static_cast<uint32_t>(payload.size()));
  // Prefix and payload in one sendmsg: with two sends, the first fills a
  // segment with just the 4-byte prefix and Nagle holds the payload back
  // until the peer ACKs — a full RTT of latency on every small frame.
  iovec iov[2];
  iov[0].iov_base = &len;
  iov[0].iov_len = sizeof(len);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  size_t total = sizeof(len) + payload.size();
  size_t sent = 0;
  while (sent < total) {
    size_t cap = total - sent;  // Bytes offered to this sendmsg.
    bool reset_after = false;
    if (fault::Injector* inj = fault::Get()) {
      fault::Decision d = inj->Next(fault::Op::kSend);
      if (d.delay_ms != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      }
      if (d.cap_bytes != 0 && d.cap_bytes < cap) cap = d.cap_bytes;
      // A reset decision tears the connection *after* cap bytes leave:
      // the peer sees a torn frame, not a clean close.
      reset_after = d.reset;
    }
    msghdr msg{};
    size_t skip = sent;
    size_t budget = cap;
    iovec pending[2];
    int iovcnt = 0;
    for (const iovec& part : iov) {
      if (budget == 0) break;
      if (skip >= part.iov_len) {
        skip -= part.iov_len;
        continue;
      }
      size_t take = part.iov_len - skip;
      if (take > budget) take = budget;
      pending[iovcnt].iov_base = static_cast<char*>(part.iov_base) + skip;
      pending[iovcnt].iov_len = take;
      skip = 0;
      budget -= take;
      ++iovcnt;
    }
    msg.msg_iov = pending;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO fired. Bytes may have left on earlier iterations,
        // so the stream is torn; only a teardown is safe.
        return Status::DeadlineExceeded(
            "send timed out mid-frame; stream desynchronized");
      }
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
    if (reset_after) {
      ::shutdown(fd, SHUT_RDWR);
      return Status::Internal("injected connection reset during send");
    }
  }
  return Status::Ok();
}

Result<std::string> ReadFrame(int fd, uint32_t max_bytes) {
  uint32_t len_be = 0;
  Result<int> header =
      RecvAll(fd, &len_be, sizeof(len_be), /*at_frame_boundary=*/true);
  if (!header.ok()) return header.status();
  if (*header == 0) return Status::NotFound("connection closed");
  uint32_t len = ntohl(len_be);
  if (len > max_bytes) {
    return Status::ResourceExhausted("announced frame of " +
                                     std::to_string(len) +
                                     " bytes exceeds the frame cap");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    Result<int> body =
        RecvAll(fd, payload.data(), len, /*at_frame_boundary=*/false);
    if (!body.ok()) return body.status();
    if (*body == 0) return Status::Internal("connection closed mid-frame");
  }
  return payload;
}

Result<int> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    // Without SO_REUSEADDR a restart onto the same port fails for the
    // TIME_WAIT duration — fatal for graceful drain-and-restart, so
    // fail loudly instead of binding a listener that can't come back.
    Status s = Status::Internal(std::string(
                                    "setsockopt SO_REUSEADDR failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::Internal(std::string("bind failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) < 0) {
    Status s = Status::Internal(std::string("listen failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      Status s = Status::Internal(std::string("getsockname failed: ") +
                                  std::strerror(errno));
      ::close(fd);
      return s;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<int> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelayOrWarn(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EINVAL || errno == EBADF) {
      // The listener was shut down / closed: orderly stop.
      return Status::Cancelled("listener shut down");
    }
    return Status::Internal(std::string("accept failed: ") +
                            std::strerror(errno));
  }
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       uint64_t connect_timeout_ms,
                       uint64_t send_timeout_ms) {
  if (fault::Injector* inj = fault::Get()) {
    fault::Decision d = inj->Next(fault::Op::kConnect);
    if (d.delay_ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
    }
    if (d.fail) return Status::Internal("injected connect failure");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "'");
  }
  // Nonblocking connect + poll: a blackholed peer (no RST, no SYN-ACK)
  // otherwise parks the caller in connect(2) for the kernel's multi-
  // minute SYN retry budget, far past any client deadline.
  if (connect_timeout_ms != 0) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      Status s = Status::Internal(std::string("fcntl O_NONBLOCK failed: ") +
                                  std::strerror(errno));
      ::close(fd);
      return s;
    }
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(connect_timeout_ms));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        ::close(fd);
        return Status::DeadlineExceeded(
            "connect to " + host + ":" + std::to_string(port) +
            " timed out after " + std::to_string(connect_timeout_ms) + " ms");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (rc < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
          so_error != 0) {
        if (so_error != 0) errno = so_error;
        Status s = Status::Internal("connect to " + host + ":" +
                                    std::to_string(port) + " failed: " +
                                    std::strerror(errno));
        ::close(fd);
        return s;
      }
    } else if (rc < 0) {
      Status s = Status::Internal("connect to " + host + ":" +
                                  std::to_string(port) + " failed: " +
                                  std::strerror(errno));
      ::close(fd);
      return s;
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) {
      Status s = Status::Internal(std::string("fcntl restore failed: ") +
                                  std::strerror(errno));
      ::close(fd);
      return s;
    }
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) < 0) {
    Status s = Status::Internal("connect to " + host + ":" +
                                std::to_string(port) + " failed: " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (send_timeout_ms != 0) {
    Status s = SetSendTimeout(fd, send_timeout_ms);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  SetNoDelayOrWarn(fd);
  return fd;
}

Status SetRecvTimeout(int fd, uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::Internal(std::string("setsockopt SO_RCVTIMEO failed: ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status SetSendTimeout(int fd, uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::Internal(std::string("setsockopt SO_SNDTIMEO failed: ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void CloseSocket(int fd) {
  if (fd >= 0) ::close(fd);
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace wdpt::server
