#include "src/server/server.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "src/server/exec.h"
#include "src/server/frame.h"

namespace wdpt::server {

namespace {

unsigned ResolveWorkers(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Sharded serving runs shard tasks on the engine's internal pool; a
// one-thread pool (the unsharded default) would serialize them, so
// widen it to hardware concurrency unless the caller chose a count.
EngineOptions ResolveEngineOptions(const ServerOptions& options) {
  EngineOptions engine = options.engine;
  if (options.shards > 1 && engine.num_threads == 1) {
    engine.num_threads = 0;  // 0 = hardware concurrency.
  }
  engine.answer_cache_bytes = options.answer_cache_bytes;
  return engine;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      engine_(ResolveEngineOptions(options)),
      pool_(ResolveWorkers(options.num_workers)),
      admission_(options.admission_capacity == 0 ? 1
                                                 : options.admission_capacity),
      stop_token_(CancelToken::Create()) {}

Server::~Server() { Stop(); }

Status Server::Start(std::shared_ptr<const Snapshot> initial) {
  if (initial == nullptr) {
    return Status::InvalidArgument("initial snapshot must not be null");
  }
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  next_version_.store(initial->version + 1);
  snapshot_.Store(std::move(initial));
  Result<int> listener = ListenLoopback(options_.port, &port_);
  if (!listener.ok()) {
    started_.store(false);
    return listener.status();
  }
  listen_fd_ = *listener;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::Ok();
}

Status Server::StartWithStorage(
    std::unique_ptr<storage::StorageManager> storage) {
  if (storage == nullptr) {
    return Status::InvalidArgument("storage manager must not be null");
  }
  storage_ = std::move(storage);
  std::shared_ptr<const Snapshot> initial = storage_->CurrentSnapshot();
  Status started = Start(std::move(initial));
  if (!started.ok()) storage_.reset();
  return started;
}

void Server::Stop() {
  if (options_.drain_ms != 0) {
    Drain(options_.drain_ms);
    return;
  }
  StopHard();
}

void Server::Drain(uint64_t deadline_ms) {
  if (!started_.load()) return;
  if (stopping_.load()) {
    StopHard();  // Already hard-stopping; nothing left to drain.
    return;
  }
  // First drainer shuts the front door; latecomers just wait alongside.
  bool first = !draining_.exchange(true);
  if (first) StopAccepting();
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  bool clean;
  {
    std::unique_lock<std::mutex> lock(active_mu_);
    clean = active_cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                                [this] { return active_requests_ == 0; });
  }
  if (first) {
    std::string line =
        "drain: " +
        std::to_string(drained_requests_.load(std::memory_order_relaxed)) +
        " requests completed, " +
        std::to_string(drain_rejections_.load(std::memory_order_relaxed)) +
        " arrivals shed, " + std::to_string(ElapsedNs(start) / 1000000) +
        "ms" + (clean ? "" : " (deadline hit; hard-cutting stragglers)");
    if (options_.slow_query_log) {
      options_.slow_query_log(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  StopHard();
}

void Server::StopAccepting() {
  if (accept_stopped_.exchange(true)) return;
  // Unblock the accept loop and join it, so no new sessions appear
  // while existing ones wind down.
  ShutdownSocket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Server::StopHard() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // Wind down in-flight evaluations; admitted requests surface
  // kCancelled rather than blocking shutdown.
  stop_token_.RequestCancel();
  StopAccepting();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  {
    // Sessions remove their fd before closing it, so everything in the
    // list is open; shutdown unblocks their frame reads.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (int fd : session_fds_) ShutdownSocket(fd);
  }
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(session_threads_);
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
}

void Server::BeginRequest() {
  std::lock_guard<std::mutex> lock(active_mu_);
  ++active_requests_;
}

void Server::EndRequest(bool was_work) {
  if (was_work && draining_.load(std::memory_order_acquire)) {
    drained_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(active_mu_);
  if (--active_requests_ == 0) active_cv_.notify_all();
}

bool Server::IsWorkCommand(Command command) {
  switch (command) {
    case Command::kQuery:
    case Command::kReload:
    case Command::kIngest:
    case Command::kCheckpoint:
      return true;
    case Command::kPing:
    case Command::kStats:
    case Command::kMetrics:
      return false;
  }
  return true;  // Unknown commands count as work: shed while draining.
}

void Server::SwapSnapshot(std::shared_ptr<const Snapshot> snapshot) {
  snapshot_.Store(std::move(snapshot));
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections = connections_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.queries = queries_.load(std::memory_order_relaxed);
  c.admitted = admission_.admitted();
  c.rejected_overload = admission_.rejected();
  c.reloads = reloads_.load(std::memory_order_relaxed);
  c.ingests = ingests_.load(std::memory_order_relaxed);
  c.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  c.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  c.drained_requests = drained_requests_.load(std::memory_order_relaxed);
  c.drain_rejections = drain_rejections_.load(std::memory_order_relaxed);
  return c;
}

std::string Server::MetricsText() const {
  if (storage_ != nullptr) {
    storage::StorageStats storage_stats = storage_->stats();
    return metrics_.RenderPrometheus(counters(), engine_.stats(),
                                     admission_.in_flight(),
                                     CurrentSnapshot()->version,
                                     &storage_stats);
  }
  return metrics_.RenderPrometheus(counters(), engine_.stats(),
                                   admission_.in_flight(),
                                   snapshot_.Load()->version);
}

void Server::AcceptLoop() {
  for (;;) {
    Result<int> fd = AcceptConnection(listen_fd_);
    if (!fd.ok()) {
      if (stopping_.load() ||
          fd.status().code() == StatusCode::kCancelled) {
        return;
      }
      continue;  // Transient accept error (e.g. EMFILE): keep serving.
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stopping_.load()) {
      CloseSocket(*fd);
      return;
    }
    session_fds_.push_back(*fd);
    session_threads_.emplace_back(&Server::SessionLoop, this, *fd);
  }
}

void Server::SessionLoop(int fd) {
  if (options_.idle_timeout_ms != 0) {
    SetRecvTimeout(fd, options_.idle_timeout_ms);
  }
  while (!stopping_.load()) {
    Result<std::string> frame = ReadFrame(fd, options_.max_frame_bytes);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        // Idle peer: say why the session is ending, then hang up. A
        // blocked mid-frame read also lands here, which is fine — a
        // peer that stalls inside a frame for the whole idle window is
        // indistinguishable from a dead one.
        idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.code = StatusCode::kDeadlineExceeded;
        r.message = "idle timeout after " +
                    std::to_string(options_.idle_timeout_ms) +
                    " ms; closing connection";
        WriteFrame(fd, SerializeResponse(r), options_.max_frame_bytes);
        break;
      }
      if (frame.status().code() == StatusCode::kResourceExhausted) {
        // Oversized announced frame: the stream is unreadable past this
        // point, so answer once and hang up.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.code = StatusCode::kResourceExhausted;
        r.message = frame.status().ToString();
        WriteFrame(fd, SerializeResponse(r), options_.max_frame_bytes);
      }
      break;  // EOF or socket error: session over.
    }

    // The active window spans decode through the response write, so a
    // drain that waits for zero active requests knows every answer it
    // admitted — rejections included — reached the wire untorn.
    BeginRequest();
    Response response;
    bool work = false;
    Result<Request> request = ParseRequest(*frame);
    if (!request.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      response.code = request.status().code();
      response.message = request.status().ToString();
    } else {
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (draining_.load(std::memory_order_acquire) &&
          IsWorkCommand(request->command)) {
        // Shutting down: shed new work with a retry hint instead of
        // starting an evaluation the hard cut would tear. Control
        // commands (PING/STATS/METRICS) stay served so operators can
        // watch the drain.
        drain_rejections_.fetch_add(1, std::memory_order_relaxed);
        response.code = StatusCode::kOverloaded;
        response.retry_after_ms = options_.retry_after_ms;
        response.message =
            "server draining; retry against the restarted server";
      } else {
        work = true;
        response = Dispatch(*request);
      }
    }

    std::string payload = SerializeResponse(response);
    if (payload.size() > options_.max_frame_bytes) {
      // The result set outgrew the frame cap: report instead of
      // shipping a frame the client must reject.
      Response too_big;
      too_big.code = StatusCode::kResourceExhausted;
      too_big.message = "response of " + std::to_string(payload.size()) +
                        " bytes exceeds the frame cap; narrow the query "
                        "or set max-results";
      payload = SerializeResponse(too_big);
    }
    bool written = WriteFrame(fd, payload, options_.max_frame_bytes).ok();
    EndRequest(work);
    if (!written) break;
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (size_t i = 0; i < session_fds_.size(); ++i) {
      if (session_fds_[i] == fd) {
        session_fds_.erase(session_fds_.begin() + i);
        break;
      }
    }
  }
  CloseSocket(fd);
}

Response Server::Dispatch(const Request& request) {
  switch (request.command) {
    case Command::kPing: {
      Response r;
      r.message = "pong";
      return r;
    }
    case Command::kStats:
      return HandleStats();
    case Command::kMetrics:
      return HandleMetrics();
    case Command::kReload:
      return HandleReload(request.body);
    case Command::kIngest:
      return HandleIngest(request.body);
    case Command::kCheckpoint:
      return HandleCheckpoint();
    case Command::kQuery:
      return HandleQuery(request.query);
  }
  Response r;
  r.code = StatusCode::kInternal;
  r.message = "unhandled command";
  return r;
}

Response Server::HandleQuery(const sparql::QueryRequest& query) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  sparql::QueryRequest local = query;
  if (local.deadline_ms == 0) {
    local.deadline_ms = options_.default_deadline_ms;
  }
  if (options_.max_deadline_ms != 0 &&
      (local.deadline_ms == 0 ||
       local.deadline_ms > options_.max_deadline_ms)) {
    local.deadline_ms = options_.max_deadline_ms;
  }

  if (!admission_.TryAdmit()) {
    metrics_.RecordRejected();
    Response r;
    r.code = StatusCode::kOverloaded;
    r.retry_after_ms = options_.retry_after_ms;
    r.message = "admission queue full (" +
                std::to_string(admission_.capacity()) +
                " requests in flight); retry later";
    return r;
  }

  // Pin the dataset version and start the deadline clock *now*, before
  // the pool handoff, so time spent waiting for a worker counts.
  std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  CancelToken token = stop_token_;
  if (local.deadline_ms != 0) {
    token = CancelToken::Child(stop_token_);
    token.SetDeadline(CancelToken::Clock::now() +
                      std::chrono::milliseconds(local.deadline_ms));
  }
  local.deadline_ms = 0;  // Carried by the token from here on.

  // The trace crosses the pool handoff with the response: the latch's
  // CountDown/Wait pair orders the worker's writes before our reads.
  Trace trace(next_request_id_.fetch_add(1, std::memory_order_relaxed));
  Response response;
  BatchLatch latch(1);
  std::chrono::steady_clock::time_point submitted =
      std::chrono::steady_clock::now();
  pool_.Submit([this, &response, &latch, &local, &trace, snapshot, token,
                submitted] {
    trace.Record(TraceStage::kQueueWait, ElapsedNs(submitted));
    response = ExecuteQuery(&engine_, *snapshot, local, token, &trace);
    latch.CountDown();
  });
  latch.Wait();
  admission_.Release();
  metrics_.RecordQuery(trace, local.mode, response.code);
  MaybeLogSlowQuery(trace, response.code);
  return response;
}

Response Server::HandleMetrics() {
  Response r;
  std::string text = MetricsText();
  // One response row per exposition line; the client reassembles with
  // newlines. Rows are the protocol's only multi-line channel.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    r.rows.emplace_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return r;
}

void Server::MaybeLogSlowQuery(const Trace& trace, StatusCode code) {
  if (options_.slow_query_ms == 0) return;
  uint64_t total_ns = trace.TotalNs();
  if (total_ns < options_.slow_query_ms * 1000000ull) return;
  std::string line = "slow query id=" + std::to_string(trace.request_id()) +
                     " status=" + StatusCodeName(code) + " mode=" +
                     trace.mode() + " class=" +
                     TractabilityClassName(trace.classification()) +
                     " total=" + std::to_string(total_ns / 1000000) + "ms " +
                     trace.BreakdownString();
  if (options_.slow_query_log) {
    options_.slow_query_log(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

Response Server::HandleReload(const std::string& triples) {
  Response r;
  if (storage_ != nullptr) {
    r.code = StatusCode::kInvalidArgument;
    r.message =
        "storage-backed server: RELOAD would bypass the WAL; use "
        "INGEST/CHECKPOINT";
    return r;
  }
  if (!options_.allow_reload) {
    r.code = StatusCode::kInvalidArgument;
    r.message = "reload is disabled on this server";
    return r;
  }
  uint64_t version = next_version_.fetch_add(1);
  // The configured shard count carries across reloads, so per-shard
  // warmed indexes are rebuilt (never dropped to unsharded) on swap.
  Result<std::shared_ptr<const Snapshot>> snapshot =
      LoadSnapshot(triples, version, options_.shards);
  if (!snapshot.ok()) {
    r.code = snapshot.status().code();
    r.message = snapshot.status().ToString();
    return r;
  }
  size_t facts = (*snapshot)->db.TotalFacts();
  snapshot_.Store(std::move(*snapshot));
  reloads_.fetch_add(1, std::memory_order_relaxed);
  r.message = "reloaded: " + std::to_string(facts) + " facts, version " +
              std::to_string(version);
  return r;
}

Response Server::HandleIngest(const std::string& body) {
  Response r;
  if (storage_ == nullptr) {
    r.code = StatusCode::kInvalidArgument;
    r.message =
        "this server has no durable storage attached; start wdpt_server "
        "with --data-dir to accept INGEST";
    return r;
  }
  Result<std::vector<storage::TripleOp>> ops =
      storage::ParseIngestBody(body);
  if (!ops.ok()) {
    r.code = ops.status().code();
    r.message = ops.status().ToString();
    return r;
  }
  Trace trace(next_request_id_.fetch_add(1, std::memory_order_relaxed));
  trace.set_mode("ingest");
  Result<storage::IngestResult> applied = storage_->Ingest(*ops, &trace);
  if (!applied.ok()) {
    r.code = applied.status().code();
    r.message = applied.status().ToString();
    metrics_.RecordIngest(trace, r.code);
    MaybeLogSlowQuery(trace, r.code);
    return r;
  }
  ingests_.fetch_add(1, std::memory_order_relaxed);
  metrics_.RecordIngest(trace, StatusCode::kOk);
  MaybeLogSlowQuery(trace, StatusCode::kOk);
  r.message = "ingested: " + std::to_string(applied->added) + " adds, " +
              std::to_string(applied->removed) + " removes, version " +
              std::to_string(applied->version);
  r.stats_json = "{\"added\":" + std::to_string(applied->added) +
                 ",\"removed\":" + std::to_string(applied->removed) +
                 ",\"version\":" + std::to_string(applied->version) +
                 ",\"facts\":" + std::to_string(applied->facts) + "}";
  return r;
}

Response Server::HandleCheckpoint() {
  Response r;
  if (storage_ == nullptr) {
    r.code = StatusCode::kInvalidArgument;
    r.message =
        "this server has no durable storage attached; start wdpt_server "
        "with --data-dir to accept CHECKPOINT";
    return r;
  }
  Trace trace(next_request_id_.fetch_add(1, std::memory_order_relaxed));
  trace.set_mode("checkpoint");
  Result<storage::CheckpointResult> done = storage_->Checkpoint(&trace);
  if (!done.ok()) {
    r.code = done.status().code();
    r.message = done.status().ToString();
    return r;
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  MaybeLogSlowQuery(trace, StatusCode::kOk);
  r.message = "checkpointed: snapshot " + std::to_string(done->snapshot_seq) +
              ", " + std::to_string(done->facts) + " facts, compacted " +
              std::to_string(done->wal_bytes_compacted) + " WAL bytes";
  return r;
}

Response Server::HandleStats() {
  Response r;
  r.stats_json = "{\"engine\":" + engine_.stats().ToJson() +
                 ",\"server\":" + counters().ToJson() + "}";
  return r;
}

}  // namespace wdpt::server
