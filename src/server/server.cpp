#include "src/server/server.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "src/server/exec.h"
#include "src/server/frame.h"

namespace wdpt::server {

namespace {

unsigned ResolveWorkers(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Sharded serving runs shard tasks on the engine's internal pool; a
// one-thread pool (the unsharded default) would serialize them, so
// widen it to hardware concurrency unless the caller chose a count.
EngineOptions ResolveEngineOptions(const ServerOptions& options) {
  EngineOptions engine = options.engine;
  if (options.shards > 1 && engine.num_threads == 1) {
    engine.num_threads = 0;  // 0 = hardware concurrency.
  }
  engine.answer_cache_bytes = options.answer_cache_bytes;
  return engine;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      engine_(ResolveEngineOptions(options)),
      pool_(ResolveWorkers(options.num_workers)),
      admission_(options.admission_capacity == 0 ? 1
                                                 : options.admission_capacity),
      stop_token_(CancelToken::Create()) {}

Server::~Server() { Stop(); }

Status Server::Start(std::shared_ptr<const Snapshot> initial) {
  if (initial == nullptr) {
    return Status::InvalidArgument("initial snapshot must not be null");
  }
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  next_version_.store(initial->version + 1);
  snapshot_.Store(std::move(initial));
  Result<int> listener = ListenLoopback(options_.port, &port_);
  if (!listener.ok()) {
    started_.store(false);
    return listener.status();
  }
  listen_fd_ = *listener;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::Ok();
}

Status Server::StartWithStorage(
    std::unique_ptr<storage::StorageManager> storage) {
  if (storage == nullptr) {
    return Status::InvalidArgument("storage manager must not be null");
  }
  storage_ = std::move(storage);
  std::shared_ptr<const Snapshot> initial = storage_->CurrentSnapshot();
  Status started = Start(std::move(initial));
  if (!started.ok()) storage_.reset();
  return started;
}

Status Server::StartReplica(const replication::ReplicatorOptions& replica) {
  if (started_.load()) {
    return Status::InvalidArgument("server already started");
  }
  if (storage_ != nullptr) {
    return Status::InvalidArgument(
        "a server is either a primary (storage) or a replica, not both");
  }
  replication::ReplicatorOptions opts = replica;
  if (opts.slow_apply_ms == 0) opts.slow_apply_ms = options_.slow_query_ms;
  replication::Replicator::LogFn log = options_.slow_query_log;
  if (!log) {
    log = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  replicator_ = std::make_unique<replication::Replicator>(
      opts,
      [this](std::shared_ptr<const Snapshot> snapshot) {
        SwapSnapshot(std::move(snapshot));
      },
      std::move(log));
  Result<std::shared_ptr<const Snapshot>> initial = replicator_->Bootstrap();
  if (!initial.ok()) {
    replicator_.reset();
    return initial.status();
  }
  Status started = Start(std::move(*initial));
  if (!started.ok()) {
    replicator_.reset();
    return started;
  }
  // Only now: streamed publishes must never race Start's initial
  // Store, or a version could briefly run backwards.
  replicator_->StartStreaming();
  return Status::Ok();
}

void Server::Stop() {
  if (options_.drain_ms != 0) {
    Drain(options_.drain_ms);
    return;
  }
  StopHard();
}

void Server::Drain(uint64_t deadline_ms) {
  if (!started_.load()) return;
  if (stopping_.load()) {
    StopHard();  // Already hard-stopping; nothing left to drain.
    return;
  }
  // First drainer shuts the front door; latecomers just wait alongside.
  bool first = !draining_.exchange(true);
  if (first) StopAccepting();
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  bool clean;
  {
    std::unique_lock<std::mutex> lock(active_mu_);
    clean = active_cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                                [this] { return active_requests_ == 0; });
  }
  if (first) {
    std::string line =
        "drain: " +
        std::to_string(drained_requests_.load(std::memory_order_relaxed)) +
        " requests completed, " +
        std::to_string(drain_rejections_.load(std::memory_order_relaxed)) +
        " arrivals shed, " + std::to_string(ElapsedNs(start) / 1000000) +
        "ms" + (clean ? "" : " (deadline hit; hard-cutting stragglers)");
    if (options_.slow_query_log) {
      options_.slow_query_log(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  StopHard();
}

void Server::StopAccepting() {
  if (accept_stopped_.exchange(true)) return;
  // Unblock the accept loop and join it, so no new sessions appear
  // while existing ones wind down.
  ShutdownSocket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Server::StopHard() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // Wind down in-flight evaluations; admitted requests surface
  // kCancelled rather than blocking shutdown.
  stop_token_.RequestCancel();
  // Replication threads block on sockets / the hub's condvar, not on
  // the cancel token, so wake them explicitly before joining sessions:
  // subscriber streams poll hub.Next and exit on kClosed.
  if (replicator_ != nullptr) replicator_->Stop();
  if (storage_ != nullptr) storage_->hub().Close();
  StopAccepting();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  {
    // Sessions remove their fd before closing it, so everything in the
    // list is open; shutdown unblocks their frame reads.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (int fd : session_fds_) ShutdownSocket(fd);
  }
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(session_threads_);
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
}

void Server::BeginRequest() {
  std::lock_guard<std::mutex> lock(active_mu_);
  ++active_requests_;
}

void Server::EndRequest(bool was_work) {
  if (was_work && draining_.load(std::memory_order_acquire)) {
    drained_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(active_mu_);
  if (--active_requests_ == 0) active_cv_.notify_all();
}

bool Server::IsWorkCommand(Command command) {
  switch (command) {
    case Command::kQuery:
    case Command::kReload:
    case Command::kIngest:
    case Command::kCheckpoint:
    // Replication traffic counts as work: a drain must not hand a new
    // subscriber a stream it is about to tear, and a snapshot fetch is
    // as heavy as any query.
    case Command::kSubscribe:
    case Command::kWalSeg:
    case Command::kSnapshotFetch:
      return true;
    case Command::kPing:
    case Command::kStats:
    case Command::kMetrics:
      return false;
  }
  return true;  // Unknown commands count as work: shed while draining.
}

void Server::SwapSnapshot(std::shared_ptr<const Snapshot> snapshot) {
  snapshot_.Store(std::move(snapshot));
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections = connections_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.queries = queries_.load(std::memory_order_relaxed);
  c.admitted = admission_.admitted();
  c.rejected_overload = admission_.rejected();
  c.reloads = reloads_.load(std::memory_order_relaxed);
  c.ingests = ingests_.load(std::memory_order_relaxed);
  c.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  c.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  c.drained_requests = drained_requests_.load(std::memory_order_relaxed);
  c.drain_rejections = drain_rejections_.load(std::memory_order_relaxed);
  return c;
}

std::string Server::MetricsText() const {
  storage::StorageStats storage_stats;
  const storage::StorageStats* storage_ptr = nullptr;
  replication::PrimaryReplicationStats primary_stats;
  const replication::PrimaryReplicationStats* primary_ptr = nullptr;
  replication::ReplicaReplicationStats replica_stats;
  const replication::ReplicaReplicationStats* replica_ptr = nullptr;
  if (storage_ != nullptr) {
    storage_stats = storage_->stats();
    storage_ptr = &storage_stats;
    primary_stats = storage_->hub().stats();
    primary_ptr = &primary_stats;
  } else if (replicator_ != nullptr) {
    replica_stats = ReplicaStats();
    replica_ptr = &replica_stats;
  }
  return metrics_.RenderPrometheus(counters(), engine_.stats(),
                                   admission_.in_flight(),
                                   snapshot_.Load()->version, storage_ptr,
                                   primary_ptr, replica_ptr);
}

void Server::AcceptLoop() {
  for (;;) {
    Result<int> fd = AcceptConnection(listen_fd_);
    if (!fd.ok()) {
      if (stopping_.load() ||
          fd.status().code() == StatusCode::kCancelled) {
        return;
      }
      continue;  // Transient accept error (e.g. EMFILE): keep serving.
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stopping_.load()) {
      CloseSocket(*fd);
      return;
    }
    session_fds_.push_back(*fd);
    session_threads_.emplace_back(&Server::SessionLoop, this, *fd);
  }
}

void Server::SessionLoop(int fd) {
  if (options_.idle_timeout_ms != 0) {
    SetRecvTimeout(fd, options_.idle_timeout_ms);
  }
  while (!stopping_.load()) {
    Result<std::string> frame = ReadFrame(fd, options_.max_frame_bytes);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        // Idle peer: say why the session is ending, then hang up. A
        // blocked mid-frame read also lands here, which is fine — a
        // peer that stalls inside a frame for the whole idle window is
        // indistinguishable from a dead one.
        idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.code = StatusCode::kDeadlineExceeded;
        r.message = "idle timeout after " +
                    std::to_string(options_.idle_timeout_ms) +
                    " ms; closing connection";
        WriteFrame(fd, SerializeResponse(r), options_.max_frame_bytes);
        break;
      }
      if (frame.status().code() == StatusCode::kResourceExhausted) {
        // Oversized announced frame: the stream is unreadable past this
        // point, so answer once and hang up.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.code = StatusCode::kResourceExhausted;
        r.message = frame.status().ToString();
        WriteFrame(fd, SerializeResponse(r), options_.max_frame_bytes);
      }
      break;  // EOF or socket error: session over.
    }

    // The active window spans decode through the response write, so a
    // drain that waits for zero active requests knows every answer it
    // admitted — rejections included — reached the wire untorn.
    BeginRequest();
    Response response;
    bool work = false;
    bool stream = false;
    replication::Hub::Cursor cursor;
    Result<Request> request = ParseRequest(*frame);
    if (!request.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      response.code = request.status().code();
      response.message = request.status().ToString();
    } else {
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (draining_.load(std::memory_order_acquire) &&
          IsWorkCommand(request->command)) {
        // Shutting down: shed new work with a retry hint instead of
        // starting an evaluation the hard cut would tear. Control
        // commands (PING/STATS/METRICS) stay served so operators can
        // watch the drain.
        drain_rejections_.fetch_add(1, std::memory_order_relaxed);
        response.code = StatusCode::kOverloaded;
        response.retry_after_ms = options_.retry_after_ms;
        response.message =
            "server draining; retry against the restarted server";
      } else if (request->command == Command::kSubscribe) {
        // SUBSCRIBE flips the session from request/response into a
        // one-way WALSEG stream. The ack rides the normal write path
        // below (so drain accounting sees it), then the session turns
        // into a streamer and never reads another request.
        work = true;
        stream = PrepareSubscription(*request, &response, &cursor);
      } else {
        work = true;
        response = Dispatch(*request);
      }
    }

    std::string payload = SerializeResponse(response);
    if (payload.size() > options_.max_frame_bytes) {
      // The result set outgrew the frame cap: report instead of
      // shipping a frame the client must reject.
      Response too_big;
      too_big.code = StatusCode::kResourceExhausted;
      too_big.message = "response of " + std::to_string(payload.size()) +
                        " bytes exceeds the frame cap; narrow the query "
                        "or set max-results";
      payload = SerializeResponse(too_big);
    }
    bool written = WriteFrame(fd, payload, options_.max_frame_bytes).ok();
    EndRequest(work);
    if (!written) break;
    if (stream) {
      // The subscription ack is on the wire and the request window is
      // closed (streams outlive any drain deadline by design — the
      // replica reconnects to the restarted primary). Ship segments
      // until the replica hangs up, a checkpoint advances the epoch,
      // or shutdown closes the hub.
      StreamWalSegments(fd, cursor);
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (size_t i = 0; i < session_fds_.size(); ++i) {
      if (session_fds_[i] == fd) {
        session_fds_.erase(session_fds_.begin() + i);
        break;
      }
    }
  }
  CloseSocket(fd);
}

Response Server::Dispatch(const Request& request) {
  if (replicator_ != nullptr &&
      (request.command == Command::kIngest ||
       request.command == Command::kCheckpoint ||
       request.command == Command::kReload)) {
    // Replicas are read-only: a write applied here would fork the
    // replica from the WAL stream. Name the primary so clients can
    // follow without a topology lookup.
    redirects_.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.code = StatusCode::kRedirect;
    r.primary = replicator_->primary_address();
    r.message = "replica is read-only; send writes to the primary at " +
                r.primary;
    return r;
  }
  switch (request.command) {
    case Command::kPing: {
      Response r;
      r.message = "pong";
      return r;
    }
    case Command::kStats:
      return HandleStats();
    case Command::kMetrics:
      return HandleMetrics();
    case Command::kReload:
      return HandleReload(request.body);
    case Command::kIngest:
      return HandleIngest(request.body);
    case Command::kCheckpoint:
      return HandleCheckpoint();
    case Command::kQuery:
      return HandleQuery(request.query);
    case Command::kSubscribe: {
      // SUBSCRIBE is intercepted in SessionLoop before dispatch; this
      // arm only fires if that routing ever regresses.
      Response r;
      r.code = StatusCode::kInternal;
      r.message = "SUBSCRIBE reached dispatch outside a session stream";
      return r;
    }
    case Command::kWalSeg: {
      // WALSEG frames flow primary→replica inside a subscription
      // stream; one arriving as a request is a confused peer.
      Response r;
      r.code = StatusCode::kInvalidArgument;
      r.message = "WALSEG is stream-only; SUBSCRIBE to receive segments";
      return r;
    }
    case Command::kSnapshotFetch:
      return HandleSnapshotFetch();
  }
  Response r;
  r.code = StatusCode::kInternal;
  r.message = "unhandled command";
  return r;
}

Response Server::HandleQuery(const sparql::QueryRequest& query) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (replicator_ != nullptr &&
      replicator_->options().max_lag_batches != 0) {
    // Shed reads on a replica that has fallen too far behind the
    // primary: a bounded-staleness guarantee beats serving arbitrarily
    // old answers. Checked before admission so lagging replicas shed
    // instantly instead of queueing.
    uint64_t lag = replicator_->lag_batches();
    uint64_t max_lag = replicator_->options().max_lag_batches;
    if (lag > max_lag) {
      lag_sheds_.fetch_add(1, std::memory_order_relaxed);
      Response r;
      r.code = StatusCode::kOverloaded;
      r.retry_after_ms = options_.retry_after_ms;
      r.message = "replica lagging " + std::to_string(lag) +
                  " batches behind the primary (max " +
                  std::to_string(max_lag) + "); retry or read the primary";
      return r;
    }
  }
  sparql::QueryRequest local = query;
  if (local.deadline_ms == 0) {
    local.deadline_ms = options_.default_deadline_ms;
  }
  if (options_.max_deadline_ms != 0 &&
      (local.deadline_ms == 0 ||
       local.deadline_ms > options_.max_deadline_ms)) {
    local.deadline_ms = options_.max_deadline_ms;
  }

  if (!admission_.TryAdmit()) {
    metrics_.RecordRejected();
    Response r;
    r.code = StatusCode::kOverloaded;
    r.retry_after_ms = options_.retry_after_ms;
    r.message = "admission queue full (" +
                std::to_string(admission_.capacity()) +
                " requests in flight); retry later";
    return r;
  }

  // Pin the dataset version and start the deadline clock *now*, before
  // the pool handoff, so time spent waiting for a worker counts.
  std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  CancelToken token = stop_token_;
  if (local.deadline_ms != 0) {
    token = CancelToken::Child(stop_token_);
    token.SetDeadline(CancelToken::Clock::now() +
                      std::chrono::milliseconds(local.deadline_ms));
  }
  local.deadline_ms = 0;  // Carried by the token from here on.

  // The trace crosses the pool handoff with the response: the latch's
  // CountDown/Wait pair orders the worker's writes before our reads.
  Trace trace(next_request_id_.fetch_add(1, std::memory_order_relaxed));
  Response response;
  BatchLatch latch(1);
  std::chrono::steady_clock::time_point submitted =
      std::chrono::steady_clock::now();
  pool_.Submit([this, &response, &latch, &local, &trace, snapshot, token,
                submitted] {
    trace.Record(TraceStage::kQueueWait, ElapsedNs(submitted));
    response = ExecuteQuery(&engine_, *snapshot, local, token, &trace);
    latch.CountDown();
  });
  latch.Wait();
  admission_.Release();
  metrics_.RecordQuery(trace, local.mode, response.code);
  MaybeLogSlowQuery(trace, response.code);
  return response;
}

Response Server::HandleMetrics() {
  Response r;
  std::string text = MetricsText();
  // One response row per exposition line; the client reassembles with
  // newlines. Rows are the protocol's only multi-line channel.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    r.rows.emplace_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return r;
}

void Server::MaybeLogSlowQuery(const Trace& trace, StatusCode code) {
  if (options_.slow_query_ms == 0) return;
  uint64_t total_ns = trace.TotalNs();
  if (total_ns < options_.slow_query_ms * 1000000ull) return;
  std::string line = "slow query id=" + std::to_string(trace.request_id()) +
                     " status=" + StatusCodeName(code) + " mode=" +
                     trace.mode() + " class=" +
                     TractabilityClassName(trace.classification()) +
                     " total=" + std::to_string(total_ns / 1000000) + "ms " +
                     trace.BreakdownString();
  if (options_.slow_query_log) {
    options_.slow_query_log(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

Response Server::HandleReload(const std::string& triples) {
  Response r;
  if (storage_ != nullptr) {
    r.code = StatusCode::kInvalidArgument;
    r.message =
        "storage-backed server: RELOAD would bypass the WAL; use "
        "INGEST/CHECKPOINT";
    return r;
  }
  if (!options_.allow_reload) {
    r.code = StatusCode::kInvalidArgument;
    r.message = "reload is disabled on this server";
    return r;
  }
  uint64_t version = next_version_.fetch_add(1);
  // The configured shard count carries across reloads, so per-shard
  // warmed indexes are rebuilt (never dropped to unsharded) on swap.
  Result<std::shared_ptr<const Snapshot>> snapshot =
      LoadSnapshot(triples, version, options_.shards);
  if (!snapshot.ok()) {
    r.code = snapshot.status().code();
    r.message = snapshot.status().ToString();
    return r;
  }
  size_t facts = (*snapshot)->db.TotalFacts();
  snapshot_.Store(std::move(*snapshot));
  reloads_.fetch_add(1, std::memory_order_relaxed);
  r.message = "reloaded: " + std::to_string(facts) + " facts, version " +
              std::to_string(version);
  return r;
}

Response Server::HandleIngest(const std::string& body) {
  Response r;
  if (storage_ == nullptr) {
    r.code = StatusCode::kInvalidArgument;
    r.message =
        "this server has no durable storage attached; start wdpt_server "
        "with --data-dir to accept INGEST";
    return r;
  }
  Result<std::vector<storage::TripleOp>> ops =
      storage::ParseIngestBody(body);
  if (!ops.ok()) {
    r.code = ops.status().code();
    r.message = ops.status().ToString();
    return r;
  }
  Trace trace(next_request_id_.fetch_add(1, std::memory_order_relaxed));
  trace.set_mode("ingest");
  Result<storage::IngestResult> applied = storage_->Ingest(*ops, &trace);
  if (!applied.ok()) {
    r.code = applied.status().code();
    r.message = applied.status().ToString();
    metrics_.RecordIngest(trace, r.code);
    MaybeLogSlowQuery(trace, r.code);
    return r;
  }
  ingests_.fetch_add(1, std::memory_order_relaxed);
  metrics_.RecordIngest(trace, StatusCode::kOk);
  MaybeLogSlowQuery(trace, StatusCode::kOk);
  r.message = "ingested: " + std::to_string(applied->added) + " adds, " +
              std::to_string(applied->removed) + " removes, version " +
              std::to_string(applied->version);
  r.stats_json = "{\"added\":" + std::to_string(applied->added) +
                 ",\"removed\":" + std::to_string(applied->removed) +
                 ",\"version\":" + std::to_string(applied->version) +
                 ",\"facts\":" + std::to_string(applied->facts) + "}";
  return r;
}

Response Server::HandleCheckpoint() {
  Response r;
  if (storage_ == nullptr) {
    r.code = StatusCode::kInvalidArgument;
    r.message =
        "this server has no durable storage attached; start wdpt_server "
        "with --data-dir to accept CHECKPOINT";
    return r;
  }
  Trace trace(next_request_id_.fetch_add(1, std::memory_order_relaxed));
  trace.set_mode("checkpoint");
  Result<storage::CheckpointResult> done = storage_->Checkpoint(&trace);
  if (!done.ok()) {
    r.code = done.status().code();
    r.message = done.status().ToString();
    return r;
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  MaybeLogSlowQuery(trace, StatusCode::kOk);
  r.message = "checkpointed: snapshot " + std::to_string(done->snapshot_seq) +
              ", " + std::to_string(done->facts) + " facts, compacted " +
              std::to_string(done->wal_bytes_compacted) + " WAL bytes";
  return r;
}

bool Server::PrepareSubscription(const Request& request, Response* ack,
                                 replication::Hub::Cursor* cursor) {
  if (storage_ == nullptr) {
    ack->code = StatusCode::kInvalidArgument;
    ack->message =
        replicator_ != nullptr
            ? "replicas do not serve subscriptions; subscribe to the "
              "primary at " +
                  replicator_->primary_address()
            : "this server has no durable storage attached; only a "
              "storage-backed primary ships WAL segments";
    return false;
  }
  replication::Hub& hub = storage_->hub();
  Status seek = hub.Seek(request.epoch, request.offset, cursor);
  if (!seek.ok()) {
    // The requested position predates the retained epoch (a checkpoint
    // compacted it away) or never existed. The replica's recovery path
    // is a fresh snapshot, so say so — the session stays in
    // request/response mode for the SNAPSHOT-FETCH that follows.
    hub.RecordStaleSubscribe();
    ack->code = StatusCode::kNotFound;
    ack->epoch = hub.epoch();
    ack->message = seek.ToString();
    return false;
  }
  ack->code = StatusCode::kOk;
  ack->epoch = request.epoch;
  ack->head_seq = hub.head_seq();
  ack->message = "subscribed at epoch " + std::to_string(request.epoch) +
                 " offset " + std::to_string(request.offset);
  return true;
}

void Server::StreamWalSegments(int fd, replication::Hub::Cursor cursor) {
  replication::Hub& hub = storage_->hub();
  hub.AddSubscriber();
  for (;;) {
    replication::BatchRecord record;
    replication::Hub::NextResult next = hub.Next(&cursor, &record, 250);
    if (next == replication::Hub::NextResult::kClosed ||
        next == replication::Hub::NextResult::kStale) {
      // Shutdown, or a checkpoint advanced the epoch past this stream's
      // position. Closing the socket is the signal: the replica
      // re-subscribes and (on kStale) lands in the snapshot-fetch path.
      break;
    }
    bool is_batch = next == replication::Hub::NextResult::kBatch;
    Request seg;
    seg.command = Command::kWalSeg;
    seg.epoch = record.epoch;
    seg.offset = record.offset;
    seg.next_offset = record.next_offset;
    seg.seq = record.seq;
    // Stamped at send time, not enqueue time, so a replica draining a
    // backlog still measures its true lag from each frame.
    seg.head_seq = hub.head_seq();
    seg.body = std::move(record.ops_text);
    std::string payload = SerializeRequest(seg);
    if (!WriteFrame(fd, payload, options_.max_frame_bytes).ok()) break;
    hub.RecordShipped(payload.size(), is_batch);
  }
  hub.RemoveSubscriber();
}

Response Server::HandleSnapshotFetch() {
  Response r;
  if (storage_ == nullptr) {
    r.code = StatusCode::kInvalidArgument;
    r.message =
        replicator_ != nullptr
            ? "replicas do not serve snapshots; fetch from the primary "
              "at " +
                  replicator_->primary_address()
            : "this server has no durable storage attached; only a "
              "storage-backed primary serves snapshots";
    return r;
  }
  Result<storage::ReplicaSnapshot> snapshot =
      storage_->FetchSnapshotForReplica();
  if (!snapshot.ok()) {
    r.code = snapshot.status().code();
    r.message = snapshot.status().ToString();
    return r;
  }
  storage_->hub().RecordSnapshotFetch();
  r.epoch = snapshot->epoch;
  r.message = "snapshot epoch " + std::to_string(snapshot->epoch) + ", " +
              std::to_string(snapshot->bytes.size()) + " bytes";
  r.body = std::move(snapshot->bytes);
  return r;
}

replication::ReplicaReplicationStats Server::ReplicaStats() const {
  replication::ReplicaReplicationStats stats = replicator_->stats();
  stats.redirects = redirects_.load(std::memory_order_relaxed);
  stats.lag_sheds = lag_sheds_.load(std::memory_order_relaxed);
  return stats;
}

Response Server::HandleStats() {
  Response r;
  r.stats_json = "{\"engine\":" + engine_.stats().ToJson() +
                 ",\"server\":" + counters().ToJson();
  if (storage_ != nullptr) {
    r.stats_json += ",\"storage\":" + storage_->stats().ToJson() +
                    ",\"replication\":" + storage_->hub().stats().ToJson();
  } else if (replicator_ != nullptr) {
    r.stats_json += ",\"replication\":" + ReplicaStats().ToJson();
  }
  r.stats_json += "}";
  return r;
}

}  // namespace wdpt::server
