// Random WDPT generators with controllable class parameters (tree shape,
// node-label width, interface size, projection fraction).

#ifndef WDPT_SRC_GEN_WDPT_GEN_H_
#define WDPT_SRC_GEN_WDPT_GEN_H_

#include <cstdint>

#include "src/relational/schema.h"
#include "src/relational/term.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt::gen {

/// Shape/class parameters for random chain-labelled WDPTs over the binary
/// relation "E". Each node's label is a fresh path of `atoms_per_node`
/// E-atoms; a child shares exactly `interface_size` (1 or 2) variables
/// with its parent's path, so the result is locally TW(1) and in
/// BI(interface_size * branching capped appropriately).
struct RandomWdptOptions {
  uint32_t depth = 2;           ///< Levels below the root.
  uint32_t branching = 2;       ///< Children per internal node.
  uint32_t atoms_per_node = 3;  ///< Path length per node label.
  uint32_t interface_size = 1;  ///< Shared variables with the parent.
  double free_fraction = 0.5;   ///< Fraction of variables kept free.
  uint64_t seed = 1;
};

/// Builds and validates a random WDPT per `options`; the free variables
/// are a random subset (always including the root path's endpoints so
/// answers are non-trivial).
PatternTree MakeRandomChainWdpt(Schema* schema, Vocabulary* vocab,
                                const RandomWdptOptions& options);

}  // namespace wdpt::gen

#endif  // WDPT_SRC_GEN_WDPT_GEN_H_
