// Synthetic database generators for tests, examples and benches.

#ifndef WDPT_SRC_GEN_DB_GEN_H_
#define WDPT_SRC_GEN_DB_GEN_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/relational/schema.h"

namespace wdpt::gen {

/// Random directed graph over the binary relation `E`.
struct RandomGraphOptions {
  uint32_t num_vertices = 100;
  uint64_t num_edges = 300;
  uint64_t seed = 1;
};

/// Creates (or reuses) relation "E" in `schema` and fills a database with
/// `num_edges` distinct random edges over constants "n0".."n<k>".
Database MakeRandomGraphDb(Schema* schema, Vocabulary* vocab,
                           const RandomGraphOptions& options,
                           RelationId* edge_rel);

/// The paper's running-example domain (Figure 1) at scale: bands with
/// records; a fraction of records carries an NME rating, a fraction of
/// bands carries a formation year, and a fraction of records predates
/// 2010 (so the mandatory pattern filters them out).
struct MusicCatalogOptions {
  uint32_t num_bands = 100;
  uint32_t records_per_band = 5;
  double rating_fraction = 0.5;     ///< Records with an NME_rating triple.
  double formed_fraction = 0.5;     ///< Bands with a formed_in triple.
  double recent_fraction = 0.8;     ///< Records published "after_2010".
  uint64_t seed = 1;
};

/// Builds the catalog as an RDF database of `ctx`.
Database MakeMusicCatalog(RdfContext* ctx, const MusicCatalogOptions& options);

}  // namespace wdpt::gen

#endif  // WDPT_SRC_GEN_DB_GEN_H_
