#include "src/gen/reductions.h"

#include <random>
#include <set>
#include <string>

#include "src/common/status.h"

namespace wdpt::gen {

ThreeColInstance MakeThreeColInstance(const UndirectedGraph& graph,
                                      Schema* schema, Vocabulary* vocab,
                                      uint32_t tag) {
  Result<RelationId> rel = schema->AddRelation("col_c", 2);
  WDPT_CHECK(rel.ok());
  RelationId c = *rel;
  std::string prefix = "3c" + std::to_string(tag) + "_";

  // Database {c(1,1), c(2,2), c(3,3)}.
  Database db(schema);
  ConstantId colors[3];
  for (int i = 0; i < 3; ++i) {
    colors[i] = vocab->ConstantIdOf(std::to_string(i + 1));
    ConstantId tuple[2] = {colors[i], colors[i]};
    Status status = db.AddFact(c, tuple);
    WDPT_CHECK(status.ok());
  }

  // Root: {c(u_i, u_i) | i} and c(x, x).
  PatternTree tree;
  Term x = vocab->Variable(prefix + "x");
  tree.AddAtom(PatternTree::kRoot, Atom(c, {x, x}));
  std::vector<Term> u(graph.num_vertices);
  for (uint32_t i = 0; i < graph.num_vertices; ++i) {
    u[i] = vocab->Variable(prefix + "u" + std::to_string(i));
    tree.AddAtom(PatternTree::kRoot, Atom(c, {u[i], u[i]}));
  }

  // Children n_j^k: {c(u_j1, k), c(u_j2, k), c(x_j^k, x_j^k)}.
  std::vector<VariableId> free_vars = {x.variable_id()};
  for (uint32_t j = 0; j < graph.edges.size(); ++j) {
    auto [v1, v2] = graph.edges[j];
    for (int k = 0; k < 3; ++k) {
      Term xjk = vocab->Variable(prefix + "x" + std::to_string(j) + "_" +
                                 std::to_string(k));
      free_vars.push_back(xjk.variable_id());
      std::vector<Atom> label;
      label.emplace_back(c, std::vector<Term>{u[v1],
                                              Term::Constant(colors[k])});
      label.emplace_back(c, std::vector<Term>{u[v2],
                                              Term::Constant(colors[k])});
      label.emplace_back(c, std::vector<Term>{xjk, xjk});
      tree.AddChild(PatternTree::kRoot, std::move(label));
    }
  }
  tree.SetFreeVariables(std::move(free_vars));
  Status status = tree.Validate();
  WDPT_CHECK(status.ok());

  Mapping h;
  h.Bind(x.variable_id(), colors[0]);
  return ThreeColInstance{std::move(tree), std::move(db), std::move(h)};
}

UndirectedGraph MakeRandomUndirectedGraph(uint32_t num_vertices,
                                          uint32_t num_edges, uint64_t seed) {
  UndirectedGraph g;
  g.num_vertices = num_vertices;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> pick(0, num_vertices - 1);
  std::set<std::pair<uint32_t, uint32_t>> used;
  uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  while (used.size() < std::min<uint64_t>(num_edges, max_edges)) {
    uint32_t a = pick(rng);
    uint32_t b = pick(rng);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (used.emplace(a, b).second) g.edges.emplace_back(a, b);
  }
  return g;
}

UndirectedGraph MakeCycleGraph(uint32_t n) {
  UndirectedGraph g;
  g.num_vertices = n;
  for (uint32_t i = 0; i < n; ++i) g.edges.emplace_back(i, (i + 1) % n);
  return g;
}

UndirectedGraph MakeCompleteGraph(uint32_t n) {
  UndirectedGraph g;
  g.num_vertices = n;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.edges.emplace_back(i, j);
  }
  return g;
}

}  // namespace wdpt::gen
