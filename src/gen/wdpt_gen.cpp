#include "src/gen/wdpt_gen.h"

#include <random>
#include <string>
#include <vector>

#include "src/common/algo.h"
#include "src/common/status.h"
#include "src/gen/cq_gen.h"

namespace wdpt::gen {

namespace {

struct Builder {
  PatternTree tree;
  Schema* schema;
  Vocabulary* vocab;
  RelationId edge;
  const RandomWdptOptions& options;
  std::mt19937_64 rng;
  uint64_t var_counter = 0;

  Builder(Schema* s, Vocabulary* v, const RandomWdptOptions& o)
      : schema(s), vocab(v), edge(EdgeRelation(s)), options(o),
        rng(o.seed) {}

  Term FreshVar() {
    return Term::Variable(vocab->FreshVariable("w"));
  }

  // Builds a path label starting from `anchors` (the variables shared
  // with the parent; empty for the root) and returns the label plus the
  // path's variables.
  std::vector<Atom> MakeLabel(const std::vector<Term>& anchors,
                              std::vector<Term>* path_vars) {
    uint32_t len = options.atoms_per_node;
    std::vector<Term> vars;
    vars.reserve(len + 1);
    for (uint32_t i = 0; i <= len; ++i) {
      if (i < anchors.size()) {
        vars.push_back(anchors[i]);
      } else {
        vars.push_back(FreshVar());
      }
    }
    std::vector<Atom> label;
    for (uint32_t i = 0; i < len; ++i) {
      label.emplace_back(edge, std::vector<Term>{vars[i], vars[i + 1]});
    }
    *path_vars = std::move(vars);
    return label;
  }

  void Grow(NodeId node, const std::vector<Term>& node_path,
            uint32_t remaining_depth) {
    if (remaining_depth == 0) return;
    std::uniform_int_distribution<size_t> pick(0, node_path.size() - 1);
    for (uint32_t b = 0; b < options.branching; ++b) {
      // Anchors: `interface_size` variables of the parent path.
      std::vector<Term> anchors;
      size_t start = pick(rng);
      for (uint32_t i = 0; i < options.interface_size; ++i) {
        anchors.push_back(node_path[(start + i) % node_path.size()]);
      }
      std::vector<Term> child_path;
      std::vector<Atom> label = MakeLabel(anchors, &child_path);
      NodeId child = tree.AddChild(node, std::move(label));
      Grow(child, child_path, remaining_depth - 1);
    }
  }
};

}  // namespace

PatternTree MakeRandomChainWdpt(Schema* schema, Vocabulary* vocab,
                                const RandomWdptOptions& options) {
  WDPT_CHECK(options.atoms_per_node >= 1);
  WDPT_CHECK(options.interface_size >= 1 &&
             options.interface_size <= options.atoms_per_node + 1);
  Builder builder(schema, vocab, options);
  std::vector<Term> root_path;
  std::vector<Atom> root_label = builder.MakeLabel({}, &root_path);
  for (const Atom& a : root_label) {
    builder.tree.AddAtom(PatternTree::kRoot, a);
  }
  builder.Grow(PatternTree::kRoot, root_path, options.depth);

  // Free variables: root path endpoints plus a random subset.
  std::vector<VariableId> all = builder.tree.AllVariables();
  std::vector<VariableId> free_vars = {root_path.front().variable_id(),
                                       root_path.back().variable_id()};
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (VariableId v : all) {
    if (coin(builder.rng) < options.free_fraction) free_vars.push_back(v);
  }
  SortUnique(&free_vars);
  builder.tree.SetFreeVariables(std::move(free_vars));
  Status status = builder.tree.Validate();
  WDPT_CHECK(status.ok());
  return std::move(builder.tree);
}

}  // namespace wdpt::gen
