#include "src/gen/db_gen.h"

#include <random>
#include <set>
#include <string>

namespace wdpt::gen {

Database MakeRandomGraphDb(Schema* schema, Vocabulary* vocab,
                           const RandomGraphOptions& options,
                           RelationId* edge_rel) {
  Result<RelationId> rel = schema->AddRelation("E", 2);
  WDPT_CHECK(rel.ok());
  if (edge_rel != nullptr) *edge_rel = *rel;

  Database db(schema);
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<uint32_t> pick(0, options.num_vertices - 1);
  std::vector<ConstantId> nodes;
  nodes.reserve(options.num_vertices);
  for (uint32_t i = 0; i < options.num_vertices; ++i) {
    nodes.push_back(vocab->ConstantIdOf("n" + std::to_string(i)));
  }
  std::set<std::pair<uint32_t, uint32_t>> used;
  uint64_t max_edges =
      static_cast<uint64_t>(options.num_vertices) * options.num_vertices;
  uint64_t target = std::min(options.num_edges, max_edges);
  while (used.size() < target) {
    uint32_t a = pick(rng);
    uint32_t b = pick(rng);
    if (!used.emplace(a, b).second) continue;
    ConstantId tuple[2] = {nodes[a], nodes[b]};
    Status status = db.AddFact(*rel, tuple);
    WDPT_CHECK(status.ok());
  }
  return db;
}

Database MakeMusicCatalog(RdfContext* ctx,
                          const MusicCatalogOptions& options) {
  Database db = ctx->MakeDatabase();
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (uint32_t b = 0; b < options.num_bands; ++b) {
    std::string band = "band" + std::to_string(b);
    if (coin(rng) < options.formed_fraction) {
      ctx->AddTriple(&db, band, "formed_in",
                     std::to_string(1960 + b % 60));
    }
    for (uint32_t r = 0; r < options.records_per_band; ++r) {
      std::string record = band + "_rec" + std::to_string(r);
      ctx->AddTriple(&db, record, "recorded_by", band);
      ctx->AddTriple(&db, record, "published",
                     coin(rng) < options.recent_fraction ? "after_2010"
                                                         : "before_2010");
      if (coin(rng) < options.rating_fraction) {
        ctx->AddTriple(&db, record, "NME_rating",
                       std::to_string(1 + (b + r) % 10));
      }
    }
  }
  return db;
}

}  // namespace wdpt::gen
