// Conjunctive-query generators: canonical shapes (paths, cycles, cliques,
// stars, grids) over a binary relation, plus random CQs.

#ifndef WDPT_SRC_GEN_CQ_GEN_H_
#define WDPT_SRC_GEN_CQ_GEN_H_

#include <cstdint>
#include <string_view>

#include "src/cq/cq.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt::gen {

/// Ensures relation `name` (binary) exists and returns its id.
RelationId EdgeRelation(Schema* schema, std::string_view name = "E");

/// Boolean path query E(x1,x2), ..., E(x_{len}, x_{len+1}); treewidth 1.
/// Variables are named "<prefix>0".."<prefix><len>".
ConjunctiveQuery MakePathCq(Schema* schema, Vocabulary* vocab, uint32_t len,
                            std::string_view prefix = "p");

/// Boolean cycle query of length len >= 3; treewidth 2.
ConjunctiveQuery MakeCycleCq(Schema* schema, Vocabulary* vocab, uint32_t len,
                             std::string_view prefix = "c");

/// Boolean clique query over n >= 2 variables (all ordered pairs);
/// treewidth n - 1.
ConjunctiveQuery MakeCliqueCq(Schema* schema, Vocabulary* vocab, uint32_t n,
                              std::string_view prefix = "k");

/// Boolean grid query over an n x m variable grid (horizontal and
/// vertical edges); treewidth min(n, m).
ConjunctiveQuery MakeGridCq(Schema* schema, Vocabulary* vocab, uint32_t n,
                            uint32_t m, std::string_view prefix = "g");

/// Random Boolean CQ with `num_atoms` binary atoms over `num_vars`
/// variables (uniform endpoints, connected not guaranteed).
ConjunctiveQuery MakeRandomCq(Schema* schema, Vocabulary* vocab,
                              uint32_t num_atoms, uint32_t num_vars,
                              uint64_t seed, std::string_view prefix = "r");

}  // namespace wdpt::gen

#endif  // WDPT_SRC_GEN_CQ_GEN_H_
