// Hardness-witness constructions from the paper's proofs, usable as
// adversarial workloads: the 3-colorability reduction of Proposition 3
// (EVAL(g-TW(1)) is NP-complete).

#ifndef WDPT_SRC_GEN_REDUCTIONS_H_
#define WDPT_SRC_GEN_REDUCTIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/relational/schema.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt::gen {

/// An undirected graph as an edge list over vertices 0..num_vertices-1.
struct UndirectedGraph {
  uint32_t num_vertices = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};

/// Output of the Proposition 3 reduction: G is 3-colorable iff
/// h in tree(db). The tree is globally in TW(1) (and HW(1)).
struct ThreeColInstance {
  PatternTree tree;
  Database db;
  Mapping h;
};

/// Builds the reduction. `schema` gains the binary relation "col_c";
/// variables are interned in `vocab` with a per-instance prefix derived
/// from `tag` so several instances can coexist.
ThreeColInstance MakeThreeColInstance(const UndirectedGraph& graph,
                                      Schema* schema, Vocabulary* vocab,
                                      uint32_t tag = 0);

/// Random undirected graph (no duplicate edges, no self-loops).
UndirectedGraph MakeRandomUndirectedGraph(uint32_t num_vertices,
                                          uint32_t num_edges, uint64_t seed);

/// A cycle of length n (3-colorable iff n != odd... a cycle is
/// 3-colorable always; it is 2-colorable iff n is even). Useful as an
/// always-yes instance family.
UndirectedGraph MakeCycleGraph(uint32_t n);

/// Complete graph K_n (3-colorable iff n <= 3): a small always-no family
/// for n >= 4.
UndirectedGraph MakeCompleteGraph(uint32_t n);

}  // namespace wdpt::gen

#endif  // WDPT_SRC_GEN_REDUCTIONS_H_
