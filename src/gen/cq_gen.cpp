#include "src/gen/cq_gen.h"

#include <random>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace wdpt::gen {

namespace {

std::vector<Term> MakeVars(Vocabulary* vocab, std::string_view prefix,
                           uint32_t count) {
  std::vector<Term> vars;
  vars.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    vars.push_back(
        vocab->Variable(std::string(prefix) + std::to_string(i)));
  }
  return vars;
}

}  // namespace

RelationId EdgeRelation(Schema* schema, std::string_view name) {
  Result<RelationId> rel = schema->AddRelation(name, 2);
  WDPT_CHECK(rel.ok());
  return *rel;
}

ConjunctiveQuery MakePathCq(Schema* schema, Vocabulary* vocab, uint32_t len,
                            std::string_view prefix) {
  RelationId e = EdgeRelation(schema);
  std::vector<Term> v = MakeVars(vocab, prefix, len + 1);
  ConjunctiveQuery q;
  for (uint32_t i = 0; i < len; ++i) {
    q.atoms.emplace_back(e, std::vector<Term>{v[i], v[i + 1]});
  }
  q.Normalize();
  return q;
}

ConjunctiveQuery MakeCycleCq(Schema* schema, Vocabulary* vocab, uint32_t len,
                             std::string_view prefix) {
  WDPT_CHECK(len >= 3);
  RelationId e = EdgeRelation(schema);
  std::vector<Term> v = MakeVars(vocab, prefix, len);
  ConjunctiveQuery q;
  for (uint32_t i = 0; i < len; ++i) {
    q.atoms.emplace_back(e, std::vector<Term>{v[i], v[(i + 1) % len]});
  }
  q.Normalize();
  return q;
}

ConjunctiveQuery MakeCliqueCq(Schema* schema, Vocabulary* vocab, uint32_t n,
                              std::string_view prefix) {
  WDPT_CHECK(n >= 2);
  RelationId e = EdgeRelation(schema);
  std::vector<Term> v = MakeVars(vocab, prefix, n);
  ConjunctiveQuery q;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i != j) q.atoms.emplace_back(e, std::vector<Term>{v[i], v[j]});
    }
  }
  q.Normalize();
  return q;
}

ConjunctiveQuery MakeGridCq(Schema* schema, Vocabulary* vocab, uint32_t n,
                            uint32_t m, std::string_view prefix) {
  RelationId e = EdgeRelation(schema);
  std::vector<Term> v = MakeVars(vocab, prefix, n * m);
  auto at = [&](uint32_t r, uint32_t c) { return v[r * m + c]; };
  ConjunctiveQuery q;
  for (uint32_t r = 0; r < n; ++r) {
    for (uint32_t c = 0; c < m; ++c) {
      if (c + 1 < m) {
        q.atoms.emplace_back(e, std::vector<Term>{at(r, c), at(r, c + 1)});
      }
      if (r + 1 < n) {
        q.atoms.emplace_back(e, std::vector<Term>{at(r, c), at(r + 1, c)});
      }
    }
  }
  q.Normalize();
  return q;
}

ConjunctiveQuery MakeRandomCq(Schema* schema, Vocabulary* vocab,
                              uint32_t num_atoms, uint32_t num_vars,
                              uint64_t seed, std::string_view prefix) {
  WDPT_CHECK(num_vars >= 1);
  RelationId e = EdgeRelation(schema);
  std::vector<Term> v = MakeVars(vocab, prefix, num_vars);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> pick(0, num_vars - 1);
  ConjunctiveQuery q;
  for (uint32_t i = 0; i < num_atoms; ++i) {
    q.atoms.emplace_back(e, std::vector<Term>{v[pick(rng)], v[pick(rng)]});
  }
  q.Normalize();
  return q;
}

}  // namespace wdpt::gen
