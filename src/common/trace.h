// Per-request tracing: stage spans for one query's life cycle.
//
// A Trace rides along with a single request from the server session
// thread through the engine and back: each pipeline stage (queue wait,
// parse, plan-cache lookup, plan build, answer-cache lookup,
// evaluation, serialization) records its wall time into the trace, and the engine stamps the
// plan's tractability classification (l-TW(k) / g-TW(k) / intractable,
// Theorems 6-9 of the paper) so latency can be broken down by
// structural class. The server folds finished traces into per-stage
// LatencyHistograms (src/server/metrics.h) and prints outliers through
// the slow-query log. See docs/OBSERVABILITY.md.
//
// A Trace is owned by exactly one request. It is handed between the
// session thread and a worker thread with a happens-before edge (the
// pool submit / completion latch), so the fields are plain — no atomics.

#ifndef WDPT_SRC_COMMON_TRACE_H_
#define WDPT_SRC_COMMON_TRACE_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wdpt {

/// The stages of one request, in pipeline order.
enum class TraceStage : uint8_t {
  kQueueWait = 0,  ///< Admission to worker pickup (server only).
  kParse,          ///< Query text -> validated PatternTree.
  kPlanLookup,     ///< Plan-cache key + lookup.
  kPlanBuild,      ///< Classification + decomposition on a cache miss.
  kCacheLookup,    ///< Answer-cache key + lookup (includes any
                   ///< single-flight wait for an in-flight owner).
  kEval,           ///< Evaluation / enumeration proper.
  kSerialize,      ///< Answer mappings -> response rows.
  // Storage/write-path stages (INGEST, CHECKPOINT, open-time replay);
  // zero for queries. Keep kQueryStageCount pointing past the last
  // query-pipeline stage above.
  kWalAppend,      ///< WAL entry encode + append + fsync (the ack point).
  kApply,          ///< Batch applied to the authoritative database.
  kPublish,        ///< Snapshot rebuild + hot swap (or checkpoint write).
};

/// Stages of the read pipeline (kQueueWait..kSerialize): the ones every
/// query records and the server's per-stage histograms are keyed by.
inline constexpr size_t kQueryStageCount = 7;
inline constexpr size_t kTraceStageCount = 10;

/// Short stable label ("queue", "parse", "plan_lookup", ...), used as
/// the `stage` label in metrics and in slow-query log lines.
const char* TraceStageName(TraceStage stage);

/// Where a plan lands in the paper's tractability lattice, collapsed to
/// the three serving-relevant classes (g-TW(k) implies l-TW(k); the
/// stronger class wins). kUnknown: no plan was built for the request.
enum class TractabilityClass : uint8_t {
  kUnknown = 0,
  kGTractable,   ///< Globally tractable: g-TW(k).
  kLTractable,   ///< Locally tractable only: l-TW(k) \ g-TW(k).
  kIntractable,  ///< Outside l-TW(k) for the plan's width bound.
};

inline constexpr size_t kTractabilityClassCount = 4;

/// Stable label ("unknown", "g-tractable", "l-tractable", "intractable").
const char* TractabilityClassName(TractabilityClass c);

/// How the answer cache treated a request. kBypass is the default and
/// covers every request the cache did not serve or own: no cache
/// configured, a zero generation, or an explicit `cache-control:
/// bypass`. A single-flight waiter served by the in-flight owner's
/// publish counts as a hit.
enum class CacheOutcome : uint8_t {
  kBypass = 0,
  kHit,
  kMiss,
};

inline constexpr size_t kCacheOutcomeCount = 3;

/// Stable label ("bypass", "hit", "miss"): the `cache` label in metrics,
/// per-request stats JSON, and slow-query log lines.
const char* CacheOutcomeName(CacheOutcome outcome);

class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Trace(uint64_t request_id = 0) : request_id_(request_id) {}

  uint64_t request_id() const { return request_id_; }

  /// Adds `ns` to the stage's span (stages hit more than once, e.g. two
  /// plan lookups for a batched request, accumulate).
  void Record(TraceStage stage, uint64_t ns) {
    spans_ns_[static_cast<size_t>(stage)] += ns;
  }

  uint64_t span_ns(TraceStage stage) const {
    return spans_ns_[static_cast<size_t>(stage)];
  }

  /// Sum over all stage spans: the traced wall time of the request.
  uint64_t TotalNs() const;

  void set_classification(TractabilityClass c) { classification_ = c; }
  TractabilityClass classification() const { return classification_; }

  /// Scatter-gather fan-out: the number of shard tasks this request's
  /// evaluation spread across (0 = unsharded execution). Feeds the
  /// server's `shard_fanout` histogram.
  void set_shard_fanout(uint32_t n) { shard_fanout_ = n; }
  uint32_t shard_fanout() const { return shard_fanout_; }

  /// Appends one shard task's wall time. The engine records these on
  /// the coordinating thread *after* the gather barrier — a Trace is
  /// single-owner and not thread-safe, so shard tasks never touch it.
  void RecordShard(uint64_t ns) { shard_spans_ns_.push_back(ns); }
  const std::vector<uint64_t>& shard_spans_ns() const {
    return shard_spans_ns_;
  }

  /// Longest shard task span (0 when unsharded): the critical path of
  /// the scatter phase.
  uint64_t MaxShardNs() const;

  /// Answer-cache outcome for the request; stamped by the engine on the
  /// cache-participating paths, left at kBypass everywhere else.
  void set_cache_outcome(CacheOutcome outcome) { cache_outcome_ = outcome; }
  CacheOutcome cache_outcome() const { return cache_outcome_; }

  /// Request mode label for metrics ("eval" / "partial" / "max"); the
  /// pointer must outlive the trace (callers pass string literals from
  /// RequestModeName).
  void set_mode(const char* mode) { mode_ = mode; }
  const char* mode() const { return mode_; }

  /// "queue=0.00ms parse=0.12ms ..." — the per-stage breakdown printed
  /// by the slow-query log.
  std::string BreakdownString() const;

  /// RAII span: records the elapsed time into `trace` (if non-null) at
  /// scope exit.
  class Span {
   public:
    Span(Trace* trace, TraceStage stage)
        : trace_(trace), stage_(stage), start_(Clock::now()) {}
    ~Span() {
      if (trace_ == nullptr) return;
      trace_->Record(stage_,
                     static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - start_)
                             .count()));
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Trace* trace_;
    TraceStage stage_;
    Clock::time_point start_;
  };

 private:
  uint64_t request_id_ = 0;
  std::array<uint64_t, kTraceStageCount> spans_ns_{};
  TractabilityClass classification_ = TractabilityClass::kUnknown;
  CacheOutcome cache_outcome_ = CacheOutcome::kBypass;
  const char* mode_ = "unknown";
  uint32_t shard_fanout_ = 0;
  std::vector<uint64_t> shard_spans_ns_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_TRACE_H_
