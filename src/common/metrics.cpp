#include "src/common/metrics.h"

namespace wdpt::metrics {

std::atomic<uint64_t>& HomomorphismCalls() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

std::atomic<uint64_t>& SemijoinPasses() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

std::atomic<uint64_t>& CsrProbes() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

std::atomic<uint64_t>& GallopIntersections() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

std::atomic<uint64_t>& ArenaBytesPeak() {
  static std::atomic<uint64_t> peak{0};
  return peak;
}

void RecordArenaPeak(uint64_t bytes) {
  std::atomic<uint64_t>& peak = ArenaBytesPeak();
  uint64_t cur = peak.load(std::memory_order_relaxed);
  while (cur < bytes &&
         !peak.compare_exchange_weak(cur, bytes, std::memory_order_relaxed)) {
  }
}

uint64_t HistogramSnapshot::QuantileNs(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [1, count] of the value the quantile lands on.
  uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] >= target) {
      uint64_t lo = LatencyHistogram::BucketLowerBound(i);
      // The open-ended last bucket interpolates over one more octave.
      uint64_t hi = i + 1 < kHistogramBuckets
                        ? LatencyHistogram::BucketLowerBound(i + 1)
                        : lo + lo;
      uint64_t pos = target - cum;  // 1..counts[i]
      return lo + (hi - lo) * (pos - 1) / counts[i];
    }
    cum += counts[i];
  }
  return LatencyHistogram::BucketLowerBound(kHistogramBuckets - 1);
}

}  // namespace wdpt::metrics
