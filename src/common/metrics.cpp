#include "src/common/metrics.h"

namespace wdpt::metrics {

std::atomic<uint64_t>& HomomorphismCalls() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

std::atomic<uint64_t>& SemijoinPasses() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

}  // namespace wdpt::metrics
