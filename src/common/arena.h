// Bump-allocation arena for kernel scratch memory.
//
// The CQ evaluation kernel (src/cq/evaluation.cpp) and the flat hash
// tables (src/common/flat_table.h) burn through short-lived tuple
// buffers at a rate of one per stored tuple. Allocating those from the
// general-purpose heap costs a malloc/free pair and a pointer chase per
// tuple; the Arena instead hands out memory by bumping a pointer inside
// a chunk, and recycles everything at once with Reset(). Allocations
// are never freed individually and never move, so callers may hold raw
// pointers into the arena until the next Reset().
//
// Reset() keeps (and coalesces) capacity: after the first few calls a
// warm arena serves every allocation from one resident chunk, which is
// what makes the per-call kernel scratch allocation-free in steady
// state. The high-water mark across the arena's lifetime is published
// to metrics::ArenaBytesPeak() so EngineStats can report the kernel's
// peak scratch footprint (docs/METRICS.md).

#ifndef WDPT_SRC_COMMON_ARENA_H_
#define WDPT_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"

namespace wdpt {

/// A chunked bump allocator. Not thread-safe; intended as per-thread
/// (or per-call) scratch.
class Arena {
 public:
  explicit Arena(size_t min_chunk_bytes = size_t{1} << 16)
      : min_chunk_bytes_(min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of memory aligned to `alignment` (a power of two,
  /// at most alignof(std::max_align_t)). The memory is uninitialized
  /// and stays valid until Reset() or destruction.
  void* Allocate(size_t bytes, size_t alignment = alignof(uint64_t)) {
    WDPT_DCHECK((alignment & (alignment - 1)) == 0);
    uintptr_t cur = reinterpret_cast<uintptr_t>(cursor_);
    uintptr_t aligned = (cur + (alignment - 1)) & ~uintptr_t(alignment - 1);
    size_t needed = bytes + static_cast<size_t>(aligned - cur);
    if (needed > static_cast<size_t>(end_ - cursor_)) {
      Grow(bytes + alignment);
      cur = reinterpret_cast<uintptr_t>(cursor_);
      aligned = (cur + (alignment - 1)) & ~uintptr_t(alignment - 1);
      needed = bytes + static_cast<size_t>(aligned - cur);
    }
    cursor_ += needed;
    used_ += needed;
    if (used_ > high_water_) high_water_ = used_;
    return reinterpret_cast<void*>(aligned);
  }

  /// Typed array allocation (uninitialized).
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Discards all allocations while retaining capacity. If the arena
  /// had spilled into multiple chunks, they are coalesced into a single
  /// chunk of the combined size, so a warm arena never re-grows for the
  /// same workload.
  void Reset() {
    PublishPeak();
    if (chunks_.size() > 1) {
      size_t total = 0;
      for (const Chunk& c : chunks_) total += c.size;
      chunks_.clear();
      AddChunk(total);
    } else if (!chunks_.empty()) {
      cursor_ = chunks_.back().data.get();
      end_ = cursor_ + chunks_.back().size;
    }
    used_ = 0;
  }

  ~Arena() { PublishPeak(); }

  /// Bytes handed out since the last Reset (including alignment waste).
  size_t bytes_used() const { return used_; }

  /// Largest bytes_used() ever observed on this arena.
  size_t high_water() const { return high_water_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  void AddChunk(size_t at_least) {
    size_t size = min_chunk_bytes_;
    if (!chunks_.empty()) size = chunks_.back().size * 2;
    if (size < at_least) size = at_least;
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    cursor_ = chunks_.back().data.get();
    end_ = cursor_ + size;
  }

  void Grow(size_t at_least) { AddChunk(at_least); }

  void PublishPeak() const { metrics::RecordArenaPeak(high_water_); }

  size_t min_chunk_bytes_;
  std::vector<Chunk> chunks_;
  char* cursor_ = nullptr;
  char* end_ = nullptr;
  size_t used_ = 0;
  size_t high_water_ = 0;
};

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_ARENA_H_
