// Cooperative cancellation tokens with deadlines.
//
// A CancelToken is a cheap, copyable handle to shared cancellation state.
// Long-running evaluation loops poll ShouldStop() at safe points and wind
// down early when it fires; the Engine then reports kCancelled or
// kDeadlineExceeded instead of a partial answer. A default-constructed
// token is "null": it never fires and polling it costs a pointer test.
//
// Tokens can be chained (Child): a child fires when it or any ancestor
// fires, which lets the engine combine a caller-supplied token with a
// per-call deadline without mutating the caller's state.

#ifndef WDPT_SRC_COMMON_CANCELLATION_H_
#define WDPT_SRC_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "src/common/status.h"

namespace wdpt {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Null token: never cancelled, no deadline.
  CancelToken() = default;

  /// A fresh token with live state and no deadline.
  static CancelToken Create() { return CancelToken(std::make_shared<State>()); }

  /// A fresh token that fires once `deadline` passes.
  static CancelToken WithDeadline(Clock::time_point deadline) {
    CancelToken token = Create();
    token.SetDeadline(deadline);
    return token;
  }

  /// A token that fires when it or `parent` fires. A null parent yields an
  /// ordinary independent token.
  static CancelToken Child(const CancelToken& parent) {
    CancelToken token = Create();
    token.state_->parent = parent.state_;
    return token;
  }

  /// True if this token carries live state (polling a null token is a no-op).
  bool valid() const { return state_ != nullptr; }

  /// Requests cancellation; no-op on a null token. Thread-safe.
  void RequestCancel() const {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Sets/overwrites the deadline; no-op on a null token. Thread-safe.
  void SetDeadline(Clock::time_point deadline) const {
    if (state_) {
      state_->deadline_ns.store(deadline.time_since_epoch().count(),
                                std::memory_order_relaxed);
    }
  }

  /// True once cancellation was requested or a deadline passed, on this
  /// token or any ancestor. Safe to call from any thread, at any rate;
  /// reads one clock when a deadline is set.
  bool ShouldStop() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_relaxed)) return true;
      int64_t deadline = s->deadline_ns.load(std::memory_order_relaxed);
      if (deadline != kNoDeadline &&
          Clock::now().time_since_epoch().count() >= deadline) {
        return true;
      }
    }
    return false;
  }

  /// True if a deadline (on this token or an ancestor) has passed —
  /// distinguishes kDeadlineExceeded from kCancelled after a stop.
  bool DeadlineExpired() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      int64_t deadline = s->deadline_ns.load(std::memory_order_relaxed);
      if (deadline != kNoDeadline &&
          Clock::now().time_since_epoch().count() >= deadline) {
        return true;
      }
    }
    return false;
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int64_t> deadline_ns{kNoDeadline};
    std::shared_ptr<const State> parent;
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// The status a stopped computation should report: kDeadlineExceeded when
/// the stop came from a deadline, kCancelled for an explicit request, OK
/// if the token never fired.
inline Status StatusFromToken(const CancelToken& token) {
  if (!token.valid() || !token.ShouldStop()) return Status::Ok();
  if (token.DeadlineExpired()) {
    return Status::DeadlineExceeded("evaluation deadline expired");
  }
  return Status::Cancelled("evaluation cancelled");
}

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_CANCELLATION_H_
