// Small string helpers shared across the library.

#ifndef WDPT_SRC_COMMON_STRINGS_H_
#define WDPT_SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wdpt {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep = ", ").
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True if `input` starts with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_STRINGS_H_
