#include "src/common/strings.h"

#include <cctype>

namespace wdpt {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

}  // namespace wdpt
