// Rank-based percentile selection over raw latency samples.
//
// Used by the load generator and benches to turn a bag of per-request
// nanosecond samples into p50/p90/p99 columns. Selection runs via
// std::nth_element, which partially reorders the input but does not
// require it sorted: the result depends only on the multiset of values,
// so callers may merge per-thread sample chunks in any order or drop a
// warmup prefix without re-sorting first. (This property is pinned by
// tests/percentile_test.cpp — a sort-then-index implementation that
// silently assumed pre-sorted input would mis-report percentiles the
// moment a caller erased warmup rows.)

#ifndef WDPT_SRC_COMMON_PERCENTILE_H_
#define WDPT_SRC_COMMON_PERCENTILE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wdpt {

/// The p-quantile (p clamped to [0, 1]) of `samples` by rank selection:
/// the element at floor(p * (n - 1)) in sorted order. Returns 0 on an
/// empty input. Partially reorders `samples` in place (nth_element);
/// the returned value is independent of the input order.
inline uint64_t PercentileValue(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  size_t idx =
      static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

/// PercentileValue over nanosecond samples, reported in milliseconds.
inline double PercentileMs(std::vector<uint64_t>& ns, double p) {
  return static_cast<double>(PercentileValue(ns, p)) / 1e6;
}

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_PERCENTILE_H_
