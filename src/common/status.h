// Lightweight Status / Result error-handling primitives.
//
// The library does not throw exceptions across API boundaries. Operations
// that can fail on user input (parsing, validation of pattern trees, ...)
// return a Status or a Result<T>; internal invariant violations abort via
// WDPT_CHECK.

#ifndef WDPT_SRC_COMMON_STATUS_H_
#define WDPT_SRC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace wdpt {

/// Broad error categories used across the library.
///
/// Error taxonomy (the contract every public API follows):
///  * Caller mistakes — kInvalidArgument (malformed values, unvalidated
///    trees), kNotWellDesigned (Definition 1 violated), kParseError
///    (rejected query/data text). Fix the input and retry.
///  * Capacity — kResourceExhausted: a configured enumeration/size cap
///    was hit; the computation is incomplete but the process is healthy.
///    Retrying with larger limits may succeed.
///  * Scheduling — kDeadlineExceeded (a per-call/batch deadline passed)
///    and kCancelled (a CancelToken fired). Both mean "stopped early, no
///    partial answer is returned"; retrying the identical call can
///    succeed.
///  * Load shedding — kOverloaded: an admission-controlled component
///    (the query server) rejected the request without queuing it. The
///    request was not started; retry after backing off.
///  * Lookup — kNotFound: the requested entity/witness does not exist in
///    the searched space.
///  * Bugs — kInternal: an invariant violation surfaced as a status
///    instead of a WDPT_CHECK abort.
///  * Topology — kRedirect: this node cannot serve the request but a
///    named peer can (a replica rejecting a write; the response carries
///    the primary's address). Re-issue against the indicated node.
///
/// Fallible operations return Status (no payload) or Result<T>. Pure
/// predicates with no failure mode (e.g. structural tests on validated
/// inputs) stay plain bool.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad arity, unknown symbol, ...).
  kNotWellDesigned,   ///< A pattern tree violates well-designedness.
  kParseError,        ///< The SPARQL-algebra or data parser rejected input.
  kResourceExhausted, ///< A configured enumeration/size limit was hit.
  kNotFound,          ///< A looked-up entity does not exist.
  kDeadlineExceeded,  ///< A deadline expired before the call finished.
  kCancelled,         ///< A cancellation token fired mid-call.
  kOverloaded,        ///< Rejected by admission control; retry later.
  kInternal,          ///< Invariant violation surfaced as a status.
  kRedirect,          ///< Another node owns this request; re-issue there.
};

/// Returns a short human-readable name for `code` ("ok", "parse-error", ...).
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: parses a code name back into the enum
/// (used by the server wire protocol). Unknown names map to kInternal.
StatusCode StatusCodeFromName(std::string_view name);

/// Result of an operation that can fail without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotWellDesigned(std::string msg) {
    return Status(StatusCode::kNotWellDesigned, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Redirect(std::string msg) {
    return Status(StatusCode::kRedirect, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "code: message" for logging and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Minimal StatusOr-style wrapper.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result; `status` must not be OK.
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Returns the error status (OK if the result holds a value).
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }

  /// Accessors; must only be called when ok().
  const T& value() const& { return std::get<T>(storage_); }
  T& value() & { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// Aborts the process when `cond` is false. Used for internal invariants
/// that indicate a bug in the library, never for user input validation.
#define WDPT_CHECK(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      ::wdpt::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                             \
  } while (0)

#ifndef NDEBUG
#define WDPT_DCHECK(cond) WDPT_CHECK(cond)
#else
#define WDPT_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_STATUS_H_
