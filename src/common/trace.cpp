#include "src/common/trace.h"

#include <cstdio>

namespace wdpt {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kQueueWait:
      return "queue";
    case TraceStage::kParse:
      return "parse";
    case TraceStage::kPlanLookup:
      return "plan_lookup";
    case TraceStage::kPlanBuild:
      return "plan_build";
    case TraceStage::kCacheLookup:
      return "cache_lookup";
    case TraceStage::kEval:
      return "eval";
    case TraceStage::kSerialize:
      return "serialize";
    case TraceStage::kWalAppend:
      return "wal_append";
    case TraceStage::kApply:
      return "apply";
    case TraceStage::kPublish:
      return "publish";
  }
  return "unknown";
}

const char* TractabilityClassName(TractabilityClass c) {
  switch (c) {
    case TractabilityClass::kUnknown:
      return "unknown";
    case TractabilityClass::kGTractable:
      return "g-tractable";
    case TractabilityClass::kLTractable:
      return "l-tractable";
    case TractabilityClass::kIntractable:
      return "intractable";
  }
  return "unknown";
}

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kBypass:
      return "bypass";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
  }
  return "bypass";
}

uint64_t Trace::TotalNs() const {
  uint64_t total = 0;
  for (uint64_t ns : spans_ns_) total += ns;
  return total;
}

uint64_t Trace::MaxShardNs() const {
  uint64_t max_ns = 0;
  for (uint64_t ns : shard_spans_ns_) {
    if (ns > max_ns) max_ns = ns;
  }
  return max_ns;
}

std::string Trace::BreakdownString() const {
  std::string out;
  // Query-pipeline stages always print (a zero is informative there);
  // the storage stages print only when touched, so query lines keep
  // their pre-storage shape and ingest lines show the write path.
  for (size_t i = 0; i < kTraceStageCount; ++i) {
    if (i >= kQueryStageCount && spans_ns_[i] == 0) continue;
    if (!out.empty()) out += ' ';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.2fms",
                  TraceStageName(static_cast<TraceStage>(i)),
                  static_cast<double>(spans_ns_[i]) / 1e6);
    out += buf;
  }
  if (shard_fanout_ > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " shards=%u shard_max=%.2fms",
                  shard_fanout_, static_cast<double>(MaxShardNs()) / 1e6);
    out += buf;
  }
  out += " cache=";
  out += CacheOutcomeName(cache_outcome_);
  return out;
}

}  // namespace wdpt
