// Open-addressing flat hash set/map over fixed-arity ConstantId tuples.
//
// The CQ kernel's inner loops (semijoin membership, hash-join build and
// probe, bag enumeration indexes) are all "insert-or-find a small tuple
// of constants". std::unordered_{set,map} keyed by std::vector pays a
// node allocation plus a heap-backed key per entry; FlatTupleSet packs
// everything into three flat arrays:
//
//   * slot table: parallel arrays of 64-bit keys and 32-bit dense ids,
//     linear probing, power-of-two capacity;
//   * tuples of arity <= 2 are packed verbatim into the 64-bit slot key
//     (id 0 in the high word for arity 2), so equality is one compare;
//   * wider tuples spill their constants to a caller-supplied Arena and
//     the slot key holds a 64-bit hash — equality falls back to a
//     memcmp against the arena copy only on hash collision.
//
// Inserts assign dense ids in insertion order (0, 1, 2, ...), which
// gives deterministic iteration independent of table capacity — the
// kernel relies on this for reproducible evaluation. Erase() marks a
// tombstone; tombstones are dropped on the next rehash. Init() resets
// the table while keeping every array's capacity, so a table reused
// across calls allocates nothing in steady state.
//
// Not thread-safe; intended as per-thread kernel scratch alongside the
// Arena it spills into.

#ifndef WDPT_SRC_COMMON_FLAT_TABLE_H_
#define WDPT_SRC_COMMON_FLAT_TABLE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/arena.h"
#include "src/common/status.h"

namespace wdpt {

/// Dense interned-constant id (mirrors the alias in
/// src/relational/term.h; re-declared so common/ stays leaf-level).
using ConstantId = uint32_t;

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
inline uint64_t MixHash64(uint64_t x) {
  x += UINT64_C(0x9e3779b97f4a7c15);
  x = (x ^ (x >> 30)) * UINT64_C(0xbf58476d1ce4e5b9);
  x = (x ^ (x >> 27)) * UINT64_C(0x94d049bb133111eb);
  return x ^ (x >> 31);
}

/// A set of fixed-arity ConstantId tuples with dense insertion-order ids.
class FlatTupleSet {
 public:
  static constexpr uint32_t kNoId = UINT32_MAX;

  FlatTupleSet() = default;
  FlatTupleSet(const FlatTupleSet&) = delete;
  FlatTupleSet& operator=(const FlatTupleSet&) = delete;

  /// (Re)initializes for tuples of `arity` constants. Wide tuples
  /// (arity > 2) copy their constants into `arena`, which must outlive
  /// every lookup; for arity <= 2 the arena may be null. Clears all
  /// entries but keeps the slot table's capacity.
  void Init(uint32_t arity, Arena* arena) {
    WDPT_DCHECK(arity <= 2 || arena != nullptr);
    arity_ = arity;
    arena_ = arena;
    live_ = 0;
    tombstones_ = 0;
    inline_tuples_.clear();
    wide_tuples_.clear();
    if (slot_ids_.empty()) {
      Rehash(kMinCapacity);
    } else {
      std::fill(slot_ids_.begin(), slot_ids_.end(), kEmpty);
    }
  }

  uint32_t arity() const { return arity_; }

  /// Live (non-erased) entries.
  uint32_t size() const { return live_; }

  /// Ids ever assigned; Get() is valid for any id < num_ids(), erased
  /// or not.
  uint32_t num_ids() const {
    return static_cast<uint32_t>(arity_ <= 2 ? inline_tuples_.size()
                                             : wide_tuples_.size());
  }

  /// Inserts the tuple (arity() constants) if absent. Returns its dense
  /// id; `*inserted` (if non-null) reports whether it was new.
  uint32_t InsertOrFind(const ConstantId* tuple, bool* inserted = nullptr) {
    if ((live_ + tombstones_ + 1) * 8 >= slot_ids_.size() * 7) {
      Rehash(slot_ids_.size() * 2);
    }
    uint64_t key = MakeKey(tuple);
    size_t mask = slot_ids_.size() - 1;
    size_t i = MixHash64(key) & mask;
    size_t first_tombstone = SIZE_MAX;
    while (true) {
      uint32_t id = slot_ids_[i];
      if (id == kEmpty) {
        if (inserted != nullptr) *inserted = true;
        uint32_t new_id = AppendTuple(tuple, key);
        if (first_tombstone != SIZE_MAX) {
          i = first_tombstone;
          --tombstones_;
        }
        slot_keys_[i] = key;
        slot_ids_[i] = new_id;
        ++live_;
        return new_id;
      }
      if (id == kTombstone) {
        if (first_tombstone == SIZE_MAX) first_tombstone = i;
      } else if (slot_keys_[i] == key && TupleEquals(id, tuple)) {
        if (inserted != nullptr) *inserted = false;
        return id;
      }
      i = (i + 1) & mask;
    }
  }

  /// Id of the tuple, or kNoId if absent.
  uint32_t Find(const ConstantId* tuple) const {
    uint64_t key = MakeKey(tuple);
    size_t mask = slot_ids_.size() - 1;
    size_t i = MixHash64(key) & mask;
    while (true) {
      uint32_t id = slot_ids_[i];
      if (id == kEmpty) return kNoId;
      if (id != kTombstone && slot_keys_[i] == key &&
          TupleEquals(id, tuple)) {
        return id;
      }
      i = (i + 1) & mask;
    }
  }

  /// Erases the tuple (tombstone); returns false if it was absent. The
  /// erased id stays readable via Get() but will never be returned by
  /// Find(), and its slot is reusable after the next rehash.
  bool Erase(const ConstantId* tuple) {
    uint64_t key = MakeKey(tuple);
    size_t mask = slot_ids_.size() - 1;
    size_t i = MixHash64(key) & mask;
    while (true) {
      uint32_t id = slot_ids_[i];
      if (id == kEmpty) return false;
      if (id != kTombstone && slot_keys_[i] == key &&
          TupleEquals(id, tuple)) {
        slot_ids_[i] = kTombstone;
        ++tombstones_;
        --live_;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  /// Copies tuple `id` into `out` (arity() constants).
  void Get(uint32_t id, ConstantId* out) const {
    if (arity_ <= 2) {
      uint64_t packed = inline_tuples_[id];
      if (arity_ == 2) {
        out[0] = static_cast<ConstantId>(packed >> 32);
        out[1] = static_cast<ConstantId>(packed);
      } else if (arity_ == 1) {
        out[0] = static_cast<ConstantId>(packed);
      }
    } else {
      std::memcpy(out, wide_tuples_[id], arity_ * sizeof(ConstantId));
    }
  }

  /// Appends all tuples in id order (insertion order) to `out`,
  /// erased entries included — callers that erase should not iterate.
  void AppendAll(std::vector<ConstantId>* out) const {
    uint32_t n = num_ids();
    size_t base = out->size();
    out->resize(base + static_cast<size_t>(n) * arity_);
    for (uint32_t id = 0; id < n; ++id) {
      Get(id, out->data() + base + static_cast<size_t>(id) * arity_);
    }
  }

  /// Slot-table capacity (for growth tests).
  size_t capacity() const { return slot_ids_.size(); }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr uint32_t kEmpty = UINT32_MAX;
  static constexpr uint32_t kTombstone = UINT32_MAX - 1;

  uint64_t MakeKey(const ConstantId* tuple) const {
    if (arity_ == 0) return 0;
    if (arity_ == 1) return tuple[0];
    if (arity_ == 2) {
      return (static_cast<uint64_t>(tuple[0]) << 32) | tuple[1];
    }
    uint64_t h = arity_;
    for (uint32_t c = 0; c < arity_; ++c) {
      h = MixHash64(h ^ tuple[c]);
    }
    return h;
  }

  bool TupleEquals(uint32_t id, const ConstantId* tuple) const {
    if (arity_ <= 2) return true;  // The packed key is the tuple.
    return std::memcmp(wide_tuples_[id], tuple,
                       arity_ * sizeof(ConstantId)) == 0;
  }

  uint32_t AppendTuple(const ConstantId* tuple, uint64_t key) {
    if (arity_ <= 2) {
      inline_tuples_.push_back(key);
      return static_cast<uint32_t>(inline_tuples_.size() - 1);
    }
    ConstantId* copy = arena_->AllocateArray<ConstantId>(arity_);
    std::memcpy(copy, tuple, arity_ * sizeof(ConstantId));
    wide_tuples_.push_back(copy);
    return static_cast<uint32_t>(wide_tuples_.size() - 1);
  }

  void Rehash(size_t new_capacity) {
    if (new_capacity < kMinCapacity) new_capacity = kMinCapacity;
    std::vector<uint64_t> old_keys = std::move(slot_keys_);
    std::vector<uint32_t> old_ids = std::move(slot_ids_);
    slot_keys_.assign(new_capacity, 0);
    slot_ids_.assign(new_capacity, kEmpty);
    tombstones_ = 0;
    size_t mask = new_capacity - 1;
    for (size_t s = 0; s < old_ids.size(); ++s) {
      uint32_t id = old_ids[s];
      if (id == kEmpty || id == kTombstone) continue;
      size_t i = MixHash64(old_keys[s]) & mask;
      while (slot_ids_[i] != kEmpty) i = (i + 1) & mask;
      slot_keys_[i] = old_keys[s];
      slot_ids_[i] = id;
    }
  }

  uint32_t arity_ = 0;
  Arena* arena_ = nullptr;
  uint32_t live_ = 0;
  uint32_t tombstones_ = 0;
  std::vector<uint64_t> slot_keys_;
  std::vector<uint32_t> slot_ids_;
  std::vector<uint64_t> inline_tuples_;        // arity <= 2: packed tuples.
  std::vector<const ConstantId*> wide_tuples_; // arity > 2: arena copies.
};

/// A map from fixed-arity tuples to values of V, built on FlatTupleSet:
/// the key's dense id indexes a parallel value array.
template <typename V>
class FlatTupleMap {
 public:
  void Init(uint32_t arity, Arena* arena) {
    keys_.Init(arity, arena);
    values_.clear();
  }

  /// Returns the value slot for the key, inserting `init` if absent.
  V& InsertOrFind(const ConstantId* tuple, const V& init) {
    bool inserted = false;
    uint32_t id = keys_.InsertOrFind(tuple, &inserted);
    if (inserted) values_.push_back(init);
    return values_[id];
  }

  /// Pointer to the value for the key, or null if absent.
  const V* Find(const ConstantId* tuple) const {
    uint32_t id = keys_.Find(tuple);
    return id == FlatTupleSet::kNoId ? nullptr : &values_[id];
  }

  uint32_t size() const { return keys_.size(); }

 private:
  FlatTupleSet keys_;
  std::vector<V> values_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_FLAT_TABLE_H_
