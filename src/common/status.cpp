#include "src/common/status.h"

namespace wdpt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotWellDesigned:
      return "not-well-designed";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kRedirect:
      return "redirect";
  }
  return "unknown";
}

StatusCode StatusCodeFromName(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotWellDesigned, StatusCode::kParseError,
      StatusCode::kResourceExhausted, StatusCode::kNotFound,
      StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
      StatusCode::kOverloaded,   StatusCode::kInternal,
      StatusCode::kRedirect,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "WDPT_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace wdpt
