#include "src/common/status.h"

namespace wdpt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotWellDesigned:
      return "not-well-designed";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "WDPT_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace wdpt
