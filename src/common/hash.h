// Hash-combination utilities.

#ifndef WDPT_SRC_COMMON_HASH_H_
#define WDPT_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace wdpt {

/// Mixes `value` into `seed` (boost::hash_combine style, 64-bit constants).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + UINT64_C(0x9e3779b97f4a7c15) + (*seed << 6) + (*seed >> 2);
}

/// Hashes a vector of hashable elements.
template <typename T>
size_t HashRange(const std::vector<T>& values) {
  size_t seed = values.size();
  std::hash<T> hasher;
  for (const T& v : values) HashCombine(&seed, hasher(v));
  return seed;
}

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_HASH_H_
