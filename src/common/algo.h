// Helpers for sorted-vector set operations, used for variable sets,
// plus the galloping posting-list intersection behind multi-column
// index probes (src/cq/homomorphism.cpp).

#ifndef WDPT_SRC_COMMON_ALGO_H_
#define WDPT_SRC_COMMON_ALGO_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace wdpt {

/// Sorts and deduplicates `v` in place.
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// True if sorted vector `v` contains `x`.
template <typename T>
bool SortedContains(const std::vector<T>& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// Returns the union of two sorted deduplicated vectors.
template <typename T>
std::vector<T> SortedUnion(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Returns the intersection of two sorted deduplicated vectors.
template <typename T>
std::vector<T> SortedIntersection(const std::vector<T>& a,
                                  const std::vector<T>& b) {
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Returns a \ b for sorted deduplicated vectors.
template <typename T>
std::vector<T> SortedDifference(const std::vector<T>& a,
                                const std::vector<T>& b) {
  std::vector<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// True if sorted deduplicated `a` is a subset of sorted deduplicated `b`.
template <typename T>
bool SortedIsSubset(const std::vector<T>& a, const std::vector<T>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Intersects two sorted, duplicate-free posting lists into `*out`
/// (appended, ascending) with galloping search: for each element of the
/// shorter list the position in the longer one is found by doubling
/// steps then binary search, so the cost is O(s * log(l / s)) instead
/// of O(s + l) — the win the CSR indexes exploit when one bound column
/// is far more selective than another.
inline void GallopIntersect(std::span<const uint32_t> a,
                            std::span<const uint32_t> b,
                            std::vector<uint32_t>* out) {
  if (a.size() > b.size()) std::swap(a, b);
  size_t lo = 0;
  for (uint32_t x : a) {
    // Gallop: find the window [lo + step/2, lo + step] containing x.
    size_t step = 1;
    while (lo + step < b.size() && b[lo + step] < x) step *= 2;
    size_t hi = std::min(lo + step, b.size() - 1);
    if (b[hi] < x) break;  // x (and everything after) exceeds b.
    const uint32_t* pos =
        std::lower_bound(b.data() + lo + step / 2, b.data() + hi + 1, x);
    lo = static_cast<size_t>(pos - b.data());
    if (lo < b.size() && b[lo] == x) {
      out->push_back(x);
      ++lo;
    }
    if (lo >= b.size()) break;
  }
}

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_ALGO_H_
