// Helpers for sorted-vector set operations, used for variable sets.

#ifndef WDPT_SRC_COMMON_ALGO_H_
#define WDPT_SRC_COMMON_ALGO_H_

#include <algorithm>
#include <vector>

namespace wdpt {

/// Sorts and deduplicates `v` in place.
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// True if sorted vector `v` contains `x`.
template <typename T>
bool SortedContains(const std::vector<T>& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// Returns the union of two sorted deduplicated vectors.
template <typename T>
std::vector<T> SortedUnion(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Returns the intersection of two sorted deduplicated vectors.
template <typename T>
std::vector<T> SortedIntersection(const std::vector<T>& a,
                                  const std::vector<T>& b) {
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Returns a \ b for sorted deduplicated vectors.
template <typename T>
std::vector<T> SortedDifference(const std::vector<T>& a,
                                const std::vector<T>& b) {
  std::vector<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// True if sorted deduplicated `a` is a subset of sorted deduplicated `b`.
template <typename T>
bool SortedIsSubset(const std::vector<T>& a, const std::vector<T>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace wdpt

#endif  // WDPT_SRC_COMMON_ALGO_H_
