// Process-wide evaluation counters and latency histograms.
//
// The hot kernels (homomorphism search, semijoin reduction) bump these
// relaxed atomics; the engine snapshots them before and after a phase and
// reports the delta in EngineStats. Counters are global on purpose: the
// kernels are leaf routines shared by every caller, and threading a stats
// sink through every signature would tax the non-engine entry points.
//
// LatencyHistogram is the lock-free recording primitive behind the
// server's per-stage latency metrics (docs/OBSERVABILITY.md): fixed
// log-linear buckets (4 sub-buckets per power of two, so bucket bounds
// are within 25% of any value), relaxed-atomic recording from any
// thread, mergeable, with p50/p90/p99 extraction from a plain snapshot.

#ifndef WDPT_SRC_COMMON_METRICS_H_
#define WDPT_SRC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace wdpt::metrics {

/// Completed homomorphism searches (ForEachHomomorphism calls).
std::atomic<uint64_t>& HomomorphismCalls();

/// Pairwise semijoin reduction passes inside decomposition evaluation.
std::atomic<uint64_t>& SemijoinPasses();

/// CSR column-index probes (Relation::RowsMatching lookups). The hot
/// kernels count probes in a local variable and flush the total here
/// once per search/join call, so the shared cache line is touched once
/// per call rather than once per probe.
std::atomic<uint64_t>& CsrProbes();

/// Galloping posting-list intersections performed when an atom has two
/// or more bound columns (src/common/algo.h GallopIntersect callers).
std::atomic<uint64_t>& GallopIntersections();

/// High-water mark, in bytes, across all kernel scratch Arenas in the
/// process (src/common/arena.h). A maximum, not a counter: it only
/// ever ratchets up.
std::atomic<uint64_t>& ArenaBytesPeak();

/// Ratchets ArenaBytesPeak() up to at least `bytes`.
void RecordArenaPeak(uint64_t bytes);

/// Relaxed snapshot helper.
inline uint64_t Load(std::atomic<uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);
}

/// Relaxed increment helper for the hot paths.
inline void Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

/// Bucket count of LatencyHistogram. Buckets 0..3 are exact ([v, v+1)
/// for v < 4); from there each power of two splits into 4 sub-buckets,
/// up to 2^63, so every uint64_t value (nanoseconds in practice) has a
/// bucket and no recording can overflow the array.
inline constexpr size_t kHistogramBuckets = 252;

/// A point-in-time copy of a LatencyHistogram, for quantile extraction
/// and rendering. Plain data: copy and aggregate freely.
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets> counts{};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// The q-quantile (q in [0, 1]) of the recorded values, linearly
  /// interpolated inside the containing bucket; 0 when empty. The
  /// log-linear buckets bound the relative error by 25%.
  uint64_t QuantileNs(double q) const;

  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket concurrent latency histogram. Record() is wait-free
/// (three relaxed fetch_adds); readers take Snapshot() and work on the
/// plain copy. Counts are monotone, so a snapshot taken under
/// concurrent recording is a valid (if slightly stale) histogram.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value) {
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Adds `other`'s current contents into this histogram (per-bucket;
  /// both sides may keep recording concurrently).
  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      uint64_t c = other.counts_[i].load(std::memory_order_relaxed);
      if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// The bucket holding `value`: identity below 4, then
  /// 4 * (floor(log2 v) - 1) + (two bits below the leading bit).
  static size_t BucketIndex(uint64_t value) {
    if (value < 4) return static_cast<size_t>(value);
    int msb = 63 - std::countl_zero(value);
    size_t sub = static_cast<size_t>((value >> (msb - 2)) & 3);
    return 4 * static_cast<size_t>(msb - 1) + sub;
  }

  /// Smallest value falling into bucket `index` (inverse of BucketIndex).
  static uint64_t BucketLowerBound(size_t index) {
    if (index < 4) return index;
    int msb = static_cast<int>(index / 4) + 1;
    uint64_t sub = index % 4;
    return (4 + sub) << (msb - 2);
  }

  /// Exclusive upper bound of bucket `index` (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t index) {
    return index + 1 < kHistogramBuckets ? BucketLowerBound(index + 1)
                                         : UINT64_MAX;
  }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace wdpt::metrics

#endif  // WDPT_SRC_COMMON_METRICS_H_
