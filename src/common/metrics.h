// Process-wide evaluation counters.
//
// The hot kernels (homomorphism search, semijoin reduction) bump these
// relaxed atomics; the engine snapshots them before and after a phase and
// reports the delta in EngineStats. Counters are global on purpose: the
// kernels are leaf routines shared by every caller, and threading a stats
// sink through every signature would tax the non-engine entry points.

#ifndef WDPT_SRC_COMMON_METRICS_H_
#define WDPT_SRC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>

namespace wdpt::metrics {

/// Completed homomorphism searches (ForEachHomomorphism calls).
std::atomic<uint64_t>& HomomorphismCalls();

/// Pairwise semijoin reduction passes inside decomposition evaluation.
std::atomic<uint64_t>& SemijoinPasses();

/// Relaxed snapshot helper.
inline uint64_t Load(std::atomic<uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);
}

/// Relaxed increment helper for the hot paths.
inline void Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace wdpt::metrics

#endif  // WDPT_SRC_COMMON_METRICS_H_
