// Root-subtree machinery: enumeration, minimal/maximal subtrees, and the
// CQ views q_T' (all subtree variables free) and r_T' (projection onto
// the WDPT's free variables), as used throughout Sections 2-6.

#ifndef WDPT_SRC_WDPT_SUBTREES_H_
#define WDPT_SRC_WDPT_SUBTREES_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/cq/cq.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// A root subtree is a parent-closed node set containing the root,
/// represented as an inclusion flag per node.
using SubtreeMask = std::vector<bool>;

/// The mask of the full tree.
SubtreeMask FullSubtree(const PatternTree& tree);

/// Enumerates every subtree of T rooted in r. Returns false if the cap
/// `max_subtrees` was hit (enumeration incomplete). The callback may
/// return false to stop early (the function still returns true).
bool ForEachRootSubtree(const PatternTree& tree, uint64_t max_subtrees,
                        const std::function<bool(const SubtreeMask&)>& cb);

/// Number of root subtrees (capped at `cap`; exact when below it).
uint64_t CountRootSubtrees(const PatternTree& tree, uint64_t cap);

/// Sorted variables mentioned inside the subtree.
std::vector<VariableId> SubtreeVariables(const PatternTree& tree,
                                         const SubtreeMask& mask);

/// All atoms of the subtree's nodes.
std::vector<Atom> SubtreeAtoms(const PatternTree& tree,
                               const SubtreeMask& mask);

/// q_T': the CQ with the subtree's atoms and *all* its variables free.
ConjunctiveQuery SubtreeQuery(const PatternTree& tree,
                              const SubtreeMask& mask);

/// r_T': like q_T' but projected onto the WDPT's free variables.
ConjunctiveQuery SubtreeProjectedQuery(const PatternTree& tree,
                                       const SubtreeMask& mask);

/// The minimal root subtree whose variables include `vars` (each variable
/// must be mentioned in the tree; the caller checks TopNode != kNoNode).
/// Unique by well-designedness: the union of the root paths to each
/// variable's top node.
SubtreeMask MinimalSubtreeContaining(const PatternTree& tree,
                                     const std::vector<VariableId>& vars);

/// The maximal root subtree none of whose nodes introduces a free
/// variable outside `allowed`: node t belongs iff no node on the path
/// from the root to t is the top node of a free variable not in
/// `allowed` (sorted). The root may itself violate the condition, in
/// which case the mask is all-false and the caller must reject.
SubtreeMask MaximalSubtreeWithFreeVarsWithin(
    const PatternTree& tree, const std::vector<VariableId>& allowed);

/// True if every included node's parent is included and the root is in.
bool IsValidRootSubtree(const PatternTree& tree, const SubtreeMask& mask);

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_SUBTREES_H_
