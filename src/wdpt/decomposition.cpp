#include "src/wdpt/decomposition.h"

#include <unordered_map>

#include "src/common/algo.h"
#include "src/cq/cq.h"
#include "src/hypergraph/treewidth.h"
#include "src/wdpt/classify.h"

namespace wdpt {

Result<GlobalDecomposition> BuildGlobalTreeDecomposition(
    const PatternTree& tree, int k) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  GlobalDecomposition out;
  ConjunctiveQuery full = tree.QueryOfFullTree();
  out.hypergraph = full.BuildHypergraph(&out.vertex_to_var);
  std::unordered_map<VariableId, uint32_t> dense;
  for (uint32_t i = 0; i < out.vertex_to_var.size(); ++i) {
    dense.emplace(out.vertex_to_var[i], i);
  }

  // Interface variables of each node: shared with parent or children.
  auto interface_vars = [&](NodeId n) {
    std::vector<VariableId> shared = tree.ParentInterface(n);
    std::vector<VariableId> child_vars;
    for (NodeId c : tree.children(n)) {
      const std::vector<VariableId>& cv = tree.node_vars(c);
      child_vars.insert(child_vars.end(), cv.begin(), cv.end());
    }
    SortUnique(&child_vars);
    return SortedUnion(shared,
                       SortedIntersection(tree.node_vars(n), child_vars));
  };

  // Per-node decompositions, glued together.
  std::vector<uint32_t> anchor_bag(tree.num_nodes(), 0);
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    ConjunctiveQuery node_q;
    node_q.atoms = tree.label(n);
    node_q.Normalize();
    std::vector<VariableId> node_vars;
    Hypergraph node_h = node_q.BuildHypergraph(&node_vars);
    Graph primal = node_h.ToPrimalGraph();
    if (primal.num_vertices > kMaxExactVertices) {
      return Status::InvalidArgument("node label has more than 64 variables");
    }
    std::optional<TreeDecomposition> local =
        FindTreeDecompositionOfWidth(primal, k);
    if (!local.has_value()) {
      return Status::InvalidArgument(
          "node label treewidth exceeds k: the tree is not locally in "
          "TW(k)");
    }
    // Translate to global dense ids and extend every bag by the node's
    // interface.
    std::vector<uint32_t> iface;
    for (VariableId v : interface_vars(n)) iface.push_back(dense.at(v));
    SortUnique(&iface);

    uint32_t base = static_cast<uint32_t>(out.td.bags.size());
    if (local->bags.empty()) {
      // Variable-free (or empty) label: a single interface bag.
      out.td.bags.push_back(iface);
    } else {
      for (const std::vector<uint32_t>& bag : local->bags) {
        std::vector<uint32_t> global_bag = iface;
        for (uint32_t v : bag) global_bag.push_back(dense.at(node_vars[v]));
        SortUnique(&global_bag);
        out.td.bags.push_back(std::move(global_bag));
      }
      for (const auto& [a, b] : local->edges) {
        out.td.edges.emplace_back(base + a, base + b);
      }
    }
    anchor_bag[n] = base;
    if (n != PatternTree::kRoot) {
      out.td.edges.emplace_back(anchor_bag[tree.parent(n)], base);
    }
  }
  WDPT_DCHECK(out.td.IsValidFor(out.hypergraph));
  return out;
}

}  // namespace wdpt
