#include "src/wdpt/eval_max.h"

#include "src/common/algo.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

Result<bool> MaxEval(const PatternTree& tree, const Database& db,
                     const Mapping& h, const CqEvalOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  std::vector<VariableId> dom = h.Domain();
  if (!SortedIsSubset(dom, tree.free_vars())) return false;

  // (1) Some homomorphism projects to exactly h. Any subtree covering
  // dom(h) contains the minimal one, so if that already introduces an
  // extra free variable, every candidate does.
  SubtreeMask minimal = MinimalSubtreeContaining(tree, dom);
  std::vector<VariableId> minimal_free =
      SortedIntersection(SubtreeVariables(tree, minimal), tree.free_vars());
  if (minimal_free != dom) return false;
  if (!DecideNonEmpty(SubtreeAtoms(tree, minimal), db, h, options)) {
    return false;
  }

  // (2) No strictly larger partial answer: for every other free variable
  // x, no homomorphism extends h and binds x.
  for (VariableId x : SortedDifference(tree.free_vars(), dom)) {
    std::vector<VariableId> extended = dom;
    extended.push_back(x);
    SortUnique(&extended);
    SubtreeMask with_x = MinimalSubtreeContaining(tree, extended);
    if (DecideNonEmpty(SubtreeAtoms(tree, with_x), db, h, options)) {
      return false;
    }
  }
  return true;
}

}  // namespace wdpt
