#include "src/wdpt/eval_projection_free.h"

#include "src/common/algo.h"
#include "src/cq/cq.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

Result<bool> EvalProjectionFree(const PatternTree& tree, const Database& db,
                                const Mapping& h,
                                const CqEvalOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  if (!tree.IsProjectionFree()) {
    return Status::InvalidArgument("tree has projected-out variables");
  }
  std::vector<VariableId> dom = h.Domain();
  if (!SortedIsSubset(dom, tree.free_vars())) return false;

  // T*: maximal parent-closed node set whose labels are fully bound by h
  // and satisfied in D.
  std::vector<bool> in_star(tree.num_nodes(), false);
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (n != PatternTree::kRoot && !in_star[tree.parent(n)]) continue;
    if (!SortedIsSubset(tree.node_vars(n), dom)) continue;
    // Fully bound: all atoms become ground; check them against D.
    std::vector<Atom> ground = SubstituteMapping(tree.label(n), h);
    bool satisfied = true;
    for (const Atom& a : ground) {
      WDPT_CHECK(a.IsGround());
      std::vector<ConstantId> tuple;
      tuple.reserve(a.terms.size());
      for (Term t : a.terms) tuple.push_back(t.constant_id());
      if (!db.ContainsFact(a.relation, tuple)) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) in_star[n] = true;
  }
  if (!in_star[PatternTree::kRoot]) return false;

  // (a) T* must bind exactly dom(h).
  std::vector<VariableId> star_vars = SubtreeVariables(tree, in_star);
  if (star_vars != dom) return false;

  // (b) Maximality: no excluded child with new variables is enterable.
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (!in_star[n]) continue;
    for (NodeId c : tree.children(n)) {
      if (in_star[c]) continue;
      if (SortedIsSubset(tree.node_vars(c), dom)) {
        // No new variables: entering c would not produce a strictly
        // larger mapping; irrelevant for maximality.
        continue;
      }
      if (DecideNonEmpty(tree.label(c), db, h, options)) return false;
    }
  }
  return true;
}

}  // namespace wdpt
