#include "src/wdpt/classify.h"

#include <algorithm>

#include "src/common/algo.h"
#include "src/hypergraph/treewidth.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

namespace {

// Boolean CQ of a node's label.
ConjunctiveQuery NodeQuery(const PatternTree& tree, NodeId n) {
  ConjunctiveQuery q;
  q.atoms = tree.label(n);
  q.Normalize();
  return q;
}

}  // namespace

Result<bool> IsLocallyInWidth(const PatternTree& tree, WidthMeasure measure,
                              int k) {
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    Result<bool> node_ok = WidthAtMost(NodeQuery(tree, n), measure, k);
    if (!node_ok.ok()) return node_ok.status();
    if (!*node_ok) return false;
  }
  return true;
}

int InterfaceWidth(const PatternTree& tree) {
  int width = 0;
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    std::vector<VariableId> child_vars;
    for (NodeId c : tree.children(n)) {
      const std::vector<VariableId>& cv = tree.node_vars(c);
      child_vars.insert(child_vars.end(), cv.begin(), cv.end());
    }
    SortUnique(&child_vars);
    std::vector<VariableId> shared =
        SortedIntersection(tree.node_vars(n), child_vars);
    width = std::max(width, static_cast<int>(shared.size()));
  }
  return width;
}

Result<bool> IsGloballyInWidth(const PatternTree& tree, WidthMeasure measure,
                               int k, uint64_t max_subtrees) {
  if (measure != WidthMeasure::kGeneralizedHypertreewidth) {
    // Monotone measures: the full-tree query dominates every subtree.
    return WidthAtMost(tree.QueryOfFullTree(), measure, k);
  }
  bool all_ok = true;
  Status failure = Status::Ok();
  bool complete = ForEachRootSubtree(
      tree, max_subtrees, [&](const SubtreeMask& mask) {
        Result<bool> ok = WidthAtMost(SubtreeQuery(tree, mask), measure, k);
        if (!ok.ok()) {
          failure = ok.status();
          return false;
        }
        if (!*ok) {
          all_ok = false;
          return false;
        }
        return true;
      });
  if (!failure.ok()) return failure;
  if (!all_ok) return false;
  if (!complete) {
    return Status::ResourceExhausted("too many root subtrees to enumerate");
  }
  return true;
}

Result<WdptClassification> ClassifyWdpt(const PatternTree& tree, int k) {
  WdptClassification result;
  result.interface_width = InterfaceWidth(tree);
  result.projection_free = tree.IsProjectionFree();
  int local_tw = -1;
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    ConjunctiveQuery q = NodeQuery(tree, n);
    Graph primal = q.BuildHypergraph(nullptr).ToPrimalGraph();
    if (primal.num_vertices > kMaxExactVertices) {
      return Status::ResourceExhausted("node too large for exact treewidth");
    }
    local_tw = std::max(local_tw, ExactTreewidth(primal));
  }
  result.local_treewidth = local_tw;
  result.locally_tw_k = local_tw <= k;
  Result<bool> global = IsGloballyInWidth(tree, WidthMeasure::kTreewidth, k);
  if (!global.ok()) return global.status();
  result.globally_tw_k = *global;
  return result;
}

}  // namespace wdpt
