#include "src/wdpt/subtrees.h"

#include "src/common/algo.h"
#include "src/common/status.h"

namespace wdpt {

SubtreeMask FullSubtree(const PatternTree& tree) {
  return SubtreeMask(tree.num_nodes(), true);
}

namespace {

// Recursive enumeration: nodes are processed in id order (parents have
// smaller ids than children by construction of AddChild).
struct SubtreeEnumerator {
  const PatternTree& tree;
  uint64_t remaining;
  const std::function<bool(const SubtreeMask&)>& cb;
  SubtreeMask mask;
  bool stopped = false;
  bool overflow = false;

  SubtreeEnumerator(const PatternTree& t, uint64_t max,
                    const std::function<bool(const SubtreeMask&)>& c)
      : tree(t), remaining(max), cb(c), mask(t.num_nodes(), false) {}

  // Enumerate inclusion choices for the children of every node in the
  // current mask. `frontier` holds candidate nodes (children of included
  // nodes, not yet decided).
  void Recurse(std::vector<NodeId> frontier) {
    if (stopped || overflow) return;
    if (frontier.empty()) {
      if (remaining == 0) {
        overflow = true;
        return;
      }
      --remaining;
      if (!cb(mask)) stopped = true;
      return;
    }
    NodeId n = frontier.back();
    frontier.pop_back();
    // Choice 1: exclude n (and its whole subtree).
    Recurse(frontier);
    if (stopped || overflow) return;
    // Choice 2: include n; its children join the frontier.
    mask[n] = true;
    for (NodeId c : tree.children(n)) frontier.push_back(c);
    Recurse(std::move(frontier));
    mask[n] = false;
  }
};

}  // namespace

bool ForEachRootSubtree(const PatternTree& tree, uint64_t max_subtrees,
                        const std::function<bool(const SubtreeMask&)>& cb) {
  SubtreeEnumerator enumerator(tree, max_subtrees, cb);
  enumerator.mask[PatternTree::kRoot] = true;
  std::vector<NodeId> frontier = tree.children(PatternTree::kRoot);
  enumerator.Recurse(std::move(frontier));
  return !enumerator.overflow;
}

uint64_t CountRootSubtrees(const PatternTree& tree, uint64_t cap) {
  uint64_t count = 0;
  ForEachRootSubtree(tree, cap, [&count](const SubtreeMask&) {
    ++count;
    return true;
  });
  return count;
}

std::vector<VariableId> SubtreeVariables(const PatternTree& tree,
                                         const SubtreeMask& mask) {
  std::vector<VariableId> vars;
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (mask[n]) {
      const std::vector<VariableId>& nv = tree.node_vars(n);
      vars.insert(vars.end(), nv.begin(), nv.end());
    }
  }
  SortUnique(&vars);
  return vars;
}

std::vector<Atom> SubtreeAtoms(const PatternTree& tree,
                               const SubtreeMask& mask) {
  std::vector<Atom> atoms;
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (mask[n]) {
      const std::vector<Atom>& label = tree.label(n);
      atoms.insert(atoms.end(), label.begin(), label.end());
    }
  }
  return atoms;
}

ConjunctiveQuery SubtreeQuery(const PatternTree& tree,
                              const SubtreeMask& mask) {
  ConjunctiveQuery q;
  q.atoms = SubtreeAtoms(tree, mask);
  q.free_vars = SubtreeVariables(tree, mask);
  q.Normalize();
  return q;
}

ConjunctiveQuery SubtreeProjectedQuery(const PatternTree& tree,
                                       const SubtreeMask& mask) {
  ConjunctiveQuery q;
  q.atoms = SubtreeAtoms(tree, mask);
  q.free_vars =
      SortedIntersection(SubtreeVariables(tree, mask), tree.free_vars());
  q.Normalize();
  return q;
}

SubtreeMask MinimalSubtreeContaining(const PatternTree& tree,
                                     const std::vector<VariableId>& vars) {
  SubtreeMask mask(tree.num_nodes(), false);
  mask[PatternTree::kRoot] = true;
  for (VariableId v : vars) {
    NodeId top = tree.TopNode(v);
    WDPT_CHECK(top != PatternTree::kNoNode);
    for (NodeId n = top; !mask[n]; n = tree.parent(n)) mask[n] = true;
  }
  return mask;
}

SubtreeMask MaximalSubtreeWithFreeVarsWithin(
    const PatternTree& tree, const std::vector<VariableId>& allowed) {
  // introduces_forbidden[n]: n is the top node of a free variable outside
  // `allowed`.
  std::vector<bool> introduces_forbidden(tree.num_nodes(), false);
  for (VariableId v : tree.free_vars()) {
    if (!SortedContains(allowed, v)) {
      NodeId top = tree.TopNode(v);
      if (top != PatternTree::kNoNode) introduces_forbidden[top] = true;
    }
  }
  SubtreeMask mask(tree.num_nodes(), false);
  // Top-down: node ids increase with depth (children created after
  // parents), so a single forward pass works.
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (introduces_forbidden[n]) continue;
    if (n == PatternTree::kRoot) {
      mask[n] = true;
    } else {
      mask[n] = mask[tree.parent(n)];
    }
  }
  return mask;
}

bool IsValidRootSubtree(const PatternTree& tree, const SubtreeMask& mask) {
  if (mask.size() != tree.num_nodes()) return false;
  if (!mask[PatternTree::kRoot]) return false;
  for (NodeId n = 1; n < tree.num_nodes(); ++n) {
    if (mask[n] && !mask[tree.parent(n)]) return false;
  }
  return true;
}

}  // namespace wdpt
