#include "src/wdpt/eval_tractable.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/cq/homomorphism.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

namespace {

enum class NodeStatus { kNotEnterable, kGood, kBad };

class TractableEvaluator {
 public:
  TractableEvaluator(const PatternTree& tree, const Database& db,
                     const Mapping& h, const CqEvalOptions& options)
      : tree_(tree), db_(db), h_(h), options_(options) {}

  Result<bool> Run() {
    std::vector<VariableId> dom = h_.Domain();
    // T': mandatory nodes (cover dom(h)); T'': admissible nodes (no
    // forbidden free variable introduced on the path).
    mandatory_ = MinimalSubtreeContaining(tree_, dom);
    admissible_ = MaximalSubtreeWithFreeVarsWithin(tree_, dom);
    if (!admissible_[PatternTree::kRoot]) return false;
    for (NodeId n = 0; n < tree_.num_nodes(); ++n) {
      if (mandatory_[n] && !admissible_[n]) return false;
    }

    status_.resize(tree_.num_nodes());
    // Children have larger ids than parents: reverse order is bottom-up.
    for (NodeId n = static_cast<NodeId>(tree_.num_nodes()); n-- > 0;) {
      if (admissible_[n]) ComputeNodeStatuses(n);
    }
    auto it = status_[PatternTree::kRoot].find(Mapping());
    return it != status_[PatternTree::kRoot].end() &&
           it->second == NodeStatus::kGood;
  }

 private:
  // Existential variables shared between the labels of n and its parent.
  std::vector<VariableId> ExistentialParentInterface(NodeId n) const {
    return SortedDifference(tree_.ParentInterface(n), tree_.free_vars());
  }

  // Free variables shared between the labels of n and its parent.
  std::vector<VariableId> FreeParentInterface(NodeId n) const {
    return SortedIntersection(tree_.ParentInterface(n), tree_.free_vars());
  }

  // Existential variables shared between n's label and its children's
  // labels (bounded by c under BI(c)).
  std::vector<VariableId> ExistentialChildInterface(NodeId n) const {
    std::vector<VariableId> child_vars;
    for (NodeId c : tree_.children(n)) {
      const std::vector<VariableId>& cv = tree_.node_vars(c);
      child_vars.insert(child_vars.end(), cv.begin(), cv.end());
    }
    SortUnique(&child_vars);
    return SortedDifference(
        SortedIntersection(tree_.node_vars(n), child_vars),
        tree_.free_vars());
  }

  // Whether a frontier node (outside T'') is enterable under `seed`.
  // Any entry into it dooms the candidate answer, because its subtree is
  // guaranteed to bind a free variable outside dom(h) under maximality.
  bool FrontierEnterable(NodeId n, const Mapping& seed) {
    auto [it, inserted] =
        frontier_cache_[n].emplace(seed, false);
    if (inserted) {
      it->second = DecideNonEmpty(tree_.label(n), db_, seed, options_);
    }
    return it->second;
  }

  void ComputeNodeStatuses(NodeId t) {
    std::vector<VariableId> upward = ExistentialParentInterface(t);
    std::vector<VariableId> downward = ExistentialChildInterface(t);
    std::vector<VariableId> joint = SortedUnion(upward, downward);

    // Free variables of the label (all in dom(h) by admissibility).
    std::vector<VariableId> node_free =
        SortedIntersection(tree_.node_vars(t), tree_.free_vars());
    Mapping good_seed = h_.RestrictTo(node_free);

    // GOOD detection: enumerate the joint-interface projections of the
    // h-consistent homomorphisms and combine child statuses.
    std::unordered_set<Mapping, MappingHash> good;
    for (const Mapping& joint_g : AllHomomorphismProjections(
             tree_.label(t), db_, good_seed, joint)) {
      bool ok = true;
      for (NodeId d : tree_.children(t)) {
        // The full interface assignment a child sees: the joint
        // existential values plus the pinned free values.
        Mapping child_exist =
            joint_g.RestrictTo(ExistentialParentInterface(d));
        if (admissible_[d]) {
          NodeStatus st = LookupStatus(d, child_exist);
          if (st == NodeStatus::kBad ||
              (st == NodeStatus::kNotEnterable && mandatory_[d])) {
            ok = false;
            break;
          }
        } else {
          std::optional<Mapping> seed = Mapping::Union(
              child_exist, h_.RestrictTo(FreeParentInterface(d)));
          WDPT_CHECK(seed.has_value());
          if (FrontierEnterable(d, *seed)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) good.insert(joint_g.RestrictTo(upward));
    }

    // Enterability relation R_t: interface projections of *all*
    // homomorphisms whose free parent-interface variables match h (those
    // are pinned by any surviving parent extension); free variables
    // introduced at t itself are unconstrained here.
    Mapping enter_seed = h_.RestrictTo(FreeParentInterface(t));
    std::unordered_map<Mapping, NodeStatus, MappingHash>& table = status_[t];
    for (const Mapping& g : AllHomomorphismProjections(
             tree_.label(t), db_, enter_seed, upward)) {
      table.emplace(g, NodeStatus::kBad);
    }
    for (const Mapping& g : good) {
      auto it = table.find(g);
      WDPT_CHECK(it != table.end());
      it->second = NodeStatus::kGood;
    }
  }

  NodeStatus LookupStatus(NodeId d, const Mapping& g) const {
    const auto& table = status_[d];
    auto it = table.find(g);
    return it == table.end() ? NodeStatus::kNotEnterable : it->second;
  }

  const PatternTree& tree_;
  const Database& db_;
  const Mapping& h_;
  CqEvalOptions options_;
  SubtreeMask mandatory_;
  SubtreeMask admissible_;
  std::vector<std::unordered_map<Mapping, NodeStatus, MappingHash>> status_;
  std::unordered_map<NodeId,
                     std::unordered_map<Mapping, bool, MappingHash>>
      frontier_cache_;
};

}  // namespace

Result<bool> EvalTractable(const PatternTree& tree, const Database& db,
                           const Mapping& h, const CqEvalOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  if (!SortedIsSubset(h.Domain(), tree.free_vars())) return false;
  TractableEvaluator evaluator(tree, db, h, options);
  return evaluator.Run();
}

}  // namespace wdpt
