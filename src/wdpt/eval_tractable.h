// Deprecated entry point: prefer wdpt::Engine (src/engine/engine.h),
// which dispatches here for EvalAlgorithm::kTractableDP (the kAuto
// default on locally tractable trees) and adds plan caching, batching,
// and deadline handling.
//
// Tractable exact evaluation for locally tractable WDPTs of bounded
// interface (Theorems 6 and 7, following the construction of Appendix
// A.1).
//
// The algorithm materializes, per node t of the maximal candidate
// subtree T'', the relation of interface assignments (the existential
// variables shared with the parent, |.| <= c under BI(c)) together with a
// three-valued status:
//   NOT_ENTERABLE -- lambda(t) has no homomorphism under the assignment,
//   GOOD          -- enterable, with an extension that is consistent with
//                    h and whose children are recursively safe,
//   BAD           -- enterable but every extension is fatal (it binds a
//                    free variable inconsistently with h, makes a
//                    forbidden frontier child enterable, or dooms a child).
// Combining the statuses along the tree is the acyclic Boolean CQ over
// the derived database D' from the paper's proof sketch; with local
// tractability and bounded interface every step is polynomial.
//
// The procedure is *correct for every WDPT* (the DP is exact); the class
// restrictions only bound its running time.

#ifndef WDPT_SRC_WDPT_EVAL_TRACTABLE_H_
#define WDPT_SRC_WDPT_EVAL_TRACTABLE_H_

#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// EVAL via the bounded-interface dynamic program: is h in p(D)?
Result<bool> EvalTractable(const PatternTree& tree, const Database& db,
                           const Mapping& h,
                           const CqEvalOptions& options = CqEvalOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_EVAL_TRACTABLE_H_
