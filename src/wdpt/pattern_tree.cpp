#include "src/wdpt/pattern_tree.h"

#include <algorithm>

#include "src/common/algo.h"

namespace wdpt {

NodeId PatternTree::AddChild(NodeId parent, std::vector<Atom> atoms) {
  WDPT_CHECK(parent < nodes_.size());
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.parent = parent;
  node.atoms = std::move(atoms);
  node.vars = VariablesOf(node.atoms);
  node.depth = nodes_[parent].depth + 1;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  validated_ = false;
  return id;
}

void PatternTree::AddAtom(NodeId node, Atom atom) {
  WDPT_CHECK(node < nodes_.size());
  nodes_[node].atoms.push_back(std::move(atom));
  nodes_[node].vars = VariablesOf(nodes_[node].atoms);
  validated_ = false;
}

void PatternTree::SetFreeVariables(std::vector<VariableId> vars) {
  SortUnique(&vars);
  free_vars_ = std::move(vars);
  validated_ = false;
}

void PatternTree::NormalizeLabels() {
  for (Node& node : nodes_) {
    std::sort(node.atoms.begin(), node.atoms.end());
    node.atoms.erase(std::unique(node.atoms.begin(), node.atoms.end()),
                     node.atoms.end());
    node.vars = VariablesOf(node.atoms);
  }
  validated_ = false;
}

uint32_t PatternTree::depth(NodeId n) const { return nodes_[n].depth; }

std::vector<VariableId> PatternTree::AllVariables() const {
  std::vector<VariableId> all;
  for (const Node& node : nodes_) {
    all.insert(all.end(), node.vars.begin(), node.vars.end());
  }
  SortUnique(&all);
  return all;
}

bool PatternTree::IsProjectionFree() const {
  return AllVariables() == free_vars_;
}

size_t PatternTree::Size() const {
  size_t size = 0;
  for (const Node& node : nodes_) {
    size += node.atoms.size();
    for (const Atom& a : node.atoms) size += a.terms.size();
  }
  return size;
}

Status PatternTree::Validate() {
  top_node_.clear();
  // Collect, per variable, the set of mentioning nodes.
  std::unordered_map<VariableId, std::vector<NodeId>> mentions;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    for (VariableId v : nodes_[n].vars) mentions[v].push_back(n);
  }
  // Condition (2): the mentioning nodes of each variable are connected.
  // In a tree, a node set S is connected iff exactly one element of S has
  // its parent outside S (or is the root) and all others have parents in S.
  for (const auto& [v, node_list] : mentions) {
    std::vector<bool> in_set(nodes_.size(), false);
    for (NodeId n : node_list) in_set[n] = true;
    NodeId top = kNoNode;
    for (NodeId n : node_list) {
      bool has_parent_inside = (n != kRoot) && in_set[parent(n)];
      if (!has_parent_inside) {
        if (top != kNoNode) {
          return Status::NotWellDesigned(
              "variable occurs in disconnected nodes (id " +
              std::to_string(v) + ")");
        }
        top = n;
      }
    }
    WDPT_CHECK(top != kNoNode);
    top_node_.emplace(v, top);
  }
  // Condition (3): free variables must be mentioned.
  for (VariableId v : free_vars_) {
    if (!mentions.contains(v)) {
      return Status::NotWellDesigned("free variable not mentioned (id " +
                                     std::to_string(v) + ")");
    }
  }
  validated_ = true;
  return Status::Ok();
}

NodeId PatternTree::TopNode(VariableId v) const {
  WDPT_CHECK(validated_);
  auto it = top_node_.find(v);
  return it == top_node_.end() ? kNoNode : it->second;
}

std::vector<VariableId> PatternTree::ParentInterface(NodeId n) const {
  if (n == kRoot) return {};
  return SortedIntersection(nodes_[n].vars, nodes_[parent(n)].vars);
}

ConjunctiveQuery PatternTree::QueryOfFullTree() const {
  ConjunctiveQuery q;
  for (const Node& node : nodes_) {
    q.atoms.insert(q.atoms.end(), node.atoms.begin(), node.atoms.end());
  }
  q.free_vars = AllVariables();
  q.Normalize();
  return q;
}

std::string PatternTree::ToString(const Schema& schema,
                                  const Vocabulary& vocab) const {
  std::string out = "WDPT(free: ";
  for (size_t i = 0; i < free_vars_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "?" + vocab.VariableName(free_vars_[i]);
  }
  out += ")\n";
  // Depth-first render.
  std::vector<std::pair<NodeId, uint32_t>> stack = {{kRoot, 0}};
  while (!stack.empty()) {
    auto [n, indent] = stack.back();
    stack.pop_back();
    out.append(indent * 2, ' ');
    out += "- {" + AtomsToString(nodes_[n].atoms, schema, vocab) + "}\n";
    const std::vector<NodeId>& kids = nodes_[n].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, indent + 1);
    }
  }
  return out;
}

}  // namespace wdpt
