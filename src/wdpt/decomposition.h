// Constructive Proposition 2.1: from local tractability and bounded
// interface to global tractability.
//
// For a WDPT that is locally in TW(k) with interface width c, a tree
// decomposition of the full query q_T of width at most k + 2c is built
// by decomposing each node label separately (width <= k), adding the
// node's interface variables (<= c towards the parent, <= c towards the
// children) to every bag, and linking each node's decomposition to its
// parent's. Every root subtree's query inherits a sub-decomposition, so
// the tree is globally in TW(k + 2c) — exactly Proposition 2's bound,
// here with an explicit witness usable by the decomposition-based
// evaluators.

#ifndef WDPT_SRC_WDPT_DECOMPOSITION_H_
#define WDPT_SRC_WDPT_DECOMPOSITION_H_

#include <vector>

#include "src/common/status.h"
#include "src/hypergraph/tree_decomposition.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// A tree decomposition of q_T's hypergraph together with the dense
/// vertex <-> variable translation.
struct GlobalDecomposition {
  TreeDecomposition td;
  Hypergraph hypergraph;                  ///< q_T's hypergraph.
  std::vector<VariableId> vertex_to_var;  ///< Dense id -> variable.
};

/// Builds the Proposition 2 decomposition. Fails with kInvalidArgument
/// if some node label's treewidth exceeds k (the tree is not locally in
/// TW(k)) or a label has more than 64 variables.
Result<GlobalDecomposition> BuildGlobalTreeDecomposition(
    const PatternTree& tree, int k);

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_DECOMPOSITION_H_
