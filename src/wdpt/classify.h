// Classification of WDPTs into the paper's tractability classes:
// local tractability (l-C), bounded interface (BI(c)), and global
// tractability (g-C) — Section 3.
//
// Useful structural facts exploited here:
//  * Treewidth is monotone under subqueries, so p is globally in TW(k)
//    iff tw(q_T) <= k (only hypertreewidth needs per-subtree checks).
//  * Likewise p is globally in HW'(k) (beta) iff beta-ghw(q_T) <= k,
//    because the atom subsets of root subtrees are exactly the atom
//    subsets of the full tree.

#ifndef WDPT_SRC_WDPT_CLASSIFY_H_
#define WDPT_SRC_WDPT_CLASSIFY_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/cq/approximation.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Local tractability: every node's Boolean CQ is in the width class.
Result<bool> IsLocallyInWidth(const PatternTree& tree, WidthMeasure measure,
                              int k);

/// Interface width: the maximum over nodes t of the number of variables
/// shared between lambda(t) and the labels of t's children. p is in BI(c)
/// iff InterfaceWidth(p) <= c.
int InterfaceWidth(const PatternTree& tree);

/// Global tractability: every root subtree's CQ q_T' is in the class.
/// For kGeneralizedHypertreewidth this enumerates root subtrees (capped
/// by `max_subtrees`, error on overflow); the other measures reduce to a
/// single check on q_T.
Result<bool> IsGloballyInWidth(const PatternTree& tree, WidthMeasure measure,
                               int k,
                               uint64_t max_subtrees = uint64_t{1} << 22);

/// Summary of a WDPT's position in the paper's class lattice.
struct WdptClassification {
  int interface_width = 0;
  int local_treewidth = -1;        ///< max over nodes of tw(node CQ).
  bool globally_tw_k = false;      ///< g-TW(k) for the requested k.
  bool locally_tw_k = false;       ///< l-TW(k) for the requested k.
  bool projection_free = false;
};

/// Computes the classification for treewidth bound `k`.
Result<WdptClassification> ClassifyWdpt(const PatternTree& tree, int k);

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_CLASSIFY_H_
