// Deprecated entry point: prefer wdpt::Engine with
// EvalSemantics::kPartial (src/engine/engine.h).
//
// PARTIAL-EVAL (Section 3.3, Theorem 8).
//
// h is a partial answer to p over D iff some answer of p(D) subsumes h.
// Because every homomorphism extends to a maximal one with a larger
// projection, this holds iff some homomorphism from p to D extends h,
// which in turn holds on the *minimal* root subtree containing h's
// variables. For globally tractable WDPTs the resulting instantiated CQ
// is in TW(k)/HW(k), so the structured CQ evaluator decides it in
// polynomial time (the paper sharpens this to LOGCFL).

#ifndef WDPT_SRC_WDPT_EVAL_PARTIAL_H_
#define WDPT_SRC_WDPT_EVAL_PARTIAL_H_

#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// PARTIAL-EVAL: is there h' in p(D) with h [= h'?
Result<bool> PartialEval(const PatternTree& tree, const Database& db,
                         const Mapping& h,
                         const CqEvalOptions& options = CqEvalOptions());

/// Like PartialEval but returns a witnessing homomorphism (defined on the
/// minimal root subtree covering dom(h)), or nullopt when h is not a
/// partial answer. Used by the Lemma 1 shrinking machinery, which needs
/// the witness's image.
Result<std::optional<Mapping>> PartialEvalWitness(
    const PatternTree& tree, const Database& db, const Mapping& h);

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_EVAL_PARTIAL_H_
