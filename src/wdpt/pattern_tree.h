// Well-designed pattern trees (Definition 1 of the paper).
//
// A WDPT (T, lambda, x) is a rooted tree whose nodes carry sets of
// relational atoms, such that the nodes mentioning any fixed variable are
// connected, together with a tuple x of free variables. A PatternTree is
// built incrementally (AddChild / AddAtom / SetFreeVariables) and then
// validated; the evaluation algorithms require Validate() to have
// succeeded and use the derived per-variable top-node table.

#ifndef WDPT_SRC_WDPT_PATTERN_TREE_H_
#define WDPT_SRC_WDPT_PATTERN_TREE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/cq/cq.h"
#include "src/relational/atom.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// Node handle within a PatternTree. The root is always node 0.
using NodeId = uint32_t;

/// A (candidate) well-designed pattern tree.
class PatternTree {
 public:
  /// Creates a tree with an empty root label and no free variables.
  PatternTree() { nodes_.emplace_back(); }

  static constexpr NodeId kRoot = 0;

  /// Adds a child of `parent` with the given label; returns its id.
  NodeId AddChild(NodeId parent, std::vector<Atom> atoms);

  /// Appends an atom to a node's label.
  void AddAtom(NodeId node, Atom atom);

  /// Declares the free variables x (deduplicated, sorted).
  void SetFreeVariables(std::vector<VariableId> vars);

  /// Sorts and deduplicates every node label (atom multisets are
  /// semantically sets).
  void NormalizeLabels();

  // -- Structure accessors ------------------------------------------------

  size_t num_nodes() const { return nodes_.size(); }
  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[n].children;
  }
  const std::vector<Atom>& label(NodeId n) const { return nodes_[n].atoms; }
  const std::vector<VariableId>& free_vars() const { return free_vars_; }
  /// Depth of node (root = 0).
  uint32_t depth(NodeId n) const;

  /// Variables mentioned in the node's label (sorted).
  const std::vector<VariableId>& node_vars(NodeId n) const {
    return nodes_[n].vars;
  }

  /// All variables mentioned anywhere in the tree (sorted).
  std::vector<VariableId> AllVariables() const;

  /// True if x contains every mentioned variable (projection-free WDPT).
  bool IsProjectionFree() const;

  /// |p|: size of the CQ q_T in standard notation.
  size_t Size() const;

  // -- Well-designedness ---------------------------------------------------

  /// Checks Definition 1: (2) for every variable the mentioning nodes are
  /// connected in T, (3) free variables are mentioned in T. On success,
  /// derived tables (top nodes) are (re)built.
  Status Validate();

  /// True if Validate() succeeded since the last mutation.
  bool validated() const { return validated_; }

  /// Topmost node mentioning `v` (unique by well-designedness). Only valid
  /// after Validate(). Returns kNoNode for unmentioned variables.
  static constexpr NodeId kNoNode = UINT32_MAX;
  NodeId TopNode(VariableId v) const;

  /// The existential variables shared between node n's label and its
  /// parent's label (the upward interface I_n). Empty for the root. Only
  /// valid after Validate(). Includes free variables when
  /// `include_free` (the evaluation DP needs all shared variables).
  std::vector<VariableId> ParentInterface(NodeId n) const;

  // -- CQ views ------------------------------------------------------------

  /// q_T: the CQ of the full tree with *all* variables free.
  ConjunctiveQuery QueryOfFullTree() const;

  /// Renders an indented multi-line description.
  std::string ToString(const Schema& schema, const Vocabulary& vocab) const;

 private:
  struct Node {
    NodeId parent = 0;
    std::vector<NodeId> children;
    std::vector<Atom> atoms;
    std::vector<VariableId> vars;  // Sorted label variables.
    uint32_t depth = 0;
  };

  std::vector<Node> nodes_;
  std::vector<VariableId> free_vars_;
  bool validated_ = false;
  std::unordered_map<VariableId, NodeId> top_node_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_PATTERN_TREE_H_
