#include "src/wdpt/enumerate.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/cq/homomorphism.h"

namespace wdpt {

namespace {

class MaximalHomEnumerator {
 public:
  MaximalHomEnumerator(const PatternTree& tree, const Database& db,
                       const std::function<bool(const Mapping&)>& callback,
                       const EnumerationLimits& limits)
      : tree_(tree), db_(db), callback_(callback), limits_(limits) {}

  Status Run() {
    // The root is mandatory: if it is not enterable, p(D) is empty.
    Complete(Mapping(), {PatternTree::kRoot});
    // Token state is sticky, so consult it directly: the inner search may
    // have aborted on it before any callback-side poll noticed.
    Status token_status = StatusFromToken(limits_.cancel);
    if (!token_status.ok()) return token_status;
    if (overflow_) {
      return Status::ResourceExhausted(
          "maximal-homomorphism enumeration exceeded its limits");
    }
    return Status::Ok();
  }

 private:
  // Extends `e` over the labels of `pending` nodes (children of already-
  // matched nodes that turned out enterable, plus initially the root),
  // exploring every combination; emits complete maximal homomorphisms.
  //
  // Invariant: all nodes in `pending` are independent given e (their
  // subtrees share no unbound variables), so they are processed left to
  // right, each branching over its own extensions.
  void Complete(const Mapping& e, std::vector<NodeId> pending) {
    if (stopped_ || overflow_ || cancelled_) return;
    if (limits_.cancel.valid() && limits_.cancel.ShouldStop()) {
      cancelled_ = true;
      return;
    }
    if (pending.empty()) {
      Emit(e);
      return;
    }
    NodeId c = pending.back();
    pending.pop_back();
    HomSearchLimits hom_limits;
    hom_limits.cancel = limits_.cancel;
    // Enumerate extensions of e over lambda(c).
    bool enterable = false;
    ForEachHomomorphism(
        tree_.label(c), db_, e,
        [&](const Mapping& ext) {
          enterable = true;
          if (limits_.max_steps != 0 && ++steps_ > limits_.max_steps) {
            overflow_ = true;
            return false;
          }
          // Determine which children of c are enterable under ext; they
          // are mandatory (maximality), the rest are dropped.
          std::vector<NodeId> next = pending;
          for (NodeId d : tree_.children(c)) {
            if (HomomorphismExists(tree_.label(d), db_, ext, hom_limits)) {
              next.push_back(d);
            }
          }
          Complete(ext, std::move(next));
          return !(stopped_ || overflow_ || cancelled_);
        },
        hom_limits);
    // `c` unenterable can only happen for the root here: children are
    // only scheduled after an explicit enterability test, and
    // enterability depends on variables already bound in e.
    if (!enterable) {
      WDPT_DCHECK(c == PatternTree::kRoot);
    }
  }

  void Emit(const Mapping& hom) {
    if (!seen_.insert(hom).second) return;
    if (limits_.max_homomorphisms != 0 &&
        seen_.size() > limits_.max_homomorphisms) {
      overflow_ = true;
      return;
    }
    if (!callback_(hom)) stopped_ = true;
  }

  const PatternTree& tree_;
  const Database& db_;
  const std::function<bool(const Mapping&)>& callback_;
  EnumerationLimits limits_;
  std::unordered_set<Mapping, MappingHash> seen_;
  uint64_t steps_ = 0;
  bool stopped_ = false;
  bool overflow_ = false;
  bool cancelled_ = false;
};

}  // namespace

Status ForEachMaximalHomomorphism(
    const PatternTree& tree, const Database& db,
    const std::function<bool(const Mapping&)>& callback,
    const EnumerationLimits& limits) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  MaximalHomEnumerator enumerator(tree, db, callback, limits);
  return enumerator.Run();
}

Result<std::vector<Mapping>> EvaluateWdptByFullEnumeration(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits) {
  std::unordered_set<Mapping, MappingHash> seen;
  std::vector<Mapping> answers;
  Status status = ForEachMaximalHomomorphism(
      tree, db,
      [&](const Mapping& hom) {
        Mapping projected = hom.RestrictTo(tree.free_vars());
        if (seen.insert(projected).second) {
          answers.push_back(std::move(projected));
        }
        return true;
      },
      limits);
  if (!status.ok()) return status;
  std::sort(answers.begin(), answers.end());
  return answers;
}

namespace {

// Projection-aware evaluator: per subtree, completions are represented
// only by their free-variable projections, deduplicated eagerly, and
// memoized on the node's parent-interface assignment.
//
// With `root_seeds` attached, the root search runs once per seed with
// the seed pre-bound (the scatter side of the engine's sharded path);
// the per-seed completion sets are merged with deduplication.
class ProjectedEvaluator {
 public:
  ProjectedEvaluator(const PatternTree& tree, const Database& db,
                     const EnumerationLimits& limits,
                     const std::vector<Mapping>* root_seeds = nullptr)
      : tree_(tree),
        db_(db),
        limits_(limits),
        root_seeds_(root_seeds),
        memo_(tree.num_nodes()) {}

  Result<std::vector<Mapping>> Run() {
    std::vector<Mapping> answers;
    if (root_seeds_ == nullptr) {
      std::optional<std::vector<Mapping>> root =
          Completions(PatternTree::kRoot, Mapping());
      Status terminal = TerminalStatus();
      if (!terminal.ok()) return terminal;
      if (root.has_value()) answers = std::move(*root);
    } else {
      std::unordered_set<Mapping, MappingHash> merged;
      for (const Mapping& seed : *root_seeds_) {
        std::optional<std::vector<Mapping>> part =
            Completions(PatternTree::kRoot, seed);
        if (overflow_ || cancelled_) break;
        if (part.has_value()) {
          merged.insert(part->begin(), part->end());
        }
      }
      Status terminal = TerminalStatus();
      if (!terminal.ok()) return terminal;
      answers.assign(merged.begin(), merged.end());
    }
    std::sort(answers.begin(), answers.end());
    return answers;
  }

 private:
  Status TerminalStatus() const {
    Status token_status = StatusFromToken(limits_.cancel);
    if (!token_status.ok()) return token_status;
    if (overflow_) {
      return Status::ResourceExhausted(
          "projected answer enumeration exceeded its limits");
    }
    return Status::Ok();
  }

  bool Step() {
    if (limits_.max_steps != 0 && ++steps_ > limits_.max_steps) {
      overflow_ = true;
    }
    // Poll cancellation every 1024 steps (a ShouldStop reads the clock).
    if (limits_.cancel.valid() && (steps_ & 0x3FF) == 0 &&
        limits_.cancel.ShouldStop()) {
      cancelled_ = true;
    }
    return !(overflow_ || cancelled_);
  }

  // Projected maximal completions of the subtree rooted at `c` given the
  // ancestor assignment `e` (only e's values on the parent interface of
  // c matter). nullopt = not enterable.
  std::optional<std::vector<Mapping>> Completions(NodeId c,
                                                  const Mapping& e) {
    // Children key on their parent interface; the root keys on the full
    // ancestor assignment — empty unseeded (ParentInterface(kRoot) is
    // empty), the scatter seed in seeded runs, where it must survive
    // into the homomorphism search below.
    Mapping key = c == PatternTree::kRoot
                      ? e
                      : e.RestrictTo(tree_.ParentInterface(c));
    auto& node_memo = memo_[c];
    auto it = node_memo.find(key);
    if (it != node_memo.end()) return it->second;

    std::vector<VariableId> node_free =
        SortedIntersection(tree_.node_vars(c), tree_.free_vars());
    std::unordered_set<Mapping, MappingHash> results;
    HomSearchLimits hom_limits;
    hom_limits.cancel = limits_.cancel;
    bool enterable = false;
    ForEachHomomorphism(
        tree_.label(c), db_, key,
        [&](const Mapping& ext) {
          enterable = true;
          if (!Step()) return false;
          // Child completion sets under this extension.
          std::vector<std::vector<Mapping>> child_sets;
          for (NodeId d : tree_.children(c)) {
            std::optional<std::vector<Mapping>> cs = Completions(d, ext);
            if (overflow_ || cancelled_) return false;
            if (cs.has_value()) child_sets.push_back(std::move(*cs));
          }
          // Product of the children's projected completions.
          Mapping base = ext.RestrictTo(node_free);
          std::function<void(size_t, const Mapping&)> combine =
              [&](size_t idx, const Mapping& acc) {
                if (overflow_ || cancelled_) return;
                if (idx == child_sets.size()) {
                  if (!Step()) return;
                  results.insert(acc);
                  return;
                }
                for (const Mapping& m : child_sets[idx]) {
                  std::optional<Mapping> merged = Mapping::Union(acc, m);
                  // Shared free variables are seeded consistently, so the
                  // union always succeeds.
                  WDPT_DCHECK(merged.has_value());
                  combine(idx + 1, *merged);
                  if (overflow_ || cancelled_) return;
                }
              };
          combine(0, base);
          return !(overflow_ || cancelled_);
        },
        hom_limits);
    std::optional<std::vector<Mapping>> out;
    if (enterable) {
      out.emplace(results.begin(), results.end());
    }
    if (!(overflow_ || cancelled_)) node_memo.emplace(std::move(key), out);
    return out;
  }

  const PatternTree& tree_;
  const Database& db_;
  EnumerationLimits limits_;
  const std::vector<Mapping>* root_seeds_;
  std::vector<std::unordered_map<Mapping,
                                 std::optional<std::vector<Mapping>>,
                                 MappingHash>>
      memo_;
  uint64_t steps_ = 0;
  bool overflow_ = false;
  bool cancelled_ = false;
};

}  // namespace

Result<std::vector<Mapping>> EvaluateWdptProjected(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  ProjectedEvaluator evaluator(tree, db, limits);
  return evaluator.Run();
}

Result<std::vector<Mapping>> EvaluateWdptProjectedSeeded(
    const PatternTree& tree, const Database& db,
    const std::vector<Mapping>& root_seeds,
    const EnumerationLimits& limits) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  ProjectedEvaluator evaluator(tree, db, limits, &root_seeds);
  return evaluator.Run();
}

Result<std::vector<Mapping>> EvaluateWdpt(const PatternTree& tree,
                                          const Database& db,
                                          const EnumerationLimits& limits) {
  return EvaluateWdptProjected(tree, db, limits);
}

Result<std::vector<Mapping>> EvaluateWdptMaximal(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits) {
  Result<std::vector<Mapping>> answers = EvaluateWdpt(tree, db, limits);
  if (!answers.ok()) return answers.status();
  return MaximalMappings(*answers);
}

std::vector<Mapping> MaximalMappings(const std::vector<Mapping>& mappings) {
  std::vector<Mapping> maximal;
  for (size_t i = 0; i < mappings.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < mappings.size() && !dominated; ++j) {
      if (i != j && mappings[i].IsStrictlySubsumedBy(mappings[j])) {
        dominated = true;
      }
    }
    if (!dominated) maximal.push_back(mappings[i]);
  }
  return maximal;
}

}  // namespace wdpt
