// Deprecated entry point: prefer wdpt::Engine with
// EvalSemantics::kMaximal (src/engine/engine.h).
//
// MAX-EVAL under the maximal-mapping semantics (Section 3.4, Theorem 9).
//
// p_m(D) consists of the subsumption-maximal answers. h is in p_m(D) iff
// (1) some homomorphism projects to exactly h: the minimal root subtree
//     T' covering dom(h) must introduce no further free variable and the
//     instantiated q_T' must be satisfiable; and
// (2) h is not extendable: for every free variable x outside dom(h), the
//     minimal subtree covering dom(h) and x is unsatisfiable under h.
// Both reduce to CQ satisfiability of subtree queries, hence tractable
// for globally tractable WDPTs.

#ifndef WDPT_SRC_WDPT_EVAL_MAX_H_
#define WDPT_SRC_WDPT_EVAL_MAX_H_

#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// MAX-EVAL: is h in p_m(D)?
Result<bool> MaxEval(const PatternTree& tree, const Database& db,
                     const Mapping& h,
                     const CqEvalOptions& options = CqEvalOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_EVAL_MAX_H_
