// Full answer enumeration: p(D) and the maximal-mapping semantics p_m(D)
// (Definition 2 and Section 3.4 of the paper).

#ifndef WDPT_SRC_WDPT_ENUMERATE_H_
#define WDPT_SRC_WDPT_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Limits for answer enumeration. Enumeration of maximal homomorphisms is
/// worst-case exponential in |p| and output-sized in |D|.
struct EnumerationLimits {
  /// Cap on produced maximal homomorphisms before deduplication
  /// (0 = unlimited). Exceeding it yields kResourceExhausted.
  uint64_t max_homomorphisms = uint64_t{1} << 22;
  /// Cap on per-node extension steps explored during the recursive
  /// product construction (0 = unlimited). Guards against instances
  /// whose sets of maximal homomorphisms are combinatorially huge.
  uint64_t max_steps = uint64_t{1} << 26;
  /// Cooperative cancellation; polled during enumeration. A fired token
  /// aborts with kDeadlineExceeded / kCancelled (never a partial answer).
  CancelToken cancel;
};

/// Enumerates the maximal homomorphisms from p to D (deduplicated).
/// The callback may return false to stop early.
Status ForEachMaximalHomomorphism(
    const PatternTree& tree, const Database& db,
    const std::function<bool(const Mapping&)>& callback,
    const EnumerationLimits& limits = EnumerationLimits());

/// p(D): projections of the maximal homomorphisms onto the free
/// variables, deduplicated. Uses the projection-aware enumerator below.
///
/// All answer-set entry points in this header return their answers in
/// the canonical order (Mapping's lexicographic operator<): any two
/// evaluation paths over the same instance — projected, full
/// enumeration, or the engine's sharded scatter-gather — produce
/// bit-identical vectors, and a truncation to the first K rows is
/// deterministic.
Result<std::vector<Mapping>> EvaluateWdpt(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// Projection-aware computation of p(D): per child subtree, maximal
/// completions are deduplicated by their projection onto the free
/// variables *before* the cross-child product is taken, and completion
/// sets are memoized on the child's interface assignment. Equivalent to
/// projecting ForEachMaximalHomomorphism's output, but the intermediate
/// blow-up is bounded by answer counts instead of homomorphism counts —
/// often exponentially smaller when optional branches have many
/// existential matches.
Result<std::vector<Mapping>> EvaluateWdptProjected(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// Reference implementation of p(D) via full maximal-homomorphism
/// enumeration (kept for differential testing and as the baseline in
/// the ablation benches).
Result<std::vector<Mapping>> EvaluateWdptByFullEnumeration(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// Scatter-gather building block: the subset of p(D) contributed by the
/// maximal homomorphisms whose root extension is compatible with one of
/// `root_seeds` (each seed is pre-bound before the root-label search, so
/// the search only completes it). The engine obtains the seeds by
/// matching one root-label atom against a single shard
/// (src/relational/sharded.h); because a fact lives in exactly one
/// shard, the per-shard seed sets partition the root homomorphisms and
/// the union of the per-shard results over a partition's seeds equals
/// EvaluateWdptProjected on the full database. Results are sorted; the
/// union across shards may still contain duplicates (two root
/// homomorphisms with different seeds can project to one answer), so
/// the gather side deduplicates.
Result<std::vector<Mapping>> EvaluateWdptProjectedSeeded(
    const PatternTree& tree, const Database& db,
    const std::vector<Mapping>& root_seeds,
    const EnumerationLimits& limits = EnumerationLimits());

/// p_m(D): the subsumption-maximal elements of p(D) (Section 3.4).
Result<std::vector<Mapping>> EvaluateWdptMaximal(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// Filters the subsumption-maximal mappings out of `mappings`.
std::vector<Mapping> MaximalMappings(const std::vector<Mapping>& mappings);

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_ENUMERATE_H_
