// Full answer enumeration: p(D) and the maximal-mapping semantics p_m(D)
// (Definition 2 and Section 3.4 of the paper).

#ifndef WDPT_SRC_WDPT_ENUMERATE_H_
#define WDPT_SRC_WDPT_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Limits for answer enumeration. Enumeration of maximal homomorphisms is
/// worst-case exponential in |p| and output-sized in |D|.
struct EnumerationLimits {
  /// Cap on produced maximal homomorphisms before deduplication
  /// (0 = unlimited). Exceeding it yields kResourceExhausted.
  uint64_t max_homomorphisms = uint64_t{1} << 22;
  /// Cap on per-node extension steps explored during the recursive
  /// product construction (0 = unlimited). Guards against instances
  /// whose sets of maximal homomorphisms are combinatorially huge.
  uint64_t max_steps = uint64_t{1} << 26;
  /// Cooperative cancellation; polled during enumeration. A fired token
  /// aborts with kDeadlineExceeded / kCancelled (never a partial answer).
  CancelToken cancel;
};

/// Enumerates the maximal homomorphisms from p to D (deduplicated).
/// The callback may return false to stop early.
Status ForEachMaximalHomomorphism(
    const PatternTree& tree, const Database& db,
    const std::function<bool(const Mapping&)>& callback,
    const EnumerationLimits& limits = EnumerationLimits());

/// p(D): projections of the maximal homomorphisms onto the free
/// variables, deduplicated. Uses the projection-aware enumerator below.
Result<std::vector<Mapping>> EvaluateWdpt(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// Projection-aware computation of p(D): per child subtree, maximal
/// completions are deduplicated by their projection onto the free
/// variables *before* the cross-child product is taken, and completion
/// sets are memoized on the child's interface assignment. Equivalent to
/// projecting ForEachMaximalHomomorphism's output, but the intermediate
/// blow-up is bounded by answer counts instead of homomorphism counts —
/// often exponentially smaller when optional branches have many
/// existential matches.
Result<std::vector<Mapping>> EvaluateWdptProjected(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// Reference implementation of p(D) via full maximal-homomorphism
/// enumeration (kept for differential testing and as the baseline in
/// the ablation benches).
Result<std::vector<Mapping>> EvaluateWdptByFullEnumeration(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// p_m(D): the subsumption-maximal elements of p(D) (Section 3.4).
Result<std::vector<Mapping>> EvaluateWdptMaximal(
    const PatternTree& tree, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// Filters the subsumption-maximal mappings out of `mappings`.
std::vector<Mapping> MaximalMappings(const std::vector<Mapping>& mappings);

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_ENUMERATE_H_
