// Deprecated entry point: prefer wdpt::Engine (src/engine/engine.h),
// which dispatches here for EvalAlgorithm::kProjectionFree (the kAuto
// default on projection-free trees).
//
// EVAL for projection-free WDPTs (Theorem 4; coNP-complete in general,
// polynomial under local tractability).
//
// Without projection an answer determines its subtree: h in p(D) iff the
// maximal root subtree T* whose nodes are fully bound and satisfied by h
// covers exactly dom(h), and no excluded child with new variables can be
// entered. Each step is a node-local CQ test, so the paper's Theorem 4
// follows by plugging in a tractable node evaluator.

#ifndef WDPT_SRC_WDPT_EVAL_PROJECTION_FREE_H_
#define WDPT_SRC_WDPT_EVAL_PROJECTION_FREE_H_

#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// EVAL for projection-free WDPTs: is h in p(D)? Returns an error status
/// if `tree` is not projection-free.
Result<bool> EvalProjectionFree(const PatternTree& tree, const Database& db,
                                const Mapping& h,
                                const CqEvalOptions& options = CqEvalOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_EVAL_PROJECTION_FREE_H_
