#include "src/wdpt/eval_partial.h"

#include "src/common/algo.h"
#include "src/cq/homomorphism.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

Result<bool> PartialEval(const PatternTree& tree, const Database& db,
                         const Mapping& h, const CqEvalOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  // Answers are defined on free variables only.
  if (!SortedIsSubset(h.Domain(), tree.free_vars())) return false;
  SubtreeMask minimal = MinimalSubtreeContaining(tree, h.Domain());
  return DecideNonEmpty(SubtreeAtoms(tree, minimal), db, h, options);
}

Result<std::optional<Mapping>> PartialEvalWitness(const PatternTree& tree,
                                                  const Database& db,
                                                  const Mapping& h) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  if (!SortedIsSubset(h.Domain(), tree.free_vars())) {
    return std::optional<Mapping>();
  }
  SubtreeMask minimal = MinimalSubtreeContaining(tree, h.Domain());
  std::optional<Mapping> hom =
      FindHomomorphism(SubtreeAtoms(tree, minimal), db, h);
  return hom;
}

}  // namespace wdpt
