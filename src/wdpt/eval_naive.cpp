#include "src/wdpt/eval_naive.h"

#include "src/common/algo.h"
#include "src/cq/homomorphism.h"

namespace wdpt {

namespace {

enum class NodeStatus { kNotEnterable, kGood, kBad };

class NaiveEvaluator {
 public:
  NaiveEvaluator(const PatternTree& tree, const Database& db,
                 const Mapping& h, const CqEvalOptions& options)
      : tree_(tree), db_(db), h_(h) {
    hom_limits_.cancel = options.cancel;
    // needs_entry_[n]: the subtree rooted at n holds the top node of some
    // variable in dom(h); such subtrees must be entered.
    needs_entry_.assign(tree_.num_nodes(), false);
    for (const auto& [v, c] : h_.entries()) {
      NodeId top = tree_.TopNode(v);
      if (top != PatternTree::kNoNode) needs_entry_[top] = true;
    }
    // Node ids increase with depth; a reverse pass propagates upwards.
    for (NodeId n = static_cast<NodeId>(tree_.num_nodes()); n-- > 1;) {
      if (needs_entry_[n]) {
        needs_entry_[tree_.parent(n)] = true;
      }
    }
  }

  bool Run() {
    return Evaluate(PatternTree::kRoot, Mapping()) == NodeStatus::kGood;
  }

 private:
  // Status of entering node `c` when the ancestors are matched by `e`.
  //
  // Phase 1 looks for a *good* extension: h-consistent on the node's
  // free variables and recursively safe at every child. Seeding the
  // search with h's values prunes hard instead of filtering post hoc.
  // Phase 2 (only reached when no good extension exists) distinguishes
  // BAD (some extension exists, so maximality forces entry and dooms the
  // parent) from NOT_ENTERABLE with a single unconstrained probe.
  NodeStatus Evaluate(NodeId c, const Mapping& e) {
    // Free variables of the label; every extension binds all of them.
    std::vector<VariableId> node_free =
        SortedIntersection(tree_.node_vars(c), tree_.free_vars());
    bool goodable = true;
    Mapping good_seed = e;
    for (VariableId x : node_free) {
      std::optional<ConstantId> wanted = h_.Get(x);
      if (!wanted.has_value()) {
        goodable = false;  // Any extension binds x outside dom(h).
        break;
      }
      if (!good_seed.Bind(x, *wanted)) {
        goodable = false;  // e already disagrees with h on x.
        break;
      }
    }
    bool good = false;
    if (goodable) {
      ForEachHomomorphism(
          tree_.label(c), db_, good_seed,
          [&](const Mapping& ext) {
            for (NodeId d : tree_.children(c)) {
              NodeStatus st = Evaluate(d, ext);
              if (st == NodeStatus::kBad) return true;
              if (st == NodeStatus::kNotEnterable && needs_entry_[d]) {
                return true;
              }
            }
            good = true;
            return false;  // One good extension suffices.
          },
          hom_limits_);
    }
    if (good) return NodeStatus::kGood;
    return HomomorphismExists(tree_.label(c), db_, e, hom_limits_)
               ? NodeStatus::kBad
               : NodeStatus::kNotEnterable;
  }

  const PatternTree& tree_;
  const Database& db_;
  const Mapping& h_;
  HomSearchLimits hom_limits_;
  std::vector<bool> needs_entry_;
};

}  // namespace

Result<bool> EvalNaive(const PatternTree& tree, const Database& db,
                       const Mapping& h, const CqEvalOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  if (!SortedIsSubset(h.Domain(), tree.free_vars())) return false;
  NaiveEvaluator evaluator(tree, db, h, options);
  return evaluator.Run();
}

}  // namespace wdpt
