// Deprecated entry point: prefer wdpt::Engine (src/engine/engine.h),
// which dispatches here for EvalAlgorithm::kNaive and adds plan caching,
// batching, and deadline handling. This function remains the kernel the
// engine calls and keeps working for direct use.
//
// General-purpose WDPT evaluation (EVAL(C_all), Sigma2P-complete).
//
// Decides h in p(D) for arbitrary WDPTs by the forced-entry recursion:
// a maximal homomorphism must enter every enterable child, so a partial
// homomorphism e "survives" at a node iff each enterable child can be
// entered with an extension that binds free variables consistently with h
// and recursively survives, and every child holding a required free
// variable is entered. Worst-case exponential in |p| (as expected from
// Theorem 1) but polynomial in |D| for fixed p.

#ifndef WDPT_SRC_WDPT_EVAL_NAIVE_H_
#define WDPT_SRC_WDPT_EVAL_NAIVE_H_

#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// EVAL: is h in p(D)? `tree` must be validated; h must be defined on a
/// subset of the free variables (otherwise the answer is trivially
/// false, which is what is returned). Only options.cancel is consulted
/// (the forced-entry recursion does per-node backtracking searches, not
/// CQ-strategy evaluation).
Result<bool> EvalNaive(const PatternTree& tree, const Database& db,
                       const Mapping& h,
                       const CqEvalOptions& options = CqEvalOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_WDPT_EVAL_NAIVE_H_
