// Plain-text fact loaders for examples, tests and benches.

#ifndef WDPT_SRC_SPARQL_DATA_LOADER_H_
#define WDPT_SRC_SPARQL_DATA_LOADER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/relational/schema.h"

namespace wdpt::sparql {

/// Loads facts in the form `rel(c1, c2, ...)`, one per line; '#' starts a
/// comment. Relations are declared on first use with the observed arity.
Status LoadFacts(std::string_view text, Schema* schema, Vocabulary* vocab,
                 Database* db);

/// Loads whitespace-separated triples `subject predicate object`, one per
/// line, into an RDF database; '#' starts a comment.
Status LoadTriples(std::string_view text, RdfContext* ctx, Database* db);

}  // namespace wdpt::sparql

#endif  // WDPT_SRC_SPARQL_DATA_LOADER_H_
