#include "src/sparql/request.h"

#include <cctype>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "src/sparql/parser.h"

namespace wdpt::sparql {

Result<RequestMode> ParseRequestMode(std::string_view name) {
  if (name == "eval") return RequestMode::kEval;
  if (name == "partial") return RequestMode::kPartial;
  if (name == "max") return RequestMode::kMax;
  return Status::InvalidArgument("unknown eval mode '" + std::string(name) +
                                 "' (expected eval|partial|max)");
}

const char* RequestModeName(RequestMode mode) {
  switch (mode) {
    case RequestMode::kEval:
      return "eval";
    case RequestMode::kPartial:
      return "partial";
    case RequestMode::kMax:
      return "max";
  }
  return "eval";
}

Result<Mapping> ParseCandidate(std::string_view text, RdfContext* ctx) {
  Mapping mapping;
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    size_t end = pos;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    std::string_view binding = text.substr(pos, end - pos);
    pos = end;
    size_t eq = binding.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("candidate binding '" +
                                     std::string(binding) +
                                     "' is not of the form ?var=constant");
    }
    std::string_view var = binding.substr(0, eq);
    std::string_view value = binding.substr(eq + 1);
    if (var.size() < 2 || var[0] != '?' || value.empty()) {
      return Status::InvalidArgument("candidate binding '" +
                                     std::string(binding) +
                                     "' is not of the form ?var=constant");
    }
    VariableId v = ctx->vocab().VariableIdOf(var.substr(1));
    ConstantId c = ctx->vocab().ConstantIdOf(value);
    // Mapping::Bind tolerates re-binding to the same constant, so check
    // for duplicates explicitly: a repeated ?var= is a malformed
    // candidate even when the constants agree, and silently accepting it
    // masks client-side bugs.
    if (mapping.IsDefinedOn(v)) {
      return Status::InvalidArgument("candidate binds " + std::string(var) +
                                     " more than once");
    }
    if (!mapping.Bind(v, c)) {
      return Status::InvalidArgument("candidate binds " + std::string(var) +
                                     " twice with different constants");
    }
  }
  return mapping;
}

Result<CompiledRequest> CompileRequest(const QueryRequest& request,
                                       RdfContext* ctx) {
  Result<PatternTree> tree = ParseQuery(request.query, ctx);
  if (!tree.ok()) return tree.status();

  CompiledRequest compiled;
  compiled.tree = std::move(*tree);
  compiled.max_results = request.max_results;

  std::optional<std::chrono::nanoseconds> deadline;
  if (request.deadline_ms != 0) {
    deadline = std::chrono::milliseconds(request.deadline_ms);
  }

  compiled.options.deadline = deadline;
  if (request.cache_bypass) {
    compiled.options.cache.mode = CacheMode::kBypass;
  }

  if (!request.candidate.empty()) {
    Result<Mapping> candidate = ParseCandidate(request.candidate, ctx);
    if (!candidate.ok()) return candidate.status();
    compiled.check = true;
    compiled.candidate = std::move(*candidate);
    switch (request.mode) {
      case RequestMode::kEval:
        compiled.options.semantics = EvalSemantics::kStandard;
        break;
      case RequestMode::kPartial:
        compiled.options.semantics = EvalSemantics::kPartial;
        break;
      case RequestMode::kMax:
        compiled.options.semantics = EvalSemantics::kMaximal;
        break;
    }
    return compiled;
  }

  if (request.mode == RequestMode::kPartial) {
    return Status::InvalidArgument(
        "mode 'partial' requires a candidate mapping: the set of partial "
        "answers is the downward closure of p(D) and is not enumerated");
  }
  compiled.options.semantics = request.mode == RequestMode::kMax
                                   ? EvalSemantics::kMaximal
                                   : EvalSemantics::kStandard;
  return compiled;
}

}  // namespace wdpt::sparql
