#include "src/sparql/data_loader.h"

#include <vector>

#include "src/common/strings.h"

namespace wdpt::sparql {

Status LoadFacts(std::string_view text, Schema* schema, Vocabulary* vocab,
                 Database* db) {
  size_t line_no = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    size_t open = line.find('(');
    size_t close = line.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected rel(c1, ...)");
    }
    std::string_view name = StripWhitespace(line.substr(0, open));
    if (name.empty()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": missing relation name");
    }
    std::vector<ConstantId> tuple;
    for (const std::string& field :
         StrSplit(line.substr(open + 1, close - open - 1), ',')) {
      std::string_view value = StripWhitespace(field);
      if (value.empty()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": empty constant");
      }
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      tuple.push_back(vocab->ConstantIdOf(value));
    }
    Result<RelationId> rel =
        schema->AddRelation(name, static_cast<uint32_t>(tuple.size()));
    if (!rel.ok()) return rel.status();
    Status added = db->AddFact(*rel, tuple);
    if (!added.ok()) return added;
  }
  return Status::Ok();
}

Status LoadTriples(std::string_view text, RdfContext* ctx, Database* db) {
  size_t line_no = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::string current;
    for (char c : line) {
      if (c == ' ' || c == '\t') {
        if (!current.empty()) {
          fields.push_back(current);
          current.clear();
        }
      } else {
        current += c;
      }
    }
    if (!current.empty()) fields.push_back(current);
    if (fields.size() != 3) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected `subject predicate object`");
    }
    ctx->AddTriple(db, fields[0], fields[1], fields[2]);
  }
  return Status::Ok();
}

}  // namespace wdpt::sparql
