// Reification: embedding WDPTs over arbitrary relational schemas into
// RDF WDPTs (single ternary relation), constructively realizing the
// paper's remark that all results carry over to the RDF scenario.
//
// A fact R(c1, ..., cn) becomes the triples
//   (f, "rdf:rel", "rel:R"), (f, "rdf:pos1", c1), ..., (f, "rdf:posn", cn)
// for a fresh fact id f; an atom R(t1, ..., tn) becomes the same triple
// patterns with a fresh existential witness variable per atom. Since
// databases are fact *sets*, the witness of an atom is uniquely
// determined by the matched tuple, so homomorphisms (and hence answers,
// partial answers and maximal answers) are in bijection with the
// original instance's.

#ifndef WDPT_SRC_SPARQL_REIFY_H_
#define WDPT_SRC_SPARQL_REIFY_H_

#include <vector>

#include "src/relational/database.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt::sparql {

/// Shared context for reifying databases and pattern trees consistently.
/// Uses the *same* vocabulary as the source instance so that answers are
/// directly comparable; declares relation `triple`/3 in `rdf_schema`.
class Reifier {
 public:
  /// `source_schema` and `vocab` describe the instance being reified and
  /// must outlive the reifier. Constant names with prefixes "rdf:",
  /// "rel:" and "fact:" are reserved by the encoding.
  Reifier(const Schema* source_schema, Schema* rdf_schema,
          Vocabulary* vocab);

  /// Reifies all facts of `source` (a database over the source schema).
  Database ReifyDatabase(const Database& source);

  /// Reifies a validated pattern tree over the source schema; the result
  /// is validated and has the same free variables.
  PatternTree ReifyTree(const PatternTree& source);

  RelationId triple_relation() const { return triple_; }

 private:
  std::vector<Atom> ReifyAtom(const Atom& atom, Term witness);
  ConstantId RelConstant(RelationId rel);
  ConstantId PosPredicate(uint32_t position);

  const Schema* source_schema_;
  Schema* rdf_schema_;
  Vocabulary* vocab_;
  RelationId triple_;
  ConstantId rel_predicate_;
};

}  // namespace wdpt::sparql

#endif  // WDPT_SRC_SPARQL_REIFY_H_
