#include "src/sparql/reify.h"

#include <string>

#include "src/common/status.h"

namespace wdpt::sparql {

Reifier::Reifier(const Schema* source_schema, Schema* rdf_schema,
                 Vocabulary* vocab)
    : source_schema_(source_schema),
      rdf_schema_(rdf_schema),
      vocab_(vocab) {
  Result<RelationId> triple = rdf_schema_->AddRelation("triple", 3);
  WDPT_CHECK(triple.ok());
  triple_ = *triple;
  rel_predicate_ = vocab_->ConstantIdOf("rdf:rel");
}

ConstantId Reifier::RelConstant(RelationId rel) {
  return vocab_->ConstantIdOf("rel:" + source_schema_->Name(rel));
}

ConstantId Reifier::PosPredicate(uint32_t position) {
  return vocab_->ConstantIdOf("rdf:pos" + std::to_string(position + 1));
}

Database Reifier::ReifyDatabase(const Database& source) {
  Database out(rdf_schema_);
  for (RelationId rel = 0; rel < source_schema_->num_relations(); ++rel) {
    const Relation& relation = source.relation(rel);
    if (relation.size() == 0) continue;
    ConstantId rel_const = RelConstant(rel);
    for (uint32_t row = 0; row < relation.size(); ++row) {
      ConstantId fact_id =
          vocab_->FreshConstant("fact:" + source_schema_->Name(rel));
      ConstantId head[3] = {fact_id, rel_predicate_, rel_const};
      WDPT_CHECK(out.AddFact(triple_, head).ok());
      std::span<const ConstantId> tuple = relation.Tuple(row);
      for (uint32_t col = 0; col < tuple.size(); ++col) {
        ConstantId body[3] = {fact_id, PosPredicate(col), tuple[col]};
        WDPT_CHECK(out.AddFact(triple_, body).ok());
      }
    }
  }
  return out;
}

std::vector<Atom> Reifier::ReifyAtom(const Atom& atom, Term witness) {
  std::vector<Atom> out;
  out.emplace_back(triple_,
                   std::vector<Term>{witness,
                                     Term::Constant(rel_predicate_),
                                     Term::Constant(
                                         RelConstant(atom.relation))});
  for (uint32_t col = 0; col < atom.terms.size(); ++col) {
    out.emplace_back(
        triple_,
        std::vector<Term>{witness, Term::Constant(PosPredicate(col)),
                          atom.terms[col]});
  }
  return out;
}

PatternTree Reifier::ReifyTree(const PatternTree& source) {
  WDPT_CHECK(source.validated());
  PatternTree out;
  for (NodeId n = 0; n < source.num_nodes(); ++n) {
    std::vector<Atom> label;
    for (const Atom& atom : source.label(n)) {
      Term witness = Term::Variable(vocab_->FreshVariable("rfw"));
      std::vector<Atom> reified = ReifyAtom(atom, witness);
      label.insert(label.end(), reified.begin(), reified.end());
    }
    if (n == PatternTree::kRoot) {
      for (Atom& a : label) out.AddAtom(PatternTree::kRoot, std::move(a));
    } else {
      // Node ids are preserved: nodes are visited in creation order.
      out.AddChild(source.parent(n), std::move(label));
    }
  }
  out.SetFreeVariables(source.free_vars());
  Status status = out.Validate();
  WDPT_CHECK(status.ok());
  return out;
}

}  // namespace wdpt::sparql
