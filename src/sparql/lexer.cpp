#include "src/sparql/lexer.h"

#include <cctype>

namespace wdpt::sparql {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '.' || c == '/' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back({TokenKind::kLParen, "(", i++});
      continue;
    }
    if (c == ')') {
      tokens.push_back({TokenKind::kRParen, ")", i++});
      continue;
    }
    if (c == ',') {
      tokens.push_back({TokenKind::kComma, ",", i++});
      continue;
    }
    if (c == '?') {
      size_t start = ++i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      if (i == start) {
        return Status::ParseError("empty variable name at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kVar,
                        std::string(input.substr(start, i - start)),
                        start - 1});
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      while (i < input.size() && input[i] != '"') ++i;
      if (i == input.size()) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(start - 1));
      }
      tokens.push_back({TokenKind::kString,
                        std::string(input.substr(start, i - start)),
                        start - 1});
      ++i;  // Closing quote.
      continue;
    }
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      TokenKind kind = TokenKind::kIdent;
      if (word == "AND") kind = TokenKind::kAnd;
      else if (word == "OPT") kind = TokenKind::kOpt;
      else if (word == "SELECT") kind = TokenKind::kSelect;
      else if (word == "WHERE") kind = TokenKind::kWhere;
      tokens.push_back({kind, std::move(word), start});
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  tokens.push_back({TokenKind::kEnd, "", input.size()});
  return tokens;
}

}  // namespace wdpt::sparql
