// Parser from the {AND, OPT} algebra to well-designed pattern trees.
//
// Grammar (left-associative operators):
//   query   := ['SELECT' var* 'WHERE'] expr
//   expr    := primary (('AND' | 'OPT') primary)*
//   primary := '(' expr ')' | triple
//   triple  := '(' term ',' term ',' term ')'
//   term    := ?var | identifier | "string"
//
// The pattern-tree construction follows Letelier et al.: AND merges root
// labels and concatenates child lists; OPT attaches the right operand's
// tree as an additional child of the left operand's root. The result is
// validated; non-well-designed inputs are rejected with
// kNotWellDesigned.

#ifndef WDPT_SRC_SPARQL_PARSER_H_
#define WDPT_SRC_SPARQL_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/relational/rdf.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt::sparql {

/// Parses an {AND, OPT} query over triple patterns into a validated WDPT
/// using `ctx`'s schema and vocabulary. Without a SELECT clause the WDPT
/// is projection-free.
Result<PatternTree> ParseQuery(std::string_view input, RdfContext* ctx);

}  // namespace wdpt::sparql

#endif  // WDPT_SRC_SPARQL_PARSER_H_
