// Lexer for the algebraic {AND, OPT} SPARQL notation of the paper
// (Perez et al. style), e.g.
//   (((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
//      OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)

#ifndef WDPT_SRC_SPARQL_LEXER_H_
#define WDPT_SRC_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace wdpt::sparql {

enum class TokenKind {
  kLParen,
  kRParen,
  kComma,
  kAnd,     ///< Keyword AND.
  kOpt,     ///< Keyword OPT.
  kSelect,  ///< Keyword SELECT.
  kWhere,   ///< Keyword WHERE.
  kVar,     ///< ?name (text holds the name without '?').
  kIdent,   ///< Bare identifier (constant or relation name).
  kString,  ///< "quoted" (text holds the unquoted content).
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position;  ///< Byte offset in the input (for error messages).
};

/// Tokenizes `input`; '#' starts a line comment.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace wdpt::sparql

#endif  // WDPT_SRC_SPARQL_LEXER_H_
