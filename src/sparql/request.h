// Shared query-request compilation for the CLI and the query server.
//
// A QueryRequest is the transport-agnostic form of "run this query":
// the {AND, OPT} algebra text plus evaluation options, exactly as they
// arrive from `wdpt_query` flags or from a server protocol frame.
// CompileRequest turns it into a validated PatternTree plus ready-to-use
// Engine options. Both front ends go through this one function so their
// interpretation of a request cannot drift.

#ifndef WDPT_SRC_SPARQL_REQUEST_H_
#define WDPT_SRC_SPARQL_REQUEST_H_

#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/engine/engine.h"
#include "src/relational/mapping.h"
#include "src/relational/rdf.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt::sparql {

/// Which answer relation the request targets. Enumeration supports kEval
/// (p(D)) and kMax (p_m(D)); kPartial only makes sense for membership
/// checks of a candidate mapping and is rejected otherwise.
enum class RequestMode {
  kEval,     ///< Standard answers p(D).
  kPartial,  ///< Partial-answer membership (candidate required).
  kMax,      ///< Maximal-mapping answers p_m(D).
};

/// Parses "eval" / "partial" / "max" (the wire and CLI spelling).
Result<RequestMode> ParseRequestMode(std::string_view name);

/// Inverse of ParseRequestMode.
const char* RequestModeName(RequestMode mode);

/// A query request as it arrives from CLI flags or the wire.
struct QueryRequest {
  /// Query text in the {AND, OPT} algebra of src/sparql/parser.h.
  std::string query;
  RequestMode mode = RequestMode::kEval;
  /// Wall-clock budget for the whole request; 0 = none.
  uint64_t deadline_ms = 0;
  /// Cap on returned answer rows (0 = unlimited). Truncation is
  /// reported, never silent.
  uint64_t max_results = 0;
  /// Optional membership candidate, "?x=a ?y=b". When set the request is
  /// a membership check of this mapping (EVAL / PARTIAL-EVAL / MAX-EVAL
  /// by `mode`) instead of answer enumeration.
  std::string candidate;
  /// Skip the server's answer cache for this request (wire header
  /// `cache-control: bypass`); the response is computed fresh and not
  /// inserted.
  bool cache_bypass = false;
};

/// A request compiled against a context: validated tree + engine options.
struct CompiledRequest {
  PatternTree tree;
  /// True: membership check of `candidate` via Engine::Eval.
  /// False: answer enumeration via Engine::Enumerate.
  bool check = false;
  Mapping candidate;
  /// Unified per-call options for either entry point (semantics,
  /// deadline, cache policy; the executor stamps `cache.generation`
  /// with the snapshot version).
  CallOptions options;
  uint64_t max_results = 0;
};

/// Parses "?x=c1 ?y=c2" (whitespace-separated bindings) into a mapping
/// over `ctx`'s vocabulary.
Result<Mapping> ParseCandidate(std::string_view text, RdfContext* ctx);

/// Parses and validates the request against `ctx`. Rejects kPartial
/// without a candidate (enumerating the downward closure of p(D) is not
/// supported) with kInvalidArgument.
Result<CompiledRequest> CompileRequest(const QueryRequest& request,
                                       RdfContext* ctx);

}  // namespace wdpt::sparql

#endif  // WDPT_SRC_SPARQL_REQUEST_H_
