// Pretty printer: pattern trees back to the {AND, OPT} algebra.

#ifndef WDPT_SRC_SPARQL_PRINTER_H_
#define WDPT_SRC_SPARQL_PRINTER_H_

#include <string>

#include "src/relational/schema.h"
#include "src/relational/term.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt::sparql {

/// Renders the WDPT as an {AND, OPT} expression. Ternary atoms print as
/// triple patterns "(s, p, o)"; other arities print as "R(t1, ..., tn)"
/// (still parseable queries over general schemas are out of scope for
/// the RDF parser, so this form is for display). A SELECT clause is
/// prepended when the tree projects.
std::string ToAlgebraString(const PatternTree& tree, const Schema& schema,
                            const Vocabulary& vocab);

}  // namespace wdpt::sparql

#endif  // WDPT_SRC_SPARQL_PRINTER_H_
