#include "src/sparql/parser.h"

#include <memory>
#include <vector>

#include "src/sparql/lexer.h"

namespace wdpt::sparql {

namespace {

// Intermediate pattern forest: a bag of root atoms plus optional child
// forests (one per OPT branch).
struct PatternForest {
  std::vector<Atom> atoms;
  std::vector<PatternForest> children;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, RdfContext* ctx)
      : tokens_(std::move(tokens)), ctx_(ctx) {}

  Result<PatternTree> Run() {
    std::vector<VariableId> projection;
    bool has_projection = false;
    if (Peek().kind == TokenKind::kSelect) {
      ++pos_;
      has_projection = true;
      while (Peek().kind == TokenKind::kVar) {
        projection.push_back(ctx_->vocab().VariableIdOf(Peek().text));
        ++pos_;
      }
      if (Peek().kind != TokenKind::kWhere) {
        return Error("expected WHERE after SELECT clause");
      }
      ++pos_;
    }
    Result<PatternForest> forest = ParseExpr();
    if (!forest.ok()) return forest.status();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after query");
    }
    PatternTree tree;
    for (const Atom& a : forest->atoms) tree.AddAtom(PatternTree::kRoot, a);
    for (const PatternForest& child : forest->children) {
      Attach(&tree, PatternTree::kRoot, child);
    }
    if (has_projection) {
      tree.SetFreeVariables(std::move(projection));
    } else {
      tree.SetFreeVariables(tree.AllVariables());
    }
    Status status = tree.Validate();
    if (!status.ok()) return status;
    return tree;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(Peek().position) + ")");
  }

  static bool IsTermToken(const Token& t) {
    return t.kind == TokenKind::kVar || t.kind == TokenKind::kIdent ||
           t.kind == TokenKind::kString;
  }

  Result<PatternForest> ParseExpr() {
    Result<PatternForest> left = ParsePrimary();
    if (!left.ok()) return left;
    PatternForest acc = std::move(*left);
    while (Peek().kind == TokenKind::kAnd || Peek().kind == TokenKind::kOpt) {
      bool is_and = Peek().kind == TokenKind::kAnd;
      ++pos_;
      Result<PatternForest> right = ParsePrimary();
      if (!right.ok()) return right;
      if (is_and) {
        acc.atoms.insert(acc.atoms.end(), right->atoms.begin(),
                         right->atoms.end());
        for (PatternForest& c : right->children) {
          acc.children.push_back(std::move(c));
        }
      } else {
        acc.children.push_back(std::move(*right));
      }
    }
    return acc;
  }

  Result<PatternForest> ParsePrimary() {
    if (Peek().kind != TokenKind::kLParen) {
      return Error("expected '('");
    }
    // Triple lookahead: '(' term ','.
    if (IsTermToken(Peek(1)) && Peek(2).kind == TokenKind::kComma) {
      return ParseTriple();
    }
    ++pos_;  // '('
    Result<PatternForest> inner = ParseExpr();
    if (!inner.ok()) return inner;
    if (Peek().kind != TokenKind::kRParen) {
      return Error("expected ')'");
    }
    ++pos_;
    return inner;
  }

  Result<PatternForest> ParseTriple() {
    ++pos_;  // '('
    Term terms[3];
    for (int i = 0; i < 3; ++i) {
      const Token& t = Peek();
      if (!IsTermToken(t)) return Error("expected a term");
      if (t.kind == TokenKind::kVar) {
        terms[i] = ctx_->vocab().Variable(t.text);
      } else {
        terms[i] = ctx_->vocab().Constant(t.text);
      }
      ++pos_;
      if (i < 2) {
        if (Peek().kind != TokenKind::kComma) return Error("expected ','");
        ++pos_;
      }
    }
    if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
    ++pos_;
    PatternForest forest;
    forest.atoms.emplace_back(ctx_->triple_relation(),
                              std::vector<Term>{terms[0], terms[1],
                                                terms[2]});
    return forest;
  }

  // Attaches `forest` as a child subtree of `parent`.
  void Attach(PatternTree* tree, NodeId parent, const PatternForest& forest) {
    NodeId node = tree->AddChild(parent, forest.atoms);
    for (const PatternForest& child : forest.children) {
      Attach(tree, node, child);
    }
  }

  std::vector<Token> tokens_;
  RdfContext* ctx_;
  size_t pos_ = 0;
};

}  // namespace

Result<PatternTree> ParseQuery(std::string_view input, RdfContext* ctx) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens), ctx);
  return parser.Run();
}

}  // namespace wdpt::sparql
