#include "src/sparql/printer.h"

#include "src/common/strings.h"

namespace wdpt::sparql {

namespace {

std::string TermToAlgebra(Term t, const Vocabulary& vocab) {
  if (t.is_variable()) return "?" + vocab.VariableName(t.variable_id());
  return vocab.ConstantName(t.constant_id());
}

std::string AtomToAlgebra(const Atom& atom, const Schema& schema,
                          const Vocabulary& vocab) {
  std::vector<std::string> parts;
  parts.reserve(atom.terms.size());
  for (Term t : atom.terms) parts.push_back(TermToAlgebra(t, vocab));
  if (atom.terms.size() == 3) {
    return "(" + StrJoin(parts, ", ") + ")";
  }
  return schema.Name(atom.relation) + "(" + StrJoin(parts, ", ") + ")";
}

std::string NodeToAlgebra(const PatternTree& tree, NodeId n,
                          const Schema& schema, const Vocabulary& vocab) {
  std::vector<std::string> atom_strs;
  for (const Atom& a : tree.label(n)) {
    atom_strs.push_back(AtomToAlgebra(a, schema, vocab));
  }
  std::string expr =
      atom_strs.empty() ? "()" : StrJoin(atom_strs, " AND ");
  if (atom_strs.size() > 1) expr = "(" + expr + ")";
  for (NodeId c : tree.children(n)) {
    expr = "(" + expr + " OPT " + NodeToAlgebra(tree, c, schema, vocab) + ")";
  }
  return expr;
}

}  // namespace

std::string ToAlgebraString(const PatternTree& tree, const Schema& schema,
                            const Vocabulary& vocab) {
  std::string out;
  if (!tree.IsProjectionFree()) {
    out += "SELECT";
    for (VariableId v : tree.free_vars()) {
      out += " ?" + vocab.VariableName(v);
    }
    out += " WHERE ";
  }
  out += NodeToAlgebra(tree, PatternTree::kRoot, schema, vocab);
  return out;
}

}  // namespace wdpt::sparql
