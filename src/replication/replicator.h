// Replica-side replication: bootstrap from the primary's snapshot,
// then tail its WAL stream and republish after every applied batch.
//
// A Replicator owns one connection to the primary and one streaming
// thread. Life cycle:
//
//   bootstrap   SUBSCRIBE at the replica's position — (0, 0) when
//               fresh. kOk means the primary still retains that point
//               and the stream starts there; kNotFound means it was
//               compacted away, so the replica issues SNAPSHOT-FETCH,
//               rebuilds its state from the returned image, and
//               re-subscribes at (epoch, 0). Bounded by
//               RetryPolicy::max_attempts.
//   streaming   each WALSEG frame is checked for continuity (epoch
//               matches, offset equals the end of what was applied),
//               applied via ApplyTripleOps — the same routine the
//               primary runs — and republished through the publish
//               callback as an immutable snapshot whose version is
//               (epoch << 32) | seq, the primary's own formula, so a
//               replica's answer-cache generations agree with the
//               primary's for identical states.
//   resync      any stream fault — torn frame, read timeout, gap,
//               primary restart — closes the connection and re-runs
//               the bootstrap handshake from the last *applied*
//               position, retrying forever with jittered backoff
//               (client.h's BackoffDelayMs) until stopped. Nothing is
//               replayed twice and nothing is skipped: WAL offsets
//               within an epoch are immutable, and an epoch change
//               forces a fresh snapshot.
//
// Lag is head_seq (the primary's newest batch, as stamped on the last
// received frame or heartbeat) minus the last applied seq. The serving
// layer sheds reads when it exceeds max_lag_batches; see
// docs/REPLICATION.md.

#ifndef WDPT_SRC_REPLICATION_REPLICATOR_H_
#define WDPT_SRC_REPLICATION_REPLICATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/replication/stats.h"
#include "src/server/client.h"
#include "src/server/frame.h"
#include "src/server/protocol.h"
#include "src/server/snapshot.h"

namespace wdpt::replication {

struct ReplicatorOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Shard count for republished snapshots (the replica's own
  /// scatter-gather width; independent of the primary's).
  size_t shards = 1;
  uint32_t max_frame_bytes = server::kDefaultMaxFrameBytes;
  /// Connect/send bounds and the backoff schedule. max_attempts bounds
  /// the *bootstrap* only; once streaming, resyncs retry until Stop.
  server::RetryPolicy retry;
  /// Shed reads once lag exceeds this many batches; 0 = never shed.
  /// Read by the serving layer (Server::HandleQuery), not here.
  uint64_t max_lag_batches = 0;
  /// Receive timeout while streaming. Heartbeats arrive every ~250 ms
  /// when the primary is idle, so a silence this long means the
  /// primary (or the path to it) is gone and the replica resyncs.
  uint64_t stream_recv_timeout_ms = 5000;
  /// Test knob: sleep this long before applying each batch, to force a
  /// measurable lag (see tests/replication_test.cpp).
  uint64_t apply_delay_ms = 0;
  /// Log applies slower than this through the log callback; 0 = off.
  uint64_t slow_apply_ms = 0;
};

class Replicator {
 public:
  using PublishFn =
      std::function<void(std::shared_ptr<const server::Snapshot>)>;
  using LogFn = std::function<void(const std::string&)>;

  /// `publish` receives every republished snapshot (the server's
  /// hot-swap); `log` (may be null) receives slow-apply lines.
  Replicator(const ReplicatorOptions& options, PublishFn publish,
             LogFn log = nullptr);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Blocking bootstrap: connects, subscribes (fetching a snapshot if
  /// the position was compacted), publishes the initial state, and
  /// returns it — the snapshot the serving layer starts on. Retries up
  /// to retry.max_attempts. Does not start the streaming thread.
  Result<std::shared_ptr<const server::Snapshot>> Bootstrap();

  /// Starts the streaming thread on the session Bootstrap established.
  /// Call exactly once, after a successful Bootstrap.
  void StartStreaming();

  /// Stops the stream and joins the thread. Safe to call from any
  /// thread, repeatedly, and concurrently with a blocked read (the
  /// socket is shut down out from under it).
  void Stop();

  /// head_seq - applied_seq as of the last received frame (0 when
  /// caught up or not yet streaming).
  uint64_t lag_batches() const;

  std::string primary_address() const;
  const ReplicatorOptions& options() const { return options_; }

  /// Apply-side counters; `redirects` / `lag_sheds` are the serving
  /// layer's and stay 0 here.
  ReplicaReplicationStats stats() const;

 private:
  /// The replica's own mutable copy of the dataset. Database is not
  /// reassignable (it points into its context's schema), so a
  /// re-bootstrap swaps the whole bundle.
  struct State {
    RdfContext ctx;
    Database db;
    State() : db(ctx.MakeDatabase()) {}
  };

  /// One connect + subscribe handshake (with at most one snapshot
  /// fetch). On success fd_ carries a live stream positioned at
  /// (epoch_, offset_); `*fetched_snapshot` reports whether state_ was
  /// rebuilt and must be republished.
  Status EstablishSession(bool* fetched_snapshot);
  Status FetchSnapshot();
  Result<server::Response> RoundTrip(const server::Request& request);
  Result<std::shared_ptr<const server::Snapshot>> PublishState();
  Status HandleSegment(const server::Request& seg);
  void Run();
  /// True when the stream socket has bytes ready right now (poll with
  /// zero timeout) — lets Run drain the kernel's buffered frames, and
  /// so advance head_seq_, before each potentially slow apply.
  bool FrameReadable();
  void CloseConnection();
  /// Jittered backoff before attempt+1; false when Stop interrupted it.
  bool SleepBackoff(uint32_t attempt);

  const ReplicatorOptions options_;
  PublishFn publish_;
  LogFn log_;

  // Connection. fd_mu_ orders handoff against Stop's shutdown so the
  // streaming thread never reads a recycled descriptor.
  std::mutex fd_mu_;
  int fd_ = -1;

  // Stream position and counters. Written only by the bootstrap /
  // streaming thread; atomics let stats() and lag_batches() read from
  // serving threads without a lock.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> offset_{0};
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> head_seq_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> snapshot_fetches_{0};

  std::unique_ptr<State> state_;
  std::mt19937_64 backoff_rng_;

  std::atomic<bool> stop_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::thread thread_;
};

}  // namespace wdpt::replication

#endif  // WDPT_SRC_REPLICATION_REPLICATOR_H_
