#include "src/replication/stats.h"

namespace wdpt::replication {

namespace {

/// Tiny JSON object builder shared by both stats structs.
class JsonFields {
 public:
  void Add(const char* name, uint64_t value) {
    if (!json_.empty()) json_ += ",";
    json_ += "\"";
    json_ += name;
    json_ += "\":";
    json_ += std::to_string(value);
  }

  std::string Done() && { return "{" + std::move(json_) + "}"; }

 private:
  std::string json_;
};

}  // namespace

std::string PrimaryReplicationStats::ToJson() const {
  JsonFields f;
  f.Add("role", 0);  // 0 = primary, 1 = replica; keys below differ too.
  f.Add("subscribers", subscribers);
  f.Add("batches_shipped", batches_shipped);
  f.Add("bytes_shipped", bytes_shipped);
  f.Add("snapshot_fetches", snapshot_fetches);
  f.Add("stale_subscribes", stale_subscribes);
  f.Add("epoch", epoch);
  f.Add("head_seq", head_seq);
  return std::move(f).Done();
}

std::string ReplicaReplicationStats::ToJson() const {
  JsonFields f;
  f.Add("role", 1);
  f.Add("batches_applied", batches_applied);
  f.Add("bytes_received", bytes_received);
  f.Add("resyncs", resyncs);
  f.Add("snapshot_fetches", snapshot_fetches);
  f.Add("lag_batches", lag_batches);
  f.Add("applied_seq", applied_seq);
  f.Add("head_seq", head_seq);
  f.Add("epoch", epoch);
  f.Add("redirects", redirects);
  f.Add("lag_sheds", lag_sheds);
  return std::move(f).Done();
}

}  // namespace wdpt::replication
