// Replication counters, dependency-free so the server's metrics
// renderer and STATS JSON can consume them without pulling in the hub
// or replicator implementations (the same split as storage/stats.h).

#ifndef WDPT_SRC_REPLICATION_STATS_H_
#define WDPT_SRC_REPLICATION_STATS_H_

#include <cstdint>
#include <string>

namespace wdpt::replication {

/// Primary-side ship counters (one Hub): rendered as the
/// wdpt_replication_* families on a storage-backed server and under
/// the STATS command's "replication" key.
struct PrimaryReplicationStats {
  uint64_t subscribers = 0;       ///< Streams currently attached (gauge).
  uint64_t batches_shipped = 0;   ///< WALSEG batches pushed to replicas.
  uint64_t bytes_shipped = 0;     ///< WALSEG frame bytes (heartbeats too).
  uint64_t snapshot_fetches = 0;  ///< SNAPSHOT-FETCH bootstraps served.
  uint64_t stale_subscribes = 0;  ///< Subscribes at a compacted position.
  uint64_t epoch = 0;             ///< Current WAL epoch (gauge).
  uint64_t head_seq = 0;          ///< Newest batch seq this epoch (gauge).

  std::string ToJson() const;
};

/// Replica-side apply counters (one Replicator, plus the serving
/// counters — redirects, lag sheds — the replica server folds in).
struct ReplicaReplicationStats {
  uint64_t batches_applied = 0;   ///< WALSEG batches applied + published.
  uint64_t bytes_received = 0;    ///< WALSEG frame bytes received.
  uint64_t resyncs = 0;           ///< Stream re-establishments after the
                                  ///< first (torn frames, primary restarts).
  uint64_t snapshot_fetches = 0;  ///< Full bootstraps from a snapshot.
  uint64_t lag_batches = 0;       ///< head_seq - applied seq, as of the
                                  ///< last received WALSEG (gauge).
  uint64_t applied_seq = 0;       ///< Last applied batch seq (gauge).
  uint64_t head_seq = 0;          ///< Primary head as last heard (gauge).
  uint64_t epoch = 0;             ///< Epoch the replica is tracking.
  uint64_t redirects = 0;         ///< Writes answered kRedirect.
  uint64_t lag_sheds = 0;         ///< Reads shed for exceeding max lag.

  std::string ToJson() const;
};

}  // namespace wdpt::replication

#endif  // WDPT_SRC_REPLICATION_STATS_H_
