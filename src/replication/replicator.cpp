#include "src/replication/replicator.h"

#include <poll.h>

#include <chrono>
#include <deque>
#include <utility>

#include "src/common/trace.h"
#include "src/storage/apply.h"
#include "src/storage/snapshot_file.h"
#include "src/storage/wal.h"

namespace wdpt::replication {

Replicator::Replicator(const ReplicatorOptions& options, PublishFn publish,
                       LogFn log)
    : options_(options),
      publish_(std::move(publish)),
      log_(std::move(log)),
      backoff_rng_(options.retry.seed) {}

Replicator::~Replicator() { Stop(); }

Result<std::shared_ptr<const server::Snapshot>> Replicator::Bootstrap() {
  uint32_t max_attempts =
      options_.retry.max_attempts == 0 ? 1 : options_.retry.max_attempts;
  Status last = Status::Ok();
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (stop_.load()) return Status::Cancelled("replicator stopped");
    bool fetched = false;
    last = EstablishSession(&fetched);
    if (last.ok()) {
      // Subscribed from genesis without a snapshot: start empty.
      if (state_ == nullptr) state_ = std::make_unique<State>();
      Result<std::shared_ptr<const server::Snapshot>> published =
          PublishState();
      if (published.ok()) return published;
      last = published.status();
    }
    CloseConnection();
    if (attempt < max_attempts && !SleepBackoff(attempt)) {
      return Status::Cancelled("replicator stopped");
    }
  }
  return Status(last.code(), "replica bootstrap from " + primary_address() +
                                 " failed after " +
                                 std::to_string(max_attempts) +
                                 " attempt(s): " + last.message());
}

void Replicator::StartStreaming() {
  if (thread_.joinable() || stop_.load()) return;
  thread_ = std::thread(&Replicator::Run, this);
}

void Replicator::Stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    server::ShutdownSocket(fd_);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

uint64_t Replicator::lag_batches() const {
  uint64_t head = head_seq_.load();
  uint64_t applied = applied_seq_.load();
  return head > applied ? head - applied : 0;
}

std::string Replicator::primary_address() const {
  return options_.primary_host + ":" + std::to_string(options_.primary_port);
}

ReplicaReplicationStats Replicator::stats() const {
  ReplicaReplicationStats s;
  s.batches_applied = batches_applied_.load();
  s.bytes_received = bytes_received_.load();
  s.resyncs = resyncs_.load();
  s.snapshot_fetches = snapshot_fetches_.load();
  s.lag_batches = lag_batches();
  s.applied_seq = applied_seq_.load();
  s.head_seq = head_seq_.load();
  s.epoch = epoch_.load();
  return s;
}

Status Replicator::EstablishSession(bool* fetched_snapshot) {
  CloseConnection();
  Result<int> fd =
      server::ConnectTcp(options_.primary_host, options_.primary_port,
                         options_.retry.connect_timeout_ms,
                         options_.retry.send_timeout_ms);
  if (!fd.ok()) return fd.status();
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    if (stop_.load()) {
      server::CloseSocket(*fd);
      return Status::Cancelled("replicator stopped");
    }
    fd_ = *fd;
  }
  if (options_.stream_recv_timeout_ms != 0) {
    Status armed = server::SetRecvTimeout(fd_, options_.stream_recv_timeout_ms);
    if (!armed.ok()) return armed;
  }

  // Subscribe at our position; one snapshot fetch if it was compacted.
  // A second kNotFound means a checkpoint raced the fetch — fail this
  // attempt and let the caller's retry loop take another run.
  for (int round = 0; round < 2; ++round) {
    server::Request subscribe;
    subscribe.command = server::Command::kSubscribe;
    subscribe.epoch = epoch_.load();
    subscribe.offset = offset_.load();
    Result<server::Response> ack = RoundTrip(subscribe);
    if (!ack.ok()) return ack.status();
    if (ack->code == StatusCode::kOk) {
      head_seq_.store(ack->head_seq);
      return Status::Ok();
    }
    if (ack->code == StatusCode::kNotFound && round == 0) {
      Status fetched = FetchSnapshot();
      if (!fetched.ok()) return fetched;
      *fetched_snapshot = true;
      continue;
    }
    return Status::Internal("primary refused subscription (" +
                            std::string(StatusCodeName(ack->code)) +
                            "): " + ack->message);
  }
  return Status::Internal(
      "subscription raced repeated checkpoints on the primary");
}

Status Replicator::FetchSnapshot() {
  server::Request fetch;
  fetch.command = server::Command::kSnapshotFetch;
  Result<server::Response> image = RoundTrip(fetch);
  if (!image.ok()) return image.status();
  if (image->code != StatusCode::kOk) {
    return Status::Internal("primary refused snapshot fetch (" +
                            std::string(StatusCodeName(image->code)) +
                            "): " + image->message);
  }
  auto state = std::make_unique<State>();
  Status parsed = storage::ParseSnapshotBytes(
      image->body.data(), image->body.size(), "primary " + primary_address(),
      &state->ctx, &state->db);
  if (!parsed.ok()) return parsed;
  state_ = std::move(state);
  epoch_.store(image->epoch);
  offset_.store(0);
  applied_seq_.store(0);
  head_seq_.store(0);
  snapshot_fetches_.fetch_add(1);
  return Status::Ok();
}

Result<server::Response> Replicator::RoundTrip(const server::Request& request) {
  Status sent = server::WriteFrame(fd_, server::SerializeRequest(request),
                                   options_.max_frame_bytes);
  if (!sent.ok()) return sent;
  Result<std::string> frame = server::ReadFrame(fd_, options_.max_frame_bytes);
  if (!frame.ok()) return frame.status();
  return server::ParseResponse(*frame);
}

Result<std::shared_ptr<const server::Snapshot>> Replicator::PublishState() {
  uint64_t version = (epoch_.load() << 32) | applied_seq_.load();
  Result<std::shared_ptr<const server::Snapshot>> snapshot =
      server::MakeSnapshot(state_->ctx, state_->db, version, options_.shards);
  if (!snapshot.ok()) return snapshot.status();
  if (publish_) publish_(*snapshot);
  return snapshot;
}

Status Replicator::HandleSegment(const server::Request& seg) {
  if (seg.epoch != epoch_.load()) {
    return Status::Internal("stream epoch changed (primary checkpointed)");
  }
  if (seg.offset != offset_.load()) {
    return Status::Internal("stream gap: expected offset " +
                            std::to_string(offset_.load()) + ", got " +
                            std::to_string(seg.offset));
  }
  if (seg.body.empty()) return Status::Ok();  // Heartbeat.

  if (options_.apply_delay_ms != 0) {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.apply_delay_ms),
                      [&] { return stop_.load(); });
    if (stop_.load()) return Status::Cancelled("replicator stopped");
  }

  Trace trace;
  trace.set_mode("replicate");
  {
    Trace::Span span(&trace, TraceStage::kApply);
    Result<std::vector<storage::TripleOp>> ops =
        storage::ParseIngestBody(seg.body);
    if (!ops.ok()) return ops.status();
    storage::ApplyTripleOps(&state_->ctx, &state_->db, *ops, nullptr,
                            nullptr);
  }
  applied_seq_.store(seg.seq);
  offset_.store(seg.next_offset);
  {
    Trace::Span span(&trace, TraceStage::kPublish);
    Result<std::shared_ptr<const server::Snapshot>> published = PublishState();
    if (!published.ok()) return published.status();
  }
  batches_applied_.fetch_add(1);
  if (log_ && options_.slow_apply_ms != 0 &&
      trace.TotalNs() > options_.slow_apply_ms * 1000000ull) {
    log_("slow replication apply: seq=" + std::to_string(seg.seq) +
         " epoch=" + std::to_string(seg.epoch) +
         " total_ms=" + std::to_string(trace.TotalNs() / 1000000ull) + " " +
         trace.BreakdownString());
  }
  return Status::Ok();
}

bool Replicator::FrameReadable() {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int ready = ::poll(&pfd, 1, 0);
  return ready > 0 && (pfd.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
}

void Replicator::Run() {
  // Frames the primary has shipped but this replica has not applied
  // yet. Reading runs ahead of applying on purpose: head_seq_ advances
  // at read time, so lag_batches() measures true distance from the
  // primary's stamped head even while an apply is slow — which is what
  // the max-replica-lag shed rides on.
  std::deque<server::Request> pending;
  while (!stop_.load()) {
    bool broken = false;
    // Drain everything the kernel already buffered (plus one blocking
    // read when there is nothing to apply) before touching the queue.
    while (!stop_.load()) {
      if (!pending.empty() && !FrameReadable()) break;
      Result<std::string> frame =
          server::ReadFrame(fd_, options_.max_frame_bytes);
      if (!frame.ok()) {
        broken = true;
        break;
      }
      Result<server::Request> seg = server::ParseRequest(*frame);
      if (!seg.ok() || seg->command != server::Command::kWalSeg) {
        broken = true;  // Anything but a WALSEG is a corrupt stream.
        break;
      }
      bytes_received_.fetch_add(frame->size());
      head_seq_.store(seg->head_seq);
      if (!seg->body.empty()) pending.push_back(std::move(*seg));
    }
    if (!broken && !pending.empty()) {
      server::Request seg = std::move(pending.front());
      pending.pop_front();
      broken = !HandleSegment(seg).ok();
    }
    if (!broken) continue;
    if (stop_.load()) break;
    // Stream fault: torn frame, silence past the heartbeat budget, a
    // gap, or a primary checkpoint/restart. Already-read frames past
    // the last applied one are dropped — the new subscription re-ships
    // everything after (epoch_, offset_), the acked prefix.
    pending.clear();
    resyncs_.fetch_add(1);
    for (uint32_t attempt = 1; !stop_.load(); ++attempt) {
      bool fetched = false;
      Status session = EstablishSession(&fetched);
      if (session.ok()) {
        if (!fetched) break;
        Result<std::shared_ptr<const server::Snapshot>> published =
            PublishState();
        if (published.ok()) break;
        CloseConnection();
      }
      if (!SleepBackoff(attempt)) break;
    }
  }
  CloseConnection();
}

void Replicator::CloseConnection() {
  std::lock_guard<std::mutex> lock(fd_mu_);
  server::CloseSocket(fd_);
  fd_ = -1;
}

bool Replicator::SleepBackoff(uint32_t attempt) {
  uint64_t delay_ms =
      server::BackoffDelayMs(options_.retry, attempt, 0, &backoff_rng_);
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait_for(lock, std::chrono::milliseconds(delay_ms),
                    [&] { return stop_.load(); });
  return !stop_.load();
}

}  // namespace wdpt::replication
