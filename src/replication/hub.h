// Primary-side replication hub: the retained stream of committed WAL
// batches that SUBSCRIBE sessions ship to replicas.
//
// One Hub lives inside the primary's StorageManager. Every committed
// ingest batch is published here (after the WAL append and the
// in-memory apply, in publication order), tagged with its position:
//
//   epoch   the snapshot sequence number the WAL grows on top of; a
//           checkpoint starts a new epoch and resets the WAL to empty
//   offset  the byte offset of the batch's WAL entry inside that
//           epoch's wal.log (next_offset = offset of the next entry)
//   seq     1-based count of batches within the epoch — the replica's
//           apply progress and the unit of the lag gauge
//
// A (epoch, offset) pair names a point in the replication stream
// exactly: WAL bytes are immutable within an epoch, so a replica that
// reconnects with the last position it fully applied resumes without
// gaps or duplicates. The hub retains the whole current epoch in RAM —
// bounded by the same knob that bounds the WAL itself
// (checkpoint_wal_bytes triggers a checkpoint, which advances the
// epoch and clears the backlog). Subscribers parked before the
// checkpoint observe kStale and recover by fetching a fresh snapshot;
// see docs/REPLICATION.md for the full state machine.
//
// Thread-safety: all methods are safe to call concurrently. Next()
// blocks on a condition variable with a timeout so streaming sessions
// can emit heartbeats while idle; Close() wakes every waiter for
// shutdown.

#ifndef WDPT_SRC_REPLICATION_HUB_H_
#define WDPT_SRC_REPLICATION_HUB_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/replication/stats.h"

namespace wdpt::replication {

/// One committed ingest batch, positioned in the stream. `ops_text` is
/// the batch rendered as ingest text (FormatIngestBody) — the WALSEG
/// frame body a replica re-parses and applies.
struct BatchRecord {
  uint64_t epoch = 0;
  uint64_t seq = 0;          ///< 1-based within the epoch.
  uint64_t offset = 0;       ///< WAL byte offset of this entry.
  uint64_t next_offset = 0;  ///< WAL byte offset after this entry.
  std::string ops_text;      ///< Ingest-text body; empty = heartbeat.
};

class Hub {
 public:
  /// A subscriber's read position. Opaque to callers; obtain via Seek.
  struct Cursor {
    uint64_t epoch = 0;
    size_t index = 0;  ///< Next unread slot in the epoch's backlog.
  };

  enum class NextResult {
    kBatch,    ///< *out is the next batch; cursor advanced past it.
    kTimeout,  ///< Nothing new within the timeout; *out is a heartbeat
               ///< carrying the current end position and head seq.
    kStale,    ///< The epoch advanced under the cursor (checkpoint).
    kClosed,   ///< The hub shut down.
  };

  /// Resets the hub to `epoch` with an empty backlog. Called at
  /// StorageManager open (before any subscriber exists) and by
  /// Advance.
  void Reset(uint64_t epoch);

  /// Appends a committed batch and wakes waiting subscribers. `record`
  /// must continue the current epoch (offset == previous next_offset,
  /// seq == previous seq + 1).
  void Publish(BatchRecord record);

  /// Starts epoch `new_epoch` with an empty backlog (a checkpoint
  /// folded the WAL into a new snapshot). Waiting subscribers wake and
  /// observe kStale; they drop their stream and re-bootstrap.
  void Advance(uint64_t new_epoch);

  /// Positions `*cursor` at `(epoch, offset)`. Valid positions are the
  /// start of the current epoch (offset 0), the boundary after any
  /// retained batch, or the current end. Anything else — an older
  /// epoch, or an offset that is not an entry boundary — is kNotFound:
  /// the position was compacted away and the subscriber must fetch a
  /// snapshot.
  Status Seek(uint64_t epoch, uint64_t offset, Cursor* cursor) const;

  /// Blocks up to `timeout_ms` for the batch after `*cursor`. On
  /// kBatch the cursor advances; on kTimeout `*out` is filled as a
  /// heartbeat (current end position, empty body) so streamers can
  /// keep the replica's view of the head fresh.
  NextResult Next(Cursor* cursor, BatchRecord* out, uint64_t timeout_ms);

  /// Wakes all waiters permanently; every Next returns kClosed. Called
  /// by Server::StopHard before joining streaming session threads.
  void Close();

  uint64_t epoch() const;
  uint64_t head_seq() const;

  // Ship accounting, recorded by the serving layer.
  void AddSubscriber();
  void RemoveSubscriber();
  void RecordShipped(uint64_t frame_bytes, bool is_batch);
  void RecordSnapshotFetch();
  void RecordStaleSubscribe();

  PrimaryReplicationStats stats() const;

 private:
  uint64_t EndOffsetLocked() const;
  uint64_t HeadSeqLocked() const;
  void FillHeartbeatLocked(BatchRecord* out) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t epoch_ = 0;
  bool closed_ = false;
  std::vector<BatchRecord> backlog_;  // Current epoch, in seq order.

  // Counters (under mu_; reads take the lock too — stats are rare).
  uint64_t subscribers_ = 0;
  uint64_t batches_shipped_ = 0;
  uint64_t bytes_shipped_ = 0;
  uint64_t snapshot_fetches_ = 0;
  uint64_t stale_subscribes_ = 0;
};

}  // namespace wdpt::replication

#endif  // WDPT_SRC_REPLICATION_HUB_H_
