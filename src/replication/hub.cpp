#include "src/replication/hub.h"

#include <chrono>

namespace wdpt::replication {

void Hub::Reset(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
  backlog_.clear();
}

void Hub::Publish(BatchRecord record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.epoch = epoch_;
    backlog_.push_back(std::move(record));
  }
  cv_.notify_all();
}

void Hub::Advance(uint64_t new_epoch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_ = new_epoch;
    backlog_.clear();
  }
  // Parked subscribers re-check their cursor epoch and observe kStale.
  cv_.notify_all();
}

Status Hub::Seek(uint64_t epoch, uint64_t offset, Cursor* cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    return Status::NotFound("epoch " + std::to_string(epoch) +
                            " compacted (current epoch " +
                            std::to_string(epoch_) +
                            "); fetch a snapshot and re-subscribe");
  }
  if (offset == EndOffsetLocked()) {
    cursor->epoch = epoch_;
    cursor->index = backlog_.size();
    return Status::Ok();
  }
  // Not at the end: the offset must name a retained entry boundary.
  // Offsets are strictly increasing, but a linear scan is fine — Seek
  // runs once per (re)subscribe, not per batch.
  for (size_t i = 0; i < backlog_.size(); ++i) {
    if (backlog_[i].offset == offset) {
      cursor->epoch = epoch_;
      cursor->index = i;
      return Status::Ok();
    }
    if (backlog_[i].offset > offset) break;
  }
  return Status::NotFound("offset " + std::to_string(offset) +
                          " is not a WAL entry boundary in epoch " +
                          std::to_string(epoch_) +
                          "; fetch a snapshot and re-subscribe");
}

Hub::NextResult Hub::Next(Cursor* cursor, BatchRecord* out,
                          uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (closed_) return NextResult::kClosed;
    if (cursor->epoch != epoch_) return NextResult::kStale;
    if (cursor->index < backlog_.size()) {
      *out = backlog_[cursor->index];
      ++cursor->index;
      return NextResult::kBatch;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-check once: a publish may have raced the timeout.
      if (closed_) return NextResult::kClosed;
      if (cursor->epoch != epoch_) return NextResult::kStale;
      if (cursor->index < backlog_.size()) {
        *out = backlog_[cursor->index];
        ++cursor->index;
        return NextResult::kBatch;
      }
      FillHeartbeatLocked(out);
      return NextResult::kTimeout;
    }
  }
}

void Hub::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

uint64_t Hub::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t Hub::head_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HeadSeqLocked();
}

void Hub::AddSubscriber() {
  std::lock_guard<std::mutex> lock(mu_);
  ++subscribers_;
}

void Hub::RemoveSubscriber() {
  std::lock_guard<std::mutex> lock(mu_);
  --subscribers_;
}

void Hub::RecordShipped(uint64_t frame_bytes, bool is_batch) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_shipped_ += frame_bytes;
  if (is_batch) ++batches_shipped_;
}

void Hub::RecordSnapshotFetch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++snapshot_fetches_;
}

void Hub::RecordStaleSubscribe() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stale_subscribes_;
}

PrimaryReplicationStats Hub::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PrimaryReplicationStats s;
  s.subscribers = subscribers_;
  s.batches_shipped = batches_shipped_;
  s.bytes_shipped = bytes_shipped_;
  s.snapshot_fetches = snapshot_fetches_;
  s.stale_subscribes = stale_subscribes_;
  s.epoch = epoch_;
  s.head_seq = HeadSeqLocked();
  return s;
}

uint64_t Hub::EndOffsetLocked() const {
  return backlog_.empty() ? 0 : backlog_.back().next_offset;
}

uint64_t Hub::HeadSeqLocked() const {
  return backlog_.empty() ? 0 : backlog_.back().seq;
}

void Hub::FillHeartbeatLocked(BatchRecord* out) const {
  out->epoch = epoch_;
  out->seq = HeadSeqLocked();
  out->offset = EndOffsetLocked();
  out->next_offset = out->offset;
  out->ops_text.clear();
}

}  // namespace wdpt::replication
