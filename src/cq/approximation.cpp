#include "src/cq/approximation.h"

#include <algorithm>

#include "src/cq/containment.h"
#include "src/cq/core.h"
#include "src/cq/quotient.h"
#include "src/hypergraph/gyo.h"
#include "src/hypergraph/hypertree.h"
#include "src/hypergraph/treewidth.h"

namespace wdpt {

const char* WidthMeasureName(WidthMeasure measure) {
  switch (measure) {
    case WidthMeasure::kTreewidth:
      return "tw";
    case WidthMeasure::kGeneralizedHypertreewidth:
      return "ghw";
    case WidthMeasure::kBetaHypertreewidth:
      return "beta-ghw";
  }
  return "unknown";
}

Result<bool> WidthAtMost(const ConjunctiveQuery& q, WidthMeasure measure,
                         int k) {
  Hypergraph h = q.BuildHypergraph(nullptr);
  switch (measure) {
    case WidthMeasure::kTreewidth: {
      Graph primal = h.ToPrimalGraph();
      bool exact = false;
      bool result = TreewidthAtMost(primal, k, &exact);
      if (!exact && !result) {
        return Status::ResourceExhausted(
            "query too large for exact treewidth and heuristic exceeded k");
      }
      return result;
    }
    case WidthMeasure::kGeneralizedHypertreewidth: {
      if (k >= 1 && IsAlphaAcyclic(h)) return true;
      if (h.num_vertices > kMaxExactVertices) {
        return Status::ResourceExhausted(
            "query too large for exact hypertreewidth");
      }
      return FindHypertreeDecomposition(h, k).has_value();
    }
    case WidthMeasure::kBetaHypertreewidth: {
      std::optional<bool> result = BetaGhwAtMost(h, k);
      if (!result.has_value()) {
        return Status::ResourceExhausted(
            "query too large for beta-hypertreewidth enumeration");
      }
      return *result;
    }
  }
  return Status::Internal("unknown width measure");
}

Result<bool> SemanticallyInWidthClass(const ConjunctiveQuery& q,
                                      WidthMeasure measure, int k,
                                      const Schema* schema,
                                      Vocabulary* vocab) {
  ConjunctiveQuery core = ComputeCore(q, schema, vocab);
  return WidthAtMost(core, measure, k);
}

Result<std::vector<ConjunctiveQuery>> ComputeCqApproximations(
    const ConjunctiveQuery& q, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const CqApproximationOptions& options) {
  if (measure == WidthMeasure::kGeneralizedHypertreewidth) {
    return Status::InvalidArgument(
        "approximations require a subquery-closed measure (tw or beta-ghw)");
  }
  // Fast path: q itself is equivalent to a C(k) query.
  ConjunctiveQuery q_core = ComputeCore(q, schema, vocab);
  Result<bool> in_class = WidthAtMost(q_core, measure, k);
  if (!in_class.ok()) return in_class.status();
  if (*in_class) return std::vector<ConjunctiveQuery>{q_core};

  // Enumerate quotient images; keep the cored sound candidates in C(k).
  std::vector<ConjunctiveQuery> candidates;
  Status failure = Status::Ok();
  bool complete = ForEachQuotient(
      q, options.max_partitions, [&](const ConjunctiveQuery& image) {
        ConjunctiveQuery cored = ComputeCore(image, schema, vocab);
        Result<bool> ok = WidthAtMost(cored, measure, k);
        if (!ok.ok()) {
          failure = ok.status();
          return false;
        }
        if (*ok) candidates.push_back(std::move(cored));
        return true;
      });
  if (!failure.ok()) return failure;
  if (!complete) {
    return Status::ResourceExhausted(
        "quotient enumeration exceeded max_partitions");
  }

  // Keep containment-maximal candidates, deduplicating equivalents.
  std::vector<ConjunctiveQuery> maximal;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (i == j) continue;
      bool i_in_j = CqContainedIn(candidates[i], candidates[j], schema, vocab);
      if (!i_in_j) continue;
      bool j_in_i = CqContainedIn(candidates[j], candidates[i], schema, vocab);
      if (!j_in_i) {
        dominated = true;  // Strictly below another candidate.
      } else if (j < i) {
        dominated = true;  // Equivalent; keep the first representative.
      }
    }
    if (!dominated) maximal.push_back(candidates[i]);
  }
  return maximal;
}

}  // namespace wdpt
