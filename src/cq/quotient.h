// Enumeration of quotients (homomorphic images) of a CQ.
//
// A quotient identifies variables according to a partition of the body
// variables in which no class contains two free variables; the class
// representative is the free variable if present. For constant-free
// queries, every sound approximation candidate (query q' with a
// homomorphism q -> q' fixing free variables) is captured by a quotient
// up to renaming (Barcelo-Libkin-Romero, SIAM J. Comput. 2014).

#ifndef WDPT_SRC_CQ_QUOTIENT_H_
#define WDPT_SRC_CQ_QUOTIENT_H_

#include <cstdint>
#include <functional>

#include "src/cq/cq.h"

namespace wdpt {

/// Called for each quotient image (normalized, same free variables).
/// Return false to stop early.
using QuotientCallback = std::function<bool(const ConjunctiveQuery&)>;

/// Enumerates the quotient images of q; duplicate images (same atom set)
/// are delivered once. Returns false if `max_partitions` was exceeded
/// (the enumeration is then incomplete).
bool ForEachQuotient(const ConjunctiveQuery& q, uint64_t max_partitions,
                     const QuotientCallback& callback);

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_QUOTIENT_H_
