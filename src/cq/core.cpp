#include "src/cq/core.h"

#include <unordered_map>

#include "src/cq/homomorphism.h"

namespace wdpt {

namespace {

// Looks for an endomorphism of `q` (a homomorphism from q's body to its
// own canonical database fixing free variables) whose image is a proper
// subset of q's atoms. On success stores the image query in `smaller`.
bool FindFoldingEndomorphism(const ConjunctiveQuery& q, const Schema* schema,
                             Vocabulary* vocab, ConjunctiveQuery* smaller) {
  CanonicalDatabase canonical = BuildCanonicalDatabase(q.atoms, schema, vocab);
  Mapping seed = canonical.FreezeMapping(q.free_vars);
  // Reverse map: frozen constant -> variable.
  std::unordered_map<ConstantId, VariableId> unfreeze;
  for (const auto& [v, c] : canonical.frozen) unfreeze.emplace(c, v);

  bool found = false;
  ForEachHomomorphism(q.atoms, canonical.db, seed, [&](const Mapping& m) {
    // Apply the endomorphism to every atom; the image is automatically a
    // subset of q's atoms (facts of the canonical database unfreeze to
    // exactly the atoms of q).
    ConjunctiveQuery image;
    image.free_vars = q.free_vars;
    image.atoms = q.atoms;
    for (Atom& a : image.atoms) {
      for (Term& t : a.terms) {
        if (!t.is_variable()) continue;
        std::optional<ConstantId> c = m.Get(t.variable_id());
        if (!c.has_value()) continue;  // Variable not in the body.
        auto it = unfreeze.find(*c);
        if (it != unfreeze.end()) {
          t = Term::Variable(it->second);
        } else {
          t = Term::Constant(*c);
        }
      }
    }
    image.Normalize();
    if (image.atoms.size() < q.atoms.size()) {
      *smaller = std::move(image);
      found = true;
      return false;  // Stop the enumeration.
    }
    return true;
  });
  return found;
}

}  // namespace

ConjunctiveQuery ComputeCore(const ConjunctiveQuery& q, const Schema* schema,
                             Vocabulary* vocab) {
  ConjunctiveQuery current = q;
  current.Normalize();
  ConjunctiveQuery smaller;
  while (FindFoldingEndomorphism(current, schema, vocab, &smaller)) {
    current = smaller;
  }
  return current;
}

}  // namespace wdpt
