#include "src/cq/quotient.h"

#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/algo.h"

namespace wdpt {

bool ForEachQuotient(const ConjunctiveQuery& q, uint64_t max_partitions,
                     const QuotientCallback& callback) {
  std::vector<VariableId> vars = q.AllVariables();
  const size_t n = vars.size();
  std::vector<bool> is_free(n, false);
  for (size_t i = 0; i < n; ++i) {
    is_free[i] = SortedContains(q.free_vars, vars[i]);
  }

  // Restricted-growth-string enumeration of partitions. class_of[i] is the
  // class of vars[i]; class_free_count tracks free variables per class.
  std::vector<uint32_t> class_of(n, 0);
  std::vector<uint32_t> class_free_count;
  uint64_t emitted = 0;
  bool complete = true;
  bool stopped = false;
  // Deduplicate images by their atom sets.
  std::set<std::vector<Atom>> seen;

  std::function<void(size_t, uint32_t)> recurse = [&](size_t i,
                                                      uint32_t num_classes) {
    if (stopped || !complete) return;
    if (i == n) {
      if (++emitted > max_partitions) {
        complete = false;
        return;
      }
      // Representatives: free variable if present, else first member.
      std::vector<VariableId> representative(num_classes, UINT32_MAX);
      for (size_t j = 0; j < n; ++j) {
        uint32_t c = class_of[j];
        if (representative[c] == UINT32_MAX || is_free[j]) {
          if (representative[c] == UINT32_MAX ||
              !SortedContains(q.free_vars, representative[c])) {
            representative[c] = vars[j];
          }
        }
      }
      ConjunctiveQuery image;
      image.free_vars = q.free_vars;
      image.atoms = q.atoms;
      std::unordered_map<VariableId, VariableId> subst;
      for (size_t j = 0; j < n; ++j) {
        subst.emplace(vars[j], representative[class_of[j]]);
      }
      for (Atom& a : image.atoms) {
        for (Term& t : a.terms) {
          if (t.is_variable()) {
            t = Term::Variable(subst.at(t.variable_id()));
          }
        }
      }
      image.Normalize();
      if (seen.insert(image.atoms).second) {
        if (!callback(image)) stopped = true;
      }
      return;
    }
    for (uint32_t c = 0; c <= num_classes && !stopped && complete; ++c) {
      bool new_class = (c == num_classes);
      if (new_class) class_free_count.push_back(0);
      if (is_free[i] && class_free_count[c] >= 1) {
        if (new_class) class_free_count.pop_back();
        continue;  // Two free variables may not be identified.
      }
      class_of[i] = c;
      if (is_free[i]) ++class_free_count[c];
      recurse(i + 1, new_class ? num_classes + 1 : num_classes);
      if (is_free[i]) --class_free_count[c];
      if (new_class) class_free_count.pop_back();
    }
  };
  recurse(0, 0);
  return complete;
}

}  // namespace wdpt
