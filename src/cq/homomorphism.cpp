#include "src/cq/homomorphism.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/common/metrics.h"
#include "src/common/status.h"

namespace wdpt {

namespace {

// Internal dense assignment: VariableId -> ConstantId or kUnbound.
constexpr uint64_t kUnbound = UINT64_MAX;

class Searcher {
 public:
  Searcher(const std::vector<Atom>& atoms, const Database& db,
           const Mapping& seed, const HomCallback& callback,
           const HomSearchLimits& limits)
      : atoms_(atoms),
        db_(db),
        callback_(callback),
        limits_(limits),
        order_(ResolveHomOrder(limits.order)) {
    // Size the dense assignment from the maximum variable id seen.
    uint32_t max_var = 0;
    for (const Atom& a : atoms_) {
      for (Term t : a.terms) {
        if (t.is_variable()) max_var = std::max(max_var, t.variable_id());
      }
    }
    for (const auto& [v, c] : seed.entries()) max_var = std::max(max_var, v);
    assignment_.assign(max_var + 1, kUnbound);
    for (const auto& [v, c] : seed.entries()) assignment_[v] = c;
    // Variables we report: atom variables plus the seed's domain.
    report_vars_ = VariablesOf(atoms_);
    for (const auto& [v, c] : seed.entries()) report_vars_.push_back(v);
    SortUnique(&report_vars_);
    done_.assign(atoms_.size(), false);
    depths_.resize(atoms_.size());
  }

  // Returns false if aborted by the step limit.
  bool Run() {
    stopped_ = false;
    aborted_ = false;
    Match(/*depth=*/0, atoms_.size());
    // Index probes were counted locally; flush the totals to the shared
    // counters once so the hot loop never touches their cache lines.
    if (probes_ != 0) {
      metrics::CsrProbes().fetch_add(probes_, std::memory_order_relaxed);
    }
    if (gallops_ != 0) {
      metrics::GallopIntersections().fetch_add(gallops_,
                                               std::memory_order_relaxed);
    }
    return !aborted_;
  }

 private:
  // Reusable per-recursion-depth scratch, so deep searches allocate only
  // on their first visit to each depth.
  struct DepthScratch {
    std::vector<VariableId> newly_bound;
    std::vector<uint32_t> rows;  // Galloped candidate row intersection.
  };

  // The value bound to column `col` of `atom`, or kUnbound.
  uint64_t BoundValue(const Atom& atom, uint32_t col) const {
    Term t = atom.terms[col];
    if (t.is_constant()) return t.constant_id();
    return assignment_[t.variable_id()];
  }

  // Number of bound positions in atom under the current assignment.
  int BoundPositions(const Atom& atom) const {
    int bound = 0;
    for (uint32_t col = 0; col < atom.terms.size(); ++col) {
      if (BoundValue(atom, col) != kUnbound) ++bound;
    }
    return bound;
  }

  // CSR-statistics fan-out estimate for matching `atom` now: relation
  // size scaled by 1/distinct for every bound column (independence
  // assumption). Empty relations estimate 0 — a certain dead branch is
  // the best possible pick.
  double EstimatedFanOut(const Atom& atom) const {
    const Relation& rel = db_.relation(atom.relation);
    if (rel.size() == 0) return 0.0;
    double est = static_cast<double>(rel.size());
    for (uint32_t col = 0; col < atom.terms.size(); ++col) {
      if (BoundValue(atom, col) == kUnbound) continue;
      uint32_t distinct = rel.column_stats(col).distinct_values;
      if (distinct > 1) est /= static_cast<double>(distinct);
    }
    return est;
  }

  // The most constrained remaining atom. Legacy order: maximum bound
  // positions, tie-break on smaller relation. Stats order: minimum
  // estimated fan-out from the CSR statistics (ties on atom index).
  size_t PickAtom() const {
    size_t best = atoms_.size();
    if (order_ == HomOrder::kStats) {
      double best_est = 0.0;
      for (size_t i = 0; i < atoms_.size(); ++i) {
        if (done_[i]) continue;
        double est = EstimatedFanOut(atoms_[i]);
        if (best == atoms_.size() || est < best_est) {
          best = i;
          best_est = est;
        }
      }
    } else {
      int best_bound = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < atoms_.size(); ++i) {
        if (done_[i]) continue;
        int bound = BoundPositions(atoms_[i]);
        size_t rel_size = db_.relation(atoms_[i].relation).size();
        if (best == atoms_.size() || bound > best_bound ||
            (bound == best_bound && rel_size < best_size)) {
          best = i;
          best_bound = bound;
          best_size = rel_size;
        }
      }
    }
    return best;
  }

  // Recursion: done_[i] marks matched atoms, `remaining` counts the rest.
  void Match(size_t depth, size_t remaining) {
    if (stopped_ || aborted_) return;
    ++steps_;
    if (limits_.max_steps != 0 && steps_ > limits_.max_steps) {
      aborted_ = true;
      return;
    }
    // Poll cancellation every 1024 steps (a ShouldStop reads the clock).
    if (limits_.cancel.valid() && (steps_ & 0x3FF) == 0 &&
        limits_.cancel.ShouldStop()) {
      aborted_ = true;
      return;
    }
    if (remaining == 0) {
      Report();
      return;
    }
    size_t best = PickAtom();
    const Atom& atom = atoms_[best];
    done_[best] = true;

    const Relation& rel = db_.relation(atom.relation);
    if (rel.size() != 0) {
      WDPT_CHECK(rel.arity() == atom.terms.size());
      MatchAtom(atom, rel, depth, remaining);
    }  // else: no facts, dead branch.
    done_[best] = false;
  }

  // Matches one selected atom: picks the access path, then extends the
  // assignment for every candidate row.
  void MatchAtom(const Atom& atom, const Relation& rel, size_t depth,
                 size_t remaining) {
    DepthScratch& scratch = depths_[depth];

    auto try_row = [&](uint32_t row) {
      std::span<const ConstantId> tuple = rel.Tuple(row);
      // Bind/check all positions.
      scratch.newly_bound.clear();
      bool ok = true;
      for (uint32_t col = 0; col < tuple.size(); ++col) {
        Term t = atom.terms[col];
        if (t.is_constant()) {
          if (t.constant_id() != tuple[col]) {
            ok = false;
            break;
          }
          continue;
        }
        VariableId v = t.variable_id();
        if (assignment_[v] == kUnbound) {
          assignment_[v] = tuple[col];
          scratch.newly_bound.push_back(v);
        } else if (assignment_[v] != tuple[col]) {
          ok = false;
          break;
        }
      }
      if (ok) Match(depth + 1, remaining - 1);
      // `newly_bound` survives the recursion: deeper levels use their
      // own DepthScratch.
      for (VariableId v : scratch.newly_bound) assignment_[v] = kUnbound;
    };

    // Access path: probe the CSR index of bound columns. With two or
    // more, gallop-intersect the two shortest posting lists — try_row
    // re-checks every column, so the candidate superset stays sound.
    std::span<const uint32_t> first, second;
    int num_bound = 0;
    for (uint32_t col = 0; col < atom.terms.size(); ++col) {
      uint64_t value = BoundValue(atom, col);
      if (value == kUnbound) continue;
      ++probes_;
      std::span<const uint32_t> list =
          rel.RowsMatching(col, static_cast<ConstantId>(value));
      ++num_bound;
      if (num_bound == 1 || list.size() < first.size()) {
        second = first;
        first = list;
      } else if (num_bound == 2 || list.size() < second.size()) {
        second = list;
      }
    }

    if (num_bound == 0) {
      for (uint32_t row = 0; row < rel.size(); ++row) {
        if (stopped_ || aborted_) return;
        try_row(row);
      }
      return;
    }
    if (num_bound >= 2 && order_ == HomOrder::kStats && !first.empty()) {
      ++gallops_;
      scratch.rows.clear();
      GallopIntersect(first, second, &scratch.rows);
      for (uint32_t row : scratch.rows) {
        if (stopped_ || aborted_) return;
        try_row(row);
      }
      return;
    }
    // Single bound column (or legacy order): walk the shortest list.
    // The span stays valid: the database is not mutated mid-search.
    for (uint32_t row : first) {
      if (stopped_ || aborted_) return;
      try_row(row);
    }
  }

  void Report() {
    std::vector<Mapping::Entry> entries;
    entries.reserve(report_vars_.size());
    for (VariableId v : report_vars_) {
      WDPT_DCHECK(assignment_[v] != kUnbound);
      entries.emplace_back(v, static_cast<ConstantId>(assignment_[v]));
    }
    if (!callback_(Mapping(std::move(entries)))) stopped_ = true;
  }

  const std::vector<Atom>& atoms_;
  const Database& db_;
  const HomCallback& callback_;
  HomSearchLimits limits_;
  HomOrder order_;
  std::vector<uint64_t> assignment_;
  std::vector<VariableId> report_vars_;
  std::vector<bool> done_;
  std::vector<DepthScratch> depths_;
  uint64_t steps_ = 0;
  uint64_t probes_ = 0;
  uint64_t gallops_ = 0;
  bool stopped_ = false;
  bool aborted_ = false;
};

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& atoms, const Database& db,
                         const Mapping& seed, const HomCallback& callback,
                         const HomSearchLimits& limits) {
  metrics::Bump(metrics::HomomorphismCalls());
  Searcher searcher(atoms, db, seed, callback, limits);
  return searcher.Run();
}

std::optional<Mapping> FindHomomorphism(const std::vector<Atom>& atoms,
                                        const Database& db,
                                        const Mapping& seed,
                                        const HomSearchLimits& limits) {
  std::optional<Mapping> found;
  ForEachHomomorphism(
      atoms, db, seed,
      [&found](const Mapping& m) {
        found = m;
        return false;
      },
      limits);
  return found;
}

bool HomomorphismExists(const std::vector<Atom>& atoms, const Database& db,
                        const Mapping& seed, const HomSearchLimits& limits) {
  return FindHomomorphism(atoms, db, seed, limits).has_value();
}

std::vector<Mapping> AllHomomorphismProjections(
    const std::vector<Atom>& atoms, const Database& db, const Mapping& seed,
    const std::vector<VariableId>& projection, uint64_t max_results,
    const HomSearchLimits& limits) {
  std::unordered_set<Mapping, MappingHash> seen;
  std::vector<Mapping> results;
  ForEachHomomorphism(
      atoms, db, seed,
      [&](const Mapping& m) {
        Mapping projected = m.RestrictTo(projection);
        if (seen.insert(projected).second) {
          results.push_back(std::move(projected));
          if (max_results != 0 && results.size() >= max_results) return false;
        }
        return true;
      },
      limits);
  return results;
}

}  // namespace wdpt
