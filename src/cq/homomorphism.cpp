#include "src/cq/homomorphism.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/common/metrics.h"
#include "src/common/status.h"

namespace wdpt {

namespace {

// Internal dense assignment: VariableId -> ConstantId or kUnbound.
constexpr uint64_t kUnbound = UINT64_MAX;

class Searcher {
 public:
  Searcher(const std::vector<Atom>& atoms, const Database& db,
           const Mapping& seed, const HomCallback& callback,
           const HomSearchLimits& limits)
      : atoms_(atoms),
        db_(db),
        callback_(callback),
        limits_(limits) {
    // Size the dense assignment from the maximum variable id seen.
    uint32_t max_var = 0;
    for (const Atom& a : atoms_) {
      for (Term t : a.terms) {
        if (t.is_variable()) max_var = std::max(max_var, t.variable_id());
      }
    }
    for (const auto& [v, c] : seed.entries()) max_var = std::max(max_var, v);
    assignment_.assign(max_var + 1, kUnbound);
    for (const auto& [v, c] : seed.entries()) assignment_[v] = c;
    // Variables we report: atom variables plus the seed's domain.
    report_vars_ = VariablesOf(atoms_);
    for (const auto& [v, c] : seed.entries()) report_vars_.push_back(v);
    SortUnique(&report_vars_);
  }

  // Returns false if aborted by the step limit.
  bool Run() {
    stopped_ = false;
    aborted_ = false;
    Match(std::vector<bool>(atoms_.size(), false), atoms_.size());
    return !aborted_;
  }

 private:
  // Number of bound positions in atom i under the current assignment.
  // Returns -1 if a constant/bound-variable position mismatches every
  // possible tuple trivially (not checked here; just counts).
  int BoundPositions(const Atom& atom) const {
    int bound = 0;
    for (Term t : atom.terms) {
      if (t.is_constant() ||
          assignment_[t.variable_id()] != kUnbound) {
        ++bound;
      }
    }
    return bound;
  }

  // Recursion: `done[i]` marks matched atoms, `remaining` counts them.
  void Match(std::vector<bool> done, size_t remaining) {
    if (stopped_ || aborted_) return;
    ++steps_;
    if (limits_.max_steps != 0 && steps_ > limits_.max_steps) {
      aborted_ = true;
      return;
    }
    // Poll cancellation every 1024 steps (a ShouldStop reads the clock).
    if (limits_.cancel.valid() && (steps_ & 0x3FF) == 0 &&
        limits_.cancel.ShouldStop()) {
      aborted_ = true;
      return;
    }
    if (remaining == 0) {
      Report();
      return;
    }
    // Pick the most-constrained remaining atom (max bound positions,
    // tie-break on smaller relation).
    size_t best = atoms_.size();
    int best_bound = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (done[i]) continue;
      int bound = BoundPositions(atoms_[i]);
      size_t rel_size = db_.relation(atoms_[i].relation).size();
      if (best == atoms_.size() || bound > best_bound ||
          (bound == best_bound && rel_size < best_size)) {
        best = i;
        best_bound = bound;
        best_size = rel_size;
      }
    }
    const Atom& atom = atoms_[best];
    done[best] = true;

    const Relation& rel = db_.relation(atom.relation);
    if (rel.size() == 0) return;  // No facts: dead branch.
    WDPT_CHECK(rel.arity() == atom.terms.size());

    // Choose the access path: the most selective bound column's index,
    // else a full scan.
    uint32_t index_col = UINT32_MAX;
    ConstantId index_val = 0;
    size_t index_size = rel.size() + 1;
    for (uint32_t col = 0; col < atom.terms.size(); ++col) {
      Term t = atom.terms[col];
      ConstantId value;
      if (t.is_constant()) {
        value = t.constant_id();
      } else if (assignment_[t.variable_id()] != kUnbound) {
        value = static_cast<ConstantId>(assignment_[t.variable_id()]);
      } else {
        continue;
      }
      size_t size = rel.RowsMatching(col, value).size();
      if (size < index_size) {
        index_size = size;
        index_col = col;
        index_val = value;
      }
    }

    auto try_row = [&](uint32_t row) {
      std::span<const ConstantId> tuple = rel.Tuple(row);
      // Bind/check all positions.
      std::vector<VariableId> newly_bound;
      bool ok = true;
      for (uint32_t col = 0; col < tuple.size(); ++col) {
        Term t = atom.terms[col];
        if (t.is_constant()) {
          if (t.constant_id() != tuple[col]) {
            ok = false;
            break;
          }
          continue;
        }
        VariableId v = t.variable_id();
        if (assignment_[v] == kUnbound) {
          assignment_[v] = tuple[col];
          newly_bound.push_back(v);
        } else if (assignment_[v] != tuple[col]) {
          ok = false;
          break;
        }
      }
      if (ok) Match(done, remaining - 1);
      for (VariableId v : newly_bound) assignment_[v] = kUnbound;
    };

    if (index_col != UINT32_MAX) {
      // The reference returned by RowsMatching stays valid: the database
      // is not mutated during the search.
      for (uint32_t row : rel.RowsMatching(index_col, index_val)) {
        if (stopped_ || aborted_) return;
        try_row(row);
      }
    } else {
      for (uint32_t row = 0; row < rel.size(); ++row) {
        if (stopped_ || aborted_) return;
        try_row(row);
      }
    }
  }

  void Report() {
    std::vector<Mapping::Entry> entries;
    entries.reserve(report_vars_.size());
    for (VariableId v : report_vars_) {
      WDPT_DCHECK(assignment_[v] != kUnbound);
      entries.emplace_back(v, static_cast<ConstantId>(assignment_[v]));
    }
    if (!callback_(Mapping(std::move(entries)))) stopped_ = true;
  }

  const std::vector<Atom>& atoms_;
  const Database& db_;
  const HomCallback& callback_;
  HomSearchLimits limits_;
  std::vector<uint64_t> assignment_;
  std::vector<VariableId> report_vars_;
  uint64_t steps_ = 0;
  bool stopped_ = false;
  bool aborted_ = false;
};

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& atoms, const Database& db,
                         const Mapping& seed, const HomCallback& callback,
                         const HomSearchLimits& limits) {
  metrics::Bump(metrics::HomomorphismCalls());
  Searcher searcher(atoms, db, seed, callback, limits);
  return searcher.Run();
}

std::optional<Mapping> FindHomomorphism(const std::vector<Atom>& atoms,
                                        const Database& db,
                                        const Mapping& seed,
                                        const HomSearchLimits& limits) {
  std::optional<Mapping> found;
  ForEachHomomorphism(
      atoms, db, seed,
      [&found](const Mapping& m) {
        found = m;
        return false;
      },
      limits);
  return found;
}

bool HomomorphismExists(const std::vector<Atom>& atoms, const Database& db,
                        const Mapping& seed, const HomSearchLimits& limits) {
  return FindHomomorphism(atoms, db, seed, limits).has_value();
}

std::vector<Mapping> AllHomomorphismProjections(
    const std::vector<Atom>& atoms, const Database& db, const Mapping& seed,
    const std::vector<VariableId>& projection, uint64_t max_results,
    const HomSearchLimits& limits) {
  std::unordered_set<Mapping, MappingHash> seen;
  std::vector<Mapping> results;
  ForEachHomomorphism(
      atoms, db, seed,
      [&](const Mapping& m) {
        Mapping projected = m.RestrictTo(projection);
        if (seen.insert(projected).second) {
          results.push_back(std::move(projected));
          if (max_results != 0 && results.size() >= max_results) return false;
        }
        return true;
      },
      limits);
  return results;
}

}  // namespace wdpt
