#include "src/cq/cq.h"

#include <algorithm>

#include "src/common/algo.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace wdpt {

void ConjunctiveQuery::Normalize() {
  SortUnique(&free_vars);
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
}

std::vector<VariableId> ConjunctiveQuery::ExistentialVariables() const {
  return SortedDifference(AllVariables(), free_vars);
}

bool ConjunctiveQuery::IsSafe() const {
  std::vector<VariableId> all = AllVariables();
  for (VariableId v : free_vars) {
    if (!SortedContains(all, v)) return false;
  }
  return true;
}

size_t ConjunctiveQuery::Size() const {
  size_t size = atoms.size();
  for (const Atom& a : atoms) size += a.terms.size();
  return size;
}

Hypergraph ConjunctiveQuery::BuildHypergraph(
    std::vector<VariableId>* vertex_to_var) const {
  std::vector<VariableId> vars = AllVariables();
  std::unordered_map<VariableId, uint32_t> dense;
  for (uint32_t i = 0; i < vars.size(); ++i) dense.emplace(vars[i], i);
  Hypergraph h;
  h.num_vertices = static_cast<uint32_t>(vars.size());
  h.edges.reserve(atoms.size());
  for (const Atom& a : atoms) {
    std::vector<uint32_t> edge;
    for (Term t : a.terms) {
      if (t.is_variable()) edge.push_back(dense.at(t.variable_id()));
    }
    SortUnique(&edge);
    h.edges.push_back(std::move(edge));
  }
  if (vertex_to_var != nullptr) *vertex_to_var = std::move(vars);
  return h;
}

std::string ConjunctiveQuery::ToString(const Schema& schema,
                                       const Vocabulary& vocab) const {
  std::string out = "Ans(";
  for (size_t i = 0; i < free_vars.size(); ++i) {
    if (i > 0) out += ", ";
    out += "?" + vocab.VariableName(free_vars[i]);
  }
  out += ") <- ";
  out += AtomsToString(atoms, schema, vocab);
  return out;
}

std::vector<Atom> SubstituteMapping(const std::vector<Atom>& atoms,
                                    const Mapping& m) {
  std::vector<Atom> out = atoms;
  for (Atom& a : out) {
    for (Term& t : a.terms) {
      if (t.is_variable()) {
        std::optional<ConstantId> c = m.Get(t.variable_id());
        if (c.has_value()) t = Term::Constant(*c);
      }
    }
  }
  return out;
}

Mapping CanonicalDatabase::FreezeMapping(
    const std::vector<VariableId>& vars) const {
  Mapping m;
  for (VariableId v : vars) {
    auto it = frozen.find(v);
    if (it != frozen.end()) {
      bool ok = m.Bind(v, it->second);
      WDPT_CHECK(ok);
    }
  }
  return m;
}

CanonicalDatabase BuildCanonicalDatabase(const std::vector<Atom>& atoms,
                                         const Schema* schema,
                                         Vocabulary* vocab) {
  CanonicalDatabase canonical(schema);
  for (const Atom& a : atoms) {
    std::vector<ConstantId> tuple;
    tuple.reserve(a.terms.size());
    for (Term t : a.terms) {
      if (t.is_constant()) {
        tuple.push_back(t.constant_id());
        continue;
      }
      VariableId v = t.variable_id();
      auto it = canonical.frozen.find(v);
      if (it == canonical.frozen.end()) {
        ConstantId frozen =
            vocab->ConstantIdOf("_frz_" + vocab->VariableName(v));
        it = canonical.frozen.emplace(v, frozen).first;
      }
      tuple.push_back(it->second);
    }
    Status status = canonical.db.AddFact(a.relation, tuple);
    WDPT_CHECK(status.ok());
  }
  return canonical;
}

}  // namespace wdpt
