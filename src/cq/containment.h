// Chandra-Merlin containment and equivalence of CQs, plus the answer-
// subsumption order on CQs used by the WDPT machinery.
//
// With the paper's mapping-based semantics, q1 is contained in q2 only if
// both have the same free variables; q1 is *subsumed* by q2 (every answer
// of q1 extends to an answer of q2 over every database) if free(q1) is a
// subset of free(q2) and a homomorphism from q2's body to the canonical
// database of q1 fixes free(q1).

#ifndef WDPT_SRC_CQ_CONTAINMENT_H_
#define WDPT_SRC_CQ_CONTAINMENT_H_

#include "src/cq/cq.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// q1 subseteq q2 for every database. Requires identical free-variable
/// sets (otherwise false, except for the trivial equal case).
bool CqContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const Schema* schema, Vocabulary* vocab);

/// Containment in both directions.
bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                  const Schema* schema, Vocabulary* vocab);

/// q1 [= q2 on answers: for every database D and every h1 in q1(D) there
/// is h2 in q2(D) with h1 [= h2.
bool CqSubsumedBy(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                  const Schema* schema, Vocabulary* vocab);

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_CONTAINMENT_H_
