// Width classes of CQs and C(k)-approximations.
//
// TW(k), HW(k) (generalized hypertreewidth, as in the paper's remark) and
// HW'(k) (beta-hypertreewidth, the subquery-closed restriction used for
// WB(k)). Approximations follow Barcelo-Libkin-Romero: for constant-free
// queries every C(k)-approximation is equivalent to a homomorphic image
// of q, so the maximal sound quotients are exactly the approximations.

#ifndef WDPT_SRC_CQ_APPROXIMATION_H_
#define WDPT_SRC_CQ_APPROXIMATION_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/cq/cq.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// Structural width measures on CQ hypergraphs.
enum class WidthMeasure {
  kTreewidth,                 ///< TW(k).
  kGeneralizedHypertreewidth, ///< HW(k) in the paper's notation.
  kBetaHypertreewidth,        ///< HW'(k): every subquery has ghw <= k.
};

/// Human-readable measure name ("tw", "ghw", "beta-ghw").
const char* WidthMeasureName(WidthMeasure measure);

/// Syntactic test: width of q's hypergraph at most k. Exact for queries
/// with at most 64 variables (an error status is returned beyond that for
/// the hypertree measures; treewidth falls back to a heuristic upper
/// bound that may report false).
Result<bool> WidthAtMost(const ConjunctiveQuery& q, WidthMeasure measure,
                         int k);

/// Semantic test: is q equivalent to some CQ in C(k)? Equivalent to
/// WidthAtMost(core(q)) since the core is the minimal equivalent query
/// and width is monotone under subqueries for these measures.
Result<bool> SemanticallyInWidthClass(const ConjunctiveQuery& q,
                                      WidthMeasure measure, int k,
                                      const Schema* schema,
                                      Vocabulary* vocab);

/// Options for approximation search.
struct CqApproximationOptions {
  /// Cap on enumerated variable partitions; exceeded -> error status.
  uint64_t max_partitions = 5'000'000;
};

/// All C(k)-approximations of q up to equivalence (cored, sound, maximal
/// under containment). If q itself is semantically in C(k) the result is
/// {core(q)}. Intended for kTreewidth and kBetaHypertreewidth (the
/// subquery-closed measures for which the quotient characterization is
/// complete); kGeneralizedHypertreewidth is rejected.
Result<std::vector<ConjunctiveQuery>> ComputeCqApproximations(
    const ConjunctiveQuery& q, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const CqApproximationOptions& options = CqApproximationOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_APPROXIMATION_H_
