#include "src/cq/evaluation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/common/hash.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/cq/homomorphism.h"
#include "src/hypergraph/gyo.h"
#include "src/hypergraph/treewidth.h"

namespace wdpt {

namespace {

// A materialized bag: variable list (sorted) and tuple set.
struct Bag {
  std::vector<VariableId> vars;
  std::vector<std::vector<ConstantId>> tuples;
};

size_t TupleHash(const std::vector<ConstantId>& t) {
  size_t seed = t.size();
  for (ConstantId c : t) HashCombine(&seed, c);
  return seed;
}

struct TupleVecHash {
  size_t operator()(const std::vector<ConstantId>& t) const {
    return TupleHash(t);
  }
};

// Projects `tuple` (aligned with `vars`) onto `onto` (subset of vars).
std::vector<ConstantId> Project(const std::vector<VariableId>& vars,
                                const std::vector<ConstantId>& tuple,
                                const std::vector<VariableId>& onto) {
  std::vector<ConstantId> out;
  out.reserve(onto.size());
  for (VariableId v : onto) {
    auto it = std::lower_bound(vars.begin(), vars.end(), v);
    WDPT_DCHECK(it != vars.end() && *it == v);
    out.push_back(tuple[static_cast<size_t>(it - vars.begin())]);
  }
  return out;
}

// Semijoin: keep a's tuples whose projection onto `shared` appears among
// b's projections onto `shared`.
void SemijoinInto(Bag* a, const Bag& b,
                  const std::vector<VariableId>& shared) {
  metrics::Bump(metrics::SemijoinPasses());
  if (shared.empty()) {
    if (b.tuples.empty()) a->tuples.clear();
    return;
  }
  std::unordered_set<std::vector<ConstantId>, TupleVecHash> keys;
  for (const std::vector<ConstantId>& t : b.tuples) {
    keys.insert(Project(b.vars, t, shared));
  }
  std::vector<std::vector<ConstantId>> kept;
  for (std::vector<ConstantId>& t : a->tuples) {
    if (keys.contains(Project(a->vars, t, shared))) {
      kept.push_back(std::move(t));
    }
  }
  a->tuples = std::move(kept);
}

// Materializes the distinct projections onto `bag_vars` of the join of
// `atoms`, via iterative build/probe hash joins with projection
// pushdown: after each atom, variables needed neither by the bag nor by
// a remaining atom are projected away and duplicates collapse. Work per
// step is O(|relation| + |output|) rather than backtracking over the
// full join, so non-adjacent cover atoms cost their projected sizes,
// not a cross product.
std::vector<std::vector<ConstantId>> JoinAndProject(
    const std::vector<Atom>& atoms, const Database& db,
    const std::vector<VariableId>& bag_vars, const CancelToken& cancel) {
  // Greedy atom order: prefer atoms sharing variables with what is
  // already joined.
  std::vector<uint32_t> order;
  std::vector<bool> used(atoms.size(), false);
  std::vector<VariableId> bound;
  for (size_t step = 0; step < atoms.size(); ++step) {
    size_t best = atoms.size();
    int best_shared = -1;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      int shared = static_cast<int>(
          SortedIntersection(atoms[i].Variables(), bound).size());
      if (shared > best_shared) {
        best_shared = shared;
        best = i;
      }
    }
    used[best] = true;
    order.push_back(static_cast<uint32_t>(best));
    bound = SortedUnion(bound, atoms[best].Variables());
  }

  auto var_pos = [](const std::vector<VariableId>& vars, VariableId v) {
    auto it = std::lower_bound(vars.begin(), vars.end(), v);
    return (it != vars.end() && *it == v)
               ? static_cast<int>(it - vars.begin())
               : -1;
  };

  // Current intermediate relation: tuples over `cur_vars` (sorted).
  std::vector<VariableId> cur_vars;
  std::vector<std::vector<ConstantId>> current = {{}};
  for (size_t step = 0; step < order.size(); ++step) {
    if (cancel.valid() && cancel.ShouldStop()) return {};
    const Atom& atom = atoms[order[step]];
    std::vector<VariableId> atom_vars = atom.Variables();
    // Variables needed after this step.
    std::vector<VariableId> needed = bag_vars;
    for (size_t later = step + 1; later < order.size(); ++later) {
      needed = SortedUnion(needed, atoms[order[later]].Variables());
    }
    std::vector<VariableId> next_vars =
        SortedIntersection(SortedUnion(cur_vars, atom_vars), needed);
    std::vector<VariableId> join_vars =
        SortedIntersection(atom_vars, cur_vars);
    // What the atom contributes beyond the join key.
    std::vector<VariableId> atom_keep =
        SortedIntersection(SortedDifference(atom_vars, join_vars), needed);

    const Relation& rel = db.relation(atom.relation);
    if (rel.size() == 0) return {};
    WDPT_CHECK(rel.arity() == atom.terms.size());

    // Build: key (join_vars values) -> distinct atom_keep projections.
    std::unordered_map<std::vector<ConstantId>,
                       std::unordered_set<std::vector<ConstantId>,
                                          TupleVecHash>,
                       TupleVecHash>
        build;
    for (uint32_t row = 0; row < rel.size(); ++row) {
      std::span<const ConstantId> fact = rel.Tuple(row);
      // Derive the atom-local assignment; reject constant or repeated-
      // variable mismatches.
      bool ok = true;
      std::vector<ConstantId> key(join_vars.size());
      std::vector<ConstantId> keep(atom_keep.size());
      std::vector<bool> key_set(join_vars.size(), false);
      std::vector<bool> keep_set(atom_keep.size(), false);
      for (uint32_t col = 0; col < fact.size() && ok; ++col) {
        Term t = atom.terms[col];
        if (t.is_constant()) {
          ok = t.constant_id() == fact[col];
          continue;
        }
        VariableId v = t.variable_id();
        int kp = var_pos(join_vars, v);
        if (kp >= 0) {
          if (key_set[kp] && key[kp] != fact[col]) ok = false;
          key[kp] = fact[col];
          key_set[kp] = true;
        }
        int pp = var_pos(atom_keep, v);
        if (pp >= 0) {
          if (keep_set[pp] && keep[pp] != fact[col]) ok = false;
          keep[pp] = fact[col];
          keep_set[pp] = true;
        }
        // Repeated variables that are neither key nor kept must still
        // agree across columns.
        for (uint32_t c2 = col + 1; c2 < fact.size() && ok; ++c2) {
          if (atom.terms[c2].is_variable() &&
              atom.terms[c2].variable_id() == v && fact[c2] != fact[col]) {
            ok = false;
          }
        }
      }
      if (ok) build[std::move(key)].insert(std::move(keep));
    }
    if (build.empty()) return {};

    // Probe.
    std::unordered_set<std::vector<ConstantId>, TupleVecHash> next_set;
    std::vector<int> cur_to_next(cur_vars.size());
    for (size_t i = 0; i < cur_vars.size(); ++i) {
      cur_to_next[i] = var_pos(next_vars, cur_vars[i]);
    }
    std::vector<int> keep_to_next(atom_keep.size());
    for (size_t i = 0; i < atom_keep.size(); ++i) {
      keep_to_next[i] = var_pos(next_vars, atom_keep[i]);
    }
    std::vector<int> cur_key_pos(join_vars.size());
    for (size_t i = 0; i < join_vars.size(); ++i) {
      cur_key_pos[i] = var_pos(cur_vars, join_vars[i]);
      WDPT_CHECK(cur_key_pos[i] >= 0);
    }
    uint64_t probes = 0;
    for (const std::vector<ConstantId>& tuple : current) {
      if (cancel.valid() && (++probes & 0xFFF) == 0 && cancel.ShouldStop()) {
        return {};
      }
      std::vector<ConstantId> key(join_vars.size());
      for (size_t i = 0; i < join_vars.size(); ++i) {
        key[i] = tuple[cur_key_pos[i]];
      }
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (const std::vector<ConstantId>& keep : it->second) {
        std::vector<ConstantId> next_tuple(next_vars.size());
        for (size_t i = 0; i < cur_vars.size(); ++i) {
          if (cur_to_next[i] >= 0) next_tuple[cur_to_next[i]] = tuple[i];
        }
        for (size_t i = 0; i < atom_keep.size(); ++i) {
          if (keep_to_next[i] >= 0) next_tuple[keep_to_next[i]] = keep[i];
        }
        next_set.insert(std::move(next_tuple));
      }
    }
    cur_vars = std::move(next_vars);
    current.assign(next_set.begin(), next_set.end());
    if (current.empty()) return {};
  }
  // `current` is over cur_vars == bag_vars (every atom processed and the
  // projection target is exactly the bag).
  WDPT_CHECK(cur_vars == bag_vars);
  return current;
}

// Separates ground atoms (checked directly) from variable atoms.
bool CheckAndStripGroundAtoms(const std::vector<Atom>& atoms,
                              const Database& db,
                              std::vector<Atom>* with_vars) {
  with_vars->clear();
  for (const Atom& a : atoms) {
    if (a.IsGround()) {
      std::vector<ConstantId> tuple;
      tuple.reserve(a.terms.size());
      for (Term t : a.terms) tuple.push_back(t.constant_id());
      if (!db.ContainsFact(a.relation, tuple)) return false;
    } else {
      with_vars->push_back(a);
    }
  }
  return true;
}

// Core of decomposition-based evaluation over pre-translated bags. Bags
// must cover every atom of `atoms` (each atom's variables inside some
// bag). Returns distinct projections of satisfying assignments onto
// `projection` (sorted).
std::vector<Mapping> EvaluateOverBags(
    const std::vector<Atom>& atoms, const Database& db,
    std::vector<std::vector<VariableId>> bag_vars,
    const std::vector<std::vector<uint32_t>>& covers,
    const std::vector<std::pair<uint32_t, uint32_t>>& tree_edges,
    const std::vector<VariableId>& projection, uint64_t max_answers,
    const CancelToken& cancel) {
  const size_t num_bags = bag_vars.size();
  if (num_bags == 0) {
    // All atoms ground (already checked by caller): one empty answer.
    return {Mapping()};
  }

  // Assign every atom to some bag containing its variables.
  std::vector<std::vector<uint32_t>> assigned(num_bags);
  for (uint32_t ai = 0; ai < atoms.size(); ++ai) {
    std::vector<VariableId> avars = atoms[ai].Variables();
    bool placed = false;
    for (uint32_t bi = 0; bi < num_bags && !placed; ++bi) {
      if (SortedIsSubset(avars, bag_vars[bi])) {
        assigned[bi].push_back(ai);
        placed = true;
      }
    }
    WDPT_CHECK(placed);
  }

  // Materialize bags: join of cover atoms + assigned atoms, projected to
  // the bag's variables.
  std::vector<Bag> bags(num_bags);
  for (uint32_t bi = 0; bi < num_bags; ++bi) {
    bags[bi].vars = bag_vars[bi];
    std::vector<Atom> bag_atoms;
    std::vector<uint32_t> atom_ids = covers.empty()
                                         ? std::vector<uint32_t>()
                                         : covers[bi];
    for (uint32_t ai : assigned[bi]) atom_ids.push_back(ai);
    SortUnique(&atom_ids);
    for (uint32_t ai : atom_ids) bag_atoms.push_back(atoms[ai]);
    // Ensure every bag variable is mentioned by some bag atom (a bag may
    // hold interface variables whose atoms were assigned elsewhere, e.g.
    // in decompositions glued from per-node pieces): add the first atom
    // mentioning each uncovered variable.
    {
      std::vector<VariableId> covered = VariablesOf(bag_atoms);
      for (VariableId v : bags[bi].vars) {
        if (SortedContains(covered, v)) continue;
        bool found = false;
        for (const Atom& a : atoms) {
          if (a.Mentions(v)) {
            bag_atoms.push_back(a);
            covered = SortedUnion(covered, a.Variables());
            found = true;
            break;
          }
        }
        WDPT_CHECK(found);  // Safe queries mention every variable.
      }
    }
    WDPT_CHECK(!bag_atoms.empty());
    if (cancel.valid() && cancel.ShouldStop()) return {};
    bags[bi].tuples = JoinAndProject(bag_atoms, db, bags[bi].vars, cancel);
  }

  // Root the tree and run the full reducer (bottom-up then top-down
  // semijoins).
  std::vector<std::vector<uint32_t>> tree_adj(num_bags);
  for (const auto& [a, b] : tree_edges) {
    tree_adj[a].push_back(b);
    tree_adj[b].push_back(a);
  }
  std::vector<uint32_t> parent(num_bags, 0), order;
  {
    std::vector<bool> seen(num_bags, false);
    std::vector<uint32_t> stack = {0};
    seen[0] = true;
    while (!stack.empty()) {
      uint32_t cur = stack.back();
      stack.pop_back();
      order.push_back(cur);
      for (uint32_t next : tree_adj[cur]) {
        if (!seen[next]) {
          seen[next] = true;
          parent[next] = cur;
          stack.push_back(next);
        }
      }
    }
    WDPT_CHECK(order.size() == num_bags);  // Tree edges must connect bags.
  }
  // Bottom-up: parent semijoin child.
  for (size_t i = order.size(); i-- > 1;) {
    uint32_t child = order[i];
    uint32_t par = parent[child];
    std::vector<VariableId> shared =
        SortedIntersection(bags[par].vars, bags[child].vars);
    SemijoinInto(&bags[par], bags[child], shared);
  }
  // Top-down: child semijoin parent.
  for (size_t i = 1; i < order.size(); ++i) {
    uint32_t child = order[i];
    uint32_t par = parent[child];
    std::vector<VariableId> shared =
        SortedIntersection(bags[par].vars, bags[child].vars);
    SemijoinInto(&bags[child], bags[par], shared);
  }
  for (const Bag& bag : bags) {
    if (bag.tuples.empty()) return {};
  }

  // Enumerate: DFS in top-down order with per-bag hash indexes on the
  // variables shared with the parent.
  std::vector<std::vector<VariableId>> shared_with_parent(num_bags);
  std::vector<std::unordered_map<std::vector<ConstantId>,
                                 std::vector<uint32_t>, TupleVecHash>>
      index(num_bags);
  for (size_t i = 1; i < order.size(); ++i) {
    uint32_t child = order[i];
    shared_with_parent[child] =
        SortedIntersection(bags[parent[child]].vars, bags[child].vars);
    for (uint32_t ti = 0; ti < bags[child].tuples.size(); ++ti) {
      index[child][Project(bags[child].vars, bags[child].tuples[ti],
                           shared_with_parent[child])]
          .push_back(ti);
    }
  }

  std::unordered_set<Mapping, MappingHash> seen_answers;
  std::vector<Mapping> answers;
  // Current assignment across bags.
  std::unordered_map<VariableId, ConstantId> assignment;
  bool done = false;

  uint64_t dfs_steps = 0;
  std::function<void(size_t)> dfs = [&](size_t pos) {
    if (done) return;
    if (cancel.valid() && (++dfs_steps & 0xFFF) == 0 && cancel.ShouldStop()) {
      done = true;
      return;
    }
    if (pos == order.size()) {
      std::vector<Mapping::Entry> entries;
      for (VariableId v : projection) {
        auto it = assignment.find(v);
        WDPT_CHECK(it != assignment.end());
        entries.emplace_back(v, it->second);
      }
      Mapping answer(std::move(entries));
      if (seen_answers.insert(answer).second) {
        answers.push_back(std::move(answer));
        if (max_answers != 0 && answers.size() >= max_answers) done = true;
      }
      return;
    }
    uint32_t bi = order[pos];
    const Bag& bag = bags[bi];
    auto try_tuple = [&](uint32_t ti) {
      const std::vector<ConstantId>& tuple = bag.tuples[ti];
      std::vector<VariableId> newly;
      bool ok = true;
      for (size_t i = 0; i < bag.vars.size(); ++i) {
        auto [it, inserted] = assignment.emplace(bag.vars[i], tuple[i]);
        if (inserted) {
          newly.push_back(bag.vars[i]);
        } else if (it->second != tuple[i]) {
          ok = false;
          break;
        }
      }
      if (ok) dfs(pos + 1);
      for (VariableId v : newly) assignment.erase(v);
    };
    if (pos == 0) {
      for (uint32_t ti = 0; ti < bag.tuples.size() && !done; ++ti) {
        try_tuple(ti);
      }
    } else {
      std::vector<ConstantId> key;
      key.reserve(shared_with_parent[bi].size());
      for (VariableId v : shared_with_parent[bi]) {
        key.push_back(assignment.at(v));
      }
      auto it = index[bi].find(key);
      if (it == index[bi].end()) return;
      for (uint32_t ti : it->second) {
        if (done) return;
        try_tuple(ti);
      }
    }
  };
  dfs(0);
  return answers;
}

}  // namespace

std::vector<Mapping> EvaluateWithDecomposition(
    const ConjunctiveQuery& q, const Database& db,
    const HypertreeDecomposition& hd,
    const std::vector<VariableId>& vertex_to_var, uint64_t max_answers,
    const CancelToken& cancel) {
  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(q.atoms, db, &with_vars)) return {};
  // Translate bags from dense vertex ids to variable ids. Covers refer to
  // hyperedge indexes == q.atoms indexes, which we must remap to the
  // ground-stripped list.
  std::vector<std::vector<VariableId>> bag_vars(hd.td.bags.size());
  for (size_t i = 0; i < hd.td.bags.size(); ++i) {
    for (uint32_t v : hd.td.bags[i]) bag_vars[i].push_back(vertex_to_var[v]);
    SortUnique(&bag_vars[i]);
  }
  std::vector<uint32_t> old_to_new(q.atoms.size(), UINT32_MAX);
  {
    uint32_t next = 0;
    for (uint32_t ai = 0; ai < q.atoms.size(); ++ai) {
      if (!q.atoms[ai].IsGround()) old_to_new[ai] = next++;
    }
  }
  std::vector<std::vector<uint32_t>> covers(hd.covers.size());
  for (size_t i = 0; i < hd.covers.size(); ++i) {
    for (uint32_t e : hd.covers[i]) {
      if (old_to_new[e] != UINT32_MAX) covers[i].push_back(old_to_new[e]);
    }
  }
  return EvaluateOverBags(with_vars, db, std::move(bag_vars), covers,
                          hd.td.edges, q.free_vars, max_answers, cancel);
}

std::optional<std::vector<Mapping>> EvaluateAcyclic(const ConjunctiveQuery& q,
                                                    const Database& db,
                                                    uint64_t max_answers,
                                                    const CancelToken& cancel) {
  std::vector<VariableId> vertex_to_var;
  Hypergraph h = q.BuildHypergraph(&vertex_to_var);
  JoinTree jt = GyoJoinTree(h);
  if (!jt.acyclic) return std::nullopt;

  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(q.atoms, db, &with_vars)) {
    return std::vector<Mapping>();
  }

  // Bags: one per non-ground atom; tree edges from the GYO join forest
  // (forest roots chained).
  std::vector<std::vector<VariableId>> bag_vars;
  std::vector<std::vector<uint32_t>> covers;
  std::vector<uint32_t> atom_to_bag(q.atoms.size(), UINT32_MAX);
  for (uint32_t ai = 0; ai < q.atoms.size(); ++ai) {
    if (q.atoms[ai].IsGround()) continue;
    atom_to_bag[ai] = static_cast<uint32_t>(bag_vars.size());
    std::vector<VariableId> vars = q.atoms[ai].Variables();
    bag_vars.push_back(std::move(vars));
    covers.push_back({static_cast<uint32_t>(covers.size())});
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  int last_root = -1;
  for (uint32_t ai = 0; ai < q.atoms.size(); ++ai) {
    if (atom_to_bag[ai] == UINT32_MAX) continue;
    // Walk up the join forest to the nearest non-ground ancestor.
    uint32_t anc = jt.parent[ai];
    while (anc != jt.parent[anc] && atom_to_bag[anc] == UINT32_MAX) {
      anc = jt.parent[anc];
    }
    if (anc != ai && atom_to_bag[anc] != UINT32_MAX &&
        atom_to_bag[anc] != atom_to_bag[ai]) {
      edges.emplace_back(atom_to_bag[ai], atom_to_bag[anc]);
    } else if (jt.parent[ai] == ai || atom_to_bag[anc] == UINT32_MAX ||
               anc == ai) {
      if (last_root >= 0) {
        edges.emplace_back(static_cast<uint32_t>(last_root),
                           atom_to_bag[ai]);
      }
      last_root = static_cast<int>(atom_to_bag[ai]);
    }
  }
  return EvaluateOverBags(with_vars, db, std::move(bag_vars), covers, edges,
                          q.free_vars, max_answers, cancel);
}

bool DecideNonEmpty(const std::vector<Atom>& atoms, const Database& db,
                    const Mapping& seed, const CqEvalOptions& options) {
  if (options.cancel.valid() && options.cancel.ShouldStop()) return false;
  HomSearchLimits hom_limits;
  hom_limits.cancel = options.cancel;
  std::vector<Atom> substituted = SubstituteMapping(atoms, seed);
  ConjunctiveQuery boolean_q;
  boolean_q.atoms = std::move(substituted);

  if (options.strategy == CqEvalStrategy::kBacktracking) {
    std::vector<Atom> with_vars;
    if (!CheckAndStripGroundAtoms(boolean_q.atoms, db, &with_vars)) {
      return false;
    }
    return HomomorphismExists(with_vars, db, Mapping(), hom_limits);
  }

  std::optional<std::vector<Mapping>> acyclic =
      EvaluateAcyclic(boolean_q, db, /*max_answers=*/1, options.cancel);
  if (acyclic.has_value()) return !acyclic->empty();

  std::vector<VariableId> vertex_to_var;
  Hypergraph h = boolean_q.BuildHypergraph(&vertex_to_var);
  if (h.num_vertices <= kMaxExactVertices) {
    for (int k = 2; k <= options.max_auto_width; ++k) {
      std::optional<HypertreeDecomposition> hd =
          FindHypertreeDecomposition(h, k);
      if (hd.has_value()) {
        return !EvaluateWithDecomposition(boolean_q, db, *hd, vertex_to_var,
                                          /*max_answers=*/1, options.cancel)
                    .empty();
      }
    }
  }
  if (options.strategy == CqEvalStrategy::kDecomposition) {
    // Width exceeded the probe bound; use the widest decomposition found
    // via min-fill over the primal graph (still correct, possibly slow).
    Graph primal = h.ToPrimalGraph();
    TreeDecomposition td;
    TreewidthUpperBound(primal, &td);
    HypertreeDecomposition hd;
    hd.td = std::move(td);
    hd.covers.assign(hd.td.bags.size(), {});
    return !EvaluateWithDecomposition(boolean_q, db, hd, vertex_to_var,
                                      /*max_answers=*/1, options.cancel)
                .empty();
  }
  // kAuto fallback.
  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(boolean_q.atoms, db, &with_vars)) {
    return false;
  }
  return HomomorphismExists(with_vars, db, Mapping(), hom_limits);
}

bool CqEval(const ConjunctiveQuery& q, const Database& db, const Mapping& h,
            const CqEvalOptions& options) {
  // Answers are defined exactly on the free variables.
  if (h.Domain() != q.free_vars) return false;
  return DecideNonEmpty(q.atoms, db, h, options);
}

std::vector<Mapping> EvaluateCq(const ConjunctiveQuery& q, const Database& db,
                                const CqEvalOptions& options) {
  WDPT_CHECK(q.IsSafe());
  if (options.strategy != CqEvalStrategy::kBacktracking) {
    std::optional<std::vector<Mapping>> acyclic =
        EvaluateAcyclic(q, db, options.max_answers, options.cancel);
    if (acyclic.has_value()) return std::move(*acyclic);
    std::vector<VariableId> vertex_to_var;
    Hypergraph hypergraph = q.BuildHypergraph(&vertex_to_var);
    if (hypergraph.num_vertices <= kMaxExactVertices) {
      for (int k = 2; k <= options.max_auto_width; ++k) {
        std::optional<HypertreeDecomposition> hd =
            FindHypertreeDecomposition(hypergraph, k);
        if (hd.has_value()) {
          return EvaluateWithDecomposition(q, db, *hd, vertex_to_var,
                                           options.max_answers,
                                           options.cancel);
        }
      }
    }
  }
  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(q.atoms, db, &with_vars)) return {};
  if (with_vars.empty()) return {Mapping()};
  HomSearchLimits hom_limits;
  hom_limits.cancel = options.cancel;
  return AllHomomorphismProjections(with_vars, db, Mapping(), q.free_vars,
                                    options.max_answers, hom_limits);
}

}  // namespace wdpt
