#include "src/cq/evaluation.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/common/arena.h"
#include "src/common/flat_table.h"
#include "src/common/hash.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/cq/homomorphism.h"
#include "src/hypergraph/gyo.h"
#include "src/hypergraph/treewidth.h"

namespace wdpt {

namespace {

// Position of v in the sorted variable list, or -1.
int VarPos(const std::vector<VariableId>& vars, VariableId v) {
  auto it = std::lower_bound(vars.begin(), vars.end(), v);
  return (it != vars.end() && *it == v) ? static_cast<int>(it - vars.begin())
                                        : -1;
}

// ---------------------------------------------------------------------------
// Flat kernel (CqKernel::kFlat)
//
// The same Yannakakis pipeline as the legacy kernel below — materialize
// bags by hash join with projection pushdown, semijoin-reduce along the
// tree, enumerate — but tuples live in flat row-major arrays, hash state
// lives in open-addressing FlatTupleSet/Map scratch (src/common/
// flat_table.h) whose wide keys spill into one reusable Arena, and the
// join order inside a bag is driven by the CSR column statistics. In
// steady state an evaluation allocates nothing per tuple: all scratch is
// thread-local and Init() only clears it.
// ---------------------------------------------------------------------------

// A materialized bag in flat form. `num_tuples` is tracked separately so
// zero-arity bags (no variables) can still hold "one empty tuple".
struct FlatBag {
  std::vector<VariableId> vars;  // Sorted.
  uint32_t arity = 0;            // == vars.size().
  std::vector<ConstantId> tuples;  // Row-major, num_tuples * arity.
  uint32_t num_tuples = 0;

  const ConstantId* Row(uint32_t i) const {
    return tuples.data() + static_cast<size_t>(i) * arity;
  }
};

// Thread-local scratch for one evaluation: the arena plus every hash
// table and buffer the pipeline needs. Re-entrant callers (a second
// evaluation started while one is running on this thread) fall back to a
// heap-allocated scratch via ScratchLease.
struct CqScratch {
  Arena arena;
  FlatTupleMap<uint32_t> key_map;  // Build side: join key -> chain head.
  FlatTupleSet pair_set;           // Dedup of (key, keep) build pairs.
  FlatTupleSet next_set;           // Probe output dedup.
  FlatTupleSet semi_set;           // Semijoin key membership.
  FlatTupleSet answer_set;         // Final answer dedup.
  std::vector<ConstantId> keep_pool;   // Flat keep tuples (build chains).
  std::vector<uint32_t> chain_next;    // Per keep tuple: next in chain.
  std::vector<ConstantId> buf;         // Key/tuple assembly buffer.
  std::vector<uint32_t> rows;          // Galloped row candidates.
  // Per-bag enumeration indexes (persist across the whole enumeration,
  // so they get their own pool instead of reusing the tables above).
  std::vector<std::unique_ptr<FlatTupleMap<uint32_t>>> enum_maps;
  bool busy = false;
};

CqScratch* TlsScratch() {
  static thread_local CqScratch scratch;
  return &scratch;
}

// Leases the thread-local scratch, or a private heap one if the
// thread-local is already held by an outer evaluation on this thread.
// Resets the arena (publishing its high-water mark) on release.
class ScratchLease {
 public:
  ScratchLease() {
    CqScratch* tls = TlsScratch();
    if (!tls->busy) {
      tls->busy = true;
      scratch_ = tls;
    } else {
      owned_ = std::make_unique<CqScratch>();
      scratch_ = owned_.get();
    }
  }
  ~ScratchLease() {
    scratch_->arena.Reset();
    if (owned_ == nullptr) scratch_->busy = false;
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  CqScratch* operator->() { return scratch_; }
  CqScratch& operator*() { return *scratch_; }

 private:
  CqScratch* scratch_;
  std::unique_ptr<CqScratch> owned_;
};

// Local CSR-probe/gallop tallies, flushed to the global counters once
// per evaluation (see src/common/metrics.h).
struct KernelCounters {
  uint64_t probes = 0;
  uint64_t gallops = 0;

  ~KernelCounters() {
    if (probes != 0) {
      metrics::CsrProbes().fetch_add(probes, std::memory_order_relaxed);
    }
    if (gallops != 0) {
      metrics::GallopIntersections().fetch_add(gallops,
                                               std::memory_order_relaxed);
    }
  }
};

// Estimated result rows of matching `atom` once the variables in
// `bound` (sorted) are fixed: relation size scaled by 1/distinct for
// every constant or bound-variable column (independence assumption).
double EstimatedAtomFanOut(const Atom& atom, const Database& db,
                           const std::vector<VariableId>& bound) {
  const Relation& rel = db.relation(atom.relation);
  if (rel.size() == 0) return 0.0;
  double est = static_cast<double>(rel.size());
  for (uint32_t col = 0; col < atom.terms.size(); ++col) {
    Term t = atom.terms[col];
    if (t.is_variable() && !SortedContains(bound, t.variable_id())) continue;
    uint32_t distinct = rel.column_stats(col).distinct_values;
    if (distinct > 1) est /= static_cast<double>(distinct);
  }
  return est;
}

// Statistics-driven join order: maximize variables shared with what is
// already joined (to stay connected and keep intermediates narrow),
// tie-break on the smaller estimated fan-out from the CSR statistics.
std::vector<uint32_t> StatsAtomOrder(const std::vector<Atom>& atoms,
                                     const Database& db) {
  std::vector<uint32_t> order;
  std::vector<bool> used(atoms.size(), false);
  std::vector<VariableId> bound;
  for (size_t step = 0; step < atoms.size(); ++step) {
    size_t best = atoms.size();
    int best_shared = -1;
    double best_est = 0.0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      int shared = static_cast<int>(
          SortedIntersection(atoms[i].Variables(), bound).size());
      double est = EstimatedAtomFanOut(atoms[i], db, bound);
      if (best == atoms.size() || shared > best_shared ||
          (shared == best_shared && est < best_est)) {
        best_shared = shared;
        best_est = est;
        best = i;
      }
    }
    used[best] = true;
    order.push_back(static_cast<uint32_t>(best));
    bound = SortedUnion(bound, atoms[best].Variables());
  }
  return order;
}

// Materializes the distinct projections onto `bag_vars` of the join of
// `atoms` into `out` (whose vars must be pre-set to bag_vars). Flat
// pipeline: statistics-ordered build/probe hash joins with projection
// pushdown; the build side scans only CSR posting lists when the atom
// has constant columns. Returns false on cancellation (out is invalid).
bool JoinAndProjectFlat(const std::vector<Atom>& atoms, const Database& db,
                        const std::vector<VariableId>& bag_vars,
                        const CancelToken& cancel, CqScratch* scratch,
                        KernelCounters* counters, FlatBag* out) {
  std::vector<uint32_t> order = StatsAtomOrder(atoms, db);

  // Current intermediate relation over cur_vars: starts as the nullary
  // "one empty tuple".
  std::vector<VariableId> cur_vars;
  std::vector<ConstantId> cur;
  uint32_t cur_count = 1;
  uint32_t cur_arity = 0;

  for (size_t step = 0; step < order.size(); ++step) {
    if (cancel.valid() && cancel.ShouldStop()) return false;
    const Atom& atom = atoms[order[step]];
    std::vector<VariableId> atom_vars = atom.Variables();
    // Variables needed after this step.
    std::vector<VariableId> needed = bag_vars;
    for (size_t later = step + 1; later < order.size(); ++later) {
      needed = SortedUnion(needed, atoms[order[later]].Variables());
    }
    std::vector<VariableId> next_vars =
        SortedIntersection(SortedUnion(cur_vars, atom_vars), needed);
    std::vector<VariableId> join_vars =
        SortedIntersection(atom_vars, cur_vars);
    // What the atom contributes beyond the join key.
    std::vector<VariableId> atom_keep =
        SortedIntersection(SortedDifference(atom_vars, join_vars), needed);

    const Relation& rel = db.relation(atom.relation);
    if (rel.size() == 0) {
      out->num_tuples = 0;
      out->tuples.clear();
      return true;
    }
    WDPT_CHECK(rel.arity() == atom.terms.size());

    const uint32_t key_arity = static_cast<uint32_t>(join_vars.size());
    const uint32_t keep_arity = static_cast<uint32_t>(atom_keep.size());
    const uint32_t next_arity = static_cast<uint32_t>(next_vars.size());

    // Per-column plan: constant value or variable's key/keep slots, plus
    // the first column holding the same variable (repeated-variable
    // consistency is checked against that column).
    struct ColPlan {
      bool is_const;
      ConstantId const_val;
      int key_pos;
      int keep_pos;
      uint32_t first_col;
    };
    std::vector<ColPlan> plan(atom.terms.size());
    for (uint32_t col = 0; col < atom.terms.size(); ++col) {
      Term t = atom.terms[col];
      ColPlan& p = plan[col];
      if (t.is_constant()) {
        p = {true, t.constant_id(), -1, -1, col};
        continue;
      }
      VariableId v = t.variable_id();
      p.is_const = false;
      p.const_val = 0;
      p.key_pos = VarPos(join_vars, v);
      p.keep_pos = VarPos(atom_keep, v);
      p.first_col = col;
      for (uint32_t c = 0; c < col; ++c) {
        if (atom.terms[c].is_variable() &&
            atom.terms[c].variable_id() == v) {
          p.first_col = c;
          break;
        }
      }
    }

    // Access path for the build scan: constant columns narrow the scan
    // to their CSR posting lists; two or more gallop-intersect the two
    // shortest (every column is re-checked below, so a superset is fine).
    std::span<const uint32_t> first, second;
    int num_const = 0;
    for (uint32_t col = 0; col < atom.terms.size(); ++col) {
      if (!plan[col].is_const) continue;
      ++counters->probes;
      std::span<const uint32_t> list =
          rel.RowsMatching(col, plan[col].const_val);
      ++num_const;
      if (num_const == 1 || list.size() < first.size()) {
        second = first;
        first = list;
      } else if (num_const == 2 || list.size() < second.size()) {
        second = list;
      }
    }
    if (num_const >= 2 && !first.empty()) {
      ++counters->gallops;
      scratch->rows.clear();
      GallopIntersect(first, second, &scratch->rows);
      first = scratch->rows;
    }

    // Build: key -> chain of distinct keep projections. Chains thread
    // through chain_next into keep_pool rows; pair_set dedups the
    // (key, keep) combination.
    scratch->key_map.Init(key_arity, &scratch->arena);
    scratch->pair_set.Init(key_arity + keep_arity, &scratch->arena);
    scratch->keep_pool.clear();
    scratch->chain_next.clear();
    scratch->buf.resize(static_cast<size_t>(key_arity) + keep_arity);
    ConstantId* key_buf = scratch->buf.data();
    ConstantId* keep_buf = scratch->buf.data() + key_arity;
    constexpr uint32_t kNoChain = UINT32_MAX;

    auto build_row = [&](uint32_t row) {
      std::span<const ConstantId> fact = rel.Tuple(row);
      for (uint32_t col = 0; col < fact.size(); ++col) {
        const ColPlan& p = plan[col];
        if (p.is_const) {
          if (p.const_val != fact[col]) return;
          continue;
        }
        if (p.first_col != col) {
          if (fact[p.first_col] != fact[col]) return;
          continue;
        }
        if (p.key_pos >= 0) key_buf[p.key_pos] = fact[col];
        if (p.keep_pos >= 0) keep_buf[p.keep_pos] = fact[col];
      }
      bool inserted = false;
      scratch->pair_set.InsertOrFind(scratch->buf.data(), &inserted);
      if (!inserted) return;
      uint32_t& head = scratch->key_map.InsertOrFind(key_buf, kNoChain);
      uint32_t idx = static_cast<uint32_t>(scratch->chain_next.size());
      scratch->keep_pool.insert(scratch->keep_pool.end(), keep_buf,
                                keep_buf + keep_arity);
      scratch->chain_next.push_back(head);
      head = idx;
    };
    if (num_const > 0) {
      for (uint32_t row : first) build_row(row);
    } else {
      for (uint32_t row = 0; row < rel.size(); ++row) build_row(row);
    }
    if (scratch->key_map.size() == 0) {
      out->num_tuples = 0;
      out->tuples.clear();
      return true;
    }

    // Probe the current intermediate against the build table.
    scratch->next_set.Init(next_arity, &scratch->arena);
    std::vector<int> cur_to_next(cur_vars.size());
    for (size_t i = 0; i < cur_vars.size(); ++i) {
      cur_to_next[i] = VarPos(next_vars, cur_vars[i]);
    }
    std::vector<int> keep_to_next(atom_keep.size());
    for (size_t i = 0; i < atom_keep.size(); ++i) {
      keep_to_next[i] = VarPos(next_vars, atom_keep[i]);
    }
    std::vector<int> cur_key_pos(join_vars.size());
    for (size_t i = 0; i < join_vars.size(); ++i) {
      cur_key_pos[i] = VarPos(cur_vars, join_vars[i]);
      WDPT_CHECK(cur_key_pos[i] >= 0);
    }
    std::vector<ConstantId> probe_buf(
        static_cast<size_t>(key_arity) + next_arity);
    ConstantId* probe_key = probe_buf.data();
    ConstantId* next_buf = probe_buf.data() + key_arity;
    uint64_t probes = 0;
    for (uint32_t ti = 0; ti < cur_count; ++ti) {
      if (cancel.valid() && (++probes & 0xFFF) == 0 && cancel.ShouldStop()) {
        return false;
      }
      const ConstantId* tuple =
          cur.data() + static_cast<size_t>(ti) * cur_arity;
      for (size_t i = 0; i < join_vars.size(); ++i) {
        probe_key[i] = tuple[cur_key_pos[i]];
      }
      const uint32_t* head = scratch->key_map.Find(probe_key);
      if (head == nullptr) continue;
      for (size_t i = 0; i < cur_vars.size(); ++i) {
        if (cur_to_next[i] >= 0) next_buf[cur_to_next[i]] = tuple[i];
      }
      for (uint32_t idx = *head; idx != kNoChain;
           idx = scratch->chain_next[idx]) {
        const ConstantId* keep =
            scratch->keep_pool.data() + static_cast<size_t>(idx) * keep_arity;
        for (size_t i = 0; i < atom_keep.size(); ++i) {
          if (keep_to_next[i] >= 0) next_buf[keep_to_next[i]] = keep[i];
        }
        scratch->next_set.InsertOrFind(next_buf);
      }
    }

    cur_vars = std::move(next_vars);
    cur_arity = next_arity;
    cur_count = scratch->next_set.size();
    cur.clear();
    scratch->next_set.AppendAll(&cur);
    // Everything the step spilled to the arena is dead now: the
    // intermediate was copied out of next_set into a plain vector.
    scratch->arena.Reset();
    if (cur_count == 0) {
      out->num_tuples = 0;
      out->tuples.clear();
      return true;
    }
  }
  WDPT_CHECK(cur_vars == bag_vars);
  out->arity = static_cast<uint32_t>(bag_vars.size());
  out->tuples = std::move(cur);
  out->num_tuples = cur_count;
  return true;
}

// Semijoin: keep a's tuples whose projection onto `shared` appears among
// b's projections onto `shared`. In-place compaction; the membership set
// lives in scratch and the arena is reset afterwards.
void SemijoinFlat(FlatBag* a, const FlatBag& b,
                  const std::vector<VariableId>& shared, CqScratch* scratch) {
  metrics::Bump(metrics::SemijoinPasses());
  if (shared.empty()) {
    if (b.num_tuples == 0) {
      a->num_tuples = 0;
      a->tuples.clear();
    }
    return;
  }
  const uint32_t arity = static_cast<uint32_t>(shared.size());
  std::vector<int> b_pos(arity), a_pos(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    b_pos[i] = VarPos(b.vars, shared[i]);
    a_pos[i] = VarPos(a->vars, shared[i]);
    WDPT_DCHECK(b_pos[i] >= 0 && a_pos[i] >= 0);
  }
  scratch->semi_set.Init(arity, &scratch->arena);
  scratch->buf.resize(arity);
  ConstantId* buf = scratch->buf.data();
  for (uint32_t ti = 0; ti < b.num_tuples; ++ti) {
    const ConstantId* row = b.Row(ti);
    for (uint32_t i = 0; i < arity; ++i) buf[i] = row[b_pos[i]];
    scratch->semi_set.InsertOrFind(buf);
  }
  uint32_t kept = 0;
  for (uint32_t ti = 0; ti < a->num_tuples; ++ti) {
    const ConstantId* row = a->Row(ti);
    for (uint32_t i = 0; i < arity; ++i) buf[i] = row[a_pos[i]];
    if (scratch->semi_set.Find(buf) == FlatTupleSet::kNoId) continue;
    if (kept != ti) {
      std::copy(row, row + a->arity,
                a->tuples.data() + static_cast<size_t>(kept) * a->arity);
    }
    ++kept;
  }
  a->num_tuples = kept;
  a->tuples.resize(static_cast<size_t>(kept) * a->arity);
  scratch->arena.Reset();
}

// Flat-kernel core: see EvaluateOverBags below for the contract.
std::vector<Mapping> EvaluateOverBagsFlat(
    const std::vector<Atom>& atoms, const Database& db,
    const std::vector<std::vector<VariableId>>& bag_vars,
    const std::vector<std::vector<uint32_t>>& covers,
    const std::vector<std::pair<uint32_t, uint32_t>>& tree_edges,
    const std::vector<VariableId>& projection, uint64_t max_answers,
    const CancelToken& cancel) {
  const size_t num_bags = bag_vars.size();
  ScratchLease scratch;
  KernelCounters counters;

  // Assign every atom to some bag containing its variables.
  std::vector<std::vector<uint32_t>> assigned(num_bags);
  for (uint32_t ai = 0; ai < atoms.size(); ++ai) {
    std::vector<VariableId> avars = atoms[ai].Variables();
    bool placed = false;
    for (uint32_t bi = 0; bi < num_bags && !placed; ++bi) {
      if (SortedIsSubset(avars, bag_vars[bi])) {
        assigned[bi].push_back(ai);
        placed = true;
      }
    }
    WDPT_CHECK(placed);
  }

  // Materialize bags: join of cover atoms + assigned atoms, projected to
  // the bag's variables.
  std::vector<FlatBag> bags(num_bags);
  for (uint32_t bi = 0; bi < num_bags; ++bi) {
    bags[bi].vars = bag_vars[bi];
    bags[bi].arity = static_cast<uint32_t>(bag_vars[bi].size());
    std::vector<Atom> bag_atoms;
    std::vector<uint32_t> atom_ids =
        covers.empty() ? std::vector<uint32_t>() : covers[bi];
    for (uint32_t ai : assigned[bi]) atom_ids.push_back(ai);
    SortUnique(&atom_ids);
    for (uint32_t ai : atom_ids) bag_atoms.push_back(atoms[ai]);
    // Ensure every bag variable is mentioned by some bag atom (a bag may
    // hold interface variables whose atoms were assigned elsewhere, e.g.
    // in decompositions glued from per-node pieces): add the first atom
    // mentioning each uncovered variable.
    {
      std::vector<VariableId> covered = VariablesOf(bag_atoms);
      for (VariableId v : bags[bi].vars) {
        if (SortedContains(covered, v)) continue;
        bool found = false;
        for (const Atom& a : atoms) {
          if (a.Mentions(v)) {
            bag_atoms.push_back(a);
            covered = SortedUnion(covered, a.Variables());
            found = true;
            break;
          }
        }
        WDPT_CHECK(found);  // Safe queries mention every variable.
      }
    }
    WDPT_CHECK(!bag_atoms.empty());
    if (cancel.valid() && cancel.ShouldStop()) return {};
    if (!JoinAndProjectFlat(bag_atoms, db, bags[bi].vars, cancel, &*scratch,
                            &counters, &bags[bi])) {
      return {};
    }
  }

  // Root the tree and run the full reducer (bottom-up then top-down
  // semijoins).
  std::vector<std::vector<uint32_t>> tree_adj(num_bags);
  for (const auto& [a, b] : tree_edges) {
    tree_adj[a].push_back(b);
    tree_adj[b].push_back(a);
  }
  std::vector<uint32_t> parent(num_bags, 0), order;
  {
    std::vector<bool> seen(num_bags, false);
    std::vector<uint32_t> stack = {0};
    seen[0] = true;
    while (!stack.empty()) {
      uint32_t cur = stack.back();
      stack.pop_back();
      order.push_back(cur);
      for (uint32_t next : tree_adj[cur]) {
        if (!seen[next]) {
          seen[next] = true;
          parent[next] = cur;
          stack.push_back(next);
        }
      }
    }
    WDPT_CHECK(order.size() == num_bags);  // Tree edges must connect bags.
  }
  // Bottom-up: parent semijoin child.
  for (size_t i = order.size(); i-- > 1;) {
    uint32_t child = order[i];
    uint32_t par = parent[child];
    std::vector<VariableId> shared =
        SortedIntersection(bags[par].vars, bags[child].vars);
    SemijoinFlat(&bags[par], bags[child], shared, &*scratch);
  }
  // Top-down: child semijoin parent.
  for (size_t i = 1; i < order.size(); ++i) {
    uint32_t child = order[i];
    uint32_t par = parent[child];
    std::vector<VariableId> shared =
        SortedIntersection(bags[par].vars, bags[child].vars);
    SemijoinFlat(&bags[child], bags[par], shared, &*scratch);
  }
  for (const FlatBag& bag : bags) {
    if (bag.num_tuples == 0) return {};
  }

  // Enumerate: DFS in top-down order with per-bag hash indexes on the
  // variables shared with the parent. The indexes (and the answer-dedup
  // set) stay live until the DFS completes, so the arena is not reset
  // again until the lease releases.
  std::vector<std::vector<VariableId>> shared_with_parent(num_bags);
  std::vector<std::vector<int>> shared_pos(num_bags);
  std::vector<std::vector<uint32_t>> enum_next(num_bags);
  while (scratch->enum_maps.size() < num_bags) {
    scratch->enum_maps.push_back(std::make_unique<FlatTupleMap<uint32_t>>());
  }
  constexpr uint32_t kNoChain = UINT32_MAX;
  for (size_t i = 1; i < order.size(); ++i) {
    uint32_t child = order[i];
    const FlatBag& bag = bags[child];
    shared_with_parent[child] =
        SortedIntersection(bags[parent[child]].vars, bag.vars);
    const std::vector<VariableId>& shared = shared_with_parent[child];
    shared_pos[child].resize(shared.size());
    for (size_t s = 0; s < shared.size(); ++s) {
      shared_pos[child][s] = VarPos(bag.vars, shared[s]);
    }
    FlatTupleMap<uint32_t>& index = *scratch->enum_maps[child];
    index.Init(static_cast<uint32_t>(shared.size()), &scratch->arena);
    enum_next[child].assign(bag.num_tuples, kNoChain);
    scratch->buf.resize(std::max<size_t>(scratch->buf.size(), shared.size()));
    // Insert in reverse so the per-key chains iterate ascending.
    for (uint32_t ti = bag.num_tuples; ti-- > 0;) {
      const ConstantId* row = bag.Row(ti);
      for (size_t s = 0; s < shared.size(); ++s) {
        scratch->buf[s] = row[shared_pos[child][s]];
      }
      uint32_t& head = index.InsertOrFind(scratch->buf.data(), kNoChain);
      enum_next[child][ti] = head;
      head = ti;
    }
  }

  // Dense assignment over all variables seen in bags or the projection.
  constexpr uint64_t kUnbound = UINT64_MAX;
  uint32_t max_var = 0;
  for (const FlatBag& bag : bags) {
    for (VariableId v : bag.vars) max_var = std::max(max_var, v);
  }
  for (VariableId v : projection) max_var = std::max(max_var, v);
  std::vector<uint64_t> assignment(static_cast<size_t>(max_var) + 1,
                                   kUnbound);
  std::vector<std::vector<VariableId>> newly(num_bags);

  scratch->answer_set.Init(static_cast<uint32_t>(projection.size()),
                           &scratch->arena);
  std::vector<ConstantId> answer_buf(projection.size());
  std::vector<Mapping> answers;
  bool done = false;

  uint64_t dfs_steps = 0;
  std::function<void(size_t)> dfs = [&](size_t pos) {
    if (done) return;
    if (cancel.valid() && (++dfs_steps & 0xFFF) == 0 && cancel.ShouldStop()) {
      done = true;
      return;
    }
    if (pos == order.size()) {
      for (size_t i = 0; i < projection.size(); ++i) {
        WDPT_CHECK(assignment[projection[i]] != kUnbound);
        answer_buf[i] = static_cast<ConstantId>(assignment[projection[i]]);
      }
      bool inserted = false;
      scratch->answer_set.InsertOrFind(answer_buf.data(), &inserted);
      if (inserted) {
        std::vector<Mapping::Entry> entries;
        entries.reserve(projection.size());
        for (size_t i = 0; i < projection.size(); ++i) {
          entries.emplace_back(projection[i], answer_buf[i]);
        }
        answers.emplace_back(std::move(entries));
        if (max_answers != 0 && answers.size() >= max_answers) done = true;
      }
      return;
    }
    uint32_t bi = order[pos];
    const FlatBag& bag = bags[bi];
    auto try_tuple = [&](uint32_t ti) {
      const ConstantId* tuple = bag.Row(ti);
      std::vector<VariableId>& bound_here = newly[pos];
      bound_here.clear();
      bool ok = true;
      for (uint32_t i = 0; i < bag.arity; ++i) {
        uint64_t& slot = assignment[bag.vars[i]];
        if (slot == kUnbound) {
          slot = tuple[i];
          bound_here.push_back(bag.vars[i]);
        } else if (slot != tuple[i]) {
          ok = false;
          break;
        }
      }
      if (ok) dfs(pos + 1);
      for (VariableId v : bound_here) assignment[v] = kUnbound;
    };
    if (pos == 0) {
      for (uint32_t ti = 0; ti < bag.num_tuples && !done; ++ti) {
        try_tuple(ti);
      }
    } else {
      const std::vector<VariableId>& shared = shared_with_parent[bi];
      scratch->buf.resize(
          std::max<size_t>(scratch->buf.size(), shared.size()));
      for (size_t s = 0; s < shared.size(); ++s) {
        WDPT_DCHECK(assignment[shared[s]] != kUnbound);
        scratch->buf[s] = static_cast<ConstantId>(assignment[shared[s]]);
      }
      const uint32_t* head = scratch->enum_maps[bi]->Find(scratch->buf.data());
      if (head == nullptr) return;
      for (uint32_t ti = *head; ti != kNoChain; ti = enum_next[bi][ti]) {
        if (done) return;
        try_tuple(ti);
      }
    }
  };
  dfs(0);
  return answers;
}

// ---------------------------------------------------------------------------
// Legacy kernel (CqKernel::kLegacy)
//
// The pre-columnar implementation, kept verbatim as an in-process oracle:
// tests/kernel_test.cpp diffs its answer sets against the flat kernel's,
// and bench/bench_kernel.cpp measures the flat kernel's speedup over it.
// ---------------------------------------------------------------------------

// A materialized bag: variable list (sorted) and tuple set.
struct Bag {
  std::vector<VariableId> vars;
  std::vector<std::vector<ConstantId>> tuples;
};

size_t TupleHash(const std::vector<ConstantId>& t) {
  size_t seed = t.size();
  for (ConstantId c : t) HashCombine(&seed, c);
  return seed;
}

struct TupleVecHash {
  size_t operator()(const std::vector<ConstantId>& t) const {
    return TupleHash(t);
  }
};

// Projects `tuple` (aligned with `vars`) onto `onto` (subset of vars).
std::vector<ConstantId> Project(const std::vector<VariableId>& vars,
                                const std::vector<ConstantId>& tuple,
                                const std::vector<VariableId>& onto) {
  std::vector<ConstantId> out;
  out.reserve(onto.size());
  for (VariableId v : onto) {
    auto it = std::lower_bound(vars.begin(), vars.end(), v);
    WDPT_DCHECK(it != vars.end() && *it == v);
    out.push_back(tuple[static_cast<size_t>(it - vars.begin())]);
  }
  return out;
}

// Semijoin: keep a's tuples whose projection onto `shared` appears among
// b's projections onto `shared`.
void SemijoinInto(Bag* a, const Bag& b,
                  const std::vector<VariableId>& shared) {
  metrics::Bump(metrics::SemijoinPasses());
  if (shared.empty()) {
    if (b.tuples.empty()) a->tuples.clear();
    return;
  }
  std::unordered_set<std::vector<ConstantId>, TupleVecHash> keys;
  for (const std::vector<ConstantId>& t : b.tuples) {
    keys.insert(Project(b.vars, t, shared));
  }
  std::vector<std::vector<ConstantId>> kept;
  for (std::vector<ConstantId>& t : a->tuples) {
    if (keys.contains(Project(a->vars, t, shared))) {
      kept.push_back(std::move(t));
    }
  }
  a->tuples = std::move(kept);
}

// Materializes the distinct projections onto `bag_vars` of the join of
// `atoms`, via iterative build/probe hash joins with projection
// pushdown: after each atom, variables needed neither by the bag nor by
// a remaining atom are projected away and duplicates collapse. Work per
// step is O(|relation| + |output|) rather than backtracking over the
// full join, so non-adjacent cover atoms cost their projected sizes,
// not a cross product.
std::vector<std::vector<ConstantId>> JoinAndProject(
    const std::vector<Atom>& atoms, const Database& db,
    const std::vector<VariableId>& bag_vars, const CancelToken& cancel) {
  // Greedy atom order: prefer atoms sharing variables with what is
  // already joined.
  std::vector<uint32_t> order;
  std::vector<bool> used(atoms.size(), false);
  std::vector<VariableId> bound;
  for (size_t step = 0; step < atoms.size(); ++step) {
    size_t best = atoms.size();
    int best_shared = -1;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      int shared = static_cast<int>(
          SortedIntersection(atoms[i].Variables(), bound).size());
      if (shared > best_shared) {
        best_shared = shared;
        best = i;
      }
    }
    used[best] = true;
    order.push_back(static_cast<uint32_t>(best));
    bound = SortedUnion(bound, atoms[best].Variables());
  }

  auto var_pos = [](const std::vector<VariableId>& vars, VariableId v) {
    auto it = std::lower_bound(vars.begin(), vars.end(), v);
    return (it != vars.end() && *it == v)
               ? static_cast<int>(it - vars.begin())
               : -1;
  };

  // Current intermediate relation: tuples over `cur_vars` (sorted).
  std::vector<VariableId> cur_vars;
  std::vector<std::vector<ConstantId>> current = {{}};
  for (size_t step = 0; step < order.size(); ++step) {
    if (cancel.valid() && cancel.ShouldStop()) return {};
    const Atom& atom = atoms[order[step]];
    std::vector<VariableId> atom_vars = atom.Variables();
    // Variables needed after this step.
    std::vector<VariableId> needed = bag_vars;
    for (size_t later = step + 1; later < order.size(); ++later) {
      needed = SortedUnion(needed, atoms[order[later]].Variables());
    }
    std::vector<VariableId> next_vars =
        SortedIntersection(SortedUnion(cur_vars, atom_vars), needed);
    std::vector<VariableId> join_vars =
        SortedIntersection(atom_vars, cur_vars);
    // What the atom contributes beyond the join key.
    std::vector<VariableId> atom_keep =
        SortedIntersection(SortedDifference(atom_vars, join_vars), needed);

    const Relation& rel = db.relation(atom.relation);
    if (rel.size() == 0) return {};
    WDPT_CHECK(rel.arity() == atom.terms.size());

    // Build: key (join_vars values) -> distinct atom_keep projections.
    std::unordered_map<std::vector<ConstantId>,
                       std::unordered_set<std::vector<ConstantId>,
                                          TupleVecHash>,
                       TupleVecHash>
        build;
    for (uint32_t row = 0; row < rel.size(); ++row) {
      std::span<const ConstantId> fact = rel.Tuple(row);
      // Derive the atom-local assignment; reject constant or repeated-
      // variable mismatches.
      bool ok = true;
      std::vector<ConstantId> key(join_vars.size());
      std::vector<ConstantId> keep(atom_keep.size());
      std::vector<bool> key_set(join_vars.size(), false);
      std::vector<bool> keep_set(atom_keep.size(), false);
      for (uint32_t col = 0; col < fact.size() && ok; ++col) {
        Term t = atom.terms[col];
        if (t.is_constant()) {
          ok = t.constant_id() == fact[col];
          continue;
        }
        VariableId v = t.variable_id();
        int kp = var_pos(join_vars, v);
        if (kp >= 0) {
          if (key_set[kp] && key[kp] != fact[col]) ok = false;
          key[kp] = fact[col];
          key_set[kp] = true;
        }
        int pp = var_pos(atom_keep, v);
        if (pp >= 0) {
          if (keep_set[pp] && keep[pp] != fact[col]) ok = false;
          keep[pp] = fact[col];
          keep_set[pp] = true;
        }
        // Repeated variables that are neither key nor kept must still
        // agree across columns.
        for (uint32_t c2 = col + 1; c2 < fact.size() && ok; ++c2) {
          if (atom.terms[c2].is_variable() &&
              atom.terms[c2].variable_id() == v && fact[c2] != fact[col]) {
            ok = false;
          }
        }
      }
      if (ok) build[std::move(key)].insert(std::move(keep));
    }
    if (build.empty()) return {};

    // Probe.
    std::unordered_set<std::vector<ConstantId>, TupleVecHash> next_set;
    std::vector<int> cur_to_next(cur_vars.size());
    for (size_t i = 0; i < cur_vars.size(); ++i) {
      cur_to_next[i] = var_pos(next_vars, cur_vars[i]);
    }
    std::vector<int> keep_to_next(atom_keep.size());
    for (size_t i = 0; i < atom_keep.size(); ++i) {
      keep_to_next[i] = var_pos(next_vars, atom_keep[i]);
    }
    std::vector<int> cur_key_pos(join_vars.size());
    for (size_t i = 0; i < join_vars.size(); ++i) {
      cur_key_pos[i] = var_pos(cur_vars, join_vars[i]);
      WDPT_CHECK(cur_key_pos[i] >= 0);
    }
    uint64_t probes = 0;
    for (const std::vector<ConstantId>& tuple : current) {
      if (cancel.valid() && (++probes & 0xFFF) == 0 && cancel.ShouldStop()) {
        return {};
      }
      std::vector<ConstantId> key(join_vars.size());
      for (size_t i = 0; i < join_vars.size(); ++i) {
        key[i] = tuple[cur_key_pos[i]];
      }
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (const std::vector<ConstantId>& keep : it->second) {
        std::vector<ConstantId> next_tuple(next_vars.size());
        for (size_t i = 0; i < cur_vars.size(); ++i) {
          if (cur_to_next[i] >= 0) next_tuple[cur_to_next[i]] = tuple[i];
        }
        for (size_t i = 0; i < atom_keep.size(); ++i) {
          if (keep_to_next[i] >= 0) next_tuple[keep_to_next[i]] = keep[i];
        }
        next_set.insert(std::move(next_tuple));
      }
    }
    cur_vars = std::move(next_vars);
    current.assign(next_set.begin(), next_set.end());
    if (current.empty()) return {};
  }
  // `current` is over cur_vars == bag_vars (every atom processed and the
  // projection target is exactly the bag).
  WDPT_CHECK(cur_vars == bag_vars);
  return current;
}

// Separates ground atoms (checked directly) from variable atoms.
bool CheckAndStripGroundAtoms(const std::vector<Atom>& atoms,
                              const Database& db,
                              std::vector<Atom>* with_vars) {
  with_vars->clear();
  for (const Atom& a : atoms) {
    if (a.IsGround()) {
      std::vector<ConstantId> tuple;
      tuple.reserve(a.terms.size());
      for (Term t : a.terms) tuple.push_back(t.constant_id());
      if (!db.ContainsFact(a.relation, tuple)) return false;
    } else {
      with_vars->push_back(a);
    }
  }
  return true;
}

// Legacy-kernel core of decomposition-based evaluation (see
// EvaluateOverBags for the contract).
std::vector<Mapping> EvaluateOverBagsLegacy(
    const std::vector<Atom>& atoms, const Database& db,
    const std::vector<std::vector<VariableId>>& bag_vars,
    const std::vector<std::vector<uint32_t>>& covers,
    const std::vector<std::pair<uint32_t, uint32_t>>& tree_edges,
    const std::vector<VariableId>& projection, uint64_t max_answers,
    const CancelToken& cancel) {
  const size_t num_bags = bag_vars.size();

  // Assign every atom to some bag containing its variables.
  std::vector<std::vector<uint32_t>> assigned(num_bags);
  for (uint32_t ai = 0; ai < atoms.size(); ++ai) {
    std::vector<VariableId> avars = atoms[ai].Variables();
    bool placed = false;
    for (uint32_t bi = 0; bi < num_bags && !placed; ++bi) {
      if (SortedIsSubset(avars, bag_vars[bi])) {
        assigned[bi].push_back(ai);
        placed = true;
      }
    }
    WDPT_CHECK(placed);
  }

  // Materialize bags: join of cover atoms + assigned atoms, projected to
  // the bag's variables.
  std::vector<Bag> bags(num_bags);
  for (uint32_t bi = 0; bi < num_bags; ++bi) {
    bags[bi].vars = bag_vars[bi];
    std::vector<Atom> bag_atoms;
    std::vector<uint32_t> atom_ids = covers.empty()
                                         ? std::vector<uint32_t>()
                                         : covers[bi];
    for (uint32_t ai : assigned[bi]) atom_ids.push_back(ai);
    SortUnique(&atom_ids);
    for (uint32_t ai : atom_ids) bag_atoms.push_back(atoms[ai]);
    // Ensure every bag variable is mentioned by some bag atom (a bag may
    // hold interface variables whose atoms were assigned elsewhere, e.g.
    // in decompositions glued from per-node pieces): add the first atom
    // mentioning each uncovered variable.
    {
      std::vector<VariableId> covered = VariablesOf(bag_atoms);
      for (VariableId v : bags[bi].vars) {
        if (SortedContains(covered, v)) continue;
        bool found = false;
        for (const Atom& a : atoms) {
          if (a.Mentions(v)) {
            bag_atoms.push_back(a);
            covered = SortedUnion(covered, a.Variables());
            found = true;
            break;
          }
        }
        WDPT_CHECK(found);  // Safe queries mention every variable.
      }
    }
    WDPT_CHECK(!bag_atoms.empty());
    if (cancel.valid() && cancel.ShouldStop()) return {};
    bags[bi].tuples = JoinAndProject(bag_atoms, db, bags[bi].vars, cancel);
  }

  // Root the tree and run the full reducer (bottom-up then top-down
  // semijoins).
  std::vector<std::vector<uint32_t>> tree_adj(num_bags);
  for (const auto& [a, b] : tree_edges) {
    tree_adj[a].push_back(b);
    tree_adj[b].push_back(a);
  }
  std::vector<uint32_t> parent(num_bags, 0), order;
  {
    std::vector<bool> seen(num_bags, false);
    std::vector<uint32_t> stack = {0};
    seen[0] = true;
    while (!stack.empty()) {
      uint32_t cur = stack.back();
      stack.pop_back();
      order.push_back(cur);
      for (uint32_t next : tree_adj[cur]) {
        if (!seen[next]) {
          seen[next] = true;
          parent[next] = cur;
          stack.push_back(next);
        }
      }
    }
    WDPT_CHECK(order.size() == num_bags);  // Tree edges must connect bags.
  }
  // Bottom-up: parent semijoin child.
  for (size_t i = order.size(); i-- > 1;) {
    uint32_t child = order[i];
    uint32_t par = parent[child];
    std::vector<VariableId> shared =
        SortedIntersection(bags[par].vars, bags[child].vars);
    SemijoinInto(&bags[par], bags[child], shared);
  }
  // Top-down: child semijoin parent.
  for (size_t i = 1; i < order.size(); ++i) {
    uint32_t child = order[i];
    uint32_t par = parent[child];
    std::vector<VariableId> shared =
        SortedIntersection(bags[par].vars, bags[child].vars);
    SemijoinInto(&bags[child], bags[par], shared);
  }
  for (const Bag& bag : bags) {
    if (bag.tuples.empty()) return {};
  }

  // Enumerate: DFS in top-down order with per-bag hash indexes on the
  // variables shared with the parent.
  std::vector<std::vector<VariableId>> shared_with_parent(num_bags);
  std::vector<std::unordered_map<std::vector<ConstantId>,
                                 std::vector<uint32_t>, TupleVecHash>>
      index(num_bags);
  for (size_t i = 1; i < order.size(); ++i) {
    uint32_t child = order[i];
    shared_with_parent[child] =
        SortedIntersection(bags[parent[child]].vars, bags[child].vars);
    for (uint32_t ti = 0; ti < bags[child].tuples.size(); ++ti) {
      index[child][Project(bags[child].vars, bags[child].tuples[ti],
                           shared_with_parent[child])]
          .push_back(ti);
    }
  }

  std::unordered_set<Mapping, MappingHash> seen_answers;
  std::vector<Mapping> answers;
  // Current assignment across bags.
  std::unordered_map<VariableId, ConstantId> assignment;
  bool done = false;

  uint64_t dfs_steps = 0;
  std::function<void(size_t)> dfs = [&](size_t pos) {
    if (done) return;
    if (cancel.valid() && (++dfs_steps & 0xFFF) == 0 && cancel.ShouldStop()) {
      done = true;
      return;
    }
    if (pos == order.size()) {
      std::vector<Mapping::Entry> entries;
      for (VariableId v : projection) {
        auto it = assignment.find(v);
        WDPT_CHECK(it != assignment.end());
        entries.emplace_back(v, it->second);
      }
      Mapping answer(std::move(entries));
      if (seen_answers.insert(answer).second) {
        answers.push_back(std::move(answer));
        if (max_answers != 0 && answers.size() >= max_answers) done = true;
      }
      return;
    }
    uint32_t bi = order[pos];
    const Bag& bag = bags[bi];
    auto try_tuple = [&](uint32_t ti) {
      const std::vector<ConstantId>& tuple = bag.tuples[ti];
      std::vector<VariableId> newly;
      bool ok = true;
      for (size_t i = 0; i < bag.vars.size(); ++i) {
        auto [it, inserted] = assignment.emplace(bag.vars[i], tuple[i]);
        if (inserted) {
          newly.push_back(bag.vars[i]);
        } else if (it->second != tuple[i]) {
          ok = false;
          break;
        }
      }
      if (ok) dfs(pos + 1);
      for (VariableId v : newly) assignment.erase(v);
    };
    if (pos == 0) {
      for (uint32_t ti = 0; ti < bag.tuples.size() && !done; ++ti) {
        try_tuple(ti);
      }
    } else {
      std::vector<ConstantId> key;
      key.reserve(shared_with_parent[bi].size());
      for (VariableId v : shared_with_parent[bi]) {
        key.push_back(assignment.at(v));
      }
      auto it = index[bi].find(key);
      if (it == index[bi].end()) return;
      for (uint32_t ti : it->second) {
        if (done) return;
        try_tuple(ti);
      }
    }
  };
  dfs(0);
  return answers;
}

// Core of decomposition-based evaluation over pre-translated bags. Bags
// must cover every atom of `atoms` (each atom's variables inside some
// bag). Returns distinct projections of satisfying assignments onto
// `projection` (sorted). Both kernels compute the same answer set; they
// may emit it in different orders.
std::vector<Mapping> EvaluateOverBags(
    const std::vector<Atom>& atoms, const Database& db,
    const std::vector<std::vector<VariableId>>& bag_vars,
    const std::vector<std::vector<uint32_t>>& covers,
    const std::vector<std::pair<uint32_t, uint32_t>>& tree_edges,
    const std::vector<VariableId>& projection, uint64_t max_answers,
    const CancelToken& cancel, CqKernel kernel) {
  if (bag_vars.empty()) {
    // All atoms ground (already checked by caller): one empty answer.
    return {Mapping()};
  }
  if (ResolveCqKernel(kernel) == CqKernel::kLegacy) {
    return EvaluateOverBagsLegacy(atoms, db, bag_vars, covers, tree_edges,
                                  projection, max_answers, cancel);
  }
  return EvaluateOverBagsFlat(atoms, db, bag_vars, covers, tree_edges,
                              projection, max_answers, cancel);
}

}  // namespace

std::vector<Mapping> EvaluateWithDecomposition(
    const ConjunctiveQuery& q, const Database& db,
    const HypertreeDecomposition& hd,
    const std::vector<VariableId>& vertex_to_var, uint64_t max_answers,
    const CancelToken& cancel, CqKernel kernel) {
  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(q.atoms, db, &with_vars)) return {};
  // Translate bags from dense vertex ids to variable ids. Covers refer to
  // hyperedge indexes == q.atoms indexes, which we must remap to the
  // ground-stripped list.
  std::vector<std::vector<VariableId>> bag_vars(hd.td.bags.size());
  for (size_t i = 0; i < hd.td.bags.size(); ++i) {
    for (uint32_t v : hd.td.bags[i]) bag_vars[i].push_back(vertex_to_var[v]);
    SortUnique(&bag_vars[i]);
  }
  std::vector<uint32_t> old_to_new(q.atoms.size(), UINT32_MAX);
  {
    uint32_t next = 0;
    for (uint32_t ai = 0; ai < q.atoms.size(); ++ai) {
      if (!q.atoms[ai].IsGround()) old_to_new[ai] = next++;
    }
  }
  std::vector<std::vector<uint32_t>> covers(hd.covers.size());
  for (size_t i = 0; i < hd.covers.size(); ++i) {
    for (uint32_t e : hd.covers[i]) {
      if (old_to_new[e] != UINT32_MAX) covers[i].push_back(old_to_new[e]);
    }
  }
  return EvaluateOverBags(with_vars, db, bag_vars, covers, hd.td.edges,
                          q.free_vars, max_answers, cancel, kernel);
}

std::optional<std::vector<Mapping>> EvaluateAcyclic(const ConjunctiveQuery& q,
                                                    const Database& db,
                                                    uint64_t max_answers,
                                                    const CancelToken& cancel,
                                                    CqKernel kernel) {
  std::vector<VariableId> vertex_to_var;
  Hypergraph h = q.BuildHypergraph(&vertex_to_var);
  JoinTree jt = GyoJoinTree(h);
  if (!jt.acyclic) return std::nullopt;

  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(q.atoms, db, &with_vars)) {
    return std::vector<Mapping>();
  }

  // Bags: one per non-ground atom; tree edges from the GYO join forest
  // (forest roots chained).
  std::vector<std::vector<VariableId>> bag_vars;
  std::vector<std::vector<uint32_t>> covers;
  std::vector<uint32_t> atom_to_bag(q.atoms.size(), UINT32_MAX);
  for (uint32_t ai = 0; ai < q.atoms.size(); ++ai) {
    if (q.atoms[ai].IsGround()) continue;
    atom_to_bag[ai] = static_cast<uint32_t>(bag_vars.size());
    std::vector<VariableId> vars = q.atoms[ai].Variables();
    bag_vars.push_back(std::move(vars));
    covers.push_back({static_cast<uint32_t>(covers.size())});
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  int last_root = -1;
  for (uint32_t ai = 0; ai < q.atoms.size(); ++ai) {
    if (atom_to_bag[ai] == UINT32_MAX) continue;
    // Walk up the join forest to the nearest non-ground ancestor.
    uint32_t anc = jt.parent[ai];
    while (anc != jt.parent[anc] && atom_to_bag[anc] == UINT32_MAX) {
      anc = jt.parent[anc];
    }
    if (anc != ai && atom_to_bag[anc] != UINT32_MAX &&
        atom_to_bag[anc] != atom_to_bag[ai]) {
      edges.emplace_back(atom_to_bag[ai], atom_to_bag[anc]);
    } else if (jt.parent[ai] == ai || atom_to_bag[anc] == UINT32_MAX ||
               anc == ai) {
      if (last_root >= 0) {
        edges.emplace_back(static_cast<uint32_t>(last_root),
                           atom_to_bag[ai]);
      }
      last_root = static_cast<int>(atom_to_bag[ai]);
    }
  }
  return EvaluateOverBags(with_vars, db, bag_vars, covers, edges,
                          q.free_vars, max_answers, cancel, kernel);
}

bool DecideNonEmpty(const std::vector<Atom>& atoms, const Database& db,
                    const Mapping& seed, const CqEvalOptions& options) {
  if (options.cancel.valid() && options.cancel.ShouldStop()) return false;
  HomSearchLimits hom_limits;
  hom_limits.cancel = options.cancel;
  std::vector<Atom> substituted = SubstituteMapping(atoms, seed);
  ConjunctiveQuery boolean_q;
  boolean_q.atoms = std::move(substituted);

  if (options.strategy == CqEvalStrategy::kBacktracking) {
    std::vector<Atom> with_vars;
    if (!CheckAndStripGroundAtoms(boolean_q.atoms, db, &with_vars)) {
      return false;
    }
    return HomomorphismExists(with_vars, db, Mapping(), hom_limits);
  }

  std::optional<std::vector<Mapping>> acyclic =
      EvaluateAcyclic(boolean_q, db, /*max_answers=*/1, options.cancel,
                      options.kernel);
  if (acyclic.has_value()) return !acyclic->empty();

  std::vector<VariableId> vertex_to_var;
  Hypergraph h = boolean_q.BuildHypergraph(&vertex_to_var);
  if (h.num_vertices <= kMaxExactVertices) {
    for (int k = 2; k <= options.max_auto_width; ++k) {
      std::optional<HypertreeDecomposition> hd =
          FindHypertreeDecomposition(h, k);
      if (hd.has_value()) {
        return !EvaluateWithDecomposition(boolean_q, db, *hd, vertex_to_var,
                                          /*max_answers=*/1, options.cancel,
                                          options.kernel)
                    .empty();
      }
    }
  }
  if (options.strategy == CqEvalStrategy::kDecomposition) {
    // Width exceeded the probe bound; use the widest decomposition found
    // via min-fill over the primal graph (still correct, possibly slow).
    Graph primal = h.ToPrimalGraph();
    TreeDecomposition td;
    TreewidthUpperBound(primal, &td);
    HypertreeDecomposition hd;
    hd.td = std::move(td);
    hd.covers.assign(hd.td.bags.size(), {});
    return !EvaluateWithDecomposition(boolean_q, db, hd, vertex_to_var,
                                      /*max_answers=*/1, options.cancel,
                                      options.kernel)
                .empty();
  }
  // kAuto fallback.
  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(boolean_q.atoms, db, &with_vars)) {
    return false;
  }
  return HomomorphismExists(with_vars, db, Mapping(), hom_limits);
}

bool CqEval(const ConjunctiveQuery& q, const Database& db, const Mapping& h,
            const CqEvalOptions& options) {
  // Answers are defined exactly on the free variables.
  if (h.Domain() != q.free_vars) return false;
  return DecideNonEmpty(q.atoms, db, h, options);
}

std::vector<Mapping> EvaluateCq(const ConjunctiveQuery& q, const Database& db,
                                const CqEvalOptions& options) {
  WDPT_CHECK(q.IsSafe());
  if (options.strategy != CqEvalStrategy::kBacktracking) {
    std::optional<std::vector<Mapping>> acyclic =
        EvaluateAcyclic(q, db, options.max_answers, options.cancel,
                        options.kernel);
    if (acyclic.has_value()) return std::move(*acyclic);
    std::vector<VariableId> vertex_to_var;
    Hypergraph hypergraph = q.BuildHypergraph(&vertex_to_var);
    if (hypergraph.num_vertices <= kMaxExactVertices) {
      for (int k = 2; k <= options.max_auto_width; ++k) {
        std::optional<HypertreeDecomposition> hd =
            FindHypertreeDecomposition(hypergraph, k);
        if (hd.has_value()) {
          return EvaluateWithDecomposition(q, db, *hd, vertex_to_var,
                                           options.max_answers,
                                           options.cancel, options.kernel);
        }
      }
    }
  }
  std::vector<Atom> with_vars;
  if (!CheckAndStripGroundAtoms(q.atoms, db, &with_vars)) return {};
  if (with_vars.empty()) return {Mapping()};
  HomSearchLimits hom_limits;
  hom_limits.cancel = options.cancel;
  return AllHomomorphismProjections(with_vars, db, Mapping(), q.free_vars,
                                    options.max_answers, hom_limits);
}

}  // namespace wdpt
