// Backtracking homomorphism search from atom sets into databases.
//
// This is the workhorse used by CQ evaluation, WDPT evaluation, canonical-
// database containment tests, and the subsumption machinery. Candidate
// tuples are located through the database's CSR column indexes; atoms are
// ordered by estimated fan-out from the per-column statistics (HomOrder::
// kStats, the default), with multi-column bindings narrowed by a galloping
// posting-list intersection. The pre-statistics ordering survives as
// HomOrder::kLegacy for differential testing and benchmarking.

#ifndef WDPT_SRC_CQ_HOMOMORPHISM_H_
#define WDPT_SRC_CQ_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/cancellation.h"
#include "src/cq/kernel.h"
#include "src/relational/atom.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"

namespace wdpt {

/// Limits for homomorphism enumeration.
struct HomSearchLimits {
  /// Hard cap on backtracking steps; 0 = unlimited. When the cap is hit
  /// the search reports `aborted` through ForEachHomomorphism's return.
  uint64_t max_steps = 0;
  /// Cooperative cancellation; polled periodically during backtracking.
  /// A fired token aborts the search like a hit step limit.
  CancelToken cancel;
  /// Atom ordering / access-path policy (src/cq/kernel.h). Both choices
  /// enumerate the same homomorphism set, possibly in different orders.
  HomOrder order = HomOrder::kDefault;
};

/// Invoked for every found homomorphism, restricted to the variables of
/// the searched atoms plus the seed. Return false to stop the enumeration.
using HomCallback = std::function<bool(const Mapping&)>;

/// Enumerates homomorphisms h from `atoms` into `db` with seed [= h.
/// Returns false iff the step limit aborted the search (results delivered
/// so far are still valid homomorphisms). Enumeration is exhaustive
/// otherwise (callback saw every homomorphism or requested a stop).
bool ForEachHomomorphism(const std::vector<Atom>& atoms, const Database& db,
                         const Mapping& seed, const HomCallback& callback,
                         const HomSearchLimits& limits = HomSearchLimits());

/// First homomorphism found, or nullopt.
std::optional<Mapping> FindHomomorphism(
    const std::vector<Atom>& atoms, const Database& db,
    const Mapping& seed = Mapping(),
    const HomSearchLimits& limits = HomSearchLimits());

/// True iff some homomorphism exists.
bool HomomorphismExists(const std::vector<Atom>& atoms, const Database& db,
                        const Mapping& seed = Mapping(),
                        const HomSearchLimits& limits = HomSearchLimits());

/// All distinct restrictions to `projection` (sorted variable set) of
/// homomorphisms from `atoms` into `db` extending `seed`. `max_results`
/// caps the output (0 = unlimited).
std::vector<Mapping> AllHomomorphismProjections(
    const std::vector<Atom>& atoms, const Database& db, const Mapping& seed,
    const std::vector<VariableId>& projection, uint64_t max_results = 0,
    const HomSearchLimits& limits = HomSearchLimits());

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_HOMOMORPHISM_H_
