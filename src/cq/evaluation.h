// CQ evaluation: naive backtracking, Yannakakis for acyclic queries, and
// (generalized) hypertree-decomposition based evaluation.
//
// The decomposition-based evaluators realize Theorems 2 and 3 of the
// paper: CQ-EVAL(TW(k)) and CQ-EVAL(HW(k)) run in polynomial time for
// fixed k (the LOGCFL refinement is a parallel-complexity statement; the
// observable consequence is the polynomial data complexity demonstrated
// in the benches).

#ifndef WDPT_SRC_CQ_EVALUATION_H_
#define WDPT_SRC_CQ_EVALUATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/cancellation.h"
#include "src/cq/cq.h"
#include "src/cq/kernel.h"
#include "src/hypergraph/hypertree.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"

namespace wdpt {

/// Evaluation strategies for DecideNonEmpty / Evaluate.
enum class CqEvalStrategy {
  kBacktracking,   ///< Plain backtracking join (exponential worst case).
  kDecomposition,  ///< GHD-based: join per bag, then Yannakakis.
  kAuto,           ///< Acyclic -> Yannakakis; else GHD if cheap; else
                   ///< backtracking.
};

/// Options for CQ evaluation.
struct CqEvalOptions {
  CqEvalStrategy strategy = CqEvalStrategy::kAuto;
  /// Maximum generalized hypertree width probed by kAuto before falling
  /// back to backtracking.
  int max_auto_width = 3;
  /// Cap on returned answers (0 = unlimited).
  uint64_t max_answers = 0;
  /// Cooperative cancellation/deadline token, polled at safe points of
  /// every evaluation strategy. When it fires, the boolean deciders
  /// return false and the enumerators return what they had — callers that
  /// must distinguish "stopped" from "empty" (the Engine) inspect the
  /// token afterwards and surface kCancelled / kDeadlineExceeded.
  CancelToken cancel;
  /// Which decomposition-evaluation kernel to run (src/cq/kernel.h).
  /// Both kernels produce the same answer set; kLegacy exists for
  /// differential testing and before/after benchmarking.
  CqKernel kernel = CqKernel::kDefault;
};

/// True iff h (defined exactly on the free variables) is an answer:
/// h in q(D). This is CQ-EVAL of Section 3.1.
bool CqEval(const ConjunctiveQuery& q, const Database& db, const Mapping& h,
            const CqEvalOptions& options = CqEvalOptions());

/// All answers q(D) as mappings on the free variables.
std::vector<Mapping> EvaluateCq(const ConjunctiveQuery& q, const Database& db,
                                const CqEvalOptions& options = CqEvalOptions());

/// Decides whether `atoms` (with `seed` pre-applied) has any homomorphism
/// into db, i.e. whether the Boolean CQ is true.
bool DecideNonEmpty(const std::vector<Atom>& atoms, const Database& db,
                    const Mapping& seed,
                    const CqEvalOptions& options = CqEvalOptions());

/// Decomposition-based evaluation with an explicit GHD of the query's
/// hypergraph (as produced by FindHypertreeDecomposition on
/// q.BuildHypergraph()). `vertex_to_var` is the dense-vertex -> variable
/// translation from BuildHypergraph. Returns the projections of all
/// satisfying assignments onto q.free_vars.
std::vector<Mapping> EvaluateWithDecomposition(
    const ConjunctiveQuery& q, const Database& db,
    const HypertreeDecomposition& hd,
    const std::vector<VariableId>& vertex_to_var, uint64_t max_answers = 0,
    const CancelToken& cancel = CancelToken(),
    CqKernel kernel = CqKernel::kDefault);

/// Yannakakis-style evaluation for alpha-acyclic queries. Returns nullopt
/// if the query's hypergraph is not acyclic.
std::optional<std::vector<Mapping>> EvaluateAcyclic(
    const ConjunctiveQuery& q, const Database& db, uint64_t max_answers = 0,
    const CancelToken& cancel = CancelToken(),
    CqKernel kernel = CqKernel::kDefault);

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_EVALUATION_H_
