#include "src/cq/kernel.h"

#include <atomic>

namespace wdpt {

namespace {

std::atomic<CqKernel> g_default_kernel{CqKernel::kFlat};
std::atomic<HomOrder> g_default_order{HomOrder::kStats};

}  // namespace

CqKernel ResolveCqKernel(CqKernel kernel) {
  if (kernel != CqKernel::kDefault) return kernel;
  CqKernel d = g_default_kernel.load(std::memory_order_relaxed);
  return d == CqKernel::kDefault ? CqKernel::kFlat : d;
}

HomOrder ResolveHomOrder(HomOrder order) {
  if (order != HomOrder::kDefault) return order;
  HomOrder d = g_default_order.load(std::memory_order_relaxed);
  return d == HomOrder::kDefault ? HomOrder::kStats : d;
}

void SetDefaultCqKernel(CqKernel kernel) {
  g_default_kernel.store(kernel, std::memory_order_relaxed);
}

void SetDefaultHomOrder(HomOrder order) {
  g_default_order.store(order, std::memory_order_relaxed);
}

}  // namespace wdpt
