// Core computation for conjunctive queries.
//
// The core of q is the smallest retract of q: a subquery q_c with a
// homomorphism q -> q_c fixing free variables. Cores are unique up to
// isomorphism and have the same answers as q over every database; they
// are the canonical representative for semantic width tests ("is q
// equivalent to a query of treewidth <= k" iff "tw(core(q)) <= k").

#ifndef WDPT_SRC_CQ_CORE_H_
#define WDPT_SRC_CQ_CORE_H_

#include "src/cq/cq.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// Computes the core of q (free variables are fixed by all folding
/// endomorphisms). The result is equivalent to q.
ConjunctiveQuery ComputeCore(const ConjunctiveQuery& q, const Schema* schema,
                             Vocabulary* vocab);

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_CORE_H_
