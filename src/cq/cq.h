// Conjunctive queries: representation, hypergraphs, canonical databases.
//
// A CQ Ans(x) <- R1(v1), ..., Rm(vm) is a body of atoms plus a set of free
// variables (Section 2 of the paper). Answers are partial mappings defined
// exactly on the free variables, matching the paper's mapping-based
// semantics of q(D).

#ifndef WDPT_SRC_CQ_CQ_H_
#define WDPT_SRC_CQ_CQ_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/relational/atom.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// A conjunctive query with set-of-mappings semantics.
struct ConjunctiveQuery {
  /// Free (answer) variables; sorted and deduplicated by Normalize().
  std::vector<VariableId> free_vars;
  /// Body atoms; deduplicated by Normalize().
  std::vector<Atom> atoms;

  /// Sorts/deduplicates free_vars and atoms. Call after manual edits.
  void Normalize();

  /// All variables of the body, sorted.
  std::vector<VariableId> AllVariables() const { return VariablesOf(atoms); }

  /// Existential (non-free) variables, sorted.
  std::vector<VariableId> ExistentialVariables() const;

  /// True if the query is Boolean (no free variables).
  bool IsBoolean() const { return free_vars.empty(); }

  /// True if every free variable occurs in the body.
  bool IsSafe() const;

  /// Number of atoms plus total number of term positions (a simple |q|).
  size_t Size() const;

  /// Builds the hypergraph H_q: vertices are the body variables (densely
  /// renumbered), edges are the atoms' variable sets. If `vertex_to_var`
  /// is non-null it receives the dense-id -> VariableId translation.
  Hypergraph BuildHypergraph(std::vector<VariableId>* vertex_to_var) const;

  /// Renders "Ans(?x) <- R(?x, ?y), S(?y)".
  std::string ToString(const Schema& schema, const Vocabulary& vocab) const;
};

/// Substitutes `m` into `atoms`: every variable in dom(m) becomes the
/// mapped constant.
std::vector<Atom> SubstituteMapping(const std::vector<Atom>& atoms,
                                    const Mapping& m);

/// The canonical ("frozen") database of a set of atoms: each variable is
/// replaced by a private fresh constant.
struct CanonicalDatabase {
  /// Facts of the frozen body; uses the schema passed to the builder.
  Database db;
  /// Variable -> frozen constant.
  std::unordered_map<VariableId, ConstantId> frozen;

  explicit CanonicalDatabase(const Schema* schema) : db(schema) {}

  /// The mapping sending each of `vars` to its frozen constant. Variables
  /// without a frozen image (not in the atoms) are skipped.
  Mapping FreezeMapping(const std::vector<VariableId>& vars) const;
};

/// Builds the canonical database of `atoms`, minting frozen constants in
/// `vocab` (named "_frz_<variable name>").
CanonicalDatabase BuildCanonicalDatabase(const std::vector<Atom>& atoms,
                                         const Schema* schema,
                                         Vocabulary* vocab);

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_CQ_H_
