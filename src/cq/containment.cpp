#include "src/cq/containment.h"

#include "src/common/algo.h"
#include "src/cq/homomorphism.h"

namespace wdpt {

namespace {

// Homomorphism from q2's body into the canonical database of q1's body
// that maps every variable of `fixed` (variables of q1) to its frozen
// constant.
bool BodyHomomorphismExists(const ConjunctiveQuery& q2,
                            const ConjunctiveQuery& q1,
                            const std::vector<VariableId>& fixed,
                            const Schema* schema, Vocabulary* vocab) {
  CanonicalDatabase canonical =
      BuildCanonicalDatabase(q1.atoms, schema, vocab);
  Mapping seed = canonical.FreezeMapping(fixed);
  // Fixed variables that do not occur in q1's body have no frozen image;
  // the seed simply omits them, which can only happen for unsafe queries.
  return HomomorphismExists(q2.atoms, canonical.db, seed);
}

}  // namespace

bool CqContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const Schema* schema, Vocabulary* vocab) {
  if (q1.free_vars != q2.free_vars) return false;
  return BodyHomomorphismExists(q2, q1, q1.free_vars, schema, vocab);
}

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                  const Schema* schema, Vocabulary* vocab) {
  return CqContainedIn(q1, q2, schema, vocab) &&
         CqContainedIn(q2, q1, schema, vocab);
}

bool CqSubsumedBy(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                  const Schema* schema, Vocabulary* vocab) {
  if (!SortedIsSubset(q1.free_vars, q2.free_vars)) return false;
  return BodyHomomorphismExists(q2, q1, q1.free_vars, schema, vocab);
}

}  // namespace wdpt
