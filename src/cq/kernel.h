// Join-kernel selection knobs.
//
// The CQ evaluator and the homomorphism search each have two compiled-in
// implementations: the columnar flat-hash kernel (CSR index probes,
// arena-backed scratch, statistics-driven atom ordering) and the legacy
// kernel the flat one replaced. Both compute the same answer sets; the
// legacy kernel is kept as an in-process oracle for differential tests
// (tests/kernel_test.cpp) and for before/after benchmarking
// (bench/bench_kernel.cpp).
//
// Callers pick per call via CqEvalOptions::kernel / HomSearchLimits::
// order; kDefault defers to a process-global default (initially the flat
// kernel) that benches and tests flip with the setters below. The
// setters are for single-threaded setup phases, not for racing against
// in-flight evaluations.

#ifndef WDPT_SRC_CQ_KERNEL_H_
#define WDPT_SRC_CQ_KERNEL_H_

namespace wdpt {

/// Which decomposition-evaluation kernel EvaluateOverBags runs.
enum class CqKernel {
  kDefault,  ///< Use the process-global default (flat unless overridden).
  kFlat,     ///< Columnar flat-hash kernel (arena scratch, stats order).
  kLegacy,   ///< Pre-columnar kernel (node-based hashes, greedy order).
};

/// How the homomorphism search orders atoms and picks access paths.
enum class HomOrder {
  kDefault,  ///< Use the process-global default (stats unless overridden).
  kStats,    ///< CSR-statistics fan-out estimates + galloping intersection.
  kLegacy,   ///< Most-bound-positions-first, single-column access path.
};

/// Resolves kDefault to the process-global default; identity otherwise.
CqKernel ResolveCqKernel(CqKernel kernel);
HomOrder ResolveHomOrder(HomOrder order);

/// Overrides the process-global defaults (kDefault restores the built-in
/// choice). Setup-phase only; not synchronized against running queries.
void SetDefaultCqKernel(CqKernel kernel);
void SetDefaultHomOrder(HomOrder order);

}  // namespace wdpt

#endif  // WDPT_SRC_CQ_KERNEL_H_
