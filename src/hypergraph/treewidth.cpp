#include "src/hypergraph/treewidth.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/common/status.h"

namespace wdpt {

TreeDecomposition DecompositionFromOrder(const Graph& g,
                                         const std::vector<uint32_t>& order) {
  const uint32_t n = g.num_vertices;
  WDPT_CHECK(order.size() == n);
  TreeDecomposition td;
  if (n == 0) return td;

  // Working adjacency (sets as sorted vectors) that we mutate with fill-ins.
  std::vector<std::vector<uint32_t>> adj = g.adj;
  std::vector<bool> eliminated(n, false);
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;

  td.bags.resize(n);
  std::vector<int> parent_bag(n, -1);
  for (uint32_t step = 0; step < n; ++step) {
    uint32_t v = order[step];
    std::vector<uint32_t> bag;
    bag.push_back(v);
    for (uint32_t u : adj[v]) {
      if (!eliminated[u]) bag.push_back(u);
    }
    SortUnique(&bag);
    td.bags[step] = bag;
    // Fill-in: make the remaining neighbors a clique.
    std::vector<uint32_t> alive_neighbors;
    for (uint32_t u : adj[v]) {
      if (!eliminated[u]) alive_neighbors.push_back(u);
    }
    for (size_t i = 0; i < alive_neighbors.size(); ++i) {
      for (size_t j = i + 1; j < alive_neighbors.size(); ++j) {
        uint32_t a = alive_neighbors[i];
        uint32_t b = alive_neighbors[j];
        if (!SortedContains(adj[a], b)) {
          adj[a].insert(std::lower_bound(adj[a].begin(), adj[a].end(), b), b);
          adj[b].insert(std::lower_bound(adj[b].begin(), adj[b].end(), a), a);
        }
      }
    }
    eliminated[v] = true;
    // Connect to the bag of the earliest-later-eliminated neighbor.
    if (!alive_neighbors.empty()) {
      uint32_t best = alive_neighbors[0];
      for (uint32_t u : alive_neighbors) {
        if (position[u] < position[best]) best = u;
      }
      parent_bag[step] = static_cast<int>(position[best]);
    }
  }
  // Tree edges; join any forest roots in a chain to obtain a single tree.
  int last_root = -1;
  for (uint32_t i = 0; i < n; ++i) {
    if (parent_bag[i] >= 0) {
      td.edges.emplace_back(i, static_cast<uint32_t>(parent_bag[i]));
    } else {
      if (last_root >= 0) {
        td.edges.emplace_back(static_cast<uint32_t>(last_root), i);
      }
      last_root = static_cast<int>(i);
    }
  }
  return td;
}

std::vector<uint32_t> MinFillOrder(const Graph& g) {
  const uint32_t n = g.num_vertices;
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t u : g.adj[v]) adj[v][u] = true;
  }
  std::vector<bool> eliminated(n, false);
  std::vector<uint32_t> order;
  order.reserve(n);
  for (uint32_t step = 0; step < n; ++step) {
    uint32_t best = n;
    long best_fill = -1;
    for (uint32_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      // Count missing edges among alive neighbors.
      std::vector<uint32_t> nb;
      for (uint32_t u = 0; u < n; ++u) {
        if (!eliminated[u] && adj[v][u]) nb.push_back(u);
      }
      long fill = 0;
      for (size_t i = 0; i < nb.size(); ++i) {
        for (size_t j = i + 1; j < nb.size(); ++j) {
          if (!adj[nb[i]][nb[j]]) ++fill;
        }
      }
      if (best == n || fill < best_fill ||
          (fill == best_fill && v < best)) {
        best = v;
        best_fill = fill;
      }
    }
    // Eliminate `best`.
    std::vector<uint32_t> nb;
    for (uint32_t u = 0; u < n; ++u) {
      if (!eliminated[u] && adj[best][u]) nb.push_back(u);
    }
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        adj[nb[i]][nb[j]] = adj[nb[j]][nb[i]] = true;
      }
    }
    eliminated[best] = true;
    order.push_back(best);
  }
  return order;
}

int TreewidthUpperBound(const Graph& g, TreeDecomposition* td) {
  TreeDecomposition result = DecompositionFromOrder(g, MinFillOrder(g));
  int width = result.Width();
  if (td != nullptr) *td = std::move(result);
  return width;
}

namespace {

// Branch-and-bound elimination search over <= 64 vertices.
class EliminationSearch {
 public:
  EliminationSearch(const Graph& g, int k)
      : n_(g.num_vertices), k_(k), rows_(n_, 0) {
    for (uint32_t v = 0; v < n_; ++v) {
      for (uint32_t u : g.adj[v]) rows_[v] |= (uint64_t{1} << u);
    }
  }

  // Returns true and fills `order` if an elimination order of width <= k
  // exists.
  bool Run(std::vector<uint32_t>* order) {
    order_.clear();
    uint64_t alive = n_ == 64 ? ~uint64_t{0}
                              : ((uint64_t{1} << n_) - 1);
    if (!Search(alive, rows_)) return false;
    *order = order_;
    return true;
  }

 private:
  bool Search(uint64_t alive, std::vector<uint64_t> rows) {
    int alive_count = std::popcount(alive);
    if (alive_count <= k_ + 1) {
      // Eliminate the rest in any order: final bag has <= k+1 vertices.
      for (uint32_t v = 0; v < n_; ++v) {
        if (alive & (uint64_t{1} << v)) order_.push_back(v);
      }
      return true;
    }
    if (failed_.contains(alive)) return false;

    // Simplicial shortcut: a vertex whose alive neighborhood is a clique
    // can always be eliminated first; if its degree exceeds k the clique
    // witnesses treewidth > k.
    for (uint32_t v = 0; v < n_; ++v) {
      uint64_t bit = uint64_t{1} << v;
      if (!(alive & bit)) continue;
      uint64_t nb = rows[v] & alive;
      if (IsClique(nb, rows)) {
        if (std::popcount(nb) > k_) {
          failed_.insert(alive);
          return false;
        }
        order_.push_back(v);
        std::vector<uint64_t> next = rows;  // No fill needed for simplicial.
        if (Search(alive & ~bit, std::move(next))) return true;
        order_.pop_back();
        failed_.insert(alive);
        return false;  // Simplicial elimination is always safe to commit.
      }
    }

    for (uint32_t v = 0; v < n_; ++v) {
      uint64_t bit = uint64_t{1} << v;
      if (!(alive & bit)) continue;
      uint64_t nb = rows[v] & alive;
      if (std::popcount(nb) > k_) continue;
      order_.push_back(v);
      std::vector<uint64_t> next = rows;
      AddFill(nb, &next);
      if (Search(alive & ~bit, std::move(next))) return true;
      order_.pop_back();
    }
    failed_.insert(alive);
    return false;
  }

  bool IsClique(uint64_t vertices, const std::vector<uint64_t>& rows) const {
    uint64_t rest = vertices;
    while (rest != 0) {
      uint32_t v = static_cast<uint32_t>(std::countr_zero(rest));
      rest &= rest - 1;
      uint64_t need = vertices & ~(uint64_t{1} << v);
      if ((rows[v] & need) != need) return false;
    }
    return true;
  }

  void AddFill(uint64_t nb, std::vector<uint64_t>* rows) const {
    uint64_t rest = nb;
    while (rest != 0) {
      uint32_t v = static_cast<uint32_t>(std::countr_zero(rest));
      rest &= rest - 1;
      (*rows)[v] |= nb & ~(uint64_t{1} << v);
    }
  }

  uint32_t n_;
  int k_;
  std::vector<uint64_t> rows_;
  std::vector<uint32_t> order_;
  std::unordered_set<uint64_t> failed_;
};

}  // namespace

std::optional<TreeDecomposition> FindTreeDecompositionOfWidth(const Graph& g,
                                                              int k) {
  WDPT_CHECK(g.num_vertices <= kMaxExactVertices);
  if (k < 0) return std::nullopt;
  if (g.num_vertices == 0) return TreeDecomposition();
  EliminationSearch search(g, k);
  std::vector<uint32_t> order;
  if (!search.Run(&order)) return std::nullopt;
  return DecompositionFromOrder(g, order);
}

int ExactTreewidth(const Graph& g, TreeDecomposition* td) {
  if (g.num_vertices == 0) return -1;
  for (int k = 0; k <= static_cast<int>(g.num_vertices) - 1; ++k) {
    std::optional<TreeDecomposition> result =
        FindTreeDecompositionOfWidth(g, k);
    if (result.has_value()) {
      if (td != nullptr) *td = std::move(*result);
      return k;
    }
  }
  WDPT_CHECK(false);  // k = n - 1 always succeeds.
  return -1;
}

bool TreewidthAtMost(const Graph& g, int k, bool* exact) {
  if (g.num_vertices <= kMaxExactVertices) {
    if (exact != nullptr) *exact = true;
    return FindTreeDecompositionOfWidth(g, k).has_value();
  }
  if (exact != nullptr) *exact = false;
  return TreewidthUpperBound(g) <= k;
}

}  // namespace wdpt
