// Hypergraphs and simple undirected graphs over dense vertex ids.
//
// The hypergraph H_q of a CQ q has the variables of q as vertices and the
// variable sets of its atoms as hyperedges (constants are ignored), as in
// Section 3.1 of the paper.

#ifndef WDPT_SRC_HYPERGRAPH_HYPERGRAPH_H_
#define WDPT_SRC_HYPERGRAPH_HYPERGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wdpt {

/// A hypergraph over vertices 0..num_vertices-1.
struct Hypergraph {
  uint32_t num_vertices = 0;
  /// Each edge is a sorted, deduplicated vertex list. Empty edges allowed
  /// (they arise from constant-only atoms) and are ignored by algorithms.
  std::vector<std::vector<uint32_t>> edges;

  /// Returns the primal (Gaifman) graph: vertices adjacent iff co-occurring
  /// in some hyperedge.
  struct Graph ToPrimalGraph() const;

  /// Returns the sub-hypergraph induced by the given edge subset, re-mapping
  /// vertices densely. `edge_subset` holds indexes into `edges`.
  Hypergraph InducedByEdges(const std::vector<uint32_t>& edge_subset) const;
};

/// A simple undirected graph with adjacency lists and a matrix.
struct Graph {
  explicit Graph(uint32_t n = 0)
      : num_vertices(n), adj(n), matrix(static_cast<size_t>(n) * n, false) {}

  uint32_t num_vertices;
  std::vector<std::vector<uint32_t>> adj;  ///< Sorted neighbor lists.
  std::vector<bool> matrix;                ///< Row-major adjacency matrix.

  bool HasEdge(uint32_t a, uint32_t b) const {
    return matrix[static_cast<size_t>(a) * num_vertices + b];
  }

  /// Adds the undirected edge {a, b}; ignores self-loops and duplicates.
  void AddEdge(uint32_t a, uint32_t b);

  /// Number of undirected edges.
  size_t NumEdges() const;
};

}  // namespace wdpt

#endif  // WDPT_SRC_HYPERGRAPH_HYPERGRAPH_H_
