// Tree decompositions of hypergraphs: structure, width, validation.

#ifndef WDPT_SRC_HYPERGRAPH_TREE_DECOMPOSITION_H_
#define WDPT_SRC_HYPERGRAPH_TREE_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/hypergraph/hypergraph.h"

namespace wdpt {

/// A tree decomposition (S, nu): bags of vertices connected by tree edges.
struct TreeDecomposition {
  /// Bag contents; each bag is sorted and deduplicated.
  std::vector<std::vector<uint32_t>> bags;
  /// Undirected tree edges between bag indexes. A decomposition with b bags
  /// has exactly b - 1 edges (or 0 for b <= 1).
  std::vector<std::pair<uint32_t, uint32_t>> edges;

  size_t num_bags() const { return bags.size(); }

  /// Width = max bag size - 1 (paper's definition); -1 for no bags.
  int Width() const;

  /// Checks the tree-decomposition conditions against `h`:
  /// (1) every vertex's bags form a connected subtree, (2) every hyperedge
  /// is contained in some bag, (3) the edges form a tree over the bags.
  bool IsValidFor(const Hypergraph& h, std::string* error = nullptr) const;

  /// Rooted view: parent[i] for a tree rooted at bag `root`, parent of the
  /// root is itself. Also returns bags in a top-down (BFS) order.
  void RootAt(uint32_t root, std::vector<uint32_t>* parent,
              std::vector<uint32_t>* order) const;
};

}  // namespace wdpt

#endif  // WDPT_SRC_HYPERGRAPH_TREE_DECOMPOSITION_H_
