#include "src/hypergraph/gyo.h"

#include <algorithm>

#include "src/common/algo.h"

namespace wdpt {

JoinTree GyoJoinTree(const Hypergraph& h) {
  const size_t m = h.edges.size();
  JoinTree result;
  result.parent.resize(m);
  for (size_t i = 0; i < m; ++i) result.parent[i] = static_cast<uint32_t>(i);

  // Working copies of the edges that shrink as ear vertices are removed.
  std::vector<std::vector<uint32_t>> work = h.edges;
  std::vector<bool> active(m, true);
  // Reverse removal order: children recorded before parents.
  std::vector<uint32_t> removal;

  // Occurrence counts of vertices among active edges.
  std::vector<uint32_t> occurrences(h.num_vertices, 0);
  for (size_t i = 0; i < m; ++i) {
    for (uint32_t v : work[i]) ++occurrences[v];
  }

  bool changed = true;
  while (changed) {
    changed = false;
    // Rule 1: drop vertices occurring in exactly one active edge.
    for (size_t i = 0; i < m; ++i) {
      if (!active[i]) continue;
      std::vector<uint32_t>& edge = work[i];
      size_t before = edge.size();
      edge.erase(std::remove_if(edge.begin(), edge.end(),
                                [&](uint32_t v) {
                                  return occurrences[v] == 1;
                                }),
                 edge.end());
      if (edge.size() != before) changed = true;
    }
    // Rule 2: remove an active edge contained in another active edge.
    for (size_t i = 0; i < m && !changed; ++i) {
      if (!active[i]) continue;
      for (size_t j = 0; j < m; ++j) {
        if (i == j || !active[j]) continue;
        if (SortedIsSubset(work[i], work[j])) {
          active[i] = false;
          result.parent[i] = static_cast<uint32_t>(j);
          removal.push_back(static_cast<uint32_t>(i));
          for (uint32_t v : work[i]) --occurrences[v];
          changed = true;
          break;
        }
      }
    }
  }

  size_t remaining = 0;
  for (size_t i = 0; i < m; ++i) {
    if (active[i]) {
      ++remaining;
      removal.push_back(static_cast<uint32_t>(i));
      // Roots: either truly reduced (empty) or witnesses of cyclicity.
    }
  }
  // Acyclic iff every surviving edge is fully reduced (empty vertex list);
  // a single surviving nonempty edge also qualifies per component, but the
  // ear-removal rule empties the last edge of each component, so emptiness
  // is the right test.
  result.acyclic = true;
  for (size_t i = 0; i < m; ++i) {
    if (active[i] && !work[i].empty()) {
      result.acyclic = false;
      break;
    }
  }
  // Top-down order: reverse of removal order.
  result.order.assign(removal.rbegin(), removal.rend());
  return result;
}

bool IsAlphaAcyclic(const Hypergraph& h) { return GyoJoinTree(h).acyclic; }

}  // namespace wdpt
