#include "src/hypergraph/hypertree.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "src/common/algo.h"
#include "src/common/status.h"
#include "src/hypergraph/gyo.h"
#include "src/hypergraph/treewidth.h"

namespace wdpt {

int HypertreeDecomposition::Width() const {
  int width = 0;
  for (const std::vector<uint32_t>& cover : covers) {
    width = std::max(width, static_cast<int>(cover.size()));
  }
  return width;
}

namespace {

// Bitmask helpers (<= 64 vertices).
uint64_t MaskOf(const std::vector<uint32_t>& vertices) {
  uint64_t mask = 0;
  for (uint32_t v : vertices) mask |= uint64_t{1} << v;
  return mask;
}

// Exact minimum cover of `target` by masks from `edge_masks`, bounded by
// `limit`. Returns chosen edge indexes via `cover` (if non-null).
int CoverSearch(uint64_t target, const std::vector<uint64_t>& edge_masks,
                int limit, std::vector<uint32_t>* cover) {
  if (target == 0) return 0;
  if (limit <= 0) return 1;  // "limit + 1" style overflow for limit = 0.
  // Branch on the lowest uncovered vertex.
  uint32_t v = static_cast<uint32_t>(std::countr_zero(target));
  int best = limit + 1;
  std::vector<uint32_t> best_cover;
  for (uint32_t e = 0; e < edge_masks.size(); ++e) {
    if (!(edge_masks[e] & (uint64_t{1} << v))) continue;
    std::vector<uint32_t> sub_cover;
    int sub = CoverSearch(target & ~edge_masks[e], edge_masks,
                          std::min(limit, best - 1) - 1,
                          cover != nullptr ? &sub_cover : nullptr);
    if (sub + 1 < best) {
      best = sub + 1;
      if (cover != nullptr) {
        best_cover = std::move(sub_cover);
        best_cover.push_back(e);
      }
    }
  }
  if (cover != nullptr && best <= limit) *cover = std::move(best_cover);
  return best;
}

}  // namespace

int EdgeCoverNumber(const Hypergraph& h, const std::vector<uint32_t>& bag,
                    int limit) {
  std::vector<uint64_t> edge_masks;
  edge_masks.reserve(h.edges.size());
  uint64_t covered_somewhere = 0;
  uint64_t target = MaskOf(bag);
  for (const std::vector<uint32_t>& e : h.edges) {
    uint64_t m = MaskOf(e) & target;
    covered_somewhere |= m;
    if (m != 0) edge_masks.push_back(m);
  }
  if ((covered_somewhere & target) != target) return -1;
  int result = CoverSearch(target, edge_masks, limit, nullptr);
  return result;
}

namespace {

// Elimination-order search where the admissibility of a bag is
// "edge cover number <= k" instead of "size <= k + 1".
class GhwEliminationSearch {
 public:
  GhwEliminationSearch(const Graph& primal,
                       const std::vector<uint64_t>& edge_masks, int k)
      : n_(primal.num_vertices), k_(k), edge_masks_(edge_masks), rows_(n_, 0) {
    for (uint32_t v = 0; v < n_; ++v) {
      for (uint32_t u : primal.adj[v]) rows_[v] |= uint64_t{1} << u;
    }
  }

  bool Run(std::vector<uint32_t>* order) {
    order_.clear();
    if (n_ == 0) {
      order->clear();
      return true;
    }
    uint64_t alive = n_ == 64 ? ~uint64_t{0} : ((uint64_t{1} << n_) - 1);
    if (!Search(alive, rows_)) return false;
    *order = order_;
    return true;
  }

 private:
  bool Coverable(uint64_t bag_mask) const {
    std::vector<uint32_t> bag;
    for (uint32_t v = 0; v < n_; ++v) {
      if (bag_mask & (uint64_t{1} << v)) bag.push_back(v);
    }
    // CoverSearch over masks restricted to the bag.
    std::vector<uint64_t> masks;
    for (uint64_t m : edge_masks_) {
      uint64_t mm = m & bag_mask;
      if (mm != 0) masks.push_back(mm);
    }
    if (bag_mask == 0) return true;
    uint64_t covered = 0;
    for (uint64_t m : masks) covered |= m;
    if (covered != bag_mask) return false;
    return CoverSearch(bag_mask, masks, k_, nullptr) <= k_;
  }

  bool Search(uint64_t alive, std::vector<uint64_t> rows) {
    if (Coverable(alive)) {
      for (uint32_t v = 0; v < n_; ++v) {
        if (alive & (uint64_t{1} << v)) order_.push_back(v);
      }
      return true;
    }
    if (failed_.contains(alive)) return false;
    for (uint32_t v = 0; v < n_; ++v) {
      uint64_t bit = uint64_t{1} << v;
      if (!(alive & bit)) continue;
      uint64_t bag = (rows[v] & alive) | bit;
      if (!Coverable(bag)) continue;
      order_.push_back(v);
      std::vector<uint64_t> next = rows;
      uint64_t nb = rows[v] & alive & ~bit;
      uint64_t rest = nb;
      while (rest != 0) {
        uint32_t u = static_cast<uint32_t>(std::countr_zero(rest));
        rest &= rest - 1;
        next[u] |= nb & ~(uint64_t{1} << u);
      }
      if (Search(alive & ~bit, std::move(next))) return true;
      order_.pop_back();
    }
    failed_.insert(alive);
    return false;
  }

  uint32_t n_;
  int k_;
  const std::vector<uint64_t>& edge_masks_;
  std::vector<uint64_t> rows_;
  std::vector<uint32_t> order_;
  std::unordered_set<uint64_t> failed_;
};

}  // namespace

std::optional<HypertreeDecomposition> FindHypertreeDecomposition(
    const Hypergraph& h, int k) {
  WDPT_CHECK(h.num_vertices <= kMaxExactVertices);
  if (k < 0) return std::nullopt;
  HypertreeDecomposition hd;
  bool has_nonempty_edge = false;
  for (const std::vector<uint32_t>& e : h.edges) {
    if (!e.empty()) has_nonempty_edge = true;
  }
  if (!has_nonempty_edge) return hd;  // Empty decomposition, width 0.
  if (k == 0) return std::nullopt;

  // Fast path: acyclic hypergraphs have ghw 1.
  std::vector<uint64_t> edge_masks;
  edge_masks.reserve(h.edges.size());
  for (const std::vector<uint32_t>& e : h.edges) edge_masks.push_back(MaskOf(e));

  Graph primal = h.ToPrimalGraph();
  GhwEliminationSearch search(primal, edge_masks, k);
  std::vector<uint32_t> order;
  if (!search.Run(&order)) return std::nullopt;

  // The search eliminates a suffix of vertices in one final bag; recover a
  // full order by keeping it as produced (DecompositionFromOrder treats the
  // suffix vertices individually, which can only shrink bags).
  hd.td = DecompositionFromOrder(primal, order);
  hd.covers.resize(hd.td.bags.size());
  for (size_t i = 0; i < hd.td.bags.size(); ++i) {
    std::vector<uint64_t> masks;
    uint64_t bag_mask = MaskOf(hd.td.bags[i]);
    std::vector<uint32_t> mask_to_edge;
    for (uint32_t e = 0; e < edge_masks.size(); ++e) {
      uint64_t mm = edge_masks[e] & bag_mask;
      if (mm != 0) {
        masks.push_back(mm);
        mask_to_edge.push_back(e);
      }
    }
    std::vector<uint32_t> cover;
    int size = CoverSearch(bag_mask, masks, k, &cover);
    WDPT_CHECK(size <= k);
    for (uint32_t& c : cover) c = mask_to_edge[c];
    hd.covers[i] = std::move(cover);
  }
  return hd;
}

int GeneralizedHypertreeWidth(const Hypergraph& h,
                              HypertreeDecomposition* hd) {
  bool has_nonempty_edge = false;
  for (const std::vector<uint32_t>& e : h.edges) {
    if (!e.empty()) has_nonempty_edge = true;
  }
  if (!has_nonempty_edge) {
    if (hd != nullptr) *hd = HypertreeDecomposition();
    return 0;
  }
  if (IsAlphaAcyclic(h)) {
    // ghw = 1; construct via the search for a concrete witness.
    std::optional<HypertreeDecomposition> result =
        FindHypertreeDecomposition(h, 1);
    WDPT_CHECK(result.has_value());
    if (hd != nullptr) *hd = std::move(*result);
    return 1;
  }
  for (int k = 2;; ++k) {
    std::optional<HypertreeDecomposition> result =
        FindHypertreeDecomposition(h, k);
    if (result.has_value()) {
      if (hd != nullptr) *hd = std::move(*result);
      return k;
    }
    WDPT_CHECK(k <= static_cast<int>(h.edges.size()));
  }
}

std::optional<bool> BetaGhwAtMost(const Hypergraph& h, int k,
                                  uint64_t max_subsets) {
  const size_t m = h.edges.size();
  if (m >= 63 || (uint64_t{1} << m) > max_subsets) return std::nullopt;
  for (uint64_t subset = 1; subset < (uint64_t{1} << m); ++subset) {
    std::vector<uint32_t> edge_subset;
    for (uint32_t e = 0; e < m; ++e) {
      if (subset & (uint64_t{1} << e)) edge_subset.push_back(e);
    }
    Hypergraph sub = h.InducedByEdges(edge_subset);
    if (sub.num_vertices > kMaxExactVertices) return std::nullopt;
    if (!FindHypertreeDecomposition(sub, k).has_value()) return false;
  }
  return true;
}

}  // namespace wdpt
