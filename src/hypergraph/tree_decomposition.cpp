#include "src/hypergraph/tree_decomposition.h"

#include <algorithm>
#include <queue>

#include "src/common/algo.h"
#include "src/common/status.h"

namespace wdpt {

int TreeDecomposition::Width() const {
  int width = -1;
  for (const std::vector<uint32_t>& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

namespace {

// Union-find for the tree check.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Merge(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

bool TreeDecomposition::IsValidFor(const Hypergraph& h,
                                   std::string* error) const {
  auto fail = [&error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (bags.empty()) {
    // The empty decomposition is valid only for an edge-free hypergraph.
    for (const std::vector<uint32_t>& e : h.edges) {
      if (!e.empty()) return fail("no bags but hypergraph has edges");
    }
    return true;
  }
  // (3) Edges form a tree.
  if (edges.size() != bags.size() - 1) return fail("edge count != bags - 1");
  UnionFind uf(bags.size());
  for (const auto& [a, b] : edges) {
    if (a >= bags.size() || b >= bags.size()) return fail("edge out of range");
    if (!uf.Merge(a, b)) return fail("edges contain a cycle");
  }
  // (2) Every hyperedge inside some bag.
  for (const std::vector<uint32_t>& e : h.edges) {
    bool covered = e.empty();
    for (const std::vector<uint32_t>& bag : bags) {
      if (SortedIsSubset(e, bag)) {
        covered = true;
        break;
      }
    }
    if (!covered) return fail("hyperedge not covered by any bag");
  }
  // (1) Connectedness of each vertex's bags.
  std::vector<std::vector<uint32_t>> tree_adj(bags.size());
  for (const auto& [a, b] : edges) {
    tree_adj[a].push_back(b);
    tree_adj[b].push_back(a);
  }
  for (uint32_t v = 0; v < h.num_vertices; ++v) {
    std::vector<uint32_t> holding;
    for (uint32_t i = 0; i < bags.size(); ++i) {
      if (SortedContains(bags[i], v)) holding.push_back(i);
    }
    if (holding.size() <= 1) continue;
    // BFS within holding bags.
    std::vector<bool> in_holding(bags.size(), false);
    for (uint32_t i : holding) in_holding[i] = true;
    std::vector<bool> seen(bags.size(), false);
    std::queue<uint32_t> queue;
    queue.push(holding[0]);
    seen[holding[0]] = true;
    size_t reached = 0;
    while (!queue.empty()) {
      uint32_t cur = queue.front();
      queue.pop();
      ++reached;
      for (uint32_t next : tree_adj[cur]) {
        if (in_holding[next] && !seen[next]) {
          seen[next] = true;
          queue.push(next);
        }
      }
    }
    if (reached != holding.size()) {
      return fail("vertex " + std::to_string(v) + " bags not connected");
    }
  }
  return true;
}

void TreeDecomposition::RootAt(uint32_t root, std::vector<uint32_t>* parent,
                               std::vector<uint32_t>* order) const {
  WDPT_CHECK(root < bags.size());
  std::vector<std::vector<uint32_t>> tree_adj(bags.size());
  for (const auto& [a, b] : edges) {
    tree_adj[a].push_back(b);
    tree_adj[b].push_back(a);
  }
  parent->assign(bags.size(), root);
  order->clear();
  std::vector<bool> seen(bags.size(), false);
  std::queue<uint32_t> queue;
  queue.push(root);
  seen[root] = true;
  while (!queue.empty()) {
    uint32_t cur = queue.front();
    queue.pop();
    order->push_back(cur);
    for (uint32_t next : tree_adj[cur]) {
      if (!seen[next]) {
        seen[next] = true;
        (*parent)[next] = cur;
        queue.push(next);
      }
    }
  }
  WDPT_CHECK(order->size() == bags.size());
}

}  // namespace wdpt
