#include "src/hypergraph/hypergraph.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/algo.h"

namespace wdpt {

void Graph::AddEdge(uint32_t a, uint32_t b) {
  if (a == b || HasEdge(a, b)) return;
  matrix[static_cast<size_t>(a) * num_vertices + b] = true;
  matrix[static_cast<size_t>(b) * num_vertices + a] = true;
  adj[a].insert(std::lower_bound(adj[a].begin(), adj[a].end(), b), b);
  adj[b].insert(std::lower_bound(adj[b].begin(), adj[b].end(), a), a);
}

size_t Graph::NumEdges() const {
  size_t total = 0;
  for (const std::vector<uint32_t>& n : adj) total += n.size();
  return total / 2;
}

Graph Hypergraph::ToPrimalGraph() const {
  Graph g(num_vertices);
  for (const std::vector<uint32_t>& e : edges) {
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        g.AddEdge(e[i], e[j]);
      }
    }
  }
  return g;
}

Hypergraph Hypergraph::InducedByEdges(
    const std::vector<uint32_t>& edge_subset) const {
  Hypergraph sub;
  std::unordered_map<uint32_t, uint32_t> remap;
  for (uint32_t ei : edge_subset) {
    std::vector<uint32_t> edge;
    edge.reserve(edges[ei].size());
    for (uint32_t v : edges[ei]) {
      auto [it, inserted] =
          remap.emplace(v, static_cast<uint32_t>(remap.size()));
      edge.push_back(it->second);
    }
    SortUnique(&edge);
    sub.edges.push_back(std::move(edge));
  }
  sub.num_vertices = static_cast<uint32_t>(remap.size());
  return sub;
}

}  // namespace wdpt
