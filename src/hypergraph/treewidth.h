// Treewidth: elimination orders, heuristics, and exact decision.
//
// Queries are small, so the exact algorithms here are designed for graphs
// of at most 64 vertices (bitset rows + memoized branch and bound over
// elimination orders). Larger graphs fall back to the min-fill heuristic,
// which yields an upper bound.

#ifndef WDPT_SRC_HYPERGRAPH_TREEWIDTH_H_
#define WDPT_SRC_HYPERGRAPH_TREEWIDTH_H_

#include <optional>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/hypergraph/tree_decomposition.h"

namespace wdpt {

/// Builds the tree decomposition induced by eliminating the vertices of `g`
/// in `order` (a permutation of 0..n-1). Bags are the elimination cliques.
/// Disconnected graphs yield a decomposition whose components are joined by
/// arbitrary tree edges (still valid).
TreeDecomposition DecompositionFromOrder(const Graph& g,
                                         const std::vector<uint32_t>& order);

/// Greedy min-fill elimination order.
std::vector<uint32_t> MinFillOrder(const Graph& g);

/// Width of the min-fill decomposition; an upper bound on treewidth.
/// If `td` is non-null it receives the decomposition.
int TreewidthUpperBound(const Graph& g, TreeDecomposition* td = nullptr);

/// Maximum number of vertices supported by the exact algorithms.
inline constexpr uint32_t kMaxExactVertices = 64;

/// Exact decision "treewidth(g) <= k" for graphs with <= 64 vertices.
/// Returns the witnessing decomposition on success, nullopt otherwise.
/// WDPT_CHECKs that g.num_vertices <= kMaxExactVertices.
std::optional<TreeDecomposition> FindTreeDecompositionOfWidth(const Graph& g,
                                                              int k);

/// Exact treewidth for graphs with <= 64 vertices (0 for edgeless graphs,
/// -1 for the empty graph). If `td` is non-null it receives an optimal
/// decomposition.
int ExactTreewidth(const Graph& g, TreeDecomposition* td = nullptr);

/// Best-effort decision usable at any size: exact when n <= 64, otherwise
/// the min-fill upper bound (sound for "yes", may report false negatives;
/// `exact` reports which case applied).
bool TreewidthAtMost(const Graph& g, int k, bool* exact = nullptr);

}  // namespace wdpt

#endif  // WDPT_SRC_HYPERGRAPH_TREEWIDTH_H_
