// GYO reduction: alpha-acyclicity test and join-tree construction.

#ifndef WDPT_SRC_HYPERGRAPH_GYO_H_
#define WDPT_SRC_HYPERGRAPH_GYO_H_

#include <cstdint>
#include <vector>

#include "src/hypergraph/hypergraph.h"

namespace wdpt {

/// A join forest over the hyperedges of a hypergraph: parent[e] is the
/// parent edge of e (parent[e] == e for roots). Valid only if `acyclic`.
struct JoinTree {
  bool acyclic = false;
  std::vector<uint32_t> parent;
  /// Edge indexes in a root-to-leaf (top-down) order.
  std::vector<uint32_t> order;
};

/// Runs the GYO reduction. The hypergraph is acyclic iff the reduction
/// succeeds; on success the returned structure is a valid join forest:
/// for every vertex v, the edges containing v form a connected subtree.
JoinTree GyoJoinTree(const Hypergraph& h);

/// Convenience wrapper for the acyclicity test (= generalized
/// hypertreewidth 1 for hypergraphs with at least one edge).
bool IsAlphaAcyclic(const Hypergraph& h);

}  // namespace wdpt

#endif  // WDPT_SRC_HYPERGRAPH_GYO_H_
