// Generalized hypertree width (called hypertreewidth in the paper):
// exact decision via elimination-order search with edge-cover bag costs,
// plus the subquery-closed variant HW'(k) (beta-hypertreewidth).
//
// We follow the paper's remark and work with the *generalized* notion:
// ghw(H) <= k iff H has a tree decomposition each of whose bags can be
// covered by at most k hyperedges. Every tree decomposition refines to an
// elimination order whose bags are subsets of the original bags, and edge
// cover number is monotone under subsets, so searching elimination orders
// is complete.

#ifndef WDPT_SRC_HYPERGRAPH_HYPERTREE_H_
#define WDPT_SRC_HYPERGRAPH_HYPERTREE_H_

#include <optional>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/hypergraph/tree_decomposition.h"

namespace wdpt {

/// A generalized hypertree decomposition: a tree decomposition plus, for
/// each bag, a cover by hyperedge indexes with bag subseteq union(cover).
struct HypertreeDecomposition {
  TreeDecomposition td;
  std::vector<std::vector<uint32_t>> covers;

  /// Width = max cover size (0 if there are no bags).
  int Width() const;
};

/// Minimum number of hyperedges of `h` needed to cover `bag`, or -1 if a
/// bag vertex occurs in no hyperedge. Stops early and returns limit + 1 if
/// the cover number exceeds `limit`.
int EdgeCoverNumber(const Hypergraph& h, const std::vector<uint32_t>& bag,
                    int limit);

/// Exact decision "ghw(h) <= k" for hypergraphs with <= 64 vertices.
/// Returns a witnessing decomposition or nullopt. An edge-free hypergraph
/// has the empty decomposition (width 0).
std::optional<HypertreeDecomposition> FindHypertreeDecomposition(
    const Hypergraph& h, int k);

/// Exact generalized hypertree width for hypergraphs with <= 64 vertices.
int GeneralizedHypertreeWidth(const Hypergraph& h,
                              HypertreeDecomposition* hd = nullptr);

/// Decision "every edge-subset-induced sub-hypergraph has ghw <= k"
/// (HW'(k), beta-hypertreewidth <= k). Enumerates the up-to 2^m edge
/// subsets; suitable for query-sized inputs. Returns nullopt (undecided)
/// if more than `max_subsets` subsets would be needed.
std::optional<bool> BetaGhwAtMost(const Hypergraph& h, int k,
                                  uint64_t max_subsets = uint64_t{1} << 20);

}  // namespace wdpt

#endif  // WDPT_SRC_HYPERGRAPH_HYPERTREE_H_
