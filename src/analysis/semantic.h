// Semantic optimization of WDPTs (Section 5): the Lemma 1 shrinking
// transformation, quotient enumeration for WDPTs, and a bounded
// realization of the M(WB(k)) membership test of Theorem 13.
//
// The full Theorem 13 decision procedure guesses a WB(k) witness of
// single-exponential size (NEXPTIME^NP); per DESIGN.md we reproduce it on
// bounded instances: the candidate space searched here consists of the
// subsumption-preserving transformations we can enumerate (pruning of
// answer-irrelevant branches, node merges, and variable-identification
// quotients), each verified by the exact subsumption-equivalence test.
// A positive result is always sound (the returned witness is verified);
// a negative result means no witness exists in the searched space.

#ifndef WDPT_SRC_ANALYSIS_SEMANTIC_H_
#define WDPT_SRC_ANALYSIS_SEMANTIC_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/analysis/subsumption.h"
#include "src/analysis/wb.h"
#include "src/common/status.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Lemma 1 pruning: drops every node that is not on a path from the root
/// to a node introducing a free variable, then merges each free-variable-
/// less node with its only child. The result is subsumption-equivalent to
/// the input (partial and maximal answers are preserved) and has at most
/// linearly many nodes in the number of free variables.
/// kInvalidArgument if `tree` is not validated.
Result<PatternTree> Lemma1Prune(const PatternTree& tree);

/// Full Lemma 1 shrinking: given p' [= p, builds p'' with
/// p' [= p'' [= p by pruning p' and then deleting every atom of p' that
/// no witness homomorphism from p uses across the root subtrees of p'
/// (the step bounding witness sizes in Theorems 13/14). The sandwich is
/// verified; if the restricted tree fails verification (or loses
/// well-designedness), the pruned tree is returned instead — still a
/// correct, if larger, witness. Returns an error if p' [= p does not
/// hold.
Result<PatternTree> Lemma1Shrink(const PatternTree& p_prime,
                                 const PatternTree& p, const Schema* schema,
                                 Vocabulary* vocab,
                                 const SubsumptionOptions& options =
                                     SubsumptionOptions());

/// Enumerates quotients of the WDPT: variable partitions with at most one
/// free variable per class, applied to every label. Quotients violating
/// well-designedness are skipped. The value is true iff the enumeration
/// was complete (false: `max_partitions` was exceeded);
/// kInvalidArgument if `tree` is not validated.
Result<bool> ForEachWdptQuotient(
    const PatternTree& tree, uint64_t max_partitions,
    const std::function<bool(const PatternTree&)>& cb);

/// Options for the bounded M(WB(k)) search.
struct SemanticSearchOptions {
  uint64_t max_partitions = 200'000;
  SubsumptionOptions subsumption;
  /// Additionally apply Lemma1Shrink to quotients that fail the width
  /// check (slower; can discover witnesses the quotient space alone
  /// misses because unused atoms keep the width high).
  bool use_lemma1_shrink = false;
};

/// Bounded M(WB(k)) membership: searches for a WB(k) WDPT that is
/// subsumption-equivalent to `tree`; returns the (verified) witness, or
/// nullopt if none exists in the searched space.
Result<std::optional<PatternTree>> FindSubsumptionEquivalentInWB(
    const PatternTree& tree, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const SemanticSearchOptions& options = SemanticSearchOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_ANALYSIS_SEMANTIC_H_
