#include "src/analysis/wb.h"

#include "src/wdpt/classify.h"

namespace wdpt {

bool IsWbMeasure(WidthMeasure measure) {
  return measure == WidthMeasure::kTreewidth ||
         measure == WidthMeasure::kBetaHypertreewidth;
}

Result<bool> IsInWB(const PatternTree& tree, WidthMeasure measure, int k) {
  if (!IsWbMeasure(measure)) {
    return Status::InvalidArgument(
        "WB(k) requires a subquery-closed measure (tw or beta-ghw)");
  }
  return IsGloballyInWidth(tree, measure, k);
}

}  // namespace wdpt
