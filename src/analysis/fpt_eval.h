// Corollary 2: fixed-parameter tractable partial/maximal evaluation for
// WDPTs that are subsumption-equivalent to a well-behaved one.
//
// The (data-independent, potentially expensive) search for a WB(k)
// witness runs once at construction; PARTIAL-EVAL and MAX-EVAL queries
// then run against the witness, whose subtree CQs lie in C(k) and are
// therefore evaluated in polynomial time. Subsumption-equivalence
// preserves exactly the partial and maximal answers, so the answers
// over any database coincide with the original query's.

#ifndef WDPT_SRC_ANALYSIS_FPT_EVAL_H_
#define WDPT_SRC_ANALYSIS_FPT_EVAL_H_

#include <utility>

#include "src/analysis/semantic.h"
#include "src/common/status.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Optimize-once / evaluate-many handle for M(WB(k)) queries.
class OptimizedEvaluator {
 public:
  /// Searches for a WB(k) witness of `tree` (Theorem 13 machinery).
  /// Fails with kNotFound when no witness exists in the searched space.
  static Result<OptimizedEvaluator> Create(
      const PatternTree& tree, WidthMeasure measure, int k,
      const Schema* schema, Vocabulary* vocab,
      const SemanticSearchOptions& options = SemanticSearchOptions());

  /// The WB(k) witness the queries run against.
  const PatternTree& optimized() const { return witness_; }

  /// PARTIAL-EVAL of the original query via the witness.
  Result<bool> PartialEval(const Database& db, const Mapping& h) const;

  /// MAX-EVAL of the original query via the witness.
  Result<bool> MaxEval(const Database& db, const Mapping& h) const;

 private:
  explicit OptimizedEvaluator(PatternTree witness)
      : witness_(std::move(witness)) {}

  PatternTree witness_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_ANALYSIS_FPT_EVAL_H_
