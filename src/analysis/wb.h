// The well-behaved classes WB(k) = g-C(k) with C(k) in {TW(k), HW'(k)}
// (Section 5). The class must be closed under subqueries, which TW(k) is
// and HW'(k) (beta-hypertreewidth) is by definition; plain HW(k) is not
// and is therefore rejected here.

#ifndef WDPT_SRC_ANALYSIS_WB_H_
#define WDPT_SRC_ANALYSIS_WB_H_

#include "src/common/status.h"
#include "src/cq/approximation.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// True for the measures usable in WB(k) (subquery-closed).
bool IsWbMeasure(WidthMeasure measure);

/// Syntactic WB(k) membership: is the WDPT globally in C(k)?
/// `measure` must be kTreewidth or kBetaHypertreewidth.
Result<bool> IsInWB(const PatternTree& tree, WidthMeasure measure, int k);

}  // namespace wdpt

#endif  // WDPT_SRC_ANALYSIS_WB_H_
