#include "src/analysis/fpt_eval.h"

#include "src/wdpt/eval_max.h"
#include "src/wdpt/eval_partial.h"

namespace wdpt {

Result<OptimizedEvaluator> OptimizedEvaluator::Create(
    const PatternTree& tree, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const SemanticSearchOptions& options) {
  Result<std::optional<PatternTree>> witness =
      FindSubsumptionEquivalentInWB(tree, measure, k, schema, vocab,
                                    options);
  if (!witness.ok()) return witness.status();
  if (!witness->has_value()) {
    return Status::NotFound(
        "no WB(k) witness found in the searched space; the query may not "
        "be in M(WB(k))");
  }
  return OptimizedEvaluator(std::move(**witness));
}

Result<bool> OptimizedEvaluator::PartialEval(const Database& db,
                                             const Mapping& h) const {
  return wdpt::PartialEval(witness_, db, h);
}

Result<bool> OptimizedEvaluator::MaxEval(const Database& db,
                                         const Mapping& h) const {
  return wdpt::MaxEval(witness_, db, h);
}

}  // namespace wdpt
