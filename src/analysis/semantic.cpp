#include "src/analysis/semantic.h"

#include <unordered_map>

#include "src/common/algo.h"
#include "src/cq/cq.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/eval_partial.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

namespace {

// Rebuilds a PatternTree from kept nodes with (possibly merged) labels.
// `merged_label[n]` is the label of kept node n; `kept` flags the nodes;
// children of dropped nodes are dropped transitively by construction.
PatternTree RebuildTree(const PatternTree& tree,
                        const std::vector<bool>& kept,
                        const std::vector<std::vector<Atom>>& labels,
                        const std::vector<NodeId>& attach_parent) {
  PatternTree out;
  std::vector<NodeId> remap(tree.num_nodes(), PatternTree::kNoNode);
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (!kept[n]) continue;
    if (n == PatternTree::kRoot) {
      remap[n] = PatternTree::kRoot;
      for (const Atom& a : labels[n]) out.AddAtom(PatternTree::kRoot, a);
    } else {
      NodeId parent = remap[attach_parent[n]];
      WDPT_CHECK(parent != PatternTree::kNoNode);
      remap[n] = out.AddChild(parent, labels[n]);
    }
  }
  out.SetFreeVariables(tree.free_vars());
  return out;
}

}  // namespace

Result<PatternTree> Lemma1Prune(const PatternTree& tree) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  // Nodes introducing a free variable.
  std::vector<bool> introduces(tree.num_nodes(), false);
  for (VariableId v : tree.free_vars()) {
    NodeId top = tree.TopNode(v);
    if (top != PatternTree::kNoNode) introduces[top] = true;
  }
  // Keep nodes on root paths to introducing nodes.
  std::vector<bool> kept(tree.num_nodes(), false);
  kept[PatternTree::kRoot] = true;
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (!introduces[n]) continue;
    for (NodeId a = n; !kept[a]; a = tree.parent(a)) kept[a] = true;
  }

  // Merge a free-variable-less kept node with its only kept child: its
  // atoms move into the child and the node is dropped (the child attaches
  // to the grandparent).
  std::vector<std::vector<Atom>> labels(tree.num_nodes());
  std::vector<NodeId> attach_parent(tree.num_nodes(), PatternTree::kRoot);
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    labels[n] = tree.label(n);
    attach_parent[n] = tree.parent(n);
  }
  // Process top-down: node ids increase with depth.
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (!kept[n] || n == PatternTree::kRoot) continue;
    std::vector<NodeId> kept_children;
    for (NodeId c : tree.children(n)) {
      if (kept[c]) kept_children.push_back(c);
    }
    bool has_free = false;
    for (VariableId v : tree.node_vars(n)) {
      if (SortedContains(tree.free_vars(), v)) {
        has_free = true;
        break;
      }
    }
    if (!has_free && kept_children.size() == 1) {
      NodeId child = kept_children[0];
      labels[child].insert(labels[child].end(), labels[n].begin(),
                           labels[n].end());
      // Re-attach the child where n was attached (n may itself have been
      // merged away already, so follow attach_parent).
      attach_parent[child] = attach_parent[n];
      kept[n] = false;
    }
  }
  PatternTree out = RebuildTree(tree, kept, labels, attach_parent);
  out.NormalizeLabels();
  Status status = out.Validate();
  if (!status.ok()) {
    // Pruning preserves well-designedness; reaching this is a bug.
    return Status::Internal("pruned tree failed validation: " +
                            status.message());
  }
  return out;
}

Result<PatternTree> Lemma1Shrink(const PatternTree& p_prime,
                                 const PatternTree& p, const Schema* schema,
                                 Vocabulary* vocab,
                                 const SubsumptionOptions& options) {
  if (!p_prime.validated() || !p.validated()) {
    return Status::InvalidArgument("pattern trees must be validated");
  }
  Result<PatternTree> pruned_result = Lemma1Prune(p_prime);
  if (!pruned_result.ok()) return pruned_result.status();
  PatternTree pruned = std::move(*pruned_result);

  // used[n][i]: atom i of node n appears in the image of some witness.
  std::vector<std::vector<bool>> used(pruned.num_nodes());
  for (NodeId n = 0; n < pruned.num_nodes(); ++n) {
    used[n].assign(pruned.label(n).size(), false);
  }

  Status failure = Status::Ok();
  bool subsumed = true;
  bool complete = ForEachRootSubtree(
      pruned, options.max_subtrees, [&](const SubtreeMask& mask) {
        std::vector<Atom> atoms = SubtreeAtoms(pruned, mask);
        CanonicalDatabase canonical =
            BuildCanonicalDatabase(atoms, schema, vocab);
        std::vector<VariableId> answer_vars = SortedIntersection(
            SubtreeVariables(pruned, mask), pruned.free_vars());
        Mapping a = canonical.FreezeMapping(answer_vars);
        Result<bool> is_answer = EvalNaive(pruned, canonical.db, a);
        if (!is_answer.ok()) {
          failure = is_answer.status();
          return false;
        }
        if (!*is_answer) return true;
        Result<std::optional<Mapping>> witness =
            PartialEvalWitness(p, canonical.db, a);
        if (!witness.ok()) {
          failure = witness.status();
          return false;
        }
        if (!witness->has_value()) {
          subsumed = false;  // p_prime is not subsumed by p.
          return false;
        }
        // Image facts of the witness: ground instances of p's minimal
        // subtree; mark the matching frozen atoms of `pruned` as used.
        SubtreeMask p_minimal =
            MinimalSubtreeContaining(p, a.Domain());
        std::vector<Atom> image =
            SubstituteMapping(SubtreeAtoms(p, p_minimal), **witness);
        // Freeze pruned's atoms the same way the canonical database did
        // and match against the image (both are ground).
        for (NodeId n = 0; n < pruned.num_nodes(); ++n) {
          if (!mask[n]) continue;
          for (size_t i = 0; i < pruned.label(n).size(); ++i) {
            if (used[n][i]) continue;
            Atom frozen = pruned.label(n)[i];
            for (Term& t : frozen.terms) {
              if (t.is_variable()) {
                auto it = canonical.frozen.find(t.variable_id());
                WDPT_CHECK(it != canonical.frozen.end());
                t = Term::Constant(it->second);
              }
            }
            for (const Atom& img : image) {
              if (img == frozen) {
                used[n][i] = true;
                break;
              }
            }
          }
        }
        return true;
      });
  if (!failure.ok()) return failure;
  if (!subsumed) {
    return Status::InvalidArgument("p_prime is not subsumed by p");
  }
  if (!complete) {
    return Status::ResourceExhausted("too many root subtrees in p_prime");
  }

  // Build the restricted tree.
  PatternTree restricted;
  for (NodeId n = 0; n < pruned.num_nodes(); ++n) {
    std::vector<Atom> label;
    for (size_t i = 0; i < pruned.label(n).size(); ++i) {
      if (used[n][i]) label.push_back(pruned.label(n)[i]);
    }
    if (n == PatternTree::kRoot) {
      for (Atom& atom : label) {
        restricted.AddAtom(PatternTree::kRoot, std::move(atom));
      }
    } else {
      restricted.AddChild(pruned.parent(n), std::move(label));
    }
  }
  restricted.SetFreeVariables(pruned.free_vars());
  if (!restricted.Validate().ok()) return pruned;  // Fallback.

  // Verify the sandwich p_prime [= restricted [= p.
  Result<bool> lower =
      IsSubsumedBy(p_prime, restricted, schema, vocab, options);
  if (!lower.ok()) return lower.status();
  if (!*lower) return pruned;
  Result<bool> upper = IsSubsumedBy(restricted, p, schema, vocab, options);
  if (!upper.ok()) return upper.status();
  if (!*upper) return pruned;
  return restricted;
}

Result<bool> ForEachWdptQuotient(
    const PatternTree& tree, uint64_t max_partitions,
    const std::function<bool(const PatternTree&)>& cb) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  std::vector<VariableId> vars = tree.AllVariables();
  const size_t n = vars.size();
  std::vector<bool> is_free(n, false);
  for (size_t i = 0; i < n; ++i) {
    is_free[i] = SortedContains(tree.free_vars(), vars[i]);
  }
  std::vector<uint32_t> class_of(n, 0);
  std::vector<uint32_t> class_free_count;
  uint64_t emitted = 0;
  bool complete = true;
  bool stopped = false;

  auto emit = [&](uint32_t num_classes) {
    std::vector<VariableId> representative(num_classes, UINT32_MAX);
    for (size_t j = 0; j < n; ++j) {
      uint32_t c = class_of[j];
      if (representative[c] == UINT32_MAX ||
          (is_free[j] &&
           !SortedContains(tree.free_vars(), representative[c]))) {
        representative[c] = vars[j];
      }
    }
    std::unordered_map<VariableId, VariableId> subst;
    for (size_t j = 0; j < n; ++j) {
      subst.emplace(vars[j], representative[class_of[j]]);
    }
    // Apply to every node label.
    PatternTree image;
    for (NodeId node = 0; node < tree.num_nodes(); ++node) {
      std::vector<Atom> label = tree.label(node);
      for (Atom& a : label) {
        for (Term& t : a.terms) {
          if (t.is_variable()) {
            t = Term::Variable(subst.at(t.variable_id()));
          }
        }
      }
      if (node == PatternTree::kRoot) {
        for (const Atom& a : label) image.AddAtom(PatternTree::kRoot, a);
      } else {
        image.AddChild(tree.parent(node), std::move(label));
      }
    }
    image.NormalizeLabels();
    image.SetFreeVariables(tree.free_vars());
    if (!image.Validate().ok()) return;  // Quotient broke connectedness.
    if (!cb(image)) stopped = true;
  };

  std::function<void(size_t, uint32_t)> recurse = [&](size_t i,
                                                      uint32_t num_classes) {
    if (stopped || !complete) return;
    if (i == n) {
      if (++emitted > max_partitions) {
        complete = false;
        return;
      }
      emit(num_classes);
      return;
    }
    for (uint32_t c = 0; c <= num_classes && !stopped && complete; ++c) {
      bool new_class = (c == num_classes);
      if (new_class) class_free_count.push_back(0);
      if (is_free[i] && class_free_count[c] >= 1) {
        if (new_class) class_free_count.pop_back();
        continue;
      }
      class_of[i] = c;
      if (is_free[i]) ++class_free_count[c];
      recurse(i + 1, new_class ? num_classes + 1 : num_classes);
      if (is_free[i]) --class_free_count[c];
      if (new_class) class_free_count.pop_back();
    }
  };
  recurse(0, 0);
  return complete;
}

Result<std::optional<PatternTree>> FindSubsumptionEquivalentInWB(
    const PatternTree& tree, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const SemanticSearchOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  // Fast path: p itself (pruned) is already in WB(k).
  Result<PatternTree> pruned_result = Lemma1Prune(tree);
  if (!pruned_result.ok()) return pruned_result.status();
  PatternTree pruned = std::move(*pruned_result);
  Result<bool> in_wb = IsInWB(pruned, measure, k);
  if (!in_wb.ok()) return in_wb.status();
  if (*in_wb) return std::optional<PatternTree>(pruned);

  std::optional<PatternTree> witness;
  Status failure = Status::Ok();
  Result<bool> complete = ForEachWdptQuotient(
      pruned, options.max_partitions, [&](const PatternTree& quotient) {
        Result<PatternTree> candidate_result = Lemma1Prune(quotient);
        if (!candidate_result.ok()) {
          failure = candidate_result.status();
          return false;
        }
        PatternTree candidate = std::move(*candidate_result);
        Result<bool> ok = IsInWB(candidate, measure, k);
        if (!ok.ok()) {
          failure = ok.status();
          return false;
        }
        bool in_class = *ok;
        if (!in_class && options.use_lemma1_shrink) {
          // Unused atoms may be the only source of width: shrink against
          // the original and retry.
          Result<PatternTree> shrunk = Lemma1Shrink(
              candidate, tree, schema, vocab, options.subsumption);
          if (shrunk.ok()) {
            Result<bool> shrunk_ok = IsInWB(*shrunk, measure, k);
            if (!shrunk_ok.ok()) {
              failure = shrunk_ok.status();
              return false;
            }
            if (*shrunk_ok) {
              candidate = std::move(*shrunk);
              in_class = true;
            }
          }
        }
        if (!in_class) return true;
        Result<bool> equivalent = SubsumptionEquivalent(
            tree, candidate, schema, vocab, options.subsumption);
        if (!equivalent.ok()) {
          failure = equivalent.status();
          return false;
        }
        if (*equivalent) {
          witness = candidate;
          return false;
        }
        return true;
      });
  if (!failure.ok()) return failure;
  if (!complete.ok()) return complete.status();
  if (witness.has_value()) return witness;
  if (!*complete) {
    return Status::ResourceExhausted(
        "quotient enumeration exceeded max_partitions");
  }
  return std::optional<PatternTree>();
}

}  // namespace wdpt
