#include "src/analysis/subsumption.h"

#include "src/common/algo.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/eval_partial.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

Result<bool> IsSubsumedBy(const PatternTree& p1, const PatternTree& p2,
                          const Schema* schema, Vocabulary* vocab,
                          const SubsumptionOptions& options) {
  if (!p1.validated() || !p2.validated()) {
    return Status::InvalidArgument("pattern trees must be validated");
  }
  bool subsumed = true;
  Status failure = Status::Ok();
  bool complete = ForEachRootSubtree(
      p1, options.max_subtrees, [&](const SubtreeMask& mask) {
        // Canonical database of the subtree and the frozen answer a_T1.
        std::vector<Atom> atoms = SubtreeAtoms(p1, mask);
        CanonicalDatabase canonical =
            BuildCanonicalDatabase(atoms, schema, vocab);
        std::vector<VariableId> answer_vars = SortedIntersection(
            SubtreeVariables(p1, mask), p1.free_vars());
        Mapping a = canonical.FreezeMapping(answer_vars);

        // Filter: a_T1 must be an answer of p1 over D_T1 (i.e. the frozen
        // homomorphism is maximal up to existential extensions).
        Result<bool> is_answer = EvalNaive(p1, canonical.db, a);
        if (!is_answer.ok()) {
          failure = is_answer.status();
          return false;
        }
        if (!*is_answer) return true;  // Subtree contributes no obligation.

        Result<bool> partial =
            PartialEval(p2, canonical.db, a, options.cq_options);
        if (!partial.ok()) {
          failure = partial.status();
          return false;
        }
        if (!*partial) {
          subsumed = false;
          return false;
        }
        return true;
      });
  if (!failure.ok()) return failure;
  if (!subsumed) return false;
  if (!complete) {
    return Status::ResourceExhausted("too many root subtrees in p1");
  }
  return true;
}

Result<bool> SubsumptionEquivalent(const PatternTree& p1,
                                   const PatternTree& p2,
                                   const Schema* schema, Vocabulary* vocab,
                                   const SubsumptionOptions& options) {
  Result<bool> forward = IsSubsumedBy(p1, p2, schema, vocab, options);
  if (!forward.ok() || !*forward) return forward;
  return IsSubsumedBy(p2, p1, schema, vocab, options);
}

}  // namespace wdpt
