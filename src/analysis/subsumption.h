// Subsumption and subsumption-equivalence of WDPTs (Section 4).
//
// p1 [= p2 iff for every database D, every answer of p1 over D is
// subsumed by an answer of p2 over D. The test reduces to the canonical
// databases of the root subtrees of p1:
//
//   p1 [= p2  iff  for every root subtree T1 of p1 such that the frozen
//   assignment a_T1 is an answer of p1 over the canonical database D_T1,
//   a_T1 is a *partial* answer of p2 over D_T1.
//
// (=>) is immediate. (<=): given any D and h in p1(D) witnessed by a
// maximal homomorphism on subtree T1, the witness factors through D_T1:
// maximality makes a_T1 an answer of p1(D_T1); the partial answer of p2
// composes with the witness homomorphism D_T1 -> D and extends to a
// maximal answer of p2 over D subsuming h.
//
// The universal quantification over root subtrees gives the Pi2P upper
// bound; when p2 is globally tractable the inner partial-answer check is
// polynomial, which is the source of the coNP bound of Theorem 11 (note
// the asymmetry: only p2's class matters for the inner check).

#ifndef WDPT_SRC_ANALYSIS_SUBSUMPTION_H_
#define WDPT_SRC_ANALYSIS_SUBSUMPTION_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Options for the subsumption test.
struct SubsumptionOptions {
  /// Cap on enumerated root subtrees of the left WDPT.
  uint64_t max_subtrees = uint64_t{1} << 22;
  /// Evaluation options for the inner CQ decisions.
  CqEvalOptions cq_options;
};

/// SUBSUMPTION: p1 [= p2? Both trees must be validated and share the
/// schema/vocabulary.
Result<bool> IsSubsumedBy(const PatternTree& p1, const PatternTree& p2,
                          const Schema* schema, Vocabulary* vocab,
                          const SubsumptionOptions& options =
                              SubsumptionOptions());

/// [=-EQUIVALENCE: p1 [= p2 and p2 [= p1. By Proposition 5 this coincides
/// with max-equivalence (p1 and p2 have the same maximal answers over
/// every database).
Result<bool> SubsumptionEquivalent(const PatternTree& p1,
                                   const PatternTree& p2,
                                   const Schema* schema, Vocabulary* vocab,
                                   const SubsumptionOptions& options =
                                       SubsumptionOptions());

/// MAXEQUIVALENCE: p1_m(D) == p2_m(D) over every database. Identical to
/// subsumption-equivalence (Proposition 5); provided as a named alias.
inline Result<bool> MaxEquivalent(const PatternTree& p1,
                                  const PatternTree& p2,
                                  const Schema* schema, Vocabulary* vocab,
                                  const SubsumptionOptions& options =
                                      SubsumptionOptions()) {
  return SubsumptionEquivalent(p1, p2, schema, vocab, options);
}

}  // namespace wdpt

#endif  // WDPT_SRC_ANALYSIS_SUBSUMPTION_H_
