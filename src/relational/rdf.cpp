#include "src/relational/rdf.h"

#include "src/common/status.h"

namespace wdpt {

RdfContext::RdfContext() {
  Result<RelationId> id = schema_.AddRelation("triple", 3);
  WDPT_CHECK(id.ok());
  triple_ = id.value();
}

Term RdfContext::ParseTerm(std::string_view token) {
  if (!token.empty() && token[0] == '?') {
    return vocab_.Variable(token.substr(1));
  }
  return vocab_.Constant(token);
}

Atom RdfContext::TriplePattern(std::string_view s, std::string_view p,
                               std::string_view o) {
  return Atom(triple_, {ParseTerm(s), ParseTerm(p), ParseTerm(o)});
}

void RdfContext::AddTriple(Database* db, std::string_view s,
                           std::string_view p, std::string_view o) {
  ConstantId tuple[3] = {vocab_.ConstantIdOf(s), vocab_.ConstantIdOf(p),
                         vocab_.ConstantIdOf(o)};
  Status status = db->AddFact(triple_, tuple);
  WDPT_CHECK(status.ok());
}

}  // namespace wdpt
