// Terms: interned constants and variables, plus the Vocabulary interner.
//
// The paper works with disjoint countably infinite sets U (constants) and
// X (variables). We intern both into dense 32-bit id spaces; a Term is a
// tagged id. All structures in the library (atoms, databases, mappings)
// speak ids; a Vocabulary translates to and from the user's strings.

#ifndef WDPT_SRC_RELATIONAL_TERM_H_
#define WDPT_SRC_RELATIONAL_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace wdpt {

/// Dense id of an interned constant (element of U).
using ConstantId = uint32_t;
/// Dense id of an interned variable (element of X).
using VariableId = uint32_t;

/// A term is either a constant or a variable, stored as a tagged 32-bit id.
class Term {
 public:
  /// Constructs the constant term with interned id `id`.
  static Term Constant(ConstantId id) { return Term((id << 1) | 1u); }
  /// Constructs the variable term with interned id `id`.
  static Term Variable(VariableId id) { return Term(id << 1); }

  Term() : raw_(0) {}  // Defaults to variable 0; prefer the factories.

  bool is_constant() const { return (raw_ & 1u) != 0; }
  bool is_variable() const { return (raw_ & 1u) == 0; }

  /// Id accessors; the kind must match.
  ConstantId constant_id() const {
    WDPT_DCHECK(is_constant());
    return raw_ >> 1;
  }
  VariableId variable_id() const {
    WDPT_DCHECK(is_variable());
    return raw_ >> 1;
  }

  /// Raw tagged representation, usable as a hash/sort key.
  uint32_t raw() const { return raw_; }

  friend bool operator==(Term a, Term b) { return a.raw_ == b.raw_; }
  friend bool operator!=(Term a, Term b) { return a.raw_ != b.raw_; }
  friend bool operator<(Term a, Term b) { return a.raw_ < b.raw_; }

 private:
  explicit Term(uint32_t raw) : raw_(raw) {}

  uint32_t raw_;
};

/// Bidirectional string <-> dense id interner.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = default;
  Interner& operator=(const Interner&) = default;

  /// Returns the id for `name`, interning it on first use.
  uint32_t Intern(std::string_view name);

  /// Returns the id of `name` if interned, or kNotInterned.
  static constexpr uint32_t kNotInterned = UINT32_MAX;
  uint32_t Find(std::string_view name) const;

  /// Returns the name of an interned id.
  const std::string& NameOf(uint32_t id) const;

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

/// Shared constant/variable name spaces for a set of queries and databases.
///
/// Queries and the databases they are evaluated over must use the same
/// Vocabulary so that constant ids agree.
class Vocabulary {
 public:
  Vocabulary() = default;
  Vocabulary(const Vocabulary&) = default;
  Vocabulary& operator=(const Vocabulary&) = default;

  /// Interns a constant name and returns its term.
  Term Constant(std::string_view name) {
    return Term::Constant(constants_.Intern(name));
  }
  /// Interns a variable name and returns its term.
  Term Variable(std::string_view name) {
    return Term::Variable(variables_.Intern(name));
  }

  /// Interns and returns raw ids.
  ConstantId ConstantIdOf(std::string_view name) {
    return constants_.Intern(name);
  }
  /// Id of a constant if already interned, Interner::kNotInterned
  /// otherwise — a pure lookup, so callers (e.g. WAL remove-replay) can
  /// probe without growing the vocabulary.
  ConstantId FindConstant(std::string_view name) const {
    return constants_.Find(name);
  }
  VariableId VariableIdOf(std::string_view name) {
    return variables_.Intern(name);
  }

  /// Mints a fresh variable not used before, named `<prefix>#<n>`.
  VariableId FreshVariable(std::string_view prefix = "_v");
  /// Mints a fresh constant not used before, named `<prefix>#<n>`.
  ConstantId FreshConstant(std::string_view prefix = "_c");

  const std::string& ConstantName(ConstantId id) const {
    return constants_.NameOf(id);
  }
  const std::string& VariableName(VariableId id) const {
    return variables_.NameOf(id);
  }

  /// Renders a term as "?x" for variables and the plain name for constants.
  std::string TermName(Term t) const;

  size_t num_constants() const { return constants_.size(); }
  size_t num_variables() const { return variables_.size(); }

 private:
  Interner constants_;
  Interner variables_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_TERM_H_
