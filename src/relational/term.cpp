#include "src/relational/term.h"

namespace wdpt {

uint32_t Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

uint32_t Interner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNotInterned : it->second;
}

const std::string& Interner::NameOf(uint32_t id) const {
  WDPT_CHECK(id < names_.size());
  return names_[id];
}

VariableId Vocabulary::FreshVariable(std::string_view prefix) {
  while (true) {
    std::string name(prefix);
    name += '#';
    name += std::to_string(fresh_counter_++);
    if (variables_.Find(name) == Interner::kNotInterned) {
      return variables_.Intern(name);
    }
  }
}

ConstantId Vocabulary::FreshConstant(std::string_view prefix) {
  while (true) {
    std::string name(prefix);
    name += '#';
    name += std::to_string(fresh_counter_++);
    if (constants_.Find(name) == Interner::kNotInterned) {
      return constants_.Intern(name);
    }
  }
}

std::string Vocabulary::TermName(Term t) const {
  if (t.is_variable()) return "?" + VariableName(t.variable_id());
  return ConstantName(t.constant_id());
}

}  // namespace wdpt
