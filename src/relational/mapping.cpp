#include "src/relational/mapping.h"

#include <algorithm>

#include "src/common/algo.h"
#include "src/common/hash.h"
#include "src/common/status.h"

namespace wdpt {

Mapping::Mapping(std::vector<Entry> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end());
  for (size_t i = 1; i < entries_.size(); ++i) {
    WDPT_CHECK(entries_[i - 1].first != entries_[i].first);
  }
}

std::optional<ConstantId> Mapping::Get(VariableId v) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const Entry& e, VariableId x) { return e.first < x; });
  if (it != entries_.end() && it->first == v) return it->second;
  return std::nullopt;
}

bool Mapping::Bind(VariableId v, ConstantId c) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const Entry& e, VariableId x) { return e.first < x; });
  if (it != entries_.end() && it->first == v) return it->second == c;
  entries_.insert(it, Entry(v, c));
  return true;
}

std::vector<VariableId> Mapping::Domain() const {
  std::vector<VariableId> dom;
  dom.reserve(entries_.size());
  for (const Entry& e : entries_) dom.push_back(e.first);
  return dom;
}

bool Mapping::IsSubsumedBy(const Mapping& other) const {
  if (entries_.size() > other.entries_.size()) return false;
  for (const Entry& e : entries_) {
    std::optional<ConstantId> c = other.Get(e.first);
    if (!c.has_value() || *c != e.second) return false;
  }
  return true;
}

bool Mapping::IsStrictlySubsumedBy(const Mapping& other) const {
  return entries_.size() < other.entries_.size() && IsSubsumedBy(other);
}

bool Mapping::CompatibleWith(const Mapping& other) const {
  const Mapping& small = entries_.size() <= other.entries_.size() ? *this
                                                                  : other;
  const Mapping& big = entries_.size() <= other.entries_.size() ? other
                                                                : *this;
  for (const Entry& e : small.entries_) {
    std::optional<ConstantId> c = big.Get(e.first);
    if (c.has_value() && *c != e.second) return false;
  }
  return true;
}

std::optional<Mapping> Mapping::Union(const Mapping& a, const Mapping& b) {
  if (!a.CompatibleWith(b)) return std::nullopt;
  std::vector<Entry> merged;
  merged.reserve(a.entries_.size() + b.entries_.size());
  std::merge(a.entries_.begin(), a.entries_.end(), b.entries_.begin(),
             b.entries_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return Mapping(std::move(merged));
}

Mapping Mapping::RestrictTo(const std::vector<VariableId>& vars) const {
  std::vector<Entry> kept;
  for (const Entry& e : entries_) {
    if (SortedContains(vars, e.first)) kept.push_back(e);
  }
  return Mapping(std::move(kept));
}

std::string Mapping::ToString(const Vocabulary& vocab) const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ", ";
    out += vocab.VariableName(entries_[i].first);
    out += " -> ";
    out += vocab.ConstantName(entries_[i].second);
  }
  out += '}';
  return out;
}

size_t Mapping::Hash() const {
  size_t seed = entries_.size();
  for (const Entry& e : entries_) {
    HashCombine(&seed, e.first);
    HashCombine(&seed, e.second);
  }
  return seed;
}

}  // namespace wdpt
