// Partial mappings h : X -> U and the subsumption order on them.
//
// Answers of WDPTs are partial mappings from variables to constants. The
// subsumption order (Section 2 of the paper): h [= h' iff dom(h) is a
// subset of dom(h') and both agree on dom(h).

#ifndef WDPT_SRC_RELATIONAL_MAPPING_H_
#define WDPT_SRC_RELATIONAL_MAPPING_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/relational/term.h"

namespace wdpt {

/// A partial mapping from variables to constants, stored as a sorted
/// vector of (variable, constant) pairs. Value semantics; cheap to copy
/// at query-answer sizes.
class Mapping {
 public:
  using Entry = std::pair<VariableId, ConstantId>;

  Mapping() = default;
  /// Builds a mapping from entries (sorted and checked for duplicates).
  explicit Mapping(std::vector<Entry> entries);

  /// The empty mapping (defined nowhere).
  static Mapping Empty() { return Mapping(); }

  /// The constant assigned to `v`, if any.
  std::optional<ConstantId> Get(VariableId v) const;

  /// True if `v` is in the domain.
  bool IsDefinedOn(VariableId v) const { return Get(v).has_value(); }

  /// Binds v -> c. Returns false (and leaves the mapping unchanged) if v is
  /// already bound to a different constant.
  bool Bind(VariableId v, ConstantId c);

  /// Sorted domain of the mapping.
  std::vector<VariableId> Domain() const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Subsumption: *this [= other.
  bool IsSubsumedBy(const Mapping& other) const;

  /// Strict subsumption: *this [= other and not other [= *this.
  bool IsStrictlySubsumedBy(const Mapping& other) const;

  /// True if the two mappings agree on all shared variables.
  bool CompatibleWith(const Mapping& other) const;

  /// Union of compatible mappings; nullopt if they conflict.
  static std::optional<Mapping> Union(const Mapping& a, const Mapping& b);

  /// Restriction of the mapping to the sorted variable set `vars`.
  Mapping RestrictTo(const std::vector<VariableId>& vars) const;

  /// Renders "{x -> a, y -> b}".
  std::string ToString(const Vocabulary& vocab) const;

  friend bool operator==(const Mapping& a, const Mapping& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator<(const Mapping& a, const Mapping& b) {
    return a.entries_ < b.entries_;
  }

  /// Hash over all entries (for unordered containers of answers).
  size_t Hash() const;

 private:
  std::vector<Entry> entries_;
};

/// std::hash adapter for Mapping.
struct MappingHash {
  size_t operator()(const Mapping& m) const { return m.Hash(); }
};

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_MAPPING_H_
