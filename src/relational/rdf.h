// RDF view: the single-ternary-relation schema used by semantic-web WDPTs.
//
// "RDF WDPTs" in the paper are WDPTs over a schema with one ternary
// relation. This helper owns that schema plus a Vocabulary and offers
// triple-flavoured convenience constructors.

#ifndef WDPT_SRC_RELATIONAL_RDF_H_
#define WDPT_SRC_RELATIONAL_RDF_H_

#include <string_view>

#include "src/relational/atom.h"
#include "src/relational/database.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// Owns a schema with the single ternary relation `triple` and a
/// vocabulary, and builds triple atoms/facts.
class RdfContext {
 public:
  RdfContext();

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }
  Vocabulary& vocab() { return vocab_; }
  const Vocabulary& vocab() const { return vocab_; }
  RelationId triple_relation() const { return triple_; }

  /// Builds the triple-pattern atom (s, p, o); each argument is either a
  /// variable ("?x") or a constant (anything not starting with '?').
  Atom TriplePattern(std::string_view s, std::string_view p,
                     std::string_view o);

  /// Adds the ground triple (s, p, o) to `db` (which must use schema()).
  void AddTriple(Database* db, std::string_view s, std::string_view p,
                 std::string_view o);

  /// Creates an empty database over the RDF schema.
  Database MakeDatabase() const { return Database(&schema_); }

  /// Parses "?x" as a variable term, otherwise a constant term.
  Term ParseTerm(std::string_view token);

 private:
  Schema schema_;
  Vocabulary vocab_;
  RelationId triple_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_RDF_H_
