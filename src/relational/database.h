// Databases: sets of ground atoms with per-column hash indexes.
//
// A Database stores one Relation per relation symbol of its Schema. Tuples
// are deduplicated (a database is a *set* of facts). Per-column indexes are
// built lazily and power the homomorphism search in src/cq/.

#ifndef WDPT_SRC_RELATIONAL_DATABASE_H_
#define WDPT_SRC_RELATIONAL_DATABASE_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/relational/atom.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// One stored relation: a deduplicated list of fixed-arity tuples.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return arity_ == 0 ? 0 : data_.size() / arity_; }

  /// Returns the `row`-th tuple.
  std::span<const ConstantId> Tuple(size_t row) const {
    return std::span<const ConstantId>(data_.data() + row * arity_, arity_);
  }

  /// Inserts a tuple; returns false if it was already present.
  bool Insert(std::span<const ConstantId> tuple);

  /// Removes a tuple; returns false if it was absent. The last row is
  /// swapped into the vacated slot and any built column indexes are
  /// dropped (rebuilt lazily or by the next WarmColumnIndexes), so this
  /// is for *private* databases — the storage layer's mutable authority
  /// — never for a published, shared snapshot.
  bool Remove(std::span<const ConstantId> tuple);

  /// Pre-sizes storage for `rows` tuples (bulk loads).
  void Reserve(size_t rows) {
    data_.reserve(rows * arity_);
    tuple_index_.reserve(rows);
  }

  /// True if the exact tuple is stored.
  bool Contains(std::span<const ConstantId> tuple) const;

  /// Rows whose column `col` holds `value`. Builds the column index on
  /// first use. The returned reference is invalidated by Insert.
  ///
  /// The lazy build mutates shared state, so concurrent first-touch reads
  /// race; call WarmColumnIndexes (directly or via the Database) before
  /// sharing a relation across threads.
  const std::vector<uint32_t>& RowsMatching(uint32_t col,
                                            ConstantId value) const;

  /// Eagerly builds every per-column index. After this call, RowsMatching
  /// is a pure read and safe to invoke from multiple threads concurrently
  /// (as long as no Insert runs).
  void WarmColumnIndexes() const;

 private:
  size_t TupleHash(std::span<const ConstantId> tuple) const;
  bool TupleEquals(size_t row, std::span<const ConstantId> tuple) const;
  void EnsureColumnIndex(uint32_t col) const;

  uint32_t arity_;
  std::vector<ConstantId> data_;  // Flat row-major tuple storage.
  // Exact-tuple index: hash -> candidate rows (collision chains).
  std::unordered_map<size_t, std::vector<uint32_t>> tuple_index_;
  // Lazily built per-column indexes: value -> rows.
  mutable std::vector<std::unordered_map<ConstantId, std::vector<uint32_t>>>
      column_index_;
  mutable std::vector<bool> column_index_built_;
};

/// A database over a Schema: one Relation per relation symbol.
class Database {
 public:
  /// Creates an empty database. `schema` must outlive the database and may
  /// gain additional relations afterwards.
  explicit Database(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  /// Adds the fact R(tuple). Fails if the arity does not match.
  Status AddFact(RelationId relation, std::span<const ConstantId> tuple);

  /// Adds a ground atom. Fails if the atom has variables or bad arity.
  Status AddAtom(const Atom& atom);

  /// Removes the fact R(tuple); returns false if it was absent (or the
  /// relation never stored anything). See Relation::Remove for the
  /// sharing caveat.
  bool RemoveFact(RelationId relation, std::span<const ConstantId> tuple);

  /// Pre-sizes the relation's storage for `rows` facts (bulk loads).
  /// The relation must exist in the schema.
  void Reserve(RelationId relation, size_t rows) {
    MutableRelation(relation)->Reserve(rows);
  }

  /// Copies the database, rebinding it to `schema` — which must
  /// describe the same relations (typically the schema of a copied
  /// context). This is how the storage layer turns its mutable
  /// authority into a self-contained immutable snapshot.
  Database CloneWithSchema(const Schema* schema) const {
    Database copy(*this);
    copy.schema_ = schema;
    return copy;
  }

  /// True if the fact is present.
  bool ContainsFact(RelationId relation,
                    std::span<const ConstantId> tuple) const;

  /// Relation accessor (empty relation if nothing was inserted).
  const Relation& relation(RelationId id) const;

  /// Total number of stored facts.
  size_t TotalFacts() const;

  /// Sorted list of all constants appearing in some fact.
  std::vector<ConstantId> ActiveDomain() const;

  /// Eagerly builds all per-column indexes of all relations, making
  /// subsequent lookups read-only. The Engine calls this before fanning
  /// evaluation tasks across threads.
  void WarmColumnIndexes() const;

  /// Renders all facts, one per line (for debugging and small examples).
  std::string ToString(const Vocabulary& vocab) const;

 private:
  Relation* MutableRelation(RelationId id);

  const Schema* schema_;
  std::vector<Relation> relations_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_DATABASE_H_
