// Databases: sets of ground atoms with columnar CSR column indexes.
//
// A Database stores one Relation per relation symbol of its Schema. Tuples
// are deduplicated (a database is a *set* of facts). Per-column indexes
// power the homomorphism search in src/cq/: each column has an immutable
// CSR-style adjacency index — one sorted distinct-value array, one
// offsets array, one packed row-id array — built in a single pass by
// WarmColumnIndexes (or lazily on first probe for private databases) and
// probed by binary search into std::span views, with no per-value heap
// vectors. The same build pass gathers per-column statistics (distinct
// values, max fan-out) that drive the kernel's join ordering.
//
// Mutations (Insert/Remove) do not patch the CSR arrays; they mark the
// built indexes stale in O(1), and the next warm/probe rebuilds once.
// A WAL batch of N removes therefore costs one rebuild on the next
// read, not N. Published snapshots call Freeze() after warming, which
// turns any later would-be lazy rebuild into a hard failure instead of
// a data race (see RowsMatching).

#ifndef WDPT_SRC_RELATIONAL_DATABASE_H_
#define WDPT_SRC_RELATIONAL_DATABASE_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/relational/atom.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// One stored relation: a deduplicated list of fixed-arity tuples.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return arity_ == 0 ? 0 : data_.size() / arity_; }

  /// Per-column statistics, gathered during the CSR index build.
  /// Combined with size() they give the kernel its selectivity
  /// estimates: a probe for one value of column c is expected to match
  /// size() / distinct_values rows, and never more than max_fanout.
  struct ColumnStats {
    uint32_t distinct_values = 0;  ///< Distinct constants in the column.
    uint32_t max_fanout = 0;       ///< Largest posting list (rows per value).
  };

  /// Returns the `row`-th tuple.
  std::span<const ConstantId> Tuple(size_t row) const {
    return std::span<const ConstantId>(data_.data() + row * arity_, arity_);
  }

  /// Inserts a tuple; returns false if it was already present. Marks
  /// built column indexes stale (they rebuild on the next warm/probe).
  bool Insert(std::span<const ConstantId> tuple);

  /// Removes a tuple; returns false if it was absent. The last row is
  /// swapped into the vacated slot and built column indexes are marked
  /// stale — a batch of N removes costs one rebuild on the next read,
  /// not N. For *private* databases — the storage layer's mutable
  /// authority — never for a published, frozen snapshot.
  bool Remove(std::span<const ConstantId> tuple);

  /// Pre-sizes storage for `rows` tuples (bulk loads).
  void Reserve(size_t rows) {
    data_.reserve(rows * arity_);
    tuple_index_.reserve(rows);
  }

  /// True if the exact tuple is stored.
  bool Contains(std::span<const ConstantId> tuple) const;

  /// Row ids (ascending) whose column `col` holds `value`, as a view
  /// into the CSR index. Builds the index on first use unless the
  /// relation is frozen; the view is invalidated by the next mutation
  /// or rebuild.
  ///
  /// The lazy build mutates shared state, so concurrent first-touch
  /// reads race; shared databases must be warmed (and are Freeze()-d by
  /// the snapshot layer, making an unwarmed probe a WDPT_CHECK failure
  /// rather than a race) before crossing threads.
  std::span<const uint32_t> RowsMatching(uint32_t col, ConstantId value) const;

  /// Statistics for `col`, building the CSR indexes if needed (same
  /// freeze/laziness contract as RowsMatching).
  const ColumnStats& column_stats(uint32_t col) const;

  /// Eagerly builds the CSR index of every column in one pass. After
  /// this call RowsMatching/column_stats are pure reads and safe to
  /// invoke from multiple threads concurrently (as long as no mutation
  /// runs).
  void WarmColumnIndexes() const;

  /// True when the CSR indexes are built and current (no mutation since
  /// the last build).
  bool warmed() const { return index_built_ && !index_stale_; }

  /// Marks the relation as published: it must already be warmed, and
  /// from now on a probe that would need a lazy (re)build aborts
  /// instead of mutating shared state. Mutations themselves stay legal
  /// on the storage authority's private copies only — a frozen
  /// relation's Insert/Remove also aborts.
  void Freeze() const;

  bool frozen() const { return frozen_; }

 private:
  // CSR column index: rows[offsets[i] .. offsets[i+1]) are the
  // ascending row ids whose column holds values[i]; values is sorted.
  struct ColumnIndex {
    std::vector<ConstantId> values;
    std::vector<uint32_t> offsets;
    std::vector<uint32_t> rows;
    ColumnStats stats;
  };

  size_t TupleHash(std::span<const ConstantId> tuple) const;
  bool TupleEquals(size_t row, std::span<const ConstantId> tuple) const;
  void EnsureIndexes() const;
  void BuildIndexes() const;
  void MarkIndexesStale() {
    WDPT_CHECK(!frozen_);
    if (index_built_) index_stale_ = true;
  }

  // Database::CloneWithSchema un-freezes the relations of a copy.
  friend class Database;

  uint32_t arity_;
  std::vector<ConstantId> data_;  // Flat row-major tuple storage.
  // Exact-tuple index: hash -> candidate rows (collision chains).
  std::unordered_map<size_t, std::vector<uint32_t>> tuple_index_;
  // CSR per-column indexes, all built together (lazily or by
  // WarmColumnIndexes); `stale` marks a pending rebuild after mutation.
  mutable std::vector<ColumnIndex> column_index_;
  mutable bool index_built_ = false;
  mutable bool index_stale_ = false;
  mutable bool frozen_ = false;
};

/// A database over a Schema: one Relation per relation symbol.
class Database {
 public:
  /// Creates an empty database. `schema` must outlive the database and may
  /// gain additional relations afterwards.
  explicit Database(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  /// Adds the fact R(tuple). Fails if the arity does not match.
  Status AddFact(RelationId relation, std::span<const ConstantId> tuple);

  /// Adds a ground atom. Fails if the atom has variables or bad arity.
  Status AddAtom(const Atom& atom);

  /// Removes the fact R(tuple); returns false if it was absent (or the
  /// relation never stored anything). See Relation::Remove for the
  /// sharing caveat.
  bool RemoveFact(RelationId relation, std::span<const ConstantId> tuple);

  /// Pre-sizes the relation's storage for `rows` facts (bulk loads).
  /// The relation must exist in the schema.
  void Reserve(RelationId relation, size_t rows) {
    MutableRelation(relation)->Reserve(rows);
  }

  /// Copies the database, rebinding it to `schema` — which must
  /// describe the same relations (typically the schema of a copied
  /// context). This is how the storage layer turns its mutable
  /// authority into a self-contained immutable snapshot. The copy is
  /// never frozen, whatever the source was.
  Database CloneWithSchema(const Schema* schema) const;

  /// True if the fact is present.
  bool ContainsFact(RelationId relation,
                    std::span<const ConstantId> tuple) const;

  /// Relation accessor (empty relation if nothing was inserted).
  const Relation& relation(RelationId id) const;

  /// Total number of stored facts.
  size_t TotalFacts() const;

  /// Sorted list of all constants appearing in some fact.
  std::vector<ConstantId> ActiveDomain() const;

  /// Eagerly builds all per-column CSR indexes of all relations, making
  /// subsequent lookups read-only. The Engine calls this before fanning
  /// evaluation tasks across threads.
  void WarmColumnIndexes() const;

  /// Warms, then marks every relation as published: later lazy rebuilds
  /// (and mutations) abort instead of racing. Called by the snapshot
  /// layer on databases it is about to share across threads.
  void Freeze() const;

  /// True when every relation's indexes are built and current.
  bool warmed() const;

  /// Renders all facts, one per line (for debugging and small examples).
  std::string ToString(const Vocabulary& vocab) const;

 private:
  Relation* MutableRelation(RelationId id);

  const Schema* schema_;
  std::vector<Relation> relations_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_DATABASE_H_
