#include "src/relational/database.h"

#include <algorithm>
#include <numeric>

#include "src/common/algo.h"
#include "src/common/hash.h"

namespace wdpt {

size_t Relation::TupleHash(std::span<const ConstantId> tuple) const {
  size_t seed = tuple.size();
  for (ConstantId c : tuple) HashCombine(&seed, std::hash<ConstantId>()(c));
  return seed;
}

bool Relation::TupleEquals(size_t row,
                           std::span<const ConstantId> tuple) const {
  std::span<const ConstantId> stored = Tuple(row);
  return std::equal(stored.begin(), stored.end(), tuple.begin());
}

bool Relation::Insert(std::span<const ConstantId> tuple) {
  WDPT_CHECK(tuple.size() == arity_);
  size_t h = TupleHash(tuple);
  std::vector<uint32_t>& chain = tuple_index_[h];
  for (uint32_t row : chain) {
    if (TupleEquals(row, tuple)) return false;
  }
  MarkIndexesStale();
  uint32_t row = static_cast<uint32_t>(size());
  data_.insert(data_.end(), tuple.begin(), tuple.end());
  chain.push_back(row);
  return true;
}

bool Relation::Remove(std::span<const ConstantId> tuple) {
  if (tuple.size() != arity_) return false;
  size_t h = TupleHash(tuple);
  auto it = tuple_index_.find(h);
  if (it == tuple_index_.end()) return false;
  std::vector<uint32_t>& chain = it->second;
  size_t slot = chain.size();
  for (size_t i = 0; i < chain.size(); ++i) {
    if (TupleEquals(chain[i], tuple)) {
      slot = i;
      break;
    }
  }
  if (slot == chain.size()) return false;
  MarkIndexesStale();
  uint32_t row = chain[slot];
  chain.erase(chain.begin() + slot);
  if (chain.empty()) tuple_index_.erase(it);
  uint32_t last = static_cast<uint32_t>(size()) - 1;
  if (row != last) {
    // Swap the last row into the gap and repoint its index entry. The
    // moved tuple's chain cannot be the one just erased: had it hashed
    // to `h`, it would still be in that chain.
    std::copy(data_.begin() + static_cast<size_t>(last) * arity_,
              data_.begin() + (static_cast<size_t>(last) + 1) * arity_,
              data_.begin() + static_cast<size_t>(row) * arity_);
    size_t moved_hash = TupleHash(Tuple(row));
    for (uint32_t& r : tuple_index_[moved_hash]) {
      if (r == last) {
        r = row;
        break;
      }
    }
  }
  data_.resize(data_.size() - arity_);
  return true;
}

bool Relation::Contains(std::span<const ConstantId> tuple) const {
  if (tuple.size() != arity_) return false;
  auto it = tuple_index_.find(TupleHash(tuple));
  if (it == tuple_index_.end()) return false;
  for (uint32_t row : it->second) {
    if (TupleEquals(row, tuple)) return true;
  }
  return false;
}

void Relation::BuildIndexes() const {
  column_index_.assign(arity_, ColumnIndex{});
  uint32_t rows = static_cast<uint32_t>(size());
  // Scratch reused across columns: row ids sorted by the column's value
  // (stable, so ids stay ascending within one value's group).
  std::vector<uint32_t> order(rows);
  for (uint32_t col = 0; col < arity_; ++col) {
    ColumnIndex& index = column_index_[col];
    std::iota(order.begin(), order.end(), 0u);
    const ConstantId* column = data_.data() + col;
    const uint32_t stride = arity_;
    std::stable_sort(order.begin(), order.end(),
                     [column, stride](uint32_t a, uint32_t b) {
                       return column[static_cast<size_t>(a) * stride] <
                              column[static_cast<size_t>(b) * stride];
                     });
    index.rows = order;
    // One pass over the sorted rows emits the distinct values, their
    // group boundaries, and the fan-out statistics together.
    for (uint32_t i = 0; i < rows; ++i) {
      ConstantId v = column[static_cast<size_t>(order[i]) * stride];
      if (index.values.empty() || index.values.back() != v) {
        index.values.push_back(v);
        index.offsets.push_back(i);
      }
    }
    index.offsets.push_back(rows);
    index.stats.distinct_values = static_cast<uint32_t>(index.values.size());
    for (size_t i = 0; i + 1 < index.offsets.size(); ++i) {
      index.stats.max_fanout = std::max(
          index.stats.max_fanout, index.offsets[i + 1] - index.offsets[i]);
    }
  }
  index_built_ = true;
  index_stale_ = false;
}

void Relation::EnsureIndexes() const {
  if (index_built_ && !index_stale_) return;
  // A frozen relation is shared across threads: rebuilding here would be
  // a data race, and reaching this line means the publisher skipped
  // Freeze()'s warm guarantee or the relation mutated after publication.
  WDPT_CHECK(!frozen_);
  BuildIndexes();
}

void Relation::WarmColumnIndexes() const { EnsureIndexes(); }

void Relation::Freeze() const {
  EnsureIndexes();
  frozen_ = true;
}

std::span<const uint32_t> Relation::RowsMatching(uint32_t col,
                                                 ConstantId value) const {
  WDPT_CHECK(col < arity_);
  EnsureIndexes();
  const ColumnIndex& index = column_index_[col];
  auto it = std::lower_bound(index.values.begin(), index.values.end(), value);
  if (it == index.values.end() || *it != value) return {};
  size_t slot = static_cast<size_t>(it - index.values.begin());
  return std::span<const uint32_t>(index.rows.data() + index.offsets[slot],
                                   index.offsets[slot + 1] -
                                       index.offsets[slot]);
}

const Relation::ColumnStats& Relation::column_stats(uint32_t col) const {
  WDPT_CHECK(col < arity_);
  EnsureIndexes();
  return column_index_[col].stats;
}

Status Database::AddFact(RelationId relation,
                         std::span<const ConstantId> tuple) {
  if (relation >= schema_->num_relations()) {
    return Status::InvalidArgument("unknown relation id " +
                                   std::to_string(relation));
  }
  if (tuple.size() != schema_->Arity(relation)) {
    return Status::InvalidArgument(
        "arity mismatch for " + schema_->Name(relation) + ": got " +
        std::to_string(tuple.size()));
  }
  MutableRelation(relation)->Insert(tuple);
  return Status::Ok();
}

Status Database::AddAtom(const Atom& atom) {
  std::vector<ConstantId> tuple;
  tuple.reserve(atom.terms.size());
  for (Term t : atom.terms) {
    if (!t.is_constant()) {
      return Status::InvalidArgument("database atoms must be ground");
    }
    tuple.push_back(t.constant_id());
  }
  return AddFact(atom.relation, tuple);
}

bool Database::RemoveFact(RelationId relation,
                          std::span<const ConstantId> tuple) {
  if (relation >= relations_.size()) return false;
  return relations_[relation].Remove(tuple);
}

Database Database::CloneWithSchema(const Schema* schema) const {
  Database copy(*this);
  copy.schema_ = schema;
  // The copy is private to its new owner until it publishes it itself.
  for (Relation& r : copy.relations_) r.frozen_ = false;
  return copy;
}

bool Database::ContainsFact(RelationId relation,
                            std::span<const ConstantId> tuple) const {
  if (relation >= relations_.size()) return false;
  return relations_[relation].Contains(tuple);
}

const Relation& Database::relation(RelationId id) const {
  if (id < relations_.size()) return relations_[id];
  static const Relation* empty = new Relation(1);
  // An untouched relation of any arity has no tuples; the shared empty
  // relation answers size() == 0 and is never indexed by callers (they
  // check size first or match arity via the schema).
  return *empty;
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const Relation& r : relations_) total += r.size();
  return total;
}

void Database::WarmColumnIndexes() const {
  for (const Relation& r : relations_) r.WarmColumnIndexes();
}

void Database::Freeze() const {
  for (const Relation& r : relations_) r.Freeze();
}

bool Database::warmed() const {
  for (const Relation& r : relations_) {
    if (!r.warmed()) return false;
  }
  return true;
}

std::vector<ConstantId> Database::ActiveDomain() const {
  std::vector<ConstantId> dom;
  for (RelationId id = 0; id < relations_.size(); ++id) {
    const Relation& r = relations_[id];
    for (size_t row = 0; row < r.size(); ++row) {
      std::span<const ConstantId> t = r.Tuple(row);
      dom.insert(dom.end(), t.begin(), t.end());
    }
  }
  SortUnique(&dom);
  return dom;
}

std::string Database::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (RelationId id = 0; id < relations_.size(); ++id) {
    const Relation& r = relations_[id];
    for (size_t row = 0; row < r.size(); ++row) {
      out += schema_->Name(id);
      out += '(';
      std::span<const ConstantId> t = r.Tuple(row);
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ", ";
        out += vocab.ConstantName(t[i]);
      }
      out += ")\n";
    }
  }
  return out;
}

Relation* Database::MutableRelation(RelationId id) {
  while (relations_.size() <= id) {
    RelationId next = static_cast<RelationId>(relations_.size());
    relations_.emplace_back(schema_->Arity(next));
  }
  return &relations_[id];
}

}  // namespace wdpt

