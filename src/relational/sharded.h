// Horizontal data sharding: hash-partitioned views of a Database.
//
// A ShardedDatabase splits the tuples of every relation of a full
// database across N shard databases by a deterministic hash of the
// tuple's constants. Each fact lives in exactly one shard, so for any
// single atom the set of matching tuples — and hence the set of
// homomorphisms of that one atom — partitions exactly across shards.
// The engine's scatter-gather enumeration (Engine::Enumerate over a
// ShardedDatabase) exploits this: it enumerates the matches of one
// root-label "seed" atom per shard in parallel and completes each seed
// against the retained full view, which stays available for the joins
// and maximality tests that cross shard boundaries. Partitioned
// evaluation without a global view would be unsound for WDPTs: a
// homomorphism may join tuples from different shards, and maximality
// is a negative condition (an extension living in another shard must
// be able to veto an answer).
//
// Shards and the full view share the full database's Schema and
// vocabulary ids; all column indexes (full + shards) are warmed at
// construction, so concurrent shard tasks only ever read.

#ifndef WDPT_SRC_RELATIONAL_SHARDED_H_
#define WDPT_SRC_RELATIONAL_SHARDED_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/relational/database.h"

namespace wdpt {

/// A full database plus N hash-partitioned shard views of it.
class ShardedDatabase {
 public:
  /// Partitions `full` into `num_shards` shards (clamped to >= 1).
  /// `full` must outlive the ShardedDatabase; it is not copied.
  ShardedDatabase(const Database& full, size_t num_shards);

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// The unpartitioned database the shards were cut from.
  const Database& full() const { return *full_; }

  size_t num_shards() const { return shards_.size(); }

  /// The `i`-th shard (a normal Database over the same schema).
  const Database& shard(size_t i) const { return shards_[i]; }

  /// The shard that holds (or would hold) the fact R(tuple): an FNV-1a
  /// hash of the relation id and the tuple's constants, mod num_shards.
  /// Deterministic across runs and platforms.
  static size_t ShardOfTuple(RelationId relation,
                             std::span<const ConstantId> tuple,
                             size_t num_shards);

  /// Re-warms every column index of the full view and all shards (they
  /// are already warmed at construction; this is for re-asserting
  /// read-only access after an external WarmColumnIndexes-invalidating
  /// sequence, and is cheap when nothing changed).
  void WarmColumnIndexes() const;

 private:
  const Database* full_;
  std::vector<Database> shards_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_SHARDED_H_
