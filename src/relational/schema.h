// Relational schemas: named relation symbols with fixed arities.

#ifndef WDPT_SRC_RELATIONAL_SCHEMA_H_
#define WDPT_SRC_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/relational/term.h"

namespace wdpt {

/// Dense id of a relation symbol within a Schema.
using RelationId = uint32_t;

/// A relational schema sigma: a list of relation symbols with arities.
class Schema {
 public:
  Schema() = default;
  Schema(const Schema&) = default;
  Schema& operator=(const Schema&) = default;

  /// Adds (or reuses) the relation `name` with the given arity. Returns an
  /// error if `name` already exists with a different arity or arity is 0.
  Result<RelationId> AddRelation(std::string_view name, uint32_t arity);

  /// Returns the id of `name`, or kNotFound if absent.
  static constexpr RelationId kNotFound = UINT32_MAX;
  RelationId Find(std::string_view name) const;

  const std::string& Name(RelationId id) const;
  uint32_t Arity(RelationId id) const;
  size_t num_relations() const { return arities_.size(); }

 private:
  Interner names_;
  std::vector<uint32_t> arities_;
};

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_SCHEMA_H_
