#include "src/relational/schema.h"

namespace wdpt {

Result<RelationId> Schema::AddRelation(std::string_view name, uint32_t arity) {
  if (arity == 0) {
    return Status::InvalidArgument("relation arity must be positive: " +
                                   std::string(name));
  }
  RelationId existing = Find(name);
  if (existing != kNotFound) {
    if (arities_[existing] != arity) {
      return Status::InvalidArgument(
          "relation " + std::string(name) + " redeclared with arity " +
          std::to_string(arity) + " (was " +
          std::to_string(arities_[existing]) + ")");
    }
    return existing;
  }
  RelationId id = names_.Intern(name);
  WDPT_CHECK(id == arities_.size());
  arities_.push_back(arity);
  return id;
}

RelationId Schema::Find(std::string_view name) const {
  uint32_t id = names_.Find(name);
  return id == Interner::kNotInterned ? kNotFound : id;
}

const std::string& Schema::Name(RelationId id) const {
  return names_.NameOf(id);
}

uint32_t Schema::Arity(RelationId id) const {
  WDPT_CHECK(id < arities_.size());
  return arities_[id];
}

}  // namespace wdpt
