// Relational atoms R(v1, ..., vn) over constants and variables.

#ifndef WDPT_SRC_RELATIONAL_ATOM_H_
#define WDPT_SRC_RELATIONAL_ATOM_H_

#include <string>
#include <vector>

#include "src/relational/schema.h"
#include "src/relational/term.h"

namespace wdpt {

/// A relational atom: relation symbol applied to a tuple of terms.
struct Atom {
  RelationId relation = 0;
  std::vector<Term> terms;

  Atom() = default;
  Atom(RelationId rel, std::vector<Term> ts)
      : relation(rel), terms(std::move(ts)) {}

  /// Appends the (deduplicated later by caller) variables of the atom.
  void AppendVariables(std::vector<VariableId>* out) const;

  /// Returns the sorted, deduplicated variables of the atom.
  std::vector<VariableId> Variables() const;

  /// True if the atom mentions `v`.
  bool Mentions(VariableId v) const;

  /// True if the atom contains no variables.
  bool IsGround() const;

  /// Renders "R(?x, a, ?y)".
  std::string ToString(const Schema& schema, const Vocabulary& vocab) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.terms < b.terms;
  }
};

/// Renders a list of atoms as "R(?x), S(?y)".
std::string AtomsToString(const std::vector<Atom>& atoms, const Schema& schema,
                          const Vocabulary& vocab);

/// Sorted, deduplicated variables of a set of atoms.
std::vector<VariableId> VariablesOf(const std::vector<Atom>& atoms);

}  // namespace wdpt

#endif  // WDPT_SRC_RELATIONAL_ATOM_H_
