#include "src/relational/sharded.h"

namespace wdpt {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t FnvMix(uint64_t hash, uint32_t word) {
  for (int shift = 0; shift < 32; shift += 8) {
    hash ^= (word >> shift) & 0xFFu;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

size_t ShardedDatabase::ShardOfTuple(RelationId relation,
                                     std::span<const ConstantId> tuple,
                                     size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t hash = FnvMix(kFnvOffset, relation);
  for (ConstantId c : tuple) hash = FnvMix(hash, c);
  return static_cast<size_t>(hash % num_shards);
}

ShardedDatabase::ShardedDatabase(const Database& full, size_t num_shards)
    : full_(&full) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.emplace_back(&full.schema());
  }
  const Schema& schema = full.schema();
  for (RelationId rel = 0;
       rel < static_cast<RelationId>(schema.num_relations()); ++rel) {
    const Relation& relation = full.relation(rel);
    for (size_t row = 0; row < relation.size(); ++row) {
      std::span<const ConstantId> tuple = relation.Tuple(row);
      size_t s = ShardOfTuple(rel, tuple, num_shards);
      // The arity matches by construction and the source relation is
      // deduplicated, so AddFact cannot fail.
      Status added = shards_[s].AddFact(rel, tuple);
      WDPT_CHECK(added.ok());
    }
  }
  WarmColumnIndexes();
  // The shards are owned here and never mutate again; freezing them
  // makes an unwarmed concurrent probe abort instead of racing. The
  // full view stays the caller's to freeze (it may still be private).
  for (const Database& shard : shards_) shard.Freeze();
}

void ShardedDatabase::WarmColumnIndexes() const {
  full_->WarmColumnIndexes();
  for (const Database& shard : shards_) shard.WarmColumnIndexes();
}

}  // namespace wdpt
