#include "src/relational/atom.h"

#include "src/common/algo.h"
#include "src/common/strings.h"

namespace wdpt {

void Atom::AppendVariables(std::vector<VariableId>* out) const {
  for (Term t : terms) {
    if (t.is_variable()) out->push_back(t.variable_id());
  }
}

std::vector<VariableId> Atom::Variables() const {
  std::vector<VariableId> vars;
  AppendVariables(&vars);
  SortUnique(&vars);
  return vars;
}

bool Atom::Mentions(VariableId v) const {
  for (Term t : terms) {
    if (t.is_variable() && t.variable_id() == v) return true;
  }
  return false;
}

bool Atom::IsGround() const {
  for (Term t : terms) {
    if (t.is_variable()) return false;
  }
  return true;
}

std::string Atom::ToString(const Schema& schema,
                           const Vocabulary& vocab) const {
  std::string out = schema.Name(relation);
  out += '(';
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += vocab.TermName(terms[i]);
  }
  out += ')';
  return out;
}

std::string AtomsToString(const std::vector<Atom>& atoms, const Schema& schema,
                          const Vocabulary& vocab) {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const Atom& a : atoms) parts.push_back(a.ToString(schema, vocab));
  return StrJoin(parts, ", ");
}

std::vector<VariableId> VariablesOf(const std::vector<Atom>& atoms) {
  std::vector<VariableId> vars;
  for (const Atom& a : atoms) a.AppendVariables(&vars);
  SortUnique(&vars);
  return vars;
}

}  // namespace wdpt
