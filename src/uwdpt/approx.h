// UWB(k)-approximations of UWDPTs (Theorem 18, Proposition 10).
//
// Since phi ==_s phi_cq and the C(k)-approximation of a union of CQs is
// the union of the members' approximations, the UWB(k)-approximation of
// phi is the union of the C(k)-approximations of the CQs in phi_cq —
// unique up to ==_s, with polynomially sized members.

#ifndef WDPT_SRC_UWDPT_APPROX_H_
#define WDPT_SRC_UWDPT_APPROX_H_

#include "src/common/status.h"
#include "src/cq/approximation.h"
#include "src/uwdpt/to_ucq.h"
#include "src/uwdpt/uwdpt.h"

namespace wdpt {

/// Options for UWB(k)-approximation.
struct UwbApproximationOptions {
  uint64_t max_subtrees = uint64_t{1} << 22;
  CqApproximationOptions cq_options;
};

/// Computes the UWB(k)-approximation of phi as a (reduced) union of
/// C(k) CQs. Requires constant-free members (as the paper assumes for
/// approximations); `measure` must be kTreewidth or kBetaHypertreewidth.
Result<UnionOfCqs> ComputeUwbApproximation(
    const UnionWdpt& phi, WidthMeasure measure, int k, const Schema* schema,
    Vocabulary* vocab,
    const UwbApproximationOptions& options = UwbApproximationOptions());

/// Decision problem UWB(k)-APPROXIMATION: is the union of C(k) CQs
/// `candidate` a UWB(k)-approximation of phi? Per the proof of
/// Proposition 10 this holds iff candidate [= phi and
/// approx(phi_cq) [= candidate.
Result<bool> IsUwbApproximation(
    const UnionOfCqs& candidate, const UnionWdpt& phi, WidthMeasure measure,
    int k, const Schema* schema, Vocabulary* vocab,
    const UwbApproximationOptions& options = UwbApproximationOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_UWDPT_APPROX_H_
