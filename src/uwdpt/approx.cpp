#include "src/uwdpt/approx.h"

#include "src/analysis/wb.h"

namespace wdpt {

Result<UnionOfCqs> ComputeUwbApproximation(
    const UnionWdpt& phi, WidthMeasure measure, int k, const Schema* schema,
    Vocabulary* vocab, const UwbApproximationOptions& options) {
  if (!IsWbMeasure(measure)) {
    return Status::InvalidArgument(
        "UWB(k) requires a subquery-closed measure (tw or beta-ghw)");
  }
  Result<UnionOfCqs> cqs = ToUnionOfCqs(phi, options.max_subtrees);
  if (!cqs.ok()) return cqs.status();
  Result<UnionOfCqs> reduced = RemoveSubsumedCqs(*cqs, schema, vocab);
  if (!reduced.ok()) return reduced.status();

  UnionOfCqs approx;
  for (const ConjunctiveQuery& q : *reduced) {
    Result<std::vector<ConjunctiveQuery>> parts = ComputeCqApproximations(
        q, measure, k, schema, vocab, options.cq_options);
    if (!parts.ok()) return parts.status();
    for (ConjunctiveQuery& part : *parts) approx.push_back(std::move(part));
  }
  return RemoveSubsumedCqs(approx, schema, vocab);
}

Result<bool> IsUwbApproximation(const UnionOfCqs& candidate,
                                const UnionWdpt& phi, WidthMeasure measure,
                                int k, const Schema* schema,
                                Vocabulary* vocab,
                                const UwbApproximationOptions& options) {
  // Every member must be (semantically) in C(k).
  for (const ConjunctiveQuery& q : candidate) {
    Result<bool> ok = SemanticallyInWidthClass(q, measure, k, schema, vocab);
    if (!ok.ok()) return ok.status();
    if (!*ok) return false;
  }
  // candidate [= phi: compare against phi_cq (phi ==_s phi_cq).
  Result<UnionOfCqs> cqs = ToUnionOfCqs(phi, options.max_subtrees);
  if (!cqs.ok()) return cqs.status();
  Result<bool> sound = UcqSubsumedBy(candidate, *cqs, schema, vocab);
  if (!sound.ok() || !*sound) return sound;
  // Maximality: the canonical approximation must be subsumed by the
  // candidate.
  Result<UnionOfCqs> canonical =
      ComputeUwbApproximation(phi, measure, k, schema, vocab, options);
  if (!canonical.ok()) return canonical.status();
  return UcqSubsumedBy(*canonical, candidate, schema, vocab);
}

}  // namespace wdpt
