#include "src/uwdpt/semantic.h"

#include "src/analysis/wb.h"
#include "src/cq/core.h"

namespace wdpt {

namespace {

Result<UnionOfCqs> ReducedCqForm(const UnionWdpt& phi, const Schema* schema,
                                 Vocabulary* vocab, uint64_t max_subtrees) {
  Result<UnionOfCqs> cqs = ToUnionOfCqs(phi, max_subtrees);
  if (!cqs.ok()) return cqs.status();
  return RemoveSubsumedCqs(*cqs, schema, vocab);
}

}  // namespace

Result<bool> IsInSemanticUWB(const UnionWdpt& phi, WidthMeasure measure,
                             int k, const Schema* schema, Vocabulary* vocab,
                             uint64_t max_subtrees) {
  if (!IsWbMeasure(measure)) {
    return Status::InvalidArgument(
        "UWB(k) requires a subquery-closed measure (tw or beta-ghw)");
  }
  Result<UnionOfCqs> reduced =
      ReducedCqForm(phi, schema, vocab, max_subtrees);
  if (!reduced.ok()) return reduced.status();
  for (const ConjunctiveQuery& q : *reduced) {
    Result<bool> in_class =
        SemanticallyInWidthClass(q, measure, k, schema, vocab);
    if (!in_class.ok()) return in_class.status();
    if (!*in_class) return false;
  }
  return true;
}

Result<UnionOfCqs> ConstructUWBEquivalent(const UnionWdpt& phi,
                                          WidthMeasure measure, int k,
                                          const Schema* schema,
                                          Vocabulary* vocab,
                                          uint64_t max_subtrees) {
  Result<UnionOfCqs> reduced =
      ReducedCqForm(phi, schema, vocab, max_subtrees);
  if (!reduced.ok()) return reduced.status();
  UnionOfCqs out;
  for (const ConjunctiveQuery& q : *reduced) {
    ConjunctiveQuery core = ComputeCore(q, schema, vocab);
    Result<bool> in_class = WidthAtMost(core, measure, k);
    if (!in_class.ok()) return in_class.status();
    if (!*in_class) {
      return Status::InvalidArgument(
          "phi is not in M(UWB(k)): a maximal CQ core exceeds width k");
    }
    out.push_back(std::move(core));
  }
  return out;
}

}  // namespace wdpt
