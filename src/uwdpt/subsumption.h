// Subsumption between unions of WDPTs (Section 6): phi [= phi' iff over
// every database each answer of phi is subsumed by an answer of phi'.
// As in the single-WDPT case the test reduces to the canonical databases
// of the members' root subtrees, with U-PARTIAL-EVAL as the inner check
// (Pi2P in general; the inner check is polynomial for unions of
// globally tractable WDPTs, per Proposition 10's use).

#ifndef WDPT_SRC_UWDPT_SUBSUMPTION_H_
#define WDPT_SRC_UWDPT_SUBSUMPTION_H_

#include "src/analysis/subsumption.h"
#include "src/uwdpt/uwdpt.h"

namespace wdpt {

/// phi [= phi'.
Result<bool> UnionSubsumedBy(const UnionWdpt& phi, const UnionWdpt& phi2,
                             const Schema* schema, Vocabulary* vocab,
                             const SubsumptionOptions& options =
                                 SubsumptionOptions());

/// Both directions.
Result<bool> UnionSubsumptionEquivalent(const UnionWdpt& phi,
                                        const UnionWdpt& phi2,
                                        const Schema* schema,
                                        Vocabulary* vocab,
                                        const SubsumptionOptions& options =
                                            SubsumptionOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_UWDPT_SUBSUMPTION_H_
