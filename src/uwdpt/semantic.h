// Semantic optimization of UWDPTs (Proposition 9 / Theorem 17): a UWDPT
// is ==_s-equivalent to a union of WB(k) WDPTs iff every subsumption-
// maximal CQ of phi_cq is equivalent to a CQ in C(k), i.e. its core has
// width at most k.

#ifndef WDPT_SRC_UWDPT_SEMANTIC_H_
#define WDPT_SRC_UWDPT_SEMANTIC_H_

#include "src/common/status.h"
#include "src/cq/approximation.h"
#include "src/uwdpt/to_ucq.h"
#include "src/uwdpt/uwdpt.h"

namespace wdpt {

/// M(UWB(k)) membership (Theorem 17.1). `measure` must be kTreewidth or
/// kBetaHypertreewidth.
Result<bool> IsInSemanticUWB(const UnionWdpt& phi, WidthMeasure measure,
                             int k, const Schema* schema, Vocabulary* vocab,
                             uint64_t max_subtrees = uint64_t{1} << 22);

/// Theorem 17.2: for phi in M(UWB(k)), constructs a ==_s-equivalent union
/// of C(k) CQs (single-node WB(k) WDPTs), each of polynomial size (the
/// cores of the maximal CQs of phi_cq). Error if phi is not in
/// M(UWB(k)).
Result<UnionOfCqs> ConstructUWBEquivalent(const UnionWdpt& phi,
                                          WidthMeasure measure, int k,
                                          const Schema* schema,
                                          Vocabulary* vocab,
                                          uint64_t max_subtrees =
                                              uint64_t{1} << 22);

}  // namespace wdpt

#endif  // WDPT_SRC_UWDPT_SEMANTIC_H_
