#include "src/uwdpt/uwdpt.h"

#include <unordered_set>

#include "src/common/algo.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/eval_tractable.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

Status UnionWdpt::Validate() {
  for (PatternTree& member : members) {
    Status status = member.Validate();
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Result<std::vector<Mapping>> EvaluateUnion(const UnionWdpt& phi,
                                           const Database& db,
                                           const EnumerationLimits& limits) {
  std::unordered_set<Mapping, MappingHash> seen;
  std::vector<Mapping> answers;
  for (const PatternTree& member : phi.members) {
    Result<std::vector<Mapping>> part = EvaluateWdpt(member, db, limits);
    if (!part.ok()) return part.status();
    for (Mapping& m : *part) {
      if (seen.insert(m).second) answers.push_back(std::move(m));
    }
  }
  return answers;
}

Result<bool> UnionEval(const UnionWdpt& phi, const Database& db,
                       const Mapping& h) {
  for (const PatternTree& member : phi.members) {
    Result<bool> in_member = EvalNaive(member, db, h);
    if (!in_member.ok()) return in_member.status();
    if (*in_member) return true;
  }
  return false;
}

Result<bool> UnionEvalTractable(const UnionWdpt& phi, const Database& db,
                                const Mapping& h,
                                const CqEvalOptions& options) {
  for (const PatternTree& member : phi.members) {
    Result<bool> in_member = EvalTractable(member, db, h, options);
    if (!in_member.ok()) return in_member.status();
    if (*in_member) return true;
  }
  return false;
}

namespace {

// All variables of dom (sorted) are free variables of `tree` and
// mentioned in it.
bool MemberCovers(const PatternTree& tree,
                  const std::vector<VariableId>& dom) {
  if (!SortedIsSubset(dom, tree.free_vars())) return false;
  for (VariableId v : dom) {
    if (tree.TopNode(v) == PatternTree::kNoNode) return false;
  }
  return true;
}

// Is there a homomorphism from `tree` to db extending h and binding all
// of `vars` (sorted, covered by the tree)?
bool HomBinding(const PatternTree& tree, const Database& db,
                const Mapping& h, const std::vector<VariableId>& vars,
                const CqEvalOptions& options) {
  SubtreeMask mask = MinimalSubtreeContaining(tree, vars);
  return DecideNonEmpty(SubtreeAtoms(tree, mask), db, h, options);
}

}  // namespace

Result<bool> UnionPartialEval(const UnionWdpt& phi, const Database& db,
                              const Mapping& h,
                              const CqEvalOptions& options) {
  std::vector<VariableId> dom = h.Domain();
  for (const PatternTree& member : phi.members) {
    if (!member.validated()) {
      return Status::InvalidArgument("members must be validated");
    }
    if (!MemberCovers(member, dom)) continue;
    if (HomBinding(member, db, h, dom, options)) return true;
  }
  return false;
}

Result<bool> UnionMaxEval(const UnionWdpt& phi, const Database& db,
                          const Mapping& h, const CqEvalOptions& options) {
  std::vector<VariableId> dom = h.Domain();
  // (1) Some member has a homomorphism projecting to exactly h.
  bool exact = false;
  for (const PatternTree& member : phi.members) {
    if (!member.validated()) {
      return Status::InvalidArgument("members must be validated");
    }
    if (!MemberCovers(member, dom)) continue;
    SubtreeMask minimal = MinimalSubtreeContaining(member, dom);
    std::vector<VariableId> minimal_free = SortedIntersection(
        SubtreeVariables(member, minimal), member.free_vars());
    if (minimal_free != dom) continue;
    if (DecideNonEmpty(SubtreeAtoms(member, minimal), db, h, options)) {
      exact = true;
      break;
    }
  }
  if (!exact) return false;

  // (2) No member extends h to a strictly larger partial answer.
  for (const PatternTree& member : phi.members) {
    if (!MemberCovers(member, dom)) continue;
    for (VariableId x : SortedDifference(member.free_vars(), dom)) {
      std::vector<VariableId> extended = dom;
      extended.push_back(x);
      SortUnique(&extended);
      if (HomBinding(member, db, h, extended, options)) return false;
    }
  }
  return true;
}

}  // namespace wdpt
