// Unions of WDPTs (Section 6): structure and the evaluation variants
// U-EVAL, U-PARTIAL-EVAL and U-MAX-EVAL (Theorem 16).

#ifndef WDPT_SRC_UWDPT_UWDPT_H_
#define WDPT_SRC_UWDPT_UWDPT_H_

#include <vector>

#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/relational/database.h"
#include "src/relational/mapping.h"
#include "src/wdpt/enumerate.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// A union of WDPTs. Members need not share free variables.
struct UnionWdpt {
  std::vector<PatternTree> members;

  /// Validates every member.
  Status Validate();
};

/// phi(D): union of the members' answer sets, deduplicated.
Result<std::vector<Mapping>> EvaluateUnion(
    const UnionWdpt& phi, const Database& db,
    const EnumerationLimits& limits = EnumerationLimits());

/// U-EVAL: h in phi(D)? Uses the general evaluator per member.
Result<bool> UnionEval(const UnionWdpt& phi, const Database& db,
                       const Mapping& h);

/// U-EVAL via the bounded-interface DP per member (Theorem 16.1:
/// LOGCFL for unions of locally tractable WDPTs of bounded interface).
Result<bool> UnionEvalTractable(const UnionWdpt& phi, const Database& db,
                                const Mapping& h,
                                const CqEvalOptions& options =
                                    CqEvalOptions());

/// U-PARTIAL-EVAL: is some h' in phi(D) with h [= h'? Tractable for
/// unions of globally tractable WDPTs.
Result<bool> UnionPartialEval(const UnionWdpt& phi, const Database& db,
                              const Mapping& h,
                              const CqEvalOptions& options = CqEvalOptions());

/// U-MAX-EVAL: is h a maximal element of phi(D)'s projections, i.e.
/// h in phi_m(D)? Tractable for unions of globally tractable WDPTs.
Result<bool> UnionMaxEval(const UnionWdpt& phi, const Database& db,
                          const Mapping& h,
                          const CqEvalOptions& options = CqEvalOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_UWDPT_UWDPT_H_
