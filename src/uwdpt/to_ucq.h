// The translation phi -> phi_cq (Section 6): one CQ r_T' per root
// subtree of each member, with phi ==_s phi_cq. The reduced form
// phi_cq^r drops CQs subsumed by other CQs, preserving ==_s.

#ifndef WDPT_SRC_UWDPT_TO_UCQ_H_
#define WDPT_SRC_UWDPT_TO_UCQ_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/cq/cq.h"
#include "src/relational/schema.h"
#include "src/relational/term.h"
#include "src/uwdpt/uwdpt.h"

namespace wdpt {

/// A union of CQs.
using UnionOfCqs = std::vector<ConjunctiveQuery>;

/// phi_cq: every r_T' over every member, syntactically deduplicated.
/// Error if the (possibly exponential) number of root subtrees exceeds
/// `max_subtrees`.
Result<UnionOfCqs> ToUnionOfCqs(const UnionWdpt& phi,
                                uint64_t max_subtrees = uint64_t{1} << 22);

/// Removes every CQ subsumed by (and not equivalent to) another CQ in the
/// union; among [=-equivalent CQs one representative is kept. The result
/// is ==_s-equivalent to the input. kInvalidArgument on null
/// schema/vocabulary.
Result<UnionOfCqs> RemoveSubsumedCqs(const UnionOfCqs& cqs,
                                     const Schema* schema, Vocabulary* vocab);

/// UCQ subsumption: phi1 [= phi2 iff every member of phi1 is [= some
/// member of phi2 (canonical-database argument). kInvalidArgument on null
/// schema/vocabulary.
Result<bool> UcqSubsumedBy(const UnionOfCqs& phi1, const UnionOfCqs& phi2,
                           const Schema* schema, Vocabulary* vocab);

/// Both directions.
Result<bool> UcqSubsumptionEquivalent(const UnionOfCqs& phi1,
                                      const UnionOfCqs& phi2,
                                      const Schema* schema,
                                      Vocabulary* vocab);

}  // namespace wdpt

#endif  // WDPT_SRC_UWDPT_TO_UCQ_H_
