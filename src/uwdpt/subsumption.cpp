#include "src/uwdpt/subsumption.h"

#include "src/common/algo.h"
#include "src/cq/cq.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

Result<bool> UnionSubsumedBy(const UnionWdpt& phi, const UnionWdpt& phi2,
                             const Schema* schema, Vocabulary* vocab,
                             const SubsumptionOptions& options) {
  for (const PatternTree& member : phi.members) {
    if (!member.validated()) {
      return Status::InvalidArgument("members must be validated");
    }
    bool subsumed = true;
    Status failure = Status::Ok();
    bool complete = ForEachRootSubtree(
        member, options.max_subtrees, [&](const SubtreeMask& mask) {
          std::vector<Atom> atoms = SubtreeAtoms(member, mask);
          CanonicalDatabase canonical =
              BuildCanonicalDatabase(atoms, schema, vocab);
          std::vector<VariableId> answer_vars = SortedIntersection(
              SubtreeVariables(member, mask), member.free_vars());
          Mapping a = canonical.FreezeMapping(answer_vars);
          Result<bool> is_answer = EvalNaive(member, canonical.db, a);
          if (!is_answer.ok()) {
            failure = is_answer.status();
            return false;
          }
          if (!*is_answer) return true;
          Result<bool> covered =
              UnionPartialEval(phi2, canonical.db, a, options.cq_options);
          if (!covered.ok()) {
            failure = covered.status();
            return false;
          }
          if (!*covered) {
            subsumed = false;
            return false;
          }
          return true;
        });
    if (!failure.ok()) return failure;
    if (!subsumed) return false;
    if (!complete) {
      return Status::ResourceExhausted("too many root subtrees in member");
    }
  }
  return true;
}

Result<bool> UnionSubsumptionEquivalent(const UnionWdpt& phi,
                                        const UnionWdpt& phi2,
                                        const Schema* schema,
                                        Vocabulary* vocab,
                                        const SubsumptionOptions& options) {
  Result<bool> forward =
      UnionSubsumedBy(phi, phi2, schema, vocab, options);
  if (!forward.ok() || !*forward) return forward;
  return UnionSubsumedBy(phi2, phi, schema, vocab, options);
}

}  // namespace wdpt
