#include "src/uwdpt/to_ucq.h"

#include <set>

#include "src/cq/containment.h"
#include "src/wdpt/subtrees.h"

namespace wdpt {

Result<UnionOfCqs> ToUnionOfCqs(const UnionWdpt& phi, uint64_t max_subtrees) {
  UnionOfCqs cqs;
  std::set<std::pair<std::vector<VariableId>, std::vector<Atom>>> seen;
  for (const PatternTree& member : phi.members) {
    if (!member.validated()) {
      return Status::InvalidArgument("members must be validated");
    }
    bool complete = ForEachRootSubtree(
        member, max_subtrees, [&](const SubtreeMask& mask) {
          ConjunctiveQuery q = SubtreeProjectedQuery(member, mask);
          if (seen.emplace(q.free_vars, q.atoms).second) {
            cqs.push_back(std::move(q));
          }
          return true;
        });
    if (!complete) {
      return Status::ResourceExhausted("too many root subtrees in member");
    }
  }
  return cqs;
}

Result<UnionOfCqs> RemoveSubsumedCqs(const UnionOfCqs& cqs,
                                     const Schema* schema, Vocabulary* vocab) {
  if (schema == nullptr || vocab == nullptr) {
    return Status::InvalidArgument("schema and vocabulary must be non-null");
  }
  UnionOfCqs kept;
  for (size_t i = 0; i < cqs.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < cqs.size() && !dominated; ++j) {
      if (i == j) continue;
      if (!CqSubsumedBy(cqs[i], cqs[j], schema, vocab)) continue;
      bool reverse = CqSubsumedBy(cqs[j], cqs[i], schema, vocab);
      if (!reverse || j < i) dominated = true;
    }
    if (!dominated) kept.push_back(cqs[i]);
  }
  return kept;
}

Result<bool> UcqSubsumedBy(const UnionOfCqs& phi1, const UnionOfCqs& phi2,
                           const Schema* schema, Vocabulary* vocab) {
  if (schema == nullptr || vocab == nullptr) {
    return Status::InvalidArgument("schema and vocabulary must be non-null");
  }
  for (const ConjunctiveQuery& q1 : phi1) {
    bool covered = false;
    for (const ConjunctiveQuery& q2 : phi2) {
      if (CqSubsumedBy(q1, q2, schema, vocab)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

Result<bool> UcqSubsumptionEquivalent(const UnionOfCqs& phi1,
                                      const UnionOfCqs& phi2,
                                      const Schema* schema,
                                      Vocabulary* vocab) {
  Result<bool> forward = UcqSubsumedBy(phi1, phi2, schema, vocab);
  if (!forward.ok() || !*forward) return forward;
  return UcqSubsumedBy(phi2, phi1, schema, vocab);
}

}  // namespace wdpt
