// The Figure 2 / Theorem 15 exponential blow-up family.
//
// For every n >= 1 and k >= 2 the paper constructs WDPTs p1 (size
// O(n^2)) and p2 (size Omega(2^n)) such that p2 is in WB(k), p2 [= p1,
// and every WB(k) WDPT between p2 and p1 is at least as large as p2.
// This module builds both trees so the size gap can be measured
// (bench_fig2_blowup) and the subsumption/width claims unit-tested.

#ifndef WDPT_SRC_APPROX_BLOWUP_H_
#define WDPT_SRC_APPROX_BLOWUP_H_

#include "src/relational/schema.h"
#include "src/relational/term.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// The pair (p1^(n), p2^(n)) of Figure 2.
struct BlowupPair {
  PatternTree p1;
  PatternTree p2;
};

/// Builds the Figure 2 family for parameters n >= 1 and k >= 2,
/// declaring the needed relations (a, a_0..a_n, b_0..b_k, c_1..c_n
/// unary; d binary; e n-ary) in `schema` and interning the
/// variables in `vocab`. Both trees are validated.
BlowupPair MakeBlowupFamily(int n, int k, Schema* schema, Vocabulary* vocab);

}  // namespace wdpt

#endif  // WDPT_SRC_APPROX_BLOWUP_H_
