#include "src/approx/blowup.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace wdpt {

namespace {

RelationId Rel(Schema* schema, const std::string& name, uint32_t arity) {
  Result<RelationId> r = schema->AddRelation(name, arity);
  WDPT_CHECK(r.ok());
  return r.value();
}

}  // namespace

BlowupPair MakeBlowupFamily(int n, int k, Schema* schema, Vocabulary* vocab) {
  WDPT_CHECK(n >= 1 && k >= 2);
  // Relations.
  RelationId rel_a = Rel(schema, "blow_a", 1);
  std::vector<RelationId> rel_ai(n + 1);
  for (int i = 0; i <= n; ++i) {
    rel_ai[i] = Rel(schema, "blow_a" + std::to_string(i), 1);
  }
  std::vector<RelationId> rel_bi(k + 1);
  for (int i = 0; i <= k; ++i) {
    rel_bi[i] = Rel(schema, "blow_b" + std::to_string(i), 1);
  }
  std::vector<RelationId> rel_ci(n + 1);
  for (int i = 1; i <= n; ++i) {
    rel_ci[i] = Rel(schema, "blow_c" + std::to_string(i), 1);
  }
  RelationId rel_d = Rel(schema, "blow_d", 2);
  RelationId rel_e = Rel(schema, "blow_e", static_cast<uint32_t>(n));

  // Variables.
  Term x = vocab->Variable("blow_x");
  std::vector<Term> xi(n + 1);
  for (int i = 0; i <= n; ++i) {
    xi[i] = vocab->Variable("blow_x" + std::to_string(i));
  }
  std::vector<Term> alpha(k + 1);
  for (int i = 0; i <= k; ++i) {
    alpha[i] = vocab->Variable("blow_alpha" + std::to_string(i));
  }
  std::vector<Term> z(n + 1);
  for (int i = 1; i <= n; ++i) {
    z[i] = vocab->Variable("blow_z" + std::to_string(i));
  }

  std::vector<VariableId> free_vars;
  free_vars.push_back(x.variable_id());
  for (int i = 0; i <= n; ++i) free_vars.push_back(xi[i].variable_id());

  // ---- p1 ------------------------------------------------------------
  PatternTree p1;
  p1.AddAtom(PatternTree::kRoot, Atom(rel_a, {x}));
  for (int i = 0; i <= k; ++i) {
    p1.AddAtom(PatternTree::kRoot, Atom(rel_bi[i], {alpha[i]}));
  }
  for (int i = 1; i <= n; ++i) {
    p1.AddAtom(PatternTree::kRoot, Atom(rel_ci[i], {alpha[0]}));
    p1.AddAtom(PatternTree::kRoot, Atom(rel_ci[i], {z[i]}));
  }
  p1.AddAtom(PatternTree::kRoot, Atom(rel_d, {alpha[0], alpha[0]}));
  p1.AddAtom(PatternTree::kRoot, Atom(rel_d, {alpha[1], alpha[1]}));
  // The big clique: d(a, b) over all distinct pairs from the alphas and
  // the z's.
  {
    std::vector<Term> clique;
    for (int i = 0; i <= k; ++i) clique.push_back(alpha[i]);
    for (int i = 1; i <= n; ++i) clique.push_back(z[i]);
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = 0; j < clique.size(); ++j) {
        if (i != j) p1.AddAtom(PatternTree::kRoot,
                               Atom(rel_d, {clique[i], clique[j]}));
      }
    }
  }
  // First leaf: {a_0(x_0), e(z_1, ..., z_n)}.
  {
    std::vector<Atom> leaf;
    leaf.emplace_back(rel_ai[0], std::vector<Term>{xi[0]});
    std::vector<Term> zs(z.begin() + 1, z.end());
    leaf.emplace_back(rel_e, zs);
    p1.AddChild(PatternTree::kRoot, std::move(leaf));
  }
  // Leaves i in [n]: {a_i(x_i), b_1(z_i), c_i(alpha_1)}. (The proof
  // sketch of Theorem 15 makes clear that every leaf uses b_1: including
  // leaf i in a subtree forces z_i to alpha_1 via the root's b_1(alpha_1)
  // while the other z_j fall back to alpha_0.)
  for (int i = 1; i <= n; ++i) {
    std::vector<Atom> leaf;
    leaf.emplace_back(rel_ai[i], std::vector<Term>{xi[i]});
    leaf.emplace_back(rel_bi[1], std::vector<Term>{z[i]});
    leaf.emplace_back(rel_ci[i], std::vector<Term>{alpha[1]});
    p1.AddChild(PatternTree::kRoot, std::move(leaf));
  }
  p1.SetFreeVariables(free_vars);
  Status s1 = p1.Validate();
  WDPT_CHECK(s1.ok());

  // ---- p2 ------------------------------------------------------------
  PatternTree p2;
  p2.AddAtom(PatternTree::kRoot, Atom(rel_a, {x}));
  for (int i = 0; i <= k; ++i) {
    p2.AddAtom(PatternTree::kRoot, Atom(rel_bi[i], {alpha[i]}));
  }
  for (int i = 1; i <= n; ++i) {
    p2.AddAtom(PatternTree::kRoot, Atom(rel_ci[i], {alpha[0]}));
  }
  for (int i = 0; i <= k; ++i) {
    for (int j = 0; j <= k; ++j) {
      if (i != j) p2.AddAtom(PatternTree::kRoot,
                             Atom(rel_d, {alpha[i], alpha[j]}));
    }
  }
  p2.AddAtom(PatternTree::kRoot, Atom(rel_d, {alpha[0], alpha[0]}));
  p2.AddAtom(PatternTree::kRoot, Atom(rel_d, {alpha[1], alpha[1]}));
  // First leaf: {a_0(x_0)} plus e(v) for every v in {alpha_0, alpha_1}^n.
  {
    std::vector<Atom> leaf;
    leaf.emplace_back(rel_ai[0], std::vector<Term>{xi[0]});
    for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
      std::vector<Term> args;
      args.reserve(n);
      for (int i = 0; i < n; ++i) {
        args.push_back((bits >> i) & 1 ? alpha[1] : alpha[0]);
      }
      leaf.emplace_back(rel_e, std::move(args));
    }
    p2.AddChild(PatternTree::kRoot, std::move(leaf));
  }
  // Leaves i in [n]: {a_i(x_i), c_i(alpha_1)}.
  for (int i = 1; i <= n; ++i) {
    std::vector<Atom> leaf;
    leaf.emplace_back(rel_ai[i], std::vector<Term>{xi[i]});
    leaf.emplace_back(rel_ci[i], std::vector<Term>{alpha[1]});
    p2.AddChild(PatternTree::kRoot, std::move(leaf));
  }
  p2.SetFreeVariables(free_vars);
  Status s2 = p2.Validate();
  WDPT_CHECK(s2.ok());

  return BlowupPair{std::move(p1), std::move(p2)};
}

}  // namespace wdpt
