#include "src/approx/wdpt_approx.h"

#include "src/analysis/semantic.h"

namespace wdpt {

namespace {

// Collects the WB(k) quotient candidates of `tree` (pruned), each
// subsumed by `tree` by construction of quotients (the quotient
// substitution witnesses the subsumption; we still verify defensively).
Result<std::vector<PatternTree>> CollectCandidates(
    const PatternTree& tree, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const WdptApproximationOptions& options) {
  std::vector<PatternTree> candidates;
  Status failure = Status::Ok();
  Result<PatternTree> pruned = Lemma1Prune(tree);
  if (!pruned.ok()) return pruned.status();
  Result<bool> complete = ForEachWdptQuotient(
      *pruned, options.max_partitions, [&](const PatternTree& quotient) {
        Result<PatternTree> candidate_result = Lemma1Prune(quotient);
        if (!candidate_result.ok()) {
          failure = candidate_result.status();
          return false;
        }
        PatternTree candidate = std::move(*candidate_result);
        Result<bool> in_wb = IsInWB(candidate, measure, k);
        if (!in_wb.ok()) {
          failure = in_wb.status();
          return false;
        }
        if (!*in_wb) return true;
        Result<bool> sound =
            IsSubsumedBy(candidate, tree, schema, vocab, options.subsumption);
        if (!sound.ok()) {
          failure = sound.status();
          return false;
        }
        if (*sound) candidates.push_back(candidate);
        return true;
      });
  if (!failure.ok()) return failure;
  if (!complete.ok()) return complete.status();
  if (!*complete) {
    return Status::ResourceExhausted(
        "quotient enumeration exceeded max_partitions");
  }
  return candidates;
}

}  // namespace

Result<std::vector<PatternTree>> ComputeWdptApproximations(
    const PatternTree& tree, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const WdptApproximationOptions& options) {
  if (!tree.validated()) {
    return Status::InvalidArgument("pattern tree must be validated");
  }
  // Fast path: tree itself in WB(k).
  Result<PatternTree> pruned = Lemma1Prune(tree);
  if (!pruned.ok()) return pruned.status();
  Result<bool> in_wb = IsInWB(*pruned, measure, k);
  if (!in_wb.ok()) return in_wb.status();
  if (*in_wb) return std::vector<PatternTree>{*pruned};

  Result<std::vector<PatternTree>> candidates =
      CollectCandidates(tree, measure, k, schema, vocab, options);
  if (!candidates.ok()) return candidates.status();

  // Keep the [=-maximal candidates, deduplicating equivalents.
  std::vector<PatternTree>& all = *candidates;
  std::vector<PatternTree> maximal;
  for (size_t i = 0; i < all.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < all.size() && !dominated; ++j) {
      if (i == j) continue;
      Result<bool> i_in_j =
          IsSubsumedBy(all[i], all[j], schema, vocab, options.subsumption);
      if (!i_in_j.ok()) return i_in_j.status();
      if (!*i_in_j) continue;
      Result<bool> j_in_i =
          IsSubsumedBy(all[j], all[i], schema, vocab, options.subsumption);
      if (!j_in_i.ok()) return j_in_i.status();
      if (!*j_in_i) {
        dominated = true;
      } else if (j < i) {
        dominated = true;  // Equivalent; keep the first representative.
      }
    }
    if (!dominated) maximal.push_back(all[i]);
  }
  return maximal;
}

Result<bool> IsWdptQuotientApproximation(
    const PatternTree& candidate, const PatternTree& tree,
    WidthMeasure measure, int k, const Schema* schema, Vocabulary* vocab,
    const WdptApproximationOptions& options) {
  Result<bool> in_wb = IsInWB(candidate, measure, k);
  if (!in_wb.ok()) return in_wb.status();
  if (!*in_wb) return false;
  Result<bool> sound =
      IsSubsumedBy(candidate, tree, schema, vocab, options.subsumption);
  if (!sound.ok()) return sound.status();
  if (!*sound) return false;
  // No searched candidate strictly in between.
  Result<std::vector<PatternTree>> maximal =
      ComputeWdptApproximations(tree, measure, k, schema, vocab, options);
  if (!maximal.ok()) return maximal.status();
  for (const PatternTree& m : *maximal) {
    Result<bool> cand_in_m =
        IsSubsumedBy(candidate, m, schema, vocab, options.subsumption);
    if (!cand_in_m.ok()) return cand_in_m.status();
    if (!*cand_in_m) continue;
    Result<bool> m_in_cand =
        IsSubsumedBy(m, candidate, schema, vocab, options.subsumption);
    if (!m_in_cand.ok()) return m_in_cand.status();
    if (*m_in_cand) return true;  // Equivalent to a maximal candidate.
  }
  return false;
}

}  // namespace wdpt
