// WB(k)-approximations of WDPTs (Section 5.2, Theorem 14).
//
// A WB(k)-approximation of p is a WDPT p' in WB(k) with p' [= p that is
// [=-maximal among such. Theorem 15 shows optimal approximations can be
// exponentially larger than p, so no polynomial candidate space is
// complete in general. Following the same quotient machinery as for CQs
// (src/cq/approximation.h) we search the subsumption-preserving quotient
// space of p:
//   * every returned WDPT is verified to be in WB(k) and subsumed by p
//     (soundness is unconditional);
//   * the returned set consists of the [=-maximal candidates in the
//     searched space; for single-node WDPTs (CQs) this coincides with
//     the true C(k)-approximations.
// The exact exponential-size construction for the paper's Figure 2
// family lives in src/approx/blowup.h.

#ifndef WDPT_SRC_APPROX_WDPT_APPROX_H_
#define WDPT_SRC_APPROX_WDPT_APPROX_H_

#include <vector>

#include "src/analysis/subsumption.h"
#include "src/analysis/wb.h"
#include "src/common/status.h"
#include "src/wdpt/pattern_tree.h"

namespace wdpt {

/// Options for WB(k)-approximation search.
struct WdptApproximationOptions {
  uint64_t max_partitions = 200'000;
  SubsumptionOptions subsumption;
};

/// Computes the [=-maximal WB(k) quotient approximations of `tree`
/// (up to subsumption-equivalence). If `tree` is itself (after Lemma 1
/// pruning) in WB(k), the result is that single pruned tree.
Result<std::vector<PatternTree>> ComputeWdptApproximations(
    const PatternTree& tree, WidthMeasure measure, int k,
    const Schema* schema, Vocabulary* vocab,
    const WdptApproximationOptions& options = WdptApproximationOptions());

/// Decision problem WB(k)-APPROXIMATION restricted to the quotient
/// space: checks that candidate is in WB(k), candidate [= tree, and no
/// searched candidate lies strictly between them.
Result<bool> IsWdptQuotientApproximation(
    const PatternTree& candidate, const PatternTree& tree,
    WidthMeasure measure, int k, const Schema* schema, Vocabulary* vocab,
    const WdptApproximationOptions& options = WdptApproximationOptions());

}  // namespace wdpt

#endif  // WDPT_SRC_APPROX_WDPT_APPROX_H_
