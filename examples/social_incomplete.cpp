// Social-graph example over a general relational schema (not RDF):
// WDPTs over arbitrary schemas, the paper's Section 2 setting.
//
// A friendship graph where profile attributes (city, employer) are
// optional. The example contrasts the naive evaluator with the
// bounded-interface evaluator of Theorem 6, and demonstrates the
// maximal-mapping semantics: under p_m only the best-informed answers
// survive.
//
// Run: ./build/examples/social_incomplete [num_people]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/relational/database.h"
#include "src/relational/schema.h"
#include "src/wdpt/pattern_tree.h"

int main(int argc, char** argv) {
  using namespace wdpt;
  uint32_t num_people = argc > 1 ? static_cast<uint32_t>(
                                       std::strtoul(argv[1], nullptr, 10))
                                 : 60;

  Schema schema;
  Vocabulary vocab;
  RelationId knows = *schema.AddRelation("knows", 2);
  RelationId lives_in = *schema.AddRelation("lives_in", 2);
  RelationId works_at = *schema.AddRelation("works_at", 2);

  Database db(&schema);
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<uint32_t> person(0, num_people - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  auto cid = [&](const std::string& s) { return vocab.ConstantIdOf(s); };
  for (uint32_t i = 0; i < num_people; ++i) {
    std::string p = "person" + std::to_string(i);
    // Sparse optional attributes.
    if (coin(rng) < 0.5) {
      ConstantId t[2] = {cid(p), cid("city" + std::to_string(i % 7))};
      WDPT_CHECK(db.AddFact(lives_in, t).ok());
    }
    if (coin(rng) < 0.3) {
      ConstantId t[2] = {cid(p), cid("corp" + std::to_string(i % 5))};
      WDPT_CHECK(db.AddFact(works_at, t).ok());
    }
    for (int e = 0; e < 3; ++e) {
      uint32_t j = person(rng);
      if (j == i) continue;
      ConstantId t[2] = {cid(p), cid("person" + std::to_string(j))};
      WDPT_CHECK(db.AddFact(knows, t).ok());
    }
  }
  std::printf("social graph: %u people, %zu facts\n", num_people,
              db.TotalFacts());

  // Query: pairs of acquainted people; optionally each one's city, and
  // below the first city, optionally the employer (nested OPT).
  Term a = vocab.Variable("a");
  Term b = vocab.Variable("b");
  Term city_a = vocab.Variable("city_a");
  Term city_b = vocab.Variable("city_b");
  Term corp_a = vocab.Variable("corp_a");
  PatternTree tree;
  tree.AddAtom(PatternTree::kRoot, Atom(knows, {a, b}));
  NodeId ca = tree.AddChild(PatternTree::kRoot,
                            {Atom(lives_in, {a, city_a})});
  tree.AddChild(ca, {Atom(works_at, {a, corp_a})});
  tree.AddChild(PatternTree::kRoot, {Atom(lives_in, {b, city_b})});
  tree.SetFreeVariables(tree.AllVariables());
  WDPT_CHECK(tree.Validate().ok());

  Engine engine;
  Result<std::shared_ptr<const Plan>> plan =
      engine.GetPlan(tree, PlanOptions{1, EvalAlgorithm::kAuto});
  WDPT_CHECK(plan.ok());
  const WdptClassification& cls = (*plan)->classification();
  std::printf("query class: l-TW(1)=%s, BI(%d), g-TW(1)=%s\n",
              cls.locally_tw_k ? "yes" : "no", cls.interface_width,
              cls.globally_tw_k ? "yes" : "no");

  Result<std::vector<Mapping>> answers = engine.Enumerate(tree, db);
  WDPT_CHECK(answers.ok());
  CallOptions maximal_options;
  maximal_options.semantics = EvalSemantics::kMaximal;
  Result<std::vector<Mapping>> maximal =
      engine.Enumerate(tree, db, maximal_options);
  WDPT_CHECK(maximal.ok());
  std::printf("answers: %zu under p(D), %zu under p_m(D)\n",
              answers->size(), maximal->size());

  // Cross-check the two EVAL algorithms on a few sampled answers, each
  // side evaluated as one engine batch over the thread pool.
  std::vector<Mapping> sample(answers->begin(),
                              answers->begin() +
                                  std::min<size_t>(answers->size(), 5));
  CallOptions naive_options;
  naive_options.algorithm = EvalAlgorithm::kNaive;
  CallOptions dp_options;
  dp_options.algorithm = EvalAlgorithm::kTractableDP;
  Result<std::vector<bool>> naive =
      engine.EvalBatch(tree, db, sample, naive_options);
  Result<std::vector<bool>> tractable =
      engine.EvalBatch(tree, db, sample, dp_options);
  WDPT_CHECK(naive.ok() && tractable.ok());
  for (size_t i = 0; i < sample.size(); ++i) {
    WDPT_CHECK((*naive)[i] && (*tractable)[i]);
  }
  std::printf("EVAL cross-check on %zu answers: naive == tractable\n",
              sample.size());

  // Show the richest answers (most bindings).
  size_t best = 0;
  for (const Mapping& m : *maximal) best = std::max(best, m.size());
  std::printf("most informative answers (%zu bindings):\n", best);
  size_t shown = 0;
  for (const Mapping& m : *maximal) {
    if (m.size() == best && shown < 3) {
      std::printf("  %s\n", m.ToString(vocab).c_str());
      ++shown;
    }
  }
  return 0;
}
