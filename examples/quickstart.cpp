// Quickstart: the paper's running example end to end.
//
// Builds the Figure 1 WDPT from the SPARQL-algebra notation, loads the
// Example 2 database, evaluates under the standard and the
// maximal-mapping semantics, and shows membership / partial / maximal
// checks.
//
// Run: ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "src/engine/engine.h"
#include "src/relational/rdf.h"
#include "src/sparql/data_loader.h"
#include "src/sparql/parser.h"
#include "src/sparql/printer.h"

namespace {

constexpr char kQuery[] =
    "(((?x, recorded_by, ?y) AND (?x, published, after_2010))"
    "  OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)";

constexpr char kData[] = R"(
Our_love recorded_by Caribou
Our_love published after_2010
Swim recorded_by Caribou
Swim published after_2010
Swim NME_rating 2
)";

}  // namespace

int main() {
  using namespace wdpt;

  RdfContext ctx;
  // 1. Parse the query of Example 1 into a well-designed pattern tree.
  Result<PatternTree> parsed = sparql::ParseQuery(kQuery, &ctx);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  PatternTree tree = std::move(*parsed);
  std::printf("Query (Figure 1 of the paper):\n%s\n",
              tree.ToString(ctx.schema(), ctx.vocab()).c_str());

  // 2. Load the Example 2 database.
  Database db = ctx.MakeDatabase();
  Status loaded = sparql::LoadTriples(kData, &ctx, &db);
  WDPT_CHECK(loaded.ok());
  std::printf("Database (%zu triples):\n%s\n", db.TotalFacts(),
              db.ToString(ctx.vocab()).c_str());

  // 3. Classify via the engine's plan: locally TW(1), interface width 2
  // (Example 6). The plan is cached; later calls on the same tree hit it.
  Engine engine;
  Result<std::shared_ptr<const Plan>> plan =
      engine.GetPlan(tree, PlanOptions{1, EvalAlgorithm::kAuto});
  WDPT_CHECK(plan.ok());
  const WdptClassification& cls = (*plan)->classification();
  std::printf(
      "Classification: locally TW(1)=%s, interface width=%d, "
      "globally TW(1)=%s, projection-free=%s, algorithm=%s\n\n",
      cls.locally_tw_k ? "yes" : "no", cls.interface_width,
      cls.globally_tw_k ? "yes" : "no",
      cls.projection_free ? "yes" : "no",
      EvalAlgorithmName((*plan)->algorithm()));

  // 4. Evaluate: p(D) per Example 2.
  Result<std::vector<Mapping>> answers = engine.Enumerate(tree, db);
  WDPT_CHECK(answers.ok());
  std::printf("p(D) (Example 2): %zu answers\n", answers->size());
  for (const Mapping& m : *answers) {
    std::printf("  %s\n", m.ToString(ctx.vocab()).c_str());
  }

  // 5. Project to {y, z} and compare p(D) with p_m(D) (Example 7).
  tree.SetFreeVariables({ctx.vocab().Variable("y").variable_id(),
                         ctx.vocab().Variable("z").variable_id()});
  WDPT_CHECK(tree.Validate().ok());
  Result<std::vector<Mapping>> projected = engine.Enumerate(tree, db);
  CallOptions maximal_options;
  maximal_options.semantics = EvalSemantics::kMaximal;
  Result<std::vector<Mapping>> maximal =
      engine.Enumerate(tree, db, maximal_options);
  WDPT_CHECK(projected.ok() && maximal.ok());
  std::printf("\nProjected to {y, z} (Example 7):\n  p(D):\n");
  for (const Mapping& m : *projected) {
    std::printf("    %s\n", m.ToString(ctx.vocab()).c_str());
  }
  std::printf("  p_m(D) (maximal-mapping semantics):\n");
  for (const Mapping& m : *maximal) {
    std::printf("    %s\n", m.ToString(ctx.vocab()).c_str());
  }

  // 6. Membership, partial and maximal checks for a specific mapping.
  Mapping candidate;
  candidate.Bind(ctx.vocab().Variable("y").variable_id(),
                 ctx.vocab().Constant("Caribou").constant_id());
  CallOptions eval_options;
  Result<bool> eval = engine.Eval(tree, db, candidate, eval_options);
  eval_options.semantics = EvalSemantics::kPartial;
  Result<bool> partial = engine.Eval(tree, db, candidate, eval_options);
  eval_options.semantics = EvalSemantics::kMaximal;
  Result<bool> max = engine.Eval(tree, db, candidate, eval_options);
  WDPT_CHECK(eval.ok() && partial.ok() && max.ok());
  std::printf("\nFor h = %s:\n  EVAL (h in p(D)):        %s\n"
              "  PARTIAL-EVAL:            %s\n"
              "  MAX-EVAL (h in p_m(D)):  %s\n",
              candidate.ToString(ctx.vocab()).c_str(),
              *eval ? "yes" : "no", *partial ? "yes" : "no",
              *max ? "yes" : "no");
  return 0;
}
