// Music catalog at scale: optional matching over incomplete data.
//
// Generates the Figure 1 domain with configurable size and missing-data
// fractions, runs the running-example query with the tractable
// evaluator, and reports how answers decompose by which optional parts
// matched — the information a plain CQ would lose (it fails on records
// without ratings) and a left-outer-join pipeline would need NULLs for.
//
// Run: ./build/examples/music_catalog [num_bands]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/gen/db_gen.h"
#include "src/relational/rdf.h"
#include "src/sparql/parser.h"

int main(int argc, char** argv) {
  using namespace wdpt;
  uint32_t num_bands = argc > 1 ? static_cast<uint32_t>(
                                      std::strtoul(argv[1], nullptr, 10))
                                : 200;

  RdfContext ctx;
  gen::MusicCatalogOptions options;
  options.num_bands = num_bands;
  options.records_per_band = 4;
  options.rating_fraction = 0.4;
  options.formed_fraction = 0.6;
  options.recent_fraction = 0.7;
  Database db = gen::MakeMusicCatalog(&ctx, options);
  std::printf("catalog: %u bands, %zu triples\n", num_bands,
              db.TotalFacts());

  Result<PatternTree> parsed = sparql::ParseQuery(
      "(((?rec, recorded_by, ?band) AND (?rec, published, after_2010))"
      "  OPT (?rec, NME_rating, ?rating)) OPT (?band, formed_in, ?year)",
      &ctx);
  WDPT_CHECK(parsed.ok());
  PatternTree tree = std::move(*parsed);

  Engine engine;
  Result<std::vector<Mapping>> answers = engine.Enumerate(tree, db);
  WDPT_CHECK(answers.ok());

  VariableId rating = ctx.vocab().Variable("rating").variable_id();
  VariableId year = ctx.vocab().Variable("year").variable_id();
  size_t with_rating = 0;
  size_t with_year = 0;
  size_t with_both = 0;
  for (const Mapping& m : *answers) {
    bool r = m.IsDefinedOn(rating);
    bool y = m.IsDefinedOn(year);
    with_rating += r;
    with_year += y;
    with_both += r && y;
  }
  std::printf("answers: %zu total\n", answers->size());
  std::printf("  with NME rating:        %zu\n", with_rating);
  std::printf("  with formation year:    %zu\n", with_year);
  std::printf("  with both optionals:    %zu\n", with_both);
  std::printf("  mandatory part only:    %zu\n",
              answers->size() - with_rating - with_year + with_both);

  // A CQ (all parts mandatory) would only return the fully-matched rows:
  std::printf(
      "a plain CQ would return %zu of these %zu answers "
      "(%.0f%% of the data lost to rigidity)\n",
      with_both, answers->size(),
      answers->empty()
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(with_both) /
                               static_cast<double>(answers->size())));

  // Partial-answer lookup: which bands have at least one qualifying
  // record (PARTIAL-EVAL drives an autocomplete-style check without
  // enumerating everything). The probes run as one engine batch across
  // the thread pool.
  VariableId band_var = ctx.vocab().Variable("band").variable_id();
  std::vector<Mapping> probes;
  for (uint32_t i = 0; i < std::min(num_bands, 8u); ++i) {
    Mapping probe;
    probe.Bind(band_var,
               ctx.vocab().Constant("band" + std::to_string(i)).constant_id());
    probes.push_back(std::move(probe));
  }
  CallOptions partial_options;
  partial_options.semantics = EvalSemantics::kPartial;
  Result<std::vector<bool>> partial =
      engine.EvalBatch(tree, db, probes, partial_options);
  WDPT_CHECK(partial.ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    std::printf("PARTIAL-EVAL(band = band%zu): %s\n", i,
                (*partial)[i] ? "has qualifying records" : "no records");
  }
  return 0;
}
