// Semantic optimization and approximation walkthrough (Sections 5-6).
//
// 1. A WDPT whose root label hides a foldable high-treewidth pattern is
//    recognized as subsumption-equivalent to a WB(1) tree (M(WB(k))
//    membership, Theorem 13 on a bounded instance) and replaced by the
//    witness.
// 2. A WDPT that is NOT equivalent to any WB(1) tree is approximated:
//    the sound WB(1) quotient approximation is computed (Theorem 14
//    machinery) and compared against the original on data.
// 3. The same pipeline through unions: phi -> phi_cq -> per-CQ
//    C(k)-approximations (Theorem 18).
//
// Run: ./build/examples/query_optimizer

#include <cstdio>

#include "src/analysis/semantic.h"
#include "src/analysis/subsumption.h"
#include "src/approx/wdpt_approx.h"
#include "src/gen/cq_gen.h"
#include "src/gen/db_gen.h"
#include "src/uwdpt/approx.h"
#include "src/uwdpt/semantic.h"
#include "src/engine/engine.h"

int main() {
  using namespace wdpt;
  Schema schema;
  Vocabulary vocab;
  RelationId e = gen::EdgeRelation(&schema);
  auto V = [&](const char* name) { return vocab.Variable(name); };
  auto Edge = [&](Term s, Term t) { return Atom(e, {s, t}); };

  // ---- 1. Semantic membership ------------------------------------------
  // Root: E(x,y) plus a triangle over existential variables and a
  // self-loop; the triangle folds onto the loop, so the query is
  // ==_s-equivalent to a WB(1) tree even though tw(root) = 2.
  PatternTree foldable;
  foldable.AddAtom(PatternTree::kRoot, Edge(V("x"), V("y")));
  foldable.AddAtom(PatternTree::kRoot, Edge(V("t1"), V("t2")));
  foldable.AddAtom(PatternTree::kRoot, Edge(V("t2"), V("t3")));
  foldable.AddAtom(PatternTree::kRoot, Edge(V("t3"), V("t1")));
  foldable.AddAtom(PatternTree::kRoot, Edge(V("s"), V("s")));
  foldable.AddChild(PatternTree::kRoot, {Edge(V("y"), V("z"))});
  foldable.SetFreeVariables({V("x").variable_id(), V("y").variable_id(),
                             V("z").variable_id()});
  WDPT_CHECK(foldable.Validate().ok());

  Result<bool> syntactic = IsInWB(foldable, WidthMeasure::kTreewidth, 1);
  WDPT_CHECK(syntactic.ok());
  std::printf("q1 syntactically in WB(1): %s\n", *syntactic ? "yes" : "no");
  Result<std::optional<PatternTree>> witness = FindSubsumptionEquivalentInWB(
      foldable, WidthMeasure::kTreewidth, 1, &schema, &vocab);
  WDPT_CHECK(witness.ok());
  if (witness->has_value()) {
    std::printf("q1 in M(WB(1)); optimized form:\n%s",
                (*witness)->ToString(schema, vocab).c_str());
  } else {
    std::printf("q1 not recognized in M(WB(1))\n");
  }

  // ---- 2. Approximation ---------------------------------------------------
  // A genuine triangle anchored at a free variable: not in M(WB(1)).
  PatternTree rigid;
  rigid.AddAtom(PatternTree::kRoot, Edge(V("x"), V("u1")));
  rigid.AddAtom(PatternTree::kRoot, Edge(V("u1"), V("u2")));
  rigid.AddAtom(PatternTree::kRoot, Edge(V("u2"), V("u3")));
  rigid.AddAtom(PatternTree::kRoot, Edge(V("u3"), V("u1")));
  rigid.AddChild(PatternTree::kRoot, {Edge(V("x"), V("w"))});
  rigid.SetFreeVariables({V("x").variable_id(), V("w").variable_id()});
  WDPT_CHECK(rigid.Validate().ok());

  Result<std::optional<PatternTree>> no_witness =
      FindSubsumptionEquivalentInWB(rigid, WidthMeasure::kTreewidth, 1,
                                    &schema, &vocab);
  WDPT_CHECK(no_witness.ok());
  std::printf("\nq2 in M(WB(1)): %s -> approximate instead\n",
              no_witness->has_value() ? "yes" : "no");

  Result<std::vector<PatternTree>> approx = ComputeWdptApproximations(
      rigid, WidthMeasure::kTreewidth, 1, &schema, &vocab);
  WDPT_CHECK(approx.ok());
  std::printf("WB(1) quotient approximations of q2: %zu\n", approx->size());
  for (const PatternTree& a : *approx) {
    std::printf("%s", a.ToString(schema, vocab).c_str());
  }

  // Compare original vs approximation on a random graph: the
  // approximation is sound (answers subsumed by the original's answers).
  Engine engine;
  gen::RandomGraphOptions gopts;
  gopts.num_vertices = 40;
  gopts.num_edges = 160;
  gopts.seed = 5;
  RelationId e2;
  Database db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e2);
  Result<std::vector<Mapping>> exact = engine.Enumerate(rigid, db);
  WDPT_CHECK(exact.ok());
  if (!approx->empty()) {
    Result<std::vector<Mapping>> approximate =
        engine.Enumerate((*approx)[0], db);
    WDPT_CHECK(approximate.ok());
    size_t sound = 0;
    for (const Mapping& m : *approximate) {
      for (const Mapping& x : *exact) {
        if (m.IsSubsumedBy(x)) {
          ++sound;
          break;
        }
      }
    }
    std::printf(
        "on a %zu-fact graph: exact answers %zu, approximate answers %zu "
        "(%zu subsumed by exact answers)\n",
        db.TotalFacts(), exact->size(), approximate->size(), sound);
  }

  // ---- 3. Unions ---------------------------------------------------------
  UnionWdpt phi;
  phi.members.push_back(rigid);
  Result<bool> in_uwb = IsInSemanticUWB(phi, WidthMeasure::kTreewidth, 1,
                                        &schema, &vocab);
  WDPT_CHECK(in_uwb.ok());
  std::printf("\nphi = {q2} in M(UWB(1)): %s\n", *in_uwb ? "yes" : "no");
  Result<UnionOfCqs> uapprox = ComputeUwbApproximation(
      phi, WidthMeasure::kTreewidth, 1, &schema, &vocab);
  WDPT_CHECK(uapprox.ok());
  std::printf("UWB(1)-approximation of phi: union of %zu CQs\n",
              uapprox->size());
  for (const ConjunctiveQuery& q : *uapprox) {
    std::printf("  %s\n", q.ToString(schema, vocab).c_str());
  }
  return 0;
}
