// Table 2 reproduction: semantic optimization and approximation.
//
//   WB(k)-MEMBERSHIP      Pi2P-hard .. NEXPTIME^NP
//   WB(k)-APPROXIMATION   Pi2P-hard .. coNEXPTIME^NP
//   UWB(k)-MEMBERSHIP     Pi2P .. Pi3P
//   UWB(k)-APPROXIMATION  Pi2P .. Pi3P
//
// Empirically the headline contrast of Section 6 appears: the
// single-WDPT problems need a search over an exponential candidate
// space (quotients; runtime explodes with the number of existential
// variables), while the UWDPT route runs through phi_cq + per-CQ cores
// and scales with the number of subtrees times a small-core
// computation. The approximate-then-run bench shows the motivating
// payoff: on large databases, computing the WB(1)-approximation once
// and evaluating it beats evaluating the original query directly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/analysis/semantic.h"
#include "src/approx/wdpt_approx.h"
#include "src/cq/evaluation.h"
#include "src/gen/cq_gen.h"
#include "src/gen/db_gen.h"
#include "src/uwdpt/approx.h"
#include "src/uwdpt/semantic.h"
#include "src/wdpt/enumerate.h"

namespace wdpt::bench {
namespace {

// WDPT with a foldable triangle + loop in the root and `extra` spare
// existential variables to grow the quotient space.
PatternTree MakeFoldable(Schema* schema, Vocabulary* vocab, uint32_t extra,
                         uint32_t tag) {
  RelationId e = gen::EdgeRelation(schema);
  auto V = [&](const std::string& n) {
    return vocab->Variable("t2_" + std::to_string(tag) + "_" + n);
  };
  PatternTree tree;
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("x"), V("y")}));
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("a"), V("b")}));
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("b"), V("c")}));
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("c"), V("a")}));
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("s"), V("s")}));
  Term prev = V("y");
  for (uint32_t i = 0; i < extra; ++i) {
    Term next = V("m" + std::to_string(i));
    tree.AddAtom(PatternTree::kRoot, Atom(e, {prev, next}));
    prev = next;
  }
  tree.SetFreeVariables({V("x").variable_id(), V("y").variable_id()});
  WDPT_CHECK(tree.Validate().ok());
  return tree;
}

void BM_WbMembership_QuotientSearch(benchmark::State& state) {
  uint32_t extra = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  PatternTree tree = MakeFoldable(&schema, &vocab, extra, extra);
  bool found = false;
  for (auto _ : state) {
    Result<std::optional<PatternTree>> witness =
        FindSubsumptionEquivalentInWB(tree, WidthMeasure::kTreewidth, 1,
                                      &schema, &vocab);
    WDPT_CHECK(witness.ok());
    found = witness->has_value();
    benchmark::DoNotOptimize(witness);
  }
  WDPT_CHECK(found);
  state.counters["existential_vars"] =
      static_cast<double>(tree.AllVariables().size() -
                          tree.free_vars().size());
}
BENCHMARK(BM_WbMembership_QuotientSearch)->DenseRange(0, 3);

void BM_WbApproximation_QuotientSearch(benchmark::State& state) {
  uint32_t extra = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  // Genuine triangle (no loop): approximation required.
  RelationId e = gen::EdgeRelation(&schema);
  auto V = [&](const std::string& n) {
    return vocab.Variable("ap_" + std::to_string(extra) + "_" + n);
  };
  PatternTree tree;
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("x"), V("a")}));
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("a"), V("b")}));
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("b"), V("c")}));
  tree.AddAtom(PatternTree::kRoot, Atom(e, {V("c"), V("a")}));
  Term prev = V("x");
  for (uint32_t i = 0; i < extra; ++i) {
    Term next = V("m" + std::to_string(i));
    tree.AddAtom(PatternTree::kRoot, Atom(e, {prev, next}));
    prev = next;
  }
  tree.SetFreeVariables({V("x").variable_id()});
  WDPT_CHECK(tree.Validate().ok());
  size_t count = 0;
  for (auto _ : state) {
    Result<std::vector<PatternTree>> approx = ComputeWdptApproximations(
        tree, WidthMeasure::kTreewidth, 1, &schema, &vocab);
    WDPT_CHECK(approx.ok());
    count = approx->size();
    benchmark::DoNotOptimize(approx);
  }
  state.counters["approximations"] = static_cast<double>(count);
}
BENCHMARK(BM_WbApproximation_QuotientSearch)->DenseRange(0, 3);

// ---- UWDPT route (Theorem 17/18): polynomially better behaved ----------

void BM_UwbMembership_ViaCores(benchmark::State& state) {
  uint32_t children = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  RelationId e = gen::EdgeRelation(&schema);
  auto V = [&](const std::string& n) {
    return vocab.Variable("um_" + std::to_string(children) + "_" + n);
  };
  PatternTree member;
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("x"), V("y")}));
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("s"), V("s")}));
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("a"), V("b")}));
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("b"), V("c")}));
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("c"), V("a")}));
  for (uint32_t i = 0; i < children; ++i) {
    member.AddChild(PatternTree::kRoot,
                    {Atom(e, {V("y"), V("z" + std::to_string(i))})});
  }
  member.SetFreeVariables({V("x").variable_id(), V("y").variable_id()});
  WDPT_CHECK(member.Validate().ok());
  UnionWdpt phi;
  phi.members.push_back(std::move(member));
  bool in_class = false;
  for (auto _ : state) {
    Result<bool> r = IsInSemanticUWB(phi, WidthMeasure::kTreewidth, 1,
                                     &schema, &vocab);
    WDPT_CHECK(r.ok());
    in_class = *r;
    benchmark::DoNotOptimize(r);
  }
  WDPT_CHECK(in_class);
  state.counters["children"] = children;
}
BENCHMARK(BM_UwbMembership_ViaCores)->DenseRange(1, 7, 2);

void BM_UwbApproximation_ViaCores(benchmark::State& state) {
  uint32_t children = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  RelationId e = gen::EdgeRelation(&schema);
  auto V = [&](const std::string& n) {
    return vocab.Variable("ua_" + std::to_string(children) + "_" + n);
  };
  PatternTree member;
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("x"), V("a")}));
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("a"), V("b")}));
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("b"), V("c")}));
  member.AddAtom(PatternTree::kRoot, Atom(e, {V("c"), V("a")}));
  for (uint32_t i = 0; i < children; ++i) {
    member.AddChild(PatternTree::kRoot,
                    {Atom(e, {V("x"), V("z" + std::to_string(i))})});
  }
  member.SetFreeVariables({V("x").variable_id()});
  WDPT_CHECK(member.Validate().ok());
  UnionWdpt phi;
  phi.members.push_back(std::move(member));
  size_t members = 0;
  for (auto _ : state) {
    Result<UnionOfCqs> approx = ComputeUwbApproximation(
        phi, WidthMeasure::kTreewidth, 1, &schema, &vocab);
    WDPT_CHECK(approx.ok());
    members = approx->size();
    benchmark::DoNotOptimize(approx);
  }
  state.counters["approx_members"] = static_cast<double>(members);
}
BENCHMARK(BM_UwbApproximation_ViaCores)->DenseRange(1, 5, 2);

// ---- Approximate-then-run vs direct evaluation ---------------------------
// The motivating claim of Section 5.2: on large databases
// O(|D| * 2^2^t(|p|)) beats |D|^O(|p|). We use a CQ whose exact
// evaluation is a 3-clique join while its TW(1)-approximation is a
// self-loop probe.

void BM_DirectCliqueEval(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::RandomGraphOptions gopts;
  gopts.num_vertices = n;
  gopts.num_edges = uint64_t{8} * n;
  gopts.seed = 3;
  RelationId e;
  Database db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e);
  ConjunctiveQuery clique = gen::MakeCliqueCq(&schema, &vocab, 3, "dk");
  CqEvalOptions naive;
  naive.strategy = CqEvalStrategy::kBacktracking;
  for (auto _ : state) {
    bool r = DecideNonEmpty(clique.atoms, db, Mapping(), naive);
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(db.TotalFacts());
}
BENCHMARK(BM_DirectCliqueEval)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ApproximateThenRun(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::RandomGraphOptions gopts;
  gopts.num_vertices = n;
  gopts.num_edges = uint64_t{8} * n;
  gopts.seed = 3;
  RelationId e;
  Database db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e);
  ConjunctiveQuery clique = gen::MakeCliqueCq(&schema, &vocab, 3, "ak");
  CqEvalOptions naive;
  naive.strategy = CqEvalStrategy::kBacktracking;
  for (auto _ : state) {
    // Approximation computed per iteration: its cost is data-independent.
    Result<std::vector<ConjunctiveQuery>> approx = ComputeCqApproximations(
        clique, WidthMeasure::kTreewidth, 1, &schema, &vocab);
    WDPT_CHECK(approx.ok() && !approx->empty());
    bool r = DecideNonEmpty((*approx)[0].atoms, db, Mapping(), naive);
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(db.TotalFacts());
}
BENCHMARK(BM_ApproximateThenRun)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
