// Ablation: the role of the bounded-interface condition (Theorem 6).
//
// The Theorem 6 DP materializes one relation of interface assignments
// per node, of size |adom|^{|interface|}. Sweeping the interface width c
// of otherwise identical WDPTs shows the polynomial degree growing with
// c — the reason BI(c) must bound c by a *constant* for the LOGCFL
// result, and why Proposition 2's strictness matters (g-TW(k) alone
// admits unbounded interfaces, for which the DP degenerates; see
// bench_table1_eval's hard family).

#include <benchmark/benchmark.h>

#include <string>

#include "src/gen/cq_gen.h"
#include "src/gen/db_gen.h"
#include "bench/bench_util.h"
#include "src/wdpt/classify.h"
#include "src/engine/engine.h"

namespace wdpt::bench {
namespace {

// Root: a path of `c` E-atoms; one child sharing all c+1 path variables
// (interface width c+1) plus one private variable.
struct InterfaceInstance {
  Schema schema;
  Vocabulary vocab;
  Database db;
  PatternTree tree;

  InterfaceInstance(uint32_t c, uint32_t db_vertices, uint64_t seed)
      : db(&schema) {
    RelationId e = gen::EdgeRelation(&schema);
    std::string prefix = "if" + std::to_string(c) + "_";
    std::vector<Term> path;
    for (uint32_t i = 0; i <= c; ++i) {
      path.push_back(vocab.Variable(prefix + "v" + std::to_string(i)));
    }
    for (uint32_t i = 0; i < c; ++i) {
      tree.AddAtom(PatternTree::kRoot, Atom(e, {path[i], path[i + 1]}));
    }
    // Child re-uses every root variable and adds one of its own.
    std::vector<Atom> child;
    Term w = vocab.Variable(prefix + "w");
    for (uint32_t i = 0; i <= c; ++i) {
      child.push_back(Atom(e, {path[i], w}));
    }
    tree.AddChild(PatternTree::kRoot, std::move(child));
    tree.SetFreeVariables({path[0].variable_id()});
    WDPT_CHECK(tree.Validate().ok());

    gen::RandomGraphOptions gopts;
    gopts.num_vertices = db_vertices;
    gopts.num_edges = uint64_t{6} * db_vertices;
    gopts.seed = seed;
    RelationId e2;
    db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e2);
  }
};

void BM_InterfaceWidthSweep(benchmark::State& state) {
  uint32_t c = static_cast<uint32_t>(state.range(0));
  InterfaceInstance inst(c, /*db_vertices=*/40, /*seed=*/31);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kTractableDP;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["interface_width"] =
      static_cast<double>(InterfaceWidth(inst.tree));
}
BENCHMARK(BM_InterfaceWidthSweep)->DenseRange(1, 4);

void BM_InterfaceDbSweep_SmallC(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  InterfaceInstance inst(/*c=*/1, n, /*seed=*/33);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kTractableDP;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_InterfaceDbSweep_SmallC)->Arg(50)->Arg(200)->Arg(800);

void BM_InterfaceDbSweep_LargeC(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  InterfaceInstance inst(/*c=*/3, n, /*seed=*/34);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kTractableDP;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_InterfaceDbSweep_LargeC)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
