// Ablation: projection-aware answer enumeration (EvaluateWdptProjected)
// vs full maximal-homomorphism enumeration.
//
// The query asks for edges (x, y) and optionally, per branch i, whether
// y has an outgoing edge — with the witness target projected out. Full
// enumeration materializes every combination of witnesses across the
// branches (deg(y)^branches homomorphisms per answer); the projected
// evaluator collapses each branch to at most two outcomes before the
// product, and memoizes per interface value. Expected shape: the gap
// grows exponentially with the number of optional branches and
// multiplicatively with the average degree.

#include <benchmark/benchmark.h>

#include <string>

#include "src/gen/cq_gen.h"
#include "src/gen/db_gen.h"
#include "src/engine/engine.h"
#include "src/wdpt/enumerate.h"

namespace wdpt::bench {
namespace {

struct Instance {
  Schema schema;
  Vocabulary vocab;
  Database db;
  PatternTree tree;

  Instance(uint32_t branches, uint32_t vertices, uint32_t degree)
      : db(&schema) {
    RelationId e = gen::EdgeRelation(&schema);
    gen::RandomGraphOptions gopts;
    gopts.num_vertices = vertices;
    gopts.num_edges = uint64_t{degree} * vertices;
    gopts.seed = 7;
    RelationId e2;
    db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e2);

    std::string prefix = "en" + std::to_string(branches) + "_";
    Term x = vocab.Variable(prefix + "x");
    Term y = vocab.Variable(prefix + "y");
    tree.AddAtom(PatternTree::kRoot, Atom(e, {x, y}));
    for (uint32_t i = 0; i < branches; ++i) {
      Term z = vocab.Variable(prefix + "z" + std::to_string(i));
      tree.AddChild(PatternTree::kRoot, {Atom(e, {y, z})});
    }
    // Only x and y are answer variables; the witnesses are existential.
    tree.SetFreeVariables({x.variable_id(), y.variable_id()});
    WDPT_CHECK(tree.Validate().ok());
  }
};

void BM_Enumerate_Full(benchmark::State& state) {
  Instance inst(static_cast<uint32_t>(state.range(0)), /*vertices=*/30,
                /*degree=*/4);
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Mapping>> r =
        EvaluateWdptByFullEnumeration(inst.tree, inst.db);
    WDPT_CHECK(r.ok());
    answers = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Enumerate_Full)->DenseRange(1, 4);

void BM_Enumerate_Projected(benchmark::State& state) {
  Instance inst(static_cast<uint32_t>(state.range(0)), /*vertices=*/30,
                /*degree=*/4);
  size_t answers = 0;
  Engine engine;
  for (auto _ : state) {
    Result<std::vector<Mapping>> r = engine.Enumerate(inst.tree, inst.db);
    WDPT_CHECK(r.ok());
    answers = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Enumerate_Projected)->DenseRange(1, 4)->DenseRange(6, 10, 2);

void BM_Enumerate_Projected_DbSweep(benchmark::State& state) {
  Instance inst(/*branches=*/3, static_cast<uint32_t>(state.range(0)),
                /*degree=*/4);
  Engine engine;
  for (auto _ : state) {
    Result<std::vector<Mapping>> r = engine.Enumerate(inst.tree, inst.db);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Enumerate_Projected_DbSweep)->Arg(100)->Arg(400)->Arg(1600);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
