// Figure 2 / Theorem 15 reproduction: the unavoidable exponential size
// of WB(k)-approximations.
//
// For n = 1..12 the bench constructs the pair (p1, p2), reports
// |p1| = O(n^2) vs |p2| = Omega(2^n), and (for small n) verifies the
// subsumption p2 [= p1 and the width classification that make p2 an
// approximation candidate. Expected shape: the size ratio doubles with
// every increment of n.

#include <benchmark/benchmark.h>

#include "src/analysis/subsumption.h"
#include "src/analysis/wb.h"
#include "src/approx/blowup.h"

namespace wdpt {
namespace {

void BM_Fig2_ConstructAndMeasure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const int k = 2;
  size_t size1 = 0, size2 = 0;
  for (auto _ : state) {
    Schema schema;
    Vocabulary vocab;
    BlowupPair pair = MakeBlowupFamily(n, k, &schema, &vocab);
    size1 = pair.p1.Size();
    size2 = pair.p2.Size();
    benchmark::DoNotOptimize(pair);
  }
  state.counters["p1_size"] = static_cast<double>(size1);
  state.counters["p2_size"] = static_cast<double>(size2);
  state.counters["ratio"] =
      static_cast<double>(size2) / static_cast<double>(size1);
}
BENCHMARK(BM_Fig2_ConstructAndMeasure)->DenseRange(1, 12);

void BM_Fig2_VerifySubsumption(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const int k = 2;
  Schema schema;
  Vocabulary vocab;
  BlowupPair pair = MakeBlowupFamily(n, k, &schema, &vocab);
  bool subsumed = false;
  for (auto _ : state) {
    Result<bool> r = IsSubsumedBy(pair.p2, pair.p1, &schema, &vocab);
    WDPT_CHECK(r.ok());
    subsumed = *r;
    benchmark::DoNotOptimize(r);
  }
  WDPT_CHECK(subsumed);
  Result<bool> p2_in_wb = IsInWB(pair.p2, WidthMeasure::kTreewidth, k);
  Result<bool> p1_in_wb = IsInWB(pair.p1, WidthMeasure::kTreewidth, k);
  WDPT_CHECK(p2_in_wb.ok() && p1_in_wb.ok());
  state.counters["p2_in_WBk"] = *p2_in_wb ? 1 : 0;   // Expected 1.
  state.counters["p1_in_WBk"] = *p1_in_wb ? 1 : 0;   // Expected 0.
}
BENCHMARK(BM_Fig2_VerifySubsumption)->DenseRange(1, 4);

}  // namespace
}  // namespace wdpt

BENCHMARK_MAIN();
