// bench_kernel: join-kernel microbenchmarks and legacy-vs-flat
// before/after comparison on the Table 1 workloads.
//
// Usage:
//   bench_kernel [--db-vertices N] [--reps N] [--check] [--json FILE]
//
// Three groups of series:
//   * csr_probe: Relation::RowsMatching throughput on the warmed CSR
//     index of a random graph relation (million probes/second).
//   * semijoin: the semijoin inner loop in isolation — build a key set
//     from 1M binary tuples, then stream 4M membership probes through
//     it, once with the legacy structure (std::unordered_set) and once
//     with the arena-backed FlatTupleSet. Million probes/second each.
//   * eval_*: full-query before/after — the Table 1 EVAL / MAX-EVAL
//     tractable sweeps and an acyclic-CQ evaluation, each run once with
//     the legacy kernel (CqKernel::kLegacy + HomOrder::kLegacy) and once
//     with the flat kernel (kFlat + kStats); the JSON records both
//     medians and the speedup ratio.
//
// --check additionally compares the two kernels' canonical answer sets
// on every workload and fails (exit 1) on any divergence, which makes
// the binary usable as a differential gate (tools/run_tier1.sh runs it
// this way in its perf-smoke step).
//
// --json writes BENCH_kernel.json (the bench_kernel_json target
// captures it); tools/bench_compare.py diffs two such files.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/arena.h"
#include "src/common/flat_table.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/cq/evaluation.h"
#include "src/cq/kernel.h"
#include "src/engine/engine.h"
#include "src/gen/cq_gen.h"
#include "src/relational/mapping.h"
#include "src/wdpt/enumerate.h"

namespace {

using namespace wdpt;
using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - start)
                 .count()) /
         1e6;
}

double Median(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void UseKernel(CqKernel kernel, HomOrder order) {
  SetDefaultCqKernel(kernel);
  SetDefaultHomOrder(order);
}

// Canonical form of an answer set: sorted textual renderings, so the
// two kernels' outputs compare independent of enumeration order.
std::vector<std::string> Canonical(const std::vector<Mapping>& answers) {
  std::vector<std::string> out;
  out.reserve(answers.size());
  for (const Mapping& m : answers) {
    std::string row;
    for (const auto& [v, c] : m.entries()) {
      row += std::to_string(v) + "=" + std::to_string(c) + ";";
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// One before/after series: wall-time medians per kernel + the ratio.
struct Series {
  std::string name;
  double legacy_ms = 0;
  double flat_ms = 0;

  double Speedup() const { return flat_ms > 0 ? legacy_ms / flat_ms : 0; }
};

// Times `work` under each kernel, `reps` times, keeping medians.
template <typename Fn>
Series RunSeries(const std::string& name, int reps, Fn work) {
  Series s;
  s.name = name;
  std::vector<double> legacy, flat;
  for (int rep = 0; rep < reps; ++rep) {
    UseKernel(CqKernel::kLegacy, HomOrder::kLegacy);
    Clock::time_point t0 = Clock::now();
    work();
    legacy.push_back(ElapsedMs(t0));
    UseKernel(CqKernel::kFlat, HomOrder::kStats);
    t0 = Clock::now();
    work();
    flat.push_back(ElapsedMs(t0));
  }
  UseKernel(CqKernel::kDefault, HomOrder::kDefault);
  s.legacy_ms = Median(std::move(legacy));
  s.flat_ms = Median(std::move(flat));
  std::fprintf(stderr, "%-28s legacy=%9.3fms flat=%9.3fms speedup=%.2fx\n",
               s.name.c_str(), s.legacy_ms, s.flat_ms, s.Speedup());
  return s;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--db-vertices N] [--reps N] [--check] "
               "[--json FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t db_vertices = 6400;
  int reps = 3;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db-vertices" && i + 1 < argc) {
      db_vertices =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  // Shared instances (Table 1 workloads; see bench/bench_util.h).
  bench::TractableInstance tractable(db_vertices, uint64_t{3} * db_vertices,
                                     /*depth=*/2, /*branching=*/2,
                                     /*seed=*/11);
  Mapping answer = bench::FirstAnswer(tractable.tree, tractable.db);

  // An acyclic path CQ over the same random graph, with the endpoints
  // free: exercises the decomposition kernel (EvaluateOverBags) end to
  // end — bag joins, both semijoin sweeps, and answer enumeration.
  ConjunctiveQuery chain_cq =
      gen::MakePathCq(&tractable.schema, &tractable.vocab, /*len=*/4);
  chain_cq.free_vars = {chain_cq.atoms.front().terms[0].variable_id(),
                        chain_cq.atoms.back().terms[1].variable_id()};
  chain_cq.Normalize();

  // --- csr_probe: index probe throughput -------------------------------
  RelationId edge_id = tractable.schema.Find("E");
  WDPT_CHECK(edge_id != Schema::kNotFound);
  const Relation& edge_rel = tractable.db.relation(edge_id);
  tractable.db.WarmColumnIndexes();
  double probe_mops = 0;
  {
    // Sample constants that actually occur, so probes hit real posting
    // lists rather than binary-searching past the value range.
    std::vector<ConstantId> sample(4096);
    for (size_t i = 0; i < sample.size(); ++i) {
      sample[i] = edge_rel.Tuple((i * 97) % edge_rel.size())[i & 1];
    }
    uint64_t hits = 0;
    const uint64_t kProbes = 2'000'000;
    Clock::time_point t0 = Clock::now();
    for (uint64_t i = 0; i < kProbes; ++i) {
      hits += edge_rel
                  .RowsMatching(static_cast<uint32_t>(i & 1),
                                sample[i % sample.size()])
                  .size();
    }
    double ms = ElapsedMs(t0);
    if (hits == 0) std::fprintf(stderr, "warning: no probe hits\n");
    probe_mops = ms > 0 ? static_cast<double>(kProbes) / ms / 1e3 : 0;
    std::fprintf(stderr, "%-28s %.2f Mprobes/s (%llu rows touched)\n",
                 "csr_probe", probe_mops,
                 static_cast<unsigned long long>(hits));
  }

  // --- semijoin: membership-probe rate in isolation --------------------
  // The semijoin inner loop is "pack the join-key columns, test set
  // membership". Time that loop over the same data with the legacy
  // structure (unordered_set of packed keys) and with FlatTupleSet.
  double semijoin_legacy_mps = 0, semijoin_flat_mps = 0;
  {
    const uint32_t kBuild = 1'000'000;
    const uint64_t kProbe = 4'000'000;
    std::vector<ConstantId> tuples(2 * kBuild);
    uint64_t state = 0x9E3779B97F4A7C15ull;
    for (ConstantId& c : tuples) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      c = static_cast<ConstantId>((state >> 33) % (kBuild / 2));
    }
    auto pack = [](ConstantId a, ConstantId b) {
      return (static_cast<uint64_t>(a) << 32) | b;
    };
    uint64_t legacy_hits = 0, flat_hits = 0;
    {
      std::unordered_set<uint64_t> set;
      set.reserve(kBuild);
      for (uint32_t i = 0; i < kBuild; ++i) {
        set.insert(pack(tuples[2 * i], tuples[2 * i + 1]));
      }
      Clock::time_point t0 = Clock::now();
      for (uint64_t i = 0; i < kProbe; ++i) {
        uint32_t j = static_cast<uint32_t>((i * 2654435761u) % kBuild);
        legacy_hits += set.count(pack(tuples[2 * j] ^ (i & 1),
                                      tuples[2 * j + 1]));
      }
      double ms = ElapsedMs(t0);
      semijoin_legacy_mps = ms > 0 ? static_cast<double>(kProbe) / ms / 1e3 : 0;
    }
    {
      Arena arena;
      FlatTupleSet set;
      set.Init(/*arity=*/2, &arena);
      for (uint32_t i = 0; i < kBuild; ++i) {
        set.InsertOrFind(&tuples[2 * i]);
      }
      std::array<ConstantId, 2> probe;
      Clock::time_point t0 = Clock::now();
      for (uint64_t i = 0; i < kProbe; ++i) {
        uint32_t j = static_cast<uint32_t>((i * 2654435761u) % kBuild);
        probe[0] = tuples[2 * j] ^ static_cast<ConstantId>(i & 1);
        probe[1] = tuples[2 * j + 1];
        flat_hits += set.Find(probe.data()) != FlatTupleSet::kNoId ? 1 : 0;
      }
      double ms = ElapsedMs(t0);
      semijoin_flat_mps = ms > 0 ? static_cast<double>(kProbe) / ms / 1e3 : 0;
    }
    WDPT_CHECK(legacy_hits == flat_hits);
    std::fprintf(stderr, "%-28s legacy=%.1f flat=%.1f Mprobes/s\n",
                 "semijoin_probe", semijoin_legacy_mps, semijoin_flat_mps);
  }

  // --- full-query before/after -----------------------------------------
  std::vector<Series> series;

  {
    Engine engine;
    CallOptions opts;
    opts.algorithm = EvalAlgorithm::kTractableDP;
    series.push_back(RunSeries("eval_tractable_db", reps, [&] {
      Result<bool> r = engine.Eval(tractable.tree, tractable.db, answer, opts);
      WDPT_CHECK(r.ok());
    }));
  }
  {
    Engine engine;
    CallOptions opts;
    opts.semantics = EvalSemantics::kMaximal;
    series.push_back(RunSeries("maxeval_db", reps, [&] {
      Result<bool> r = engine.Eval(tractable.tree, tractable.db, answer, opts);
      WDPT_CHECK(r.ok());
    }));
  }
  series.push_back(RunSeries("acyclic_cq_eval", reps, [&] {
    std::optional<std::vector<Mapping>> r =
        EvaluateAcyclic(chain_cq, tractable.db);
    WDPT_CHECK(r.has_value());
  }));

  // --- differential check ----------------------------------------------
  // Runs on a small instance: the WDPT check enumerates *all* maximal
  // homomorphisms, which is combinatorial on the timing-sized database.
  int check_failures = 0;
  if (check) {
    bench::TractableInstance small(400, 1200, /*depth=*/2, /*branching=*/2,
                                   /*seed=*/11);
    ConjunctiveQuery small_cq =
        gen::MakePathCq(&small.schema, &small.vocab, /*len=*/4);
    small_cq.free_vars = {small_cq.atoms.front().terms[0].variable_id(),
                          small_cq.atoms.back().terms[1].variable_id()};
    small_cq.Normalize();
    UseKernel(CqKernel::kLegacy, HomOrder::kLegacy);
    std::optional<std::vector<Mapping>> legacy_cq =
        EvaluateAcyclic(small_cq, small.db);
    UseKernel(CqKernel::kFlat, HomOrder::kStats);
    std::optional<std::vector<Mapping>> flat_cq =
        EvaluateAcyclic(small_cq, small.db);
    UseKernel(CqKernel::kDefault, HomOrder::kDefault);
    WDPT_CHECK(legacy_cq.has_value() && flat_cq.has_value());
    if (Canonical(*legacy_cq) != Canonical(*flat_cq)) {
      std::fprintf(stderr, "CHECK FAILED: acyclic CQ answer sets differ\n");
      ++check_failures;
    }

    // WDPT side: p(D) on these random instances is combinatorially huge,
    // so the differential is a bounded membership sweep — sample answers
    // from an early-stopped enumeration, add perturbed (likely-negative)
    // variants, and require identical Eval verdicts from both kernels
    // under all three semantics.
    std::vector<Mapping> candidates;
    Status enum_status = ForEachMaximalHomomorphism(
        small.tree, small.db, [&](const Mapping& m) {
          candidates.push_back(m.RestrictTo(small.tree.free_vars()));
          return candidates.size() < 100;
        });
    (void)enum_status;  // An early stop reports ok; a cap abort is fine too.
    size_t num_positive = candidates.size();
    for (size_t i = 0; i + 1 < num_positive; i += 2) {
      // Cross two answers' bindings: usually not an answer any more.
      std::vector<Mapping::Entry> entries;
      const auto& a = candidates[i].entries();
      const auto& b = candidates[i + 1].entries();
      for (size_t k = 0; k < a.size(); ++k) {
        entries.emplace_back(a[k].first, (k & 1) ? b[k].second : a[k].second);
      }
      candidates.push_back(Mapping(std::move(entries)));
    }
    uint64_t verdict_mismatches = 0;
    for (EvalSemantics semantics :
         {EvalSemantics::kStandard, EvalSemantics::kPartial,
          EvalSemantics::kMaximal}) {
      Engine legacy_engine, flat_engine;
      CallOptions check_opts;
      check_opts.semantics = semantics;
      for (const Mapping& h : candidates) {
        UseKernel(CqKernel::kLegacy, HomOrder::kLegacy);
        Result<bool> lv = legacy_engine.Eval(small.tree, small.db, h, check_opts);
        UseKernel(CqKernel::kFlat, HomOrder::kStats);
        Result<bool> fv = flat_engine.Eval(small.tree, small.db, h, check_opts);
        UseKernel(CqKernel::kDefault, HomOrder::kDefault);
        WDPT_CHECK(lv.ok() && fv.ok());
        if (*lv != *fv) ++verdict_mismatches;
      }
    }
    if (verdict_mismatches != 0) {
      std::fprintf(stderr,
                   "CHECK FAILED: %llu WDPT Eval verdicts differ between "
                   "kernels\n",
                   static_cast<unsigned long long>(verdict_mismatches));
      ++check_failures;
    }
    if (check_failures == 0) {
      std::fprintf(stderr,
                   "check: kernels agree (%zu CQ answers, %zu Eval candidates "
                   "x 3 semantics)\n",
                   legacy_cq->size(), candidates.size());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\"benchmark\":\"wdpt_kernel\",\"db_vertices\":" << db_vertices
        << ",\"reps\":" << reps
        << ",\"csr_probe_mops\":" << FormatDouble(probe_mops)
        << ",\"semijoin_legacy_mprobes_per_s\":"
        << FormatDouble(semijoin_legacy_mps)
        << ",\"semijoin_flat_mprobes_per_s\":"
        << FormatDouble(semijoin_flat_mps);
    for (const Series& s : series) {
      out << ",\"" << s.name << "_legacy_ms\":" << FormatDouble(s.legacy_ms)
          << ",\"" << s.name << "_flat_ms\":" << FormatDouble(s.flat_ms)
          << ",\"" << s.name << "_speedup\":" << FormatDouble(s.Speedup());
    }
    out << "}\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return check_failures == 0 ? 0 : 1;
}
