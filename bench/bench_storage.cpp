// bench_storage: durable-storage benchmark — binary snapshot load vs
// text triple parse, snapshot write cost, and sustained INGEST
// throughput through a StorageManager.
//
// Usage:
//   bench_storage [--bands N] [--load-reps N] [--ingest-batches N]
//                 [--batch-ops N] [--json FILE]
//
// The dataset is the deterministic music catalog wdpt_loadgen uses
// (--bands scales it). The load comparison parses the same dataset
// --load-reps times through both paths — server::LoadSnapshot on the
// text form, and ReadSnapshotFile on the binary snapshot produced from
// it — and reports the median per-rep wall time plus the speedup ratio.
// The ingest phase opens a fresh StorageManager and streams
// --ingest-batches batches of --batch-ops add-ops each, reporting
// sustained ops/second (WAL append + apply + snapshot publication per
// batch, fsync off so the numbers measure the code path, not the disk).
// --json writes the measurements as BENCH_storage.json (the
// bench_storage_json target captures it).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/server/snapshot.h"
#include "src/storage/snapshot_file.h"
#include "src/storage/storage_manager.h"
#include "src/storage/wal.h"

namespace {

using namespace wdpt;
using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - start)
                 .count()) /
         1e6;
}

double MedianMs(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// The same deterministic catalog wdpt_loadgen generates.
std::string MakeCatalogTriples(uint32_t bands) {
  std::string out;
  for (uint32_t b = 0; b < bands; ++b) {
    std::string band = "band" + std::to_string(b);
    if (b % 2 == 0) {
      out += band + " formed_in year" + std::to_string(1960 + b % 60) + "\n";
    }
    for (uint32_t r = 0; r < 4; ++r) {
      std::string rec = "rec" + std::to_string(b) + "_" + std::to_string(r);
      out += rec + " recorded_by " + band + "\n";
      if ((b * 31 + r) % 10 < 8) {
        out += rec + " published after_2010\n";
      }
      if ((b * 17 + r) % 10 < 5) {
        out += rec + " NME_rating " + std::to_string(1 + (b + r) % 10) + "\n";
      }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bands N] [--load-reps N] [--ingest-batches N] "
               "[--batch-ops N] [--json FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t bands = 2000;
  int load_reps = 5;
  int ingest_batches = 200;
  int batch_ops = 20;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--bands" && i + 1 < argc) {
      bands = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--load-reps" && i + 1 < argc) {
      load_reps = std::atoi(argv[++i]);
    } else if (arg == "--ingest-batches" && i + 1 < argc) {
      ingest_batches = std::atoi(argv[++i]);
    } else if (arg == "--batch-ops" && i + 1 < argc) {
      batch_ops = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  char dir_template[] = "/tmp/wdpt_bench_storage.XXXXXX";
  char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "error: mkdtemp failed\n");
    return 1;
  }
  std::string snapshot_path = std::string(dir) + "/snapshot.wdpt";

  std::string triples = MakeCatalogTriples(bands);

  // Reference load through the text path, and the binary file to race
  // against it.
  Result<std::shared_ptr<const server::Snapshot>> parsed =
      server::LoadSnapshot(triples, /*version=*/1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "data error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  uint64_t facts = (*parsed)->db.TotalFacts();
  storage::SnapshotFileInfo info;
  Status written = storage::WriteSnapshotFile(snapshot_path, (*parsed)->ctx,
                                              (*parsed)->db, &info);
  if (!written.ok()) {
    std::fprintf(stderr, "write error: %s\n", written.ToString().c_str());
    return 1;
  }

  std::vector<double> text_ms, binary_ms;
  for (int rep = 0; rep < load_reps; ++rep) {
    Clock::time_point t0 = Clock::now();
    Result<std::shared_ptr<const server::Snapshot>> text =
        server::LoadSnapshot(triples, /*version=*/1);
    if (!text.ok() || (*text)->db.TotalFacts() != facts) {
      std::fprintf(stderr, "text load diverged\n");
      return 1;
    }
    text_ms.push_back(ElapsedMs(t0));

    t0 = Clock::now();
    RdfContext ctx;
    Database db = ctx.MakeDatabase();
    Status read = storage::ReadSnapshotFile(snapshot_path, &ctx, &db);
    if (!read.ok() || db.TotalFacts() != facts) {
      std::fprintf(stderr, "binary load diverged: %s\n",
                   read.ToString().c_str());
      return 1;
    }
    binary_ms.push_back(ElapsedMs(t0));
  }
  double text_p50 = MedianMs(text_ms);
  double binary_p50 = MedianMs(binary_ms);
  double speedup = binary_p50 > 0 ? text_p50 / binary_p50 : 0;

  std::fprintf(stderr,
               "load: %llu facts, %llu file bytes, text p50=%sms binary "
               "p50=%sms speedup=%sx\n",
               static_cast<unsigned long long>(facts),
               static_cast<unsigned long long>(info.file_bytes),
               FormatDouble(text_p50).c_str(),
               FormatDouble(binary_p50).c_str(),
               FormatDouble(speedup).c_str());

  // Sustained ingest: a fresh store, batches streamed back to back.
  storage::StorageOptions options;
  options.dir = std::string(dir) + "/store";
  Result<std::unique_ptr<storage::StorageManager>> manager =
      storage::StorageManager::Open(options);
  if (!manager.ok()) {
    std::fprintf(stderr, "storage error: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  Clock::time_point ingest_start = Clock::now();
  uint64_t total_ops = 0;
  for (int b = 0; b < ingest_batches; ++b) {
    std::vector<storage::TripleOp> batch;
    batch.reserve(static_cast<size_t>(batch_ops));
    for (int o = 0; o < batch_ops; ++o) {
      batch.push_back({storage::TripleOpKind::kAdd,
                       "s" + std::to_string(b) + "_" + std::to_string(o),
                       "p" + std::to_string(o % 8),
                       "o" + std::to_string(b % 97)});
    }
    Result<storage::IngestResult> applied = (*manager)->Ingest(batch);
    if (!applied.ok()) {
      std::fprintf(stderr, "ingest error: %s\n",
                   applied.status().ToString().c_str());
      return 1;
    }
    total_ops += batch.size();
  }
  double ingest_ms = ElapsedMs(ingest_start);
  double ops_per_sec =
      ingest_ms > 0 ? static_cast<double>(total_ops) / (ingest_ms / 1e3) : 0;
  storage::StorageStats stats = (*manager)->stats();

  std::fprintf(stderr,
               "ingest: %llu ops in %sms (%s ops/s), %llu WAL bytes, %llu "
               "publishes\n",
               static_cast<unsigned long long>(total_ops),
               FormatDouble(ingest_ms).c_str(),
               FormatDouble(ops_per_sec).c_str(),
               static_cast<unsigned long long>(stats.wal_bytes),
               static_cast<unsigned long long>(stats.publishes));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\"benchmark\":\"wdpt_storage\",\"facts\":" << facts
        << ",\"snapshot_file_bytes\":" << info.file_bytes
        << ",\"load_reps\":" << load_reps
        << ",\"text_load_p50_ms\":" << FormatDouble(text_p50)
        << ",\"binary_load_p50_ms\":" << FormatDouble(binary_p50)
        << ",\"binary_speedup\":" << FormatDouble(speedup)
        << ",\"ingest_batches\":" << ingest_batches
        << ",\"batch_ops\":" << batch_ops
        << ",\"ingest_ops\":" << total_ops
        << ",\"ingest_wall_ms\":" << FormatDouble(ingest_ms)
        << ",\"ingest_ops_per_sec\":" << FormatDouble(ops_per_sec)
        << ",\"wal_bytes\":" << stats.wal_bytes
        << ",\"publishes\":" << stats.publishes << "}\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  std::string cleanup = "rm -rf '" + std::string(dir) + "'";
  std::system(cleanup.c_str());
  return 0;
}
