// Table 1 reproduction, rows EVAL / PARTIAL-EVAL / MAX-EVAL.
//
// The paper's Table 1 classifies complexity per class column:
//   EVAL:   Sigma2P (general) | NP (l-C(k)) | NP (g-C(k)) | LOGCFL (+BI).
//   P-EVAL: NP (l-C(k)) | LOGCFL (g-C(k)).
//   M-EVAL: DP (l-C(k)) | LOGCFL (g-C(k)).
// Empirically:
//  * the LOGCFL/PTIME cells scale polynomially in |D| for fixed queries
//    (the *_DbSweep benches: near-linear growth),
//  * the NP cells blow up in |query| on the Proposition 3
//    3-colorability family (the *_HardQuerySweep benches: exponential
//    growth even for g-TW(1) queries — global tractability does NOT give
//    tractable exact EVAL),
//  * tractable-class query-size scaling stays modest
//    (EvalTractable_QuerySweep).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/gen/reductions.h"
#include "src/wdpt/enumerate.h"
#include "src/wdpt/eval_max.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/eval_partial.h"
#include "src/wdpt/eval_tractable.h"

namespace wdpt::bench {
namespace {

// ---- Tractable column: data-complexity sweep ---------------------------

void BM_Eval_Tractable_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, /*depth=*/2, /*branching=*/2,
                         /*seed=*/11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  for (auto _ : state) {
    Result<bool> r = EvalTractable(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Eval_Tractable_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

void BM_Eval_Naive_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, 2, 2, 11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  for (auto _ : state) {
    Result<bool> r = EvalNaive(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Eval_Naive_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

void BM_PartialEval_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, 2, 2, 11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  if (!h.empty()) {
    std::vector<Mapping::Entry> entries = h.entries();
    entries.resize(entries.size() / 2 + 1);
    h = Mapping(entries);
  }
  for (auto _ : state) {
    Result<bool> r = PartialEval(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_PartialEval_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

void BM_MaxEval_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, 2, 2, 11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  for (auto _ : state) {
    Result<bool> r = MaxEval(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_MaxEval_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

// ---- Query-size sweep in the tractable class ----------------------------

void BM_Eval_Tractable_QuerySweep(benchmark::State& state) {
  uint32_t branching = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(200, 600, /*depth=*/2, branching, /*seed=*/13);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  for (auto _ : state) {
    Result<bool> r = EvalTractable(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["tree_nodes"] = static_cast<double>(inst.tree.num_nodes());
}
BENCHMARK(BM_Eval_Tractable_QuerySweep)->DenseRange(1, 5);

// ---- NP cells: Proposition 3 hard family ---------------------------------
// EVAL on g-TW(1) WDPTs encodes 3-colorability; the runtime of both the
// naive and the DP algorithm grows exponentially with the number of
// graph vertices on near-critical random graphs (edges ~ 2.3 * vertices
// would be critical; we use odd cycles plus chords for guaranteed-yes
// instances of increasing size).

void BM_Eval_HardQuerySweep_Naive(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::ThreeColInstance inst = gen::MakeThreeColInstance(
      gen::MakeRandomUndirectedGraph(n, 2 * n, /*seed=*/n), &schema,
      &vocab, /*tag=*/n);
  for (auto _ : state) {
    Result<bool> r = EvalNaive(inst.tree, inst.db, inst.h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["graph_vertices"] = n;
}
BENCHMARK(BM_Eval_HardQuerySweep_Naive)->DenseRange(4, 12, 2);

void BM_Eval_HardQuerySweep_Tractable(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::ThreeColInstance inst = gen::MakeThreeColInstance(
      gen::MakeRandomUndirectedGraph(n, 2 * n, /*seed=*/n), &schema,
      &vocab, /*tag=*/100 + n);
  for (auto _ : state) {
    Result<bool> r = EvalTractable(inst.tree, inst.db, inst.h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["graph_vertices"] = n;
}
BENCHMARK(BM_Eval_HardQuerySweep_Tractable)->DenseRange(4, 12, 2);

// On the same hard family, PARTIAL-EVAL stays easy (Theorem 8: the
// minimal subtree is just the root, and the instantiated root CQ is
// acyclic): the contrast between these two benches is exactly the
// EVAL-vs-P-EVAL gap of Table 1 column g-C(k).
void BM_PartialEval_HardQuerySweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::ThreeColInstance inst = gen::MakeThreeColInstance(
      gen::MakeRandomUndirectedGraph(n, 2 * n, /*seed=*/n), &schema,
      &vocab, /*tag=*/200 + n);
  for (auto _ : state) {
    Result<bool> r = PartialEval(inst.tree, inst.db, inst.h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["graph_vertices"] = n;
}
BENCHMARK(BM_PartialEval_HardQuerySweep)->DenseRange(4, 12, 2);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
