// Table 1 reproduction, rows EVAL / PARTIAL-EVAL / MAX-EVAL, driven
// through wdpt::Engine.
//
// The paper's Table 1 classifies complexity per class column:
//   EVAL:   Sigma2P (general) | NP (l-C(k)) | NP (g-C(k)) | LOGCFL (+BI).
//   P-EVAL: NP (l-C(k)) | LOGCFL (g-C(k)).
//   M-EVAL: DP (l-C(k)) | LOGCFL (g-C(k)).
// Empirically:
//  * the LOGCFL/PTIME cells scale polynomially in |D| for fixed queries
//    (the *_DbSweep benches: near-linear growth),
//  * the NP cells blow up in |query| on the Proposition 3
//    3-colorability family (the *_HardQuerySweep benches: exponential
//    growth even for g-TW(1) queries — global tractability does NOT give
//    tractable exact EVAL),
//  * tractable-class query-size scaling stays modest
//    (EvalTractable_QuerySweep).
//
// The BM_Engine_* benches cover the engine layer itself: plan-cache hit
// cost, and batched EVAL across the thread pool vs the same candidates
// evaluated sequentially. They double as bench-time regression checks:
// each asserts the engine's stats counters (>= 1 plan-cache hit on a
// repeated query, exactly one plan built) and that EvalBatch agrees
// bit-for-bit with sequential Eval.
//
// `bench_table1_eval --benchmark_filter=Engine --benchmark_out=...`
// backs the `bench_engine_json` target (emits BENCH_engine.json).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/gen/reductions.h"

namespace wdpt::bench {
namespace {

// Up to `want` candidate answers of the tree (projections of maximal
// homomorphisms), padded by repetition so every batch size is reached
// even on answer-poor instances.
std::vector<Mapping> Candidates(const PatternTree& tree, const Database& db,
                                size_t want) {
  std::vector<Mapping> out;
  Status status = ForEachMaximalHomomorphism(tree, db, [&](const Mapping& m) {
    out.push_back(m.RestrictTo(tree.free_vars()));
    return out.size() < want;
  });
  WDPT_CHECK(status.ok());
  WDPT_CHECK(!out.empty());
  size_t distinct = out.size();
  while (out.size() < want) out.push_back(out[out.size() % distinct]);
  return out;
}

// ---- Tractable column: data-complexity sweep ---------------------------

void BM_Eval_Tractable_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, /*depth=*/2, /*branching=*/2,
                         /*seed=*/11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kTractableDP;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Eval_Tractable_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

void BM_Eval_Naive_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, 2, 2, 11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kNaive;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Eval_Naive_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

void BM_PartialEval_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, 2, 2, 11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  if (!h.empty()) {
    std::vector<Mapping::Entry> entries = h.entries();
    entries.resize(entries.size() / 2 + 1);
    h = Mapping(entries);
  }
  Engine engine;
  CallOptions opts;
  opts.semantics = EvalSemantics::kPartial;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_PartialEval_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

void BM_MaxEval_DbSweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(n, uint64_t{3} * n, 2, 2, 11);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine;
  CallOptions opts;
  opts.semantics = EvalSemantics::kMaximal;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_MaxEval_DbSweep)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(25600);

// ---- Query-size sweep in the tractable class ----------------------------

void BM_Eval_Tractable_QuerySweep(benchmark::State& state) {
  uint32_t branching = static_cast<uint32_t>(state.range(0));
  TractableInstance inst(200, 600, /*depth=*/2, branching, /*seed=*/13);
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kTractableDP;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["tree_nodes"] = static_cast<double>(inst.tree.num_nodes());
}
BENCHMARK(BM_Eval_Tractable_QuerySweep)->DenseRange(1, 5);

// ---- NP cells: Proposition 3 hard family ---------------------------------
// EVAL on g-TW(1) WDPTs encodes 3-colorability; the runtime of both the
// naive and the DP algorithm grows exponentially with the number of
// graph vertices on near-critical random graphs (edges ~ 2.3 * vertices
// would be critical; we use odd cycles plus chords for guaranteed-yes
// instances of increasing size).

void BM_Eval_HardQuerySweep_Naive(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::ThreeColInstance inst = gen::MakeThreeColInstance(
      gen::MakeRandomUndirectedGraph(n, 2 * n, /*seed=*/n), &schema,
      &vocab, /*tag=*/n);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kNaive;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, inst.h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["graph_vertices"] = n;
}
BENCHMARK(BM_Eval_HardQuerySweep_Naive)->DenseRange(4, 12, 2);

void BM_Eval_HardQuerySweep_Tractable(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::ThreeColInstance inst = gen::MakeThreeColInstance(
      gen::MakeRandomUndirectedGraph(n, 2 * n, /*seed=*/n), &schema,
      &vocab, /*tag=*/100 + n);
  Engine engine;
  CallOptions opts;
  opts.algorithm = EvalAlgorithm::kTractableDP;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, inst.h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["graph_vertices"] = n;
}
BENCHMARK(BM_Eval_HardQuerySweep_Tractable)->DenseRange(4, 12, 2);

// On the same hard family, PARTIAL-EVAL stays easy (Theorem 8: the
// minimal subtree is just the root, and the instantiated root CQ is
// acyclic): the contrast between these two benches is exactly the
// EVAL-vs-P-EVAL gap of Table 1 column g-C(k).
void BM_PartialEval_HardQuerySweep(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::ThreeColInstance inst = gen::MakeThreeColInstance(
      gen::MakeRandomUndirectedGraph(n, 2 * n, /*seed=*/n), &schema,
      &vocab, /*tag=*/200 + n);
  Engine engine;
  CallOptions opts;
  opts.semantics = EvalSemantics::kPartial;
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, inst.h, opts);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["graph_vertices"] = n;
}
BENCHMARK(BM_PartialEval_HardQuerySweep)->DenseRange(4, 12, 2);

// ---- Engine layer: plan cache and batched evaluation ---------------------

// Cost of GetPlan when the plan is already cached: after the warm-up
// build, every iteration must be a cache hit and build no further plan.
void BM_Engine_PlanCacheHit(benchmark::State& state) {
  Fig1Instance inst(/*num_bands=*/64);
  Engine engine;
  PlanOptions popts;
  WDPT_CHECK(engine.GetPlan(inst.tree, popts).ok());
  for (auto _ : state) {
    Result<std::shared_ptr<const Plan>> plan = engine.GetPlan(inst.tree, popts);
    WDPT_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan);
  }
  EngineStats stats = engine.stats();
  WDPT_CHECK(stats.plans_built == 1);
  WDPT_CHECK(stats.plan_cache_hits >= 1);
}
BENCHMARK(BM_Engine_PlanCacheHit);

// Baseline for BM_Engine_EvalBatch: the same candidates through
// sequential Eval calls on one thread.
void BM_Engine_EvalSequential(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  TractableInstance inst(1600, 4800, /*depth=*/2, /*branching=*/2,
                         /*seed=*/11);
  std::vector<Mapping> hs = Candidates(inst.tree, inst.db, batch);
  Engine engine;
  CallOptions opts;
  for (auto _ : state) {
    for (const Mapping& h : hs) {
      Result<bool> r = engine.Eval(inst.tree, inst.db, h, opts);
      WDPT_CHECK(r.ok());
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["batch"] = static_cast<double>(hs.size());
}
BENCHMARK(BM_Engine_EvalSequential)->Arg(8)->Arg(32);

// Batched EVAL across the thread pool. Asserts at teardown that the
// batch results are bit-identical to sequential evaluation and that the
// repeated queries hit the plan cache (exactly one plan built).
void BM_Engine_EvalBatch(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  TractableInstance inst(1600, 4800, /*depth=*/2, /*branching=*/2,
                         /*seed=*/11);
  std::vector<Mapping> hs = Candidates(inst.tree, inst.db, batch);
  EngineOptions eopts;
  eopts.num_threads = 4;
  Engine engine(eopts);
  CallOptions opts;
  std::vector<bool> parallel_results;
  for (auto _ : state) {
    Result<std::vector<bool>> r = engine.EvalBatch(inst.tree, inst.db, hs,
                                                   opts);
    WDPT_CHECK(r.ok());
    parallel_results = *r;
    benchmark::DoNotOptimize(r);
  }
  for (size_t i = 0; i < hs.size(); ++i) {
    Result<bool> sequential = engine.Eval(inst.tree, inst.db, hs[i], opts);
    WDPT_CHECK(sequential.ok());
    WDPT_CHECK(*sequential == parallel_results[i]);
  }
  EngineStats stats = engine.stats();
  WDPT_CHECK(stats.plans_built == 1);
  WDPT_CHECK(stats.plan_cache_hits >= 1);
  state.counters["batch"] = static_cast<double>(hs.size());
  state.counters["threads"] = static_cast<double>(engine.num_threads());
}
BENCHMARK(BM_Engine_EvalBatch)->Arg(8)->Arg(32);

// Scatter-gather enumeration over a hash-partitioned snapshot, swept
// over the shard count (1 = the sharded entry point's fallback path).
// Asserts at teardown that the sharded answers are bit-identical to
// unsharded enumeration — the soundness contract of the sharded path —
// and reports the shard and engine-thread counts as counters. No
// speedup is asserted: the sweep's value is the scaling column itself,
// which depends on the host's core count.
void BM_Engine_EnumerateSharded(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  Fig1Instance inst(/*num_bands=*/256);
  ShardedDatabase sharded(inst.db, shards);
  EngineOptions eopts;
  eopts.num_threads = 4;
  Engine engine(eopts);
  CallOptions opts;
  std::vector<Mapping> sharded_answers;
  for (auto _ : state) {
    Result<std::vector<Mapping>> r =
        engine.Enumerate(inst.tree, sharded, opts);
    WDPT_CHECK(r.ok());
    sharded_answers = *r;
    benchmark::DoNotOptimize(r);
  }
  Result<std::vector<Mapping>> unsharded =
      engine.Enumerate(inst.tree, inst.db, opts);
  WDPT_CHECK(unsharded.ok());
  WDPT_CHECK(sharded_answers == *unsharded);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["threads"] = static_cast<double>(engine.num_threads());
  state.counters["answers"] = static_cast<double>(sharded_answers.size());
}
BENCHMARK(BM_Engine_EnumerateSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
