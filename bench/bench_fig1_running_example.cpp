// Figure 1 reproduction: the paper's running example at scale.
//
// Series: database size sweep (number of bands). Measured:
//  * full evaluation p(D) (answer enumeration),
//  * EVAL membership via the naive algorithm vs the Theorem 6 DP,
//  * PARTIAL-EVAL and MAX-EVAL (Theorems 8/9).
// Expected shape: all of these scale polynomially (near-linearly) in
// |D| — the query is locally TW(1) with interface width 2 and globally
// TW(1), so every cell of Table 1 row 1/2/3 for this query is tractable.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/wdpt/enumerate.h"
#include "src/wdpt/eval_max.h"
#include "src/wdpt/eval_naive.h"
#include "src/wdpt/eval_partial.h"
#include "src/wdpt/eval_tractable.h"

namespace wdpt::bench {
namespace {

Mapping SampleAnswer(Fig1Instance& inst) {
  // The first record of band0 always exists; build its expected answer
  // fragment {band -> band0}.
  Mapping m;
  m.Bind(inst.ctx.vocab().Variable("band").variable_id(),
         inst.ctx.vocab().Constant("band0").constant_id());
  return m;
}

void BM_Fig1_Enumerate(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Mapping>> result = EvaluateWdpt(inst.tree, inst.db);
    WDPT_CHECK(result.ok());
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Fig1_Enumerate)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400);

void BM_Fig1_EvalNaive(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Result<std::vector<Mapping>> answers = EvaluateWdpt(inst.tree, inst.db);
  WDPT_CHECK(answers.ok() && !answers->empty());
  const Mapping& h = (*answers)[answers->size() / 2];
  for (auto _ : state) {
    Result<bool> r = EvalNaive(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Fig1_EvalNaive)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400);

void BM_Fig1_EvalTractable(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Result<std::vector<Mapping>> answers = EvaluateWdpt(inst.tree, inst.db);
  WDPT_CHECK(answers.ok() && !answers->empty());
  const Mapping& h = (*answers)[answers->size() / 2];
  for (auto _ : state) {
    Result<bool> r = EvalTractable(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Fig1_EvalTractable)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400);

void BM_Fig1_PartialEval(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Mapping h = SampleAnswer(inst);
  for (auto _ : state) {
    Result<bool> r = PartialEval(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Fig1_PartialEval)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400);

void BM_Fig1_MaxEval(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Result<std::vector<Mapping>> answers = EvaluateWdpt(inst.tree, inst.db);
  WDPT_CHECK(answers.ok() && !answers->empty());
  const Mapping& h = answers->front();
  for (auto _ : state) {
    Result<bool> r = MaxEval(inst.tree, inst.db, h);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(inst.db.TotalFacts());
}
BENCHMARK(BM_Fig1_MaxEval)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
