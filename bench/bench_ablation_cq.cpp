// Ablation: CQ evaluation strategies (the substrate behind Theorems 2/3
// and every tractable WDPT algorithm).
//
//  * Backtracking vs Yannakakis on an adversarial "dead-end funnel":
//    a layered graph where the last layer has no outgoing edges, so the
//    plain backtracking join explores Theta(n^2) dead ends while the
//    semijoin-reduced evaluation empties the relationship in one pass.
//  * Decomposition-based evaluation of cyclic queries (cycle of length
//    6, ghw 2) vs backtracking.
//  * Cost of the decomposition machinery itself on small inputs (where
//    backtracking wins) — the crossover the auto strategy navigates.

#include <benchmark/benchmark.h>

#include <string>

#include "src/cq/evaluation.h"
#include "src/gen/cq_gen.h"
#include "src/gen/db_gen.h"

namespace wdpt::bench {
namespace {

// Three complete bipartite layers a_i -> b_j -> c_k with no edges out of
// the c layer: a backtracking join of a length-4 path explores ~n^3
// partial assignments before concluding emptiness, while the semijoin
// reduction empties the relations in O(n^2).
Database MakeFunnel(Schema* schema, Vocabulary* vocab, uint32_t n,
                    RelationId* rel) {
  *rel = gen::EdgeRelation(schema);
  Database db(schema);
  for (uint32_t i = 0; i < n; ++i) {
    ConstantId a = vocab->ConstantIdOf("fa" + std::to_string(i));
    ConstantId b = vocab->ConstantIdOf("fb" + std::to_string(i));
    for (uint32_t j = 0; j < n; ++j) {
      ConstantId b2 = vocab->ConstantIdOf("fb" + std::to_string(j));
      ConstantId c = vocab->ConstantIdOf("fc" + std::to_string(j));
      ConstantId t[2] = {a, b2};
      WDPT_CHECK(db.AddFact(*rel, t).ok());
      ConstantId u[2] = {b, c};
      WDPT_CHECK(db.AddFact(*rel, u).ok());
    }
  }
  return db;
}

void BM_Funnel_Backtracking(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  RelationId e;
  Database db = MakeFunnel(&schema, &vocab, n, &e);
  ConjunctiveQuery path = gen::MakePathCq(&schema, &vocab, 3, "fb");
  CqEvalOptions opts;
  opts.strategy = CqEvalStrategy::kBacktracking;
  for (auto _ : state) {
    bool r = DecideNonEmpty(path.atoms, db, Mapping(), opts);
    WDPT_CHECK(!r);  // The funnel has no length-3 path.
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(db.TotalFacts());
}
BENCHMARK(BM_Funnel_Backtracking)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Funnel_Yannakakis(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  RelationId e;
  Database db = MakeFunnel(&schema, &vocab, n, &e);
  ConjunctiveQuery path = gen::MakePathCq(&schema, &vocab, 3, "fy");
  CqEvalOptions opts;
  opts.strategy = CqEvalStrategy::kDecomposition;
  for (auto _ : state) {
    bool r = DecideNonEmpty(path.atoms, db, Mapping(), opts);
    WDPT_CHECK(!r);
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(db.TotalFacts());
}
BENCHMARK(BM_Funnel_Yannakakis)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Layered DAG with 6 complete bipartite layers of size m: it contains
// every partial path of the 6-cycle query but no cycle at all, so the
// query is false. Backtracking walks ~m^5 partial paths before giving
// up; the width-2 decomposition evaluation stays polynomial of low
// degree in |D|.
Database MakeLayeredDag(Schema* schema, Vocabulary* vocab, uint32_t m,
                        RelationId* rel) {
  *rel = gen::EdgeRelation(schema);
  Database db(schema);
  for (uint32_t layer = 0; layer + 1 < 6; ++layer) {
    for (uint32_t i = 0; i < m; ++i) {
      ConstantId a = vocab->ConstantIdOf(
          "L" + std::to_string(layer) + "_" + std::to_string(i));
      for (uint32_t j = 0; j < m; ++j) {
        ConstantId b = vocab->ConstantIdOf(
            "L" + std::to_string(layer + 1) + "_" + std::to_string(j));
        ConstantId t[2] = {a, b};
        WDPT_CHECK(db.AddFact(*rel, t).ok());
      }
    }
  }
  return db;
}

void BM_Cycle6_Backtracking(benchmark::State& state) {
  uint32_t m = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  RelationId e;
  Database db = MakeLayeredDag(&schema, &vocab, m, &e);
  ConjunctiveQuery cyc = gen::MakeCycleCq(&schema, &vocab, 6, "cb");
  CqEvalOptions opts;
  opts.strategy = CqEvalStrategy::kBacktracking;
  for (auto _ : state) {
    bool r = DecideNonEmpty(cyc.atoms, db, Mapping(), opts);
    WDPT_CHECK(!r);
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(db.TotalFacts());
}
BENCHMARK(BM_Cycle6_Backtracking)->Arg(4)->Arg(8)->Arg(16);

void BM_Cycle6_Decomposition(benchmark::State& state) {
  uint32_t m = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  RelationId e;
  Database db = MakeLayeredDag(&schema, &vocab, m, &e);
  ConjunctiveQuery cyc = gen::MakeCycleCq(&schema, &vocab, 6, "cd");
  CqEvalOptions opts;
  opts.strategy = CqEvalStrategy::kDecomposition;
  for (auto _ : state) {
    bool r = DecideNonEmpty(cyc.atoms, db, Mapping(), opts);
    WDPT_CHECK(!r);
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(db.TotalFacts());
}
BENCHMARK(BM_Cycle6_Decomposition)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

// Small-input crossover: on tiny databases, the bag-materialization
// overhead dominates and plain backtracking is faster.
void BM_Small_Backtracking(benchmark::State& state) {
  Schema schema;
  Vocabulary vocab;
  gen::RandomGraphOptions gopts;
  gopts.num_vertices = 10;
  gopts.num_edges = 25;
  gopts.seed = 2;
  RelationId e;
  Database db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e);
  ConjunctiveQuery path = gen::MakePathCq(&schema, &vocab, 4, "sb");
  CqEvalOptions opts;
  opts.strategy = CqEvalStrategy::kBacktracking;
  for (auto _ : state) {
    bool r = DecideNonEmpty(path.atoms, db, Mapping(), opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Small_Backtracking);

void BM_Small_Decomposition(benchmark::State& state) {
  Schema schema;
  Vocabulary vocab;
  gen::RandomGraphOptions gopts;
  gopts.num_vertices = 10;
  gopts.num_edges = 25;
  gopts.seed = 2;
  RelationId e;
  Database db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e);
  ConjunctiveQuery path = gen::MakePathCq(&schema, &vocab, 4, "sd");
  CqEvalOptions opts;
  opts.strategy = CqEvalStrategy::kDecomposition;
  for (auto _ : state) {
    bool r = DecideNonEmpty(path.atoms, db, Mapping(), opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Small_Decomposition);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
