// Shared instance builders for the benchmark binaries.

#ifndef WDPT_BENCH_BENCH_UTIL_H_
#define WDPT_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>

#include "src/gen/db_gen.h"
#include "src/gen/wdpt_gen.h"
#include "src/relational/database.h"
#include "src/relational/rdf.h"
#include "src/relational/schema.h"
#include "src/sparql/parser.h"
#include "src/wdpt/pattern_tree.h"

#include "src/wdpt/enumerate.h"

namespace wdpt::bench {

/// One answer of the WDPT (projection of the first maximal
/// homomorphism), or the empty mapping if there is none. Avoids full
/// enumeration, whose output can be combinatorially large.
inline Mapping FirstAnswer(const PatternTree& tree, const Database& db) {
  Mapping answer;
  Status status =
      ForEachMaximalHomomorphism(tree, db, [&](const Mapping& m) {
        answer = m.RestrictTo(tree.free_vars());
        return false;
      });
  WDPT_CHECK(status.ok());
  return answer;
}

/// The Figure 1 query over a generated catalog of `num_bands` bands.
struct Fig1Instance {
  RdfContext ctx;
  Database db;
  PatternTree tree;

  explicit Fig1Instance(uint32_t num_bands) : db(&ctx.schema()) {
    gen::MusicCatalogOptions options;
    options.num_bands = num_bands;
    options.records_per_band = 4;
    options.rating_fraction = 0.5;
    options.formed_fraction = 0.5;
    options.recent_fraction = 0.8;
    db = gen::MakeMusicCatalog(&ctx, options);
    Result<PatternTree> parsed = sparql::ParseQuery(
        "(((?rec, recorded_by, ?band) AND (?rec, published, after_2010))"
        "  OPT (?rec, NME_rating, ?rating))"
        " OPT (?band, formed_in, ?year)",
        &ctx);
    WDPT_CHECK(parsed.ok());
    tree = std::move(*parsed);
  }
};

/// A random tractable WDPT (l-TW(1), small interface) over a random
/// graph database.
struct TractableInstance {
  Schema schema;
  Vocabulary vocab;
  Database db;
  PatternTree tree;

  TractableInstance(uint32_t db_vertices, uint64_t db_edges, uint32_t depth,
                    uint32_t branching, uint64_t seed)
      : db(&schema) {
    gen::RandomWdptOptions topts;
    topts.depth = depth;
    topts.branching = branching;
    topts.atoms_per_node = 2;
    topts.interface_size = 1;
    topts.free_fraction = 0.4;
    topts.seed = seed;
    tree = gen::MakeRandomChainWdpt(&schema, &vocab, topts);
    gen::RandomGraphOptions gopts;
    gopts.num_vertices = db_vertices;
    gopts.num_edges = db_edges;
    gopts.seed = seed * 7 + 1;
    RelationId e;
    db = gen::MakeRandomGraphDb(&schema, &vocab, gopts, &e);
  }
};

}  // namespace wdpt::bench

#endif  // WDPT_BENCH_BENCH_UTIL_H_
