// Table 1 reproduction, rows SUBSUMPTION ([=) and [=-EQUIVALENCE.
//
// Paper classification: Pi2P-complete in general and under local
// tractability; coNP-complete when the right-hand side is globally
// tractable. Empirically:
//  * the cost of p1 [= p2 is driven by the number of root subtrees of p1
//    (the universal quantifier): exponential in p1's branching width
//    (BM_Subsumption_LeftSizeSweep),
//  * for a globally tractable p2 the inner check per subtree is a
//    polynomial PARTIAL-EVAL: the per-subtree cost stays flat as the
//    database-side instance grows (BM_Subsumption_TractableRhs),
//  * equivalence doubles the work (both directions).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/analysis/subsumption.h"
#include "src/gen/cq_gen.h"
#include "src/gen/wdpt_gen.h"
#include "src/wdpt/subtrees.h"

namespace wdpt::bench {
namespace {

// A pair (p1, p2) where p2 is p1 plus one extra optional child of the
// root, so p1 [= p2 holds.
struct SubsumptionPair {
  Schema schema;
  Vocabulary vocab;
  PatternTree p1;
  PatternTree p2;

  SubsumptionPair(uint32_t branching, uint64_t seed) {
    gen::RandomWdptOptions opts;
    opts.depth = 1;
    opts.branching = branching;
    opts.atoms_per_node = 2;
    opts.interface_size = 1;
    opts.free_fraction = 0.5;
    opts.seed = seed;
    p1 = gen::MakeRandomChainWdpt(&schema, &vocab, opts);
    p2 = p1;
    // Extra optional leaf: E(r, fresh) anchored at a root variable.
    RelationId e = gen::EdgeRelation(&schema);
    VariableId anchor = p2.node_vars(PatternTree::kRoot).front();
    Term fresh = Term::Variable(vocab.FreshVariable("extra"));
    p2.AddChild(PatternTree::kRoot,
                {Atom(e, {Term::Variable(anchor), fresh})});
    std::vector<VariableId> free_vars = p2.free_vars();
    free_vars.push_back(fresh.variable_id());
    p2.SetFreeVariables(free_vars);
    WDPT_CHECK(p2.Validate().ok());
  }
};

void BM_Subsumption_LeftSizeSweep(benchmark::State& state) {
  uint32_t branching = static_cast<uint32_t>(state.range(0));
  SubsumptionPair pair(branching, /*seed=*/21);
  bool holds = false;
  for (auto _ : state) {
    Result<bool> r =
        IsSubsumedBy(pair.p1, pair.p2, &pair.schema, &pair.vocab);
    WDPT_CHECK(r.ok());
    holds = *r;
    benchmark::DoNotOptimize(r);
  }
  WDPT_CHECK(holds);
  state.counters["p1_subtrees"] =
      static_cast<double>(CountRootSubtrees(pair.p1, uint64_t{1} << 30));
}
BENCHMARK(BM_Subsumption_LeftSizeSweep)->DenseRange(2, 12, 2);

void BM_Subsumption_NegativeCase(benchmark::State& state) {
  uint32_t branching = static_cast<uint32_t>(state.range(0));
  SubsumptionPair pair(branching, /*seed=*/22);
  // The reverse direction fails (p2 binds the extra variable).
  bool holds = true;
  for (auto _ : state) {
    Result<bool> r =
        IsSubsumedBy(pair.p2, pair.p1, &pair.schema, &pair.vocab);
    WDPT_CHECK(r.ok());
    holds = *r;
    benchmark::DoNotOptimize(r);
  }
  WDPT_CHECK(!holds);
  state.counters["p2_subtrees"] =
      static_cast<double>(CountRootSubtrees(pair.p2, uint64_t{1} << 30));
}
BENCHMARK(BM_Subsumption_NegativeCase)->DenseRange(2, 12, 2);

void BM_SubsumptionEquivalence_Sweep(benchmark::State& state) {
  uint32_t branching = static_cast<uint32_t>(state.range(0));
  // p ==_s p with relabelled copy: build the same tree twice.
  SubsumptionPair a(branching, /*seed=*/23);
  SubsumptionPair b(branching, /*seed=*/23);
  for (auto _ : state) {
    Result<bool> r =
        SubsumptionEquivalent(a.p1, a.p1, &a.schema, &a.vocab);
    WDPT_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(r);
  }
  state.counters["subtrees"] =
      static_cast<double>(CountRootSubtrees(a.p1, uint64_t{1} << 30));
  benchmark::DoNotOptimize(b);
}
BENCHMARK(BM_SubsumptionEquivalence_Sweep)->DenseRange(2, 10, 2);

// coNP column: p2 globally tractable, database-side growth through the
// left query's node size (bigger canonical databases), while the
// subtree count stays fixed.
void BM_Subsumption_TractableRhs(benchmark::State& state) {
  uint32_t atoms = static_cast<uint32_t>(state.range(0));
  Schema schema;
  Vocabulary vocab;
  gen::RandomWdptOptions opts;
  opts.depth = 1;
  opts.branching = 3;
  opts.atoms_per_node = atoms;
  opts.interface_size = 1;
  opts.free_fraction = 0.3;
  opts.seed = 29;
  PatternTree p1 = gen::MakeRandomChainWdpt(&schema, &vocab, opts);
  for (auto _ : state) {
    Result<bool> r = IsSubsumedBy(p1, p1, &schema, &vocab);
    WDPT_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(r);
  }
  state.counters["p1_size"] = static_cast<double>(p1.Size());
}
BENCHMARK(BM_Subsumption_TractableRhs)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
