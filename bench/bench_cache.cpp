// Answer-cache benchmark: the Figure 1 running-example query repeated
// against an unchanged snapshot generation, swept across hit rates.
//
// Series: catalog size (number of bands) at three hit rates —
//  * 0%: every request carries `cache-control: bypass` (the uncached
//    baseline; the cache is configured but never consulted),
//  * 50%: alternating bypass / cached requests,
//  * 100%: the cache is warmed once, every timed request hits.
// Expected shape: the 100% series is flat and orders of magnitude below
// the 0% series (a hash lookup vs a full enumeration; the acceptance
// bar is >= 10x at the median), and 50% lands halfway in throughput.
// The `hits`/`misses` counters exported per series come from the
// engine's answer-cache stats and make the achieved rate auditable in
// BENCH_cache.json.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/engine/engine.h"

namespace wdpt::bench {
namespace {

EngineOptions CachingEngineOptions() {
  EngineOptions options;
  options.answer_cache_bytes = 64 << 20;
  return options;
}

void ExportCacheCounters(benchmark::State& state, const Engine& engine,
                         size_t facts) {
  EngineStats stats = engine.stats();
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["hits"] = static_cast<double>(stats.answer_cache_hits);
  state.counters["misses"] = static_cast<double>(stats.answer_cache_misses);
  state.counters["bypasses"] =
      static_cast<double>(stats.answer_cache_bypasses);
}

void BM_Cache_Enumerate_HitRate0(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Engine engine(CachingEngineOptions());
  CallOptions options;
  options.cache.generation = 1;
  options.cache.mode = CacheMode::kBypass;
  for (auto _ : state) {
    Result<std::vector<Mapping>> r = engine.Enumerate(inst.tree, inst.db, options);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  ExportCacheCounters(state, engine, inst.db.TotalFacts());
}
BENCHMARK(BM_Cache_Enumerate_HitRate0)->Arg(100)->Arg(400)->Arg(1600);

void BM_Cache_Enumerate_HitRate50(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Engine engine(CachingEngineOptions());
  CallOptions cached;
  cached.cache.generation = 1;
  CallOptions bypass = cached;
  bypass.cache.mode = CacheMode::kBypass;
  // Warm once so the cached half hits from the first timed iteration.
  WDPT_CHECK(engine.Enumerate(inst.tree, inst.db, cached).ok());
  uint64_t i = 0;
  for (auto _ : state) {
    const CallOptions& options = (i++ % 2 == 0) ? bypass : cached;
    Result<std::vector<Mapping>> r = engine.Enumerate(inst.tree, inst.db, options);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  ExportCacheCounters(state, engine, inst.db.TotalFacts());
}
BENCHMARK(BM_Cache_Enumerate_HitRate50)->Arg(100)->Arg(400)->Arg(1600);

void BM_Cache_Enumerate_HitRate100(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Engine engine(CachingEngineOptions());
  CallOptions options;
  options.cache.generation = 1;
  WDPT_CHECK(engine.Enumerate(inst.tree, inst.db, options).ok());
  for (auto _ : state) {
    Result<std::vector<Mapping>> r = engine.Enumerate(inst.tree, inst.db, options);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  ExportCacheCounters(state, engine, inst.db.TotalFacts());
}
BENCHMARK(BM_Cache_Enumerate_HitRate100)->Arg(100)->Arg(400)->Arg(1600);

// Membership verdicts ride the same cache; the hit path here is a pure
// key-build + hash probe (no answer vector copy).
void BM_Cache_Eval_HitRate100(benchmark::State& state) {
  Fig1Instance inst(static_cast<uint32_t>(state.range(0)));
  Mapping h = FirstAnswer(inst.tree, inst.db);
  Engine engine(CachingEngineOptions());
  CallOptions options;
  options.cache.generation = 1;
  WDPT_CHECK(engine.Eval(inst.tree, inst.db, h, options).ok());
  for (auto _ : state) {
    Result<bool> r = engine.Eval(inst.tree, inst.db, h, options);
    WDPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  ExportCacheCounters(state, engine, inst.db.TotalFacts());
}
BENCHMARK(BM_Cache_Eval_HitRate100)->Arg(100)->Arg(400)->Arg(1600);

}  // namespace
}  // namespace wdpt::bench

BENCHMARK_MAIN();
