#!/usr/bin/env bash
# Runs the full tier-1 gate: configure + build + ctest for the default
# preset, then the asan and tsan presets (which run the concurrency-
# sensitive labels: engine, server, shards, cache, storage — see
# CMakePresets.json). Any failing step fails the script.
#
# Usage: tools/run_tier1.sh [preset ...]
#   With no arguments runs: default asan tsan.
#   Pass a subset (e.g. `tools/run_tier1.sh default`) to run fewer.

set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "=== tier-1: preset ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done

echo "=== tier-1: all presets passed (${presets[*]}) ==="
