#!/usr/bin/env bash
# Runs the full tier-1 gate and prints a per-step PASS/FAIL summary:
#
#   1. docs lint (tools/check_docs.py — cross-links, paths, flags,
#      labels, presets, and the METRICS.md metric-family inventory);
#   2. configure + build + ctest for the default preset, then the asan
#      and tsan presets (which run the concurrency-sensitive labels:
#      engine, server, shards, cache, storage, resilience, replication
#      — see CMakePresets.json);
#   3. a seeded single-node `wdpt_loadgen --chaos` smoke run (fault
#      injection + drain/restart, zero mismatches required; see
#      docs/RESILIENCE.md);
#   4. a seeded `wdpt_loadgen --replicas 2 --chaos` smoke run (primary
#      + two followers under fault injection, one replica killed and
#      the primary restarted mid-load; zero mismatches and at least
#      one observed resync required; see docs/REPLICATION.md);
#   5. a join-kernel perf smoke: `bench_kernel --check` runs the
#      legacy-vs-flat differential gate on a reduced instance and
#      writes a benchmark JSON, which is then fed through
#      tools/bench_compare.py (against itself — exercises the
#      regression-gate plumbing; compare against a saved baseline by
#      hand for real regression hunts, see docs/BENCHMARKS.md).
#
# Every step runs even after a failure so the summary shows the full
# picture; the script exits non-zero when any step failed.
#
# Usage: tools/run_tier1.sh [preset ...]
#   With no arguments runs: default asan tsan, then both chaos smokes.
#   Pass a subset (e.g. `tools/run_tier1.sh default`) to run fewer
#   presets; the chaos smokes run whenever the default preset is built.

set -uo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan)
fi

summary=()
failed=0

step() {
  local name="$1"
  shift
  echo "=== tier-1: ${name} ==="
  if "$@"; then
    summary+=("PASS  ${name}")
  else
    summary+=("FAIL  ${name}")
    failed=1
  fi
}

if command -v python3 >/dev/null 2>&1; then
  step "docs lint (check_docs.py)" python3 tools/check_docs.py .
else
  summary+=("SKIP  docs lint (no python3)")
fi

for preset in "${presets[@]}"; do
  step "configure ${preset}" cmake --preset "${preset}"
  step "build ${preset}" cmake --build --preset "${preset}" -j "$(nproc)"
  step "ctest ${preset}" ctest --preset "${preset}" -j "$(nproc)"
done

for preset in "${presets[@]}"; do
  if [ "${preset}" = "default" ]; then
    step "chaos smoke (single node)" \
      ./build/tools/wdpt_loadgen --chaos --chaos-seed 7 --clients 4 \
      --requests 30 --bands 80
    step "chaos smoke (replicas)" \
      ./build/tools/wdpt_loadgen --replicas 2 --chaos --chaos-seed 7 \
      --clients 4 --requests 30 --bands 40
    step "perf smoke (kernel differential)" \
      ./build/bench/bench_kernel --db-vertices 800 --reps 2 --check \
      --json build/BENCH_kernel_smoke.json
    if command -v python3 >/dev/null 2>&1; then
      step "perf smoke (bench_compare.py)" \
        python3 tools/bench_compare.py build/BENCH_kernel_smoke.json \
        build/BENCH_kernel_smoke.json
    else
      summary+=("SKIP  perf smoke (no python3)")
    fi
  fi
done

echo
echo "=== tier-1 summary ==="
for line in "${summary[@]}"; do
  echo "  ${line}"
done
if [ "${failed}" -ne 0 ]; then
  echo "=== tier-1: FAILED ==="
  exit 1
fi
echo "=== tier-1: all steps passed (${presets[*]}) ==="
