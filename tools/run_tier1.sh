#!/usr/bin/env bash
# Runs the full tier-1 gate: configure + build + ctest for the default
# preset, then the asan and tsan presets (which run the concurrency-
# sensitive labels: engine, server, shards, cache, storage, resilience —
# see CMakePresets.json), then a seeded `wdpt_loadgen --chaos` smoke run
# (fault injection + drain/restart, zero mismatches required; see
# docs/RESILIENCE.md). Any failing step fails the script.
#
# Usage: tools/run_tier1.sh [preset ...]
#   With no arguments runs: default asan tsan, then the chaos smoke.
#   Pass a subset (e.g. `tools/run_tier1.sh default`) to run fewer
#   presets; the chaos smoke runs whenever the default preset is built.

set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "=== tier-1: preset ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done

for preset in "${presets[@]}"; do
  if [ "${preset}" = "default" ]; then
    echo "=== tier-1: chaos smoke (seeded fault injection + drain) ==="
    ./build/tools/wdpt_loadgen --chaos --chaos-seed 7 --clients 4 \
      --requests 30 --bands 80
  fi
done

echo "=== tier-1: all presets passed (${presets[*]}) ==="
