// wdpt_server: serve WDPT queries over a triples file.
//
// Usage:
//   wdpt_server --data FILE [--port N] [--workers N] [--queue N]
//               [--shards N] [--cache-bytes N] [--default-deadline-ms N]
//               [--max-deadline-ms N] [--retry-after-ms N]
//               [--idle-timeout-ms N] [--slow-query-ms N] [--no-reload]
//               [--print-port] [--metrics-dump]
//
// Binds 127.0.0.1:<port> (0 = ephemeral; the chosen port is printed)
// and serves the framed protocol described in docs/SERVER.md: QUERY /
// STATS / PING / RELOAD / METRICS. The data file holds whitespace-
// separated triples, one per line, '#' comments — the same format
// wdpt_query reads. RELOAD swaps in a new dataset under live traffic
// without pausing readers. --shards N (default 1) hash-partitions each
// snapshot N ways and serves enumeration requests through the engine's
// scatter-gather path (docs/ENGINE.md) — answers are identical to the
// unsharded server. --cache-bytes N (default 0 = off) gives the engine
// an answer cache of N bytes: repeated identical queries against the
// same snapshot are served from memory, RELOAD invalidates by
// construction, and clients can opt out per request with `cache-control:
// bypass`. --idle-timeout-ms closes connections that go
// quiet; --slow-query-ms logs a per-stage trace breakdown to stderr for
// queries over the threshold; --metrics-dump prints the Prometheus
// exposition to stdout at shutdown. Runs until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "src/server/server.h"
#include "src/server/snapshot.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --data FILE [--port N] [--workers N] [--queue N] "
               "[--shards N] [--cache-bytes N] [--default-deadline-ms N] "
               "[--max-deadline-ms N] [--retry-after-ms N] "
               "[--idle-timeout-ms N] [--slow-query-ms N] [--no-reload] "
               "[--print-port] [--metrics-dump]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wdpt;
  std::string data_path;
  server::ServerOptions options;
  bool print_port = false;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--data" && i + 1 < argc) {
      data_path = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && i + 1 < argc) {
      options.num_workers =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--queue" && i + 1 < argc) {
      options.admission_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--shards" && i + 1 < argc) {
      options.shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      options.answer_cache_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--default-deadline-ms" && i + 1 < argc) {
      options.default_deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-deadline-ms" && i + 1 < argc) {
      options.max_deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--retry-after-ms" && i + 1 < argc) {
      options.retry_after_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      options.idle_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--slow-query-ms" && i + 1 < argc) {
      options.slow_query_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--no-reload") {
      options.allow_reload = false;
    } else if (arg == "--print-port") {
      print_port = true;
    } else if (arg == "--metrics-dump") {
      metrics_dump = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (data_path.empty()) return Usage(argv[0]);

  std::ifstream file(data_path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", data_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  Result<std::shared_ptr<const server::Snapshot>> snapshot =
      server::LoadSnapshot(buffer.str(), /*version=*/1, options.shards);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "data error: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  size_t facts = (*snapshot)->db.TotalFacts();

  server::Server srv(options);
  Status started = srv.Start(std::move(*snapshot));
  if (!started.ok()) {
    std::fprintf(stderr, "start error: %s\n", started.ToString().c_str());
    return 1;
  }
  if (print_port) {
    std::printf("%u\n", static_cast<unsigned>(srv.port()));
    std::fflush(stdout);
  }
  std::fprintf(stderr, "serving %zu facts on 127.0.0.1:%u\n", facts,
               static_cast<unsigned>(srv.port()));

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shutting down\n");
  srv.Stop();
  if (metrics_dump) {
    std::fputs(srv.MetricsText().c_str(), stdout);
    std::fflush(stdout);
  }
  server::ServerCounters c = srv.counters();
  std::fprintf(stderr, "served %llu requests on %llu connections\n",
               static_cast<unsigned long long>(c.requests),
               static_cast<unsigned long long>(c.connections));
  return 0;
}
