// wdpt_server: serve WDPT queries over a triples file or a durable
// data directory.
//
// Usage:
//   wdpt_server (--data FILE | --data-dir DIR [--data FILE])
//               [--port N] [--workers N] [--queue N]
//               [--shards N] [--cache-bytes N] [--default-deadline-ms N]
//               [--max-deadline-ms N] [--retry-after-ms N]
//               [--idle-timeout-ms N] [--slow-query-ms N] [--no-reload]
//               [--fsync] [--checkpoint-wal-bytes N] [--drain-ms N]
//               [--print-port] [--metrics-dump]
//
// Binds 127.0.0.1:<port> (0 = ephemeral; the chosen port is printed)
// and serves the framed protocol described in docs/SERVER.md: QUERY /
// STATS / PING / RELOAD / METRICS / INGEST / CHECKPOINT. The data file
// holds whitespace-separated triples, one per line, '#' comments — the
// same format wdpt_query reads. RELOAD swaps in a new dataset under
// live traffic without pausing readers. --shards N (default 1)
// hash-partitions each snapshot N ways and serves enumeration requests
// through the engine's scatter-gather path (docs/ENGINE.md) — answers
// are identical to the unsharded server. --cache-bytes N (default 0 =
// off) gives the engine an answer cache of N bytes: repeated identical
// queries against the same snapshot are served from memory, reloads
// and ingests invalidate by construction, and clients can opt out per
// request with `cache-control: bypass`.
//
// --data-dir DIR turns on durable storage (docs/STORAGE.md): the
// directory's binary snapshot is loaded, its write-ahead log replayed
// (torn tails truncated), and the server accepts INGEST (durable
// add/remove batches, acked after the WAL append) and CHECKPOINT (WAL
// compaction into a fresh snapshot file) instead of RELOAD. An empty
// directory can be seeded from --data. --fsync makes every acked
// ingest survive power loss, not just a killed process.
// --checkpoint-wal-bytes N auto-compacts once the log crosses N bytes
// (0 = only explicit CHECKPOINT).
//
// --idle-timeout-ms closes connections that go quiet; --slow-query-ms
// logs a per-stage trace breakdown to stderr for queries (and ingests)
// over the threshold; --metrics-dump prints the Prometheus exposition
// to stdout at shutdown. Runs until SIGINT/SIGTERM.
//
// --drain-ms N makes that shutdown graceful (docs/RESILIENCE.md):
// in-flight requests get up to N ms to finish while new work is
// answered kOverloaded with a retry hint; 0 (the default) keeps the
// immediate hard cut.
//
// --replica-of HOST:PORT starts the server as a read replica
// (docs/REPLICATION.md): it bootstraps from the primary's latest
// binary snapshot, subscribes to its WAL stream, and replays each
// committed batch through the same hot-swap publish path a local
// ingest uses. Replicas serve QUERY/PING/STATS/METRICS; writes are
// answered kRedirect naming the primary. --max-replica-lag N (default
// 0 = unbounded) sheds reads kOverloaded once the replica falls more
// than N batches behind. --replica-of excludes --data/--data-dir.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "src/server/server.h"
#include "src/server/snapshot.h"
#include "src/storage/storage_manager.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--data FILE | --data-dir DIR [--data FILE] | "
               "--replica-of HOST:PORT) "
               "[--port N] [--workers N] [--queue N] "
               "[--shards N] [--cache-bytes N] [--default-deadline-ms N] "
               "[--max-deadline-ms N] [--retry-after-ms N] "
               "[--idle-timeout-ms N] [--slow-query-ms N] [--no-reload] "
               "[--fsync] [--checkpoint-wal-bytes N] [--drain-ms N] "
               "[--max-replica-lag N] [--print-port] [--metrics-dump]\n",
               argv0);
  return 2;
}

// Splits "host:port"; returns false when the port part is missing or
// not a number.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  char* end = nullptr;
  unsigned long value = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return true;
}

// Reads the whole triples file; exits the process on failure.
std::string ReadTriplesFileOrDie(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wdpt;
  std::string data_path;
  std::string data_dir;
  std::string replica_of;
  uint64_t max_replica_lag = 0;
  server::ServerOptions options;
  storage::StorageOptions storage_options;
  bool print_port = false;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--data" && i + 1 < argc) {
      data_path = argv[++i];
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--replica-of" && i + 1 < argc) {
      replica_of = argv[++i];
    } else if (arg == "--max-replica-lag" && i + 1 < argc) {
      max_replica_lag = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--fsync") {
      storage_options.fsync_wal = true;
    } else if (arg == "--checkpoint-wal-bytes" && i + 1 < argc) {
      storage_options.checkpoint_wal_bytes =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && i + 1 < argc) {
      options.num_workers =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--queue" && i + 1 < argc) {
      options.admission_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--shards" && i + 1 < argc) {
      options.shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      options.answer_cache_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--default-deadline-ms" && i + 1 < argc) {
      options.default_deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-deadline-ms" && i + 1 < argc) {
      options.max_deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--retry-after-ms" && i + 1 < argc) {
      options.retry_after_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      options.idle_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--slow-query-ms" && i + 1 < argc) {
      options.slow_query_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--drain-ms" && i + 1 < argc) {
      options.drain_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--no-reload") {
      options.allow_reload = false;
    } else if (arg == "--print-port") {
      print_port = true;
    } else if (arg == "--metrics-dump") {
      metrics_dump = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (replica_of.empty()) {
    if (data_path.empty() && data_dir.empty()) return Usage(argv[0]);
  } else if (!data_path.empty() || !data_dir.empty()) {
    std::fprintf(stderr,
                 "error: --replica-of excludes --data/--data-dir; replicas "
                 "take their dataset from the primary\n");
    return 2;
  }

  server::Server srv(options);
  size_t facts = 0;
  if (!replica_of.empty()) {
    replication::ReplicatorOptions replica;
    if (!ParseHostPort(replica_of, &replica.primary_host,
                       &replica.primary_port)) {
      std::fprintf(stderr, "error: --replica-of wants HOST:PORT, got %s\n",
                   replica_of.c_str());
      return 2;
    }
    replica.shards = options.shards;
    replica.max_frame_bytes = options.max_frame_bytes;
    replica.max_lag_batches = max_replica_lag;
    // Bootstrap survives a primary that is still coming up; streaming
    // reconnects forever regardless.
    replica.retry.max_attempts = 10;
    Status started = srv.StartReplica(replica);
    if (!started.ok()) {
      std::fprintf(stderr, "replica start error: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    facts = srv.CurrentSnapshot()->db.TotalFacts();
  } else if (!data_dir.empty()) {
    storage_options.dir = data_dir;
    storage_options.shards = options.shards;
    Result<std::unique_ptr<storage::StorageManager>> manager =
        storage::StorageManager::Open(storage_options);
    if (!manager.ok()) {
      std::fprintf(stderr, "storage error: %s\n",
                   manager.status().ToString().c_str());
      return 1;
    }
    if (!data_path.empty() &&
        (*manager)->CurrentSnapshot()->db.TotalFacts() == 0) {
      // Seed an empty directory from the triples file; a non-empty
      // store ignores --data (the directory is the authority).
      Status seeded = (*manager)->ImportTriples(ReadTriplesFileOrDie(data_path));
      if (!seeded.ok()) {
        std::fprintf(stderr, "seed error: %s\n", seeded.ToString().c_str());
        return 1;
      }
    }
    facts = (*manager)->CurrentSnapshot()->db.TotalFacts();
    Status started = srv.StartWithStorage(std::move(*manager));
    if (!started.ok()) {
      std::fprintf(stderr, "start error: %s\n", started.ToString().c_str());
      return 1;
    }
  } else {
    Result<std::shared_ptr<const server::Snapshot>> snapshot =
        server::LoadSnapshot(ReadTriplesFileOrDie(data_path), /*version=*/1,
                             options.shards);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "data error: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    facts = (*snapshot)->db.TotalFacts();
    Status started = srv.Start(std::move(*snapshot));
    if (!started.ok()) {
      std::fprintf(stderr, "start error: %s\n", started.ToString().c_str());
      return 1;
    }
  }
  if (print_port) {
    std::printf("%u\n", static_cast<unsigned>(srv.port()));
    std::fflush(stdout);
  }
  std::string role_suffix;
  if (!replica_of.empty()) {
    role_suffix = " (replica of " + replica_of + ")";
  } else if (!data_dir.empty()) {
    role_suffix = " (durable)";
  }
  std::fprintf(stderr, "serving %zu facts on 127.0.0.1:%u%s\n", facts,
               static_cast<unsigned>(srv.port()), role_suffix.c_str());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shutting down\n");
  srv.Stop();
  if (metrics_dump) {
    std::fputs(srv.MetricsText().c_str(), stdout);
    std::fflush(stdout);
  }
  server::ServerCounters c = srv.counters();
  std::fprintf(stderr, "served %llu requests on %llu connections\n",
               static_cast<unsigned long long>(c.requests),
               static_cast<unsigned long long>(c.connections));
  return 0;
}
