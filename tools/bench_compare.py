#!/usr/bin/env python3
"""Compare two benchmark JSON files and fail on regressions.

Usage:
    python3 tools/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.15] [--series NAME ...]

Accepts both benchmark JSON shapes this repo produces:

  * google-benchmark output (``--benchmark_out_format=json``): the
    ``benchmarks`` array; each entry's ``real_time`` is one series
    (lower is better);
  * the plain single-object files written by bench_storage /
    bench_kernel (``--json``): every numeric field is one series.

For plain files the direction is inferred from the field name: series
ending in ``_ms`` or ``_ns`` are times (lower is better); everything
else — throughputs (``_mops``, ``_per_ms``, ``_per_s``, ``_ops``),
speedup ratios, rates — counts as higher-is-better. Non-measurement
metadata fields (``reps``, ``db_vertices``, ...) are skipped.

A series regresses when it is worse than the baseline by more than
``--threshold`` (default 0.15 = 15%). With ``--series`` only the named
series gate the exit code; everything else is reported informationally.
Series present in only one file are reported but never fail the run.

Exit codes: 0 = no gated regression, 1 = regression, 2 = usage error.
"""

import argparse
import json
import sys

# Plain-format fields that are run parameters, not measurements.
METADATA_FIELDS = {"benchmark", "reps", "db_vertices", "seed"}

LOWER_IS_BETTER_SUFFIXES = ("_ms", "_ns")


def load_series(path):
    """Returns {series_name: (value, lower_is_better)}."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    series = {}
    if isinstance(data, dict) and isinstance(data.get("benchmarks"), list):
        # google-benchmark format.
        for entry in data["benchmarks"]:
            name = entry.get("name")
            value = entry.get("real_time")
            if name is None or not isinstance(value, (int, float)):
                continue
            # Aggregate rows (mean/median/stddev) shadow the raw runs;
            # prefer the median when present.
            if entry.get("aggregate_name") not in (None, "median"):
                continue
            series[name] = (float(value), True)
        return series
    if isinstance(data, dict):
        for name, value in data.items():
            if name in METADATA_FIELDS or not isinstance(value, (int, float)):
                continue
            lower = name.endswith(LOWER_IS_BETTER_SUFFIXES)
            series[name] = (float(value), lower)
        return series
    print(f"error: {path} is not a recognized benchmark JSON shape",
          file=sys.stderr)
    sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two benchmark JSON files; fail on regressions.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="maximum tolerated fractional regression "
                             "(default 0.15)")
    parser.add_argument("--series", nargs="*", default=None,
                        help="gate only these series (default: all shared)")
    args = parser.parse_args()

    base = load_series(args.baseline)
    cur = load_series(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("error: the two files share no series", file=sys.stderr)
        return 2
    if args.series:
        missing = [s for s in args.series if s not in shared]
        if missing:
            print(f"error: gated series not in both files: {missing}",
                  file=sys.stderr)
            return 2

    regressions = []
    print(f"{'series':<44} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in shared:
        base_value, lower = base[name]
        cur_value, _ = cur[name]
        if base_value == 0:
            delta = 0.0 if cur_value == 0 else float("inf")
        elif lower:
            delta = (cur_value - base_value) / base_value
        else:
            delta = (base_value - cur_value) / base_value
        gated = args.series is None or name in args.series
        regressed = gated and delta > args.threshold
        marker = " REGRESSED" if regressed else ("" if gated else " (info)")
        print(f"{name:<44} {base_value:>12.3f} {cur_value:>12.3f} "
              f"{delta * 100:>7.1f}%{marker}")
        if regressed:
            regressions.append(name)

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    for name in only_base:
        print(f"{name:<44} {'(baseline only)':>12}")
    for name in only_cur:
        print(f"{name:<44} {'(current only)':>12}")

    if regressions:
        print(f"FAIL: {len(regressions)} series regressed beyond "
              f"{args.threshold * 100:.0f}%: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"OK: no gated series regressed beyond "
          f"{args.threshold * 100:.0f}% ({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
