#!/usr/bin/env python3
"""Documentation lint: every reference in the docs must name something real.

Scans README.md and docs/*.md and fails (exit 1) when a doc names
something that does not exist in the repository:

  * markdown cross-links `[text](target)` whose relative target is
    missing (anchors are stripped; http(s) links are skipped);
  * inline-code path tokens (`src/...`, `tests/...`, `tools/...`, ...)
    that resolve to no file or directory — `{h,cpp}` brace groups are
    expanded, and an extensionless path may resolve via `.h`/`.cpp`;
  * CLI flags (`--foo`) that no tool under tools/ nor the build files
    define (cmake/ctest's own flags and google-benchmark's
    `--benchmark_*` family are allowlisted);
  * ctest labels (`ctest -L <label>`) and presets (`--preset <name>`)
    not defined by tests/CMakeLists.txt / CMakePresets.json;
  * docs/*.md files that do not link ARCHITECTURE.md (every doc must
    point back at the one-page map), and a README that doesn't either;
  * metric families: docs/METRICS.md must list *exactly* the `wdpt_*`
    string literals registered under src/ — a family emitted by the
    code but absent from the inventory fails, and so does a documented
    family the code no longer emits.

Run from anywhere: `python3 tools/check_docs.py [repo_root]`. Wired as
the `docs.check_docs` ctest (label: docs).

Paths under build/ are exempt (build artifacts are documented but not
checked in), as is anything containing a glob or placeholder.
"""

import itertools
import json
import re
import sys
from pathlib import Path

# Directories whose paths docs may cite and we verify against the tree.
CHECKED_ROOTS = ("src", "tests", "bench", "tools", "docs", "examples", "data")

# Flags owned by cmake/ctest/google-benchmark, not by this repo's tools.
FLAG_ALLOWLIST = {
    "--build",
    "--preset",
    "--target",
    "--test-dir",
    "--output-on-failure",
}
FLAG_ALLOWED_PREFIXES = ("--benchmark_",)

MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`]+)`")
PATH_TOKEN_RE = re.compile(
    r"^(?:\.\./)?(?:%s)/[\w.{},/-]*$" % "|".join(CHECKED_ROOTS)
)
ROOT_DOC_RE = re.compile(r"^[A-Za-z_]+\.(?:md|json)$")
FLAG_RE = re.compile(r"--[A-Za-z][\w-]*")
CTEST_LABEL_RE = re.compile(r"ctest\s+(?:[^`]*\s)?-L\s+(\w+)")
PRESET_RE = re.compile(r"--preset[= ](\w+)")

# Metric families: full quoted literals in src/ vs full backticked
# tokens in docs/METRICS.md. Tool binaries share the wdpt_ prefix but
# are not families.
METRIC_SRC_RE = re.compile(r'"(wdpt_[a-z0-9_]+)"')
METRIC_DOC_RE = re.compile(r"`(wdpt_[a-z0-9_]+)`")
METRIC_NON_FAMILIES = {"wdpt_server", "wdpt_query", "wdpt_loadgen"}


def expand_braces(token):
    """src/server/frame.{h,cpp} -> [src/server/frame.h, src/server/frame.cpp]."""
    m = re.search(r"\{([^}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[: m.start()], token[m.end():]
    return list(
        itertools.chain.from_iterable(
            expand_braces(head + alt + tail) for alt in m.group(1).split(",")
        )
    )


def path_exists(root, rel):
    """True when rel names a file/dir, allowing .h/.cpp completion."""
    rel = rel.lstrip("/")
    if rel.startswith("../"):  # docs written relative to build/
        rel = rel[3:]
    base = root / rel
    if base.exists():
        return True
    if not base.suffix:
        return any((root / (rel + ext)).exists() for ext in (".h", ".cpp", ".py"))
    return False


def collect_defined_flags(root):
    """Every --flag literal that appears in the repo's own sources/build files."""
    flags = set()
    sources = list((root / "tools").glob("*.cpp"))
    sources += list((root / "tools").glob("*.py"))
    sources += list((root / "tools").glob("*.sh"))
    sources += list(root.glob("*/CMakeLists.txt"))
    sources.append(root / "CMakeLists.txt")
    for path in sources:
        if path.exists():
            flags.update(FLAG_RE.findall(path.read_text(errors="replace")))
    return flags


def collect_ctest_labels(root):
    labels = set()
    cml = root / "tests" / "CMakeLists.txt"
    if cml.exists():
        text = cml.read_text()
        labels.update(re.findall(r'LABELS\s+"?(\w+)"?', text))
    return labels


def collect_presets(root):
    presets = set()
    pj = root / "CMakePresets.json"
    if pj.exists():
        data = json.loads(pj.read_text())
        for section in data.values():
            if isinstance(section, list):
                presets.update(
                    e["name"] for e in section if isinstance(e, dict) and "name" in e
                )
    return presets


def lint_metric_families(root):
    """docs/METRICS.md must mirror the wdpt_* families in src/ exactly."""
    errors = []
    inventory = root / "docs" / "METRICS.md"
    if not inventory.exists():
        return ["docs/METRICS.md: missing (the metric-family inventory)"]
    documented = (
        set(METRIC_DOC_RE.findall(inventory.read_text())) - METRIC_NON_FAMILIES
    )
    registered = set()
    for pattern in ("*.cpp", "*.h"):
        for path in sorted((root / "src").rglob(pattern)):
            registered.update(
                METRIC_SRC_RE.findall(path.read_text(errors="replace"))
            )
    for family in sorted(registered - documented):
        errors.append(
            f"docs/METRICS.md: family '{family}' is registered in src/ "
            "but missing from the inventory"
        )
    for family in sorted(documented - registered):
        errors.append(
            f"docs/METRICS.md: family '{family}' is documented but no "
            "src/ file registers it"
        )
    return errors


def lint(root):
    errors = []
    doc_files = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    defined_flags = collect_defined_flags(root)
    labels = collect_ctest_labels(root)
    presets = collect_presets(root)

    for doc in doc_files:
        text = doc.read_text()
        rel_doc = doc.relative_to(root)

        # 1. Markdown cross-links.
        for target in MD_LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "#")):
                continue
            target = target.split("#")[0]
            if not target:
                continue
            if not (doc.parent / target).exists() and not path_exists(root, target):
                errors.append(f"{rel_doc}: broken link target '{target}'")

        # 2..4. Inline-code tokens: paths, flags, labels.
        for code in CODE_RE.findall(text):
            for word in code.split():
                word = word.rstrip(".,;:")
                if word.startswith(("build/", "BENCH_")) or "*" in word or "<" in word:
                    continue  # build artifacts are documented, not checked in
                if PATH_TOKEN_RE.match(word):
                    for candidate in expand_braces(word):
                        if not path_exists(root, candidate):
                            errors.append(
                                f"{rel_doc}: path '{candidate}' does not exist"
                            )
                elif ROOT_DOC_RE.match(word):
                    if not (root / word).exists() and not (
                        root / "docs" / word
                    ).exists():
                        errors.append(f"{rel_doc}: file '{word}' does not exist")
            for flag in FLAG_RE.findall(code):
                if flag in FLAG_ALLOWLIST or flag.startswith(FLAG_ALLOWED_PREFIXES):
                    continue
                if flag not in defined_flags:
                    errors.append(f"{rel_doc}: flag '{flag}' defined nowhere")
            for label in CTEST_LABEL_RE.findall(code):
                if label not in labels:
                    errors.append(f"{rel_doc}: ctest label '{label}' not defined")
            for preset in PRESET_RE.findall(code):
                if preset not in presets:
                    errors.append(f"{rel_doc}: preset '{preset}' not defined")

        # 5. Every doc links back to the architecture map.
        if doc.name != "ARCHITECTURE.md" and "ARCHITECTURE.md" not in text:
            errors.append(f"{rel_doc}: missing a link to ARCHITECTURE.md")

    # 6. The metric inventory mirrors the code.
    errors.extend(lint_metric_families(root))

    return errors, len(doc_files)


def main():
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
    if not (root / "README.md").exists():
        print(f"check_docs: {root} is not the repo root", file=sys.stderr)
        return 2
    errors, n_docs = lint(root)
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} error(s) in {n_docs} doc(s)",
              file=sys.stderr)
        return 1
    print(f"check_docs: {n_docs} docs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
