// wdpt_query: command-line evaluation of {AND, OPT} queries over triple
// data, driven by the wdpt::Engine.
//
// Usage:
//   wdpt_query --data FILE --query 'QUERY' [--mode eval|partial|max]
//              [--maximal] [--candidate '?x=a ?y=b'] [--classify]
//              [--limit N] [--deadline-ms N] [--threads N] [--stats]
//
// The data file holds whitespace-separated triples (one per line, '#'
// comments). The query uses the paper's algebraic notation, e.g.
//   'SELECT ?y WHERE ((?x, recorded_by, ?y) OPT (?x, NME_rating, ?r))'
//
// Prints one answer mapping per line; --mode max (or the --maximal
// alias) switches to the maximal-mapping semantics p_m(D); --candidate
// turns the request into a membership check of the given mapping under
// the selected semantics (mode partial = PARTIAL-EVAL); --classify
// prints the engine plan and tractability classification instead of
// evaluating; --deadline-ms bounds the evaluation wall time; --stats
// dumps the engine's counters and timers as JSON to stderr after the
// run.
//
// Request interpretation (flags -> tree + engine options) is shared
// with the query server via sparql::CompileRequest, so the CLI and the
// wire protocol cannot drift.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/engine/engine.h"
#include "src/relational/rdf.h"
#include "src/sparql/data_loader.h"
#include "src/sparql/request.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --data FILE --query 'QUERY' "
               "[--mode eval|partial|max] [--maximal] "
               "[--candidate '?x=a ?y=b'] [--classify] [--limit N] "
               "[--deadline-ms N] [--threads N] [--stats]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wdpt;
  std::string data_path;
  sparql::QueryRequest request;
  bool classify = false;
  bool show_stats = false;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--data" && i + 1 < argc) {
      data_path = argv[++i];
    } else if (arg == "--query" && i + 1 < argc) {
      request.query = argv[++i];
    } else if (arg == "--mode" && i + 1 < argc) {
      Result<sparql::RequestMode> mode = sparql::ParseRequestMode(argv[++i]);
      if (!mode.ok()) {
        std::fprintf(stderr, "error: %s\n", mode.status().ToString().c_str());
        return 2;
      }
      request.mode = *mode;
    } else if (arg == "--maximal") {
      request.mode = sparql::RequestMode::kMax;
    } else if (arg == "--candidate" && i + 1 < argc) {
      request.candidate = argv[++i];
    } else if (arg == "--classify") {
      classify = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--limit" && i + 1 < argc) {
      request.max_results = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      request.deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return Usage(argv[0]);
    }
  }
  if (data_path.empty() || request.query.empty()) return Usage(argv[0]);

  std::ifstream file(data_path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", data_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  RdfContext ctx;
  Database db = ctx.MakeDatabase();
  Status loaded = sparql::LoadTriples(buffer.str(), &ctx, &db);
  if (!loaded.ok()) {
    std::fprintf(stderr, "data error: %s\n", loaded.ToString().c_str());
    return 1;
  }

  Result<sparql::CompiledRequest> compiled =
      sparql::CompileRequest(request, &ctx);
  if (!compiled.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }

  EngineOptions engine_options;
  engine_options.num_threads = threads;
  Engine engine(engine_options);
  auto dump_stats = [&] {
    if (show_stats) {
      std::fprintf(stderr, "%s\n", engine.stats().ToJson().c_str());
    }
  };

  if (classify) {
    for (int k = 1; k <= 3; ++k) {
      Result<std::shared_ptr<const Plan>> plan = engine.GetPlan(
          compiled->tree, PlanOptions{k, EvalAlgorithm::kAuto});
      if (!plan.ok()) {
        std::fprintf(stderr, "classification error: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      const WdptClassification& cls = (*plan)->classification();
      std::printf(
          "k=%d: locally-TW(k)=%s globally-TW(k)=%s interface=%d "
          "projection-free=%s algorithm=%s\n",
          k, cls.locally_tw_k ? "yes" : "no",
          cls.globally_tw_k ? "yes" : "no", cls.interface_width,
          cls.projection_free ? "yes" : "no",
          EvalAlgorithmName((*plan)->algorithm()));
    }
    dump_stats();
    return 0;
  }

  if (compiled->check) {
    Result<bool> verdict =
        engine.Eval(compiled->tree, db, compiled->candidate, compiled->options);
    if (!verdict.ok()) {
      std::fprintf(stderr, "evaluation error: %s\n",
                   verdict.status().ToString().c_str());
      dump_stats();
      return 1;
    }
    std::printf("%s\n", *verdict ? "true" : "false");
    std::fprintf(stderr, "candidate %s under %s semantics\n",
                 *verdict ? "accepted" : "rejected",
                 sparql::RequestModeName(request.mode));
    dump_stats();
    return 0;
  }

  Result<std::vector<Mapping>> answers =
      engine.Enumerate(compiled->tree, db, compiled->options);
  if (!answers.ok()) {
    std::fprintf(stderr, "evaluation error: %s\n",
                 answers.status().ToString().c_str());
    dump_stats();
    return 1;
  }
  size_t shown = 0;
  for (const Mapping& m : *answers) {
    if (compiled->max_results != 0 && shown >= compiled->max_results) break;
    ++shown;
    std::printf("%s\n", m.ToString(ctx.vocab()).c_str());
  }
  std::fprintf(stderr, "%zu answer(s) under %s semantics\n", answers->size(),
               request.mode == sparql::RequestMode::kMax ? "maximal-mapping"
                                                         : "standard");
  dump_stats();
  return 0;
}
