// wdpt_query: command-line evaluation of {AND, OPT} queries over triple
// data, driven by the wdpt::Engine.
//
// Usage:
//   wdpt_query --data FILE --query 'QUERY' [--maximal] [--classify]
//              [--limit N] [--deadline-ms N] [--threads N] [--stats]
//
// The data file holds whitespace-separated triples (one per line, '#'
// comments). The query uses the paper's algebraic notation, e.g.
//   'SELECT ?y WHERE ((?x, recorded_by, ?y) OPT (?x, NME_rating, ?r))'
//
// Prints one answer mapping per line; --maximal switches to the
// maximal-mapping semantics p_m(D); --classify prints the engine plan and
// tractability classification instead of evaluating; --deadline-ms bounds
// the evaluation wall time; --stats dumps the engine's counters and
// timers to stderr after the run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/engine/engine.h"
#include "src/relational/rdf.h"
#include "src/sparql/data_loader.h"
#include "src/sparql/parser.h"
#include "src/sparql/printer.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --data FILE --query 'QUERY' [--maximal] "
               "[--classify] [--limit N] [--deadline-ms N] [--threads N] "
               "[--stats]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wdpt;
  std::string data_path;
  std::string query;
  bool maximal = false;
  bool classify = false;
  bool show_stats = false;
  uint64_t limit = 0;
  uint64_t deadline_ms = 0;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--data" && i + 1 < argc) {
      data_path = argv[++i];
    } else if (arg == "--query" && i + 1 < argc) {
      query = argv[++i];
    } else if (arg == "--maximal") {
      maximal = true;
    } else if (arg == "--classify") {
      classify = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return Usage(argv[0]);
    }
  }
  if (data_path.empty() || query.empty()) return Usage(argv[0]);

  std::ifstream file(data_path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", data_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  RdfContext ctx;
  Database db = ctx.MakeDatabase();
  Status loaded = sparql::LoadTriples(buffer.str(), &ctx, &db);
  if (!loaded.ok()) {
    std::fprintf(stderr, "data error: %s\n", loaded.ToString().c_str());
    return 1;
  }

  Result<PatternTree> tree = sparql::ParseQuery(query, &ctx);
  if (!tree.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }

  EngineOptions engine_options;
  engine_options.num_threads = threads;
  Engine engine(engine_options);

  if (classify) {
    for (int k = 1; k <= 3; ++k) {
      Result<std::shared_ptr<const Plan>> plan =
          engine.GetPlan(*tree, PlanOptions{k, EvalAlgorithm::kAuto});
      if (!plan.ok()) {
        std::fprintf(stderr, "classification error: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      const WdptClassification& cls = (*plan)->classification();
      std::printf(
          "k=%d: locally-TW(k)=%s globally-TW(k)=%s interface=%d "
          "projection-free=%s algorithm=%s\n",
          k, cls.locally_tw_k ? "yes" : "no",
          cls.globally_tw_k ? "yes" : "no", cls.interface_width,
          cls.projection_free ? "yes" : "no",
          EvalAlgorithmName((*plan)->algorithm()));
    }
    if (show_stats) {
      std::fprintf(stderr, "--- engine stats ---\n%s",
                   engine.stats().ToString().c_str());
    }
    return 0;
  }

  EnumerateOptions options;
  options.maximal = maximal;
  if (limit != 0) options.limits.max_homomorphisms = limit;
  if (deadline_ms != 0) {
    options.deadline = std::chrono::milliseconds(deadline_ms);
  }
  Result<std::vector<Mapping>> answers = engine.Enumerate(*tree, db, options);
  if (!answers.ok()) {
    std::fprintf(stderr, "evaluation error: %s\n",
                 answers.status().ToString().c_str());
    if (show_stats) {
      std::fprintf(stderr, "--- engine stats ---\n%s",
                   engine.stats().ToString().c_str());
    }
    return 1;
  }
  size_t shown = 0;
  for (const Mapping& m : *answers) {
    if (limit != 0 && shown++ >= limit) break;
    std::printf("%s\n", m.ToString(ctx.vocab()).c_str());
  }
  std::fprintf(stderr, "%zu answer(s) under %s semantics\n",
               answers->size(), maximal ? "maximal-mapping" : "standard");
  if (show_stats) {
    std::fprintf(stderr, "--- engine stats ---\n%s",
                 engine.stats().ToString().c_str());
  }
  return 0;
}
